"""SLO plane, failure-signature triage, and the flight recorder.

Unit coverage for the three forensic layers PR 9 adds to repro.obs:

* :class:`SLOTracker` — per-tenant burn-rate accounting on an arbitrary
  clock domain, the multi-window fast-burn page signal, and the
  per-shard breakdown;
* :func:`classify_session` — the closed failure-signature vocabulary and
  its severity precedence;
* :class:`FlightRecorder` — deterministic triggers, content-addressed
  dedupe, bounded eviction, the env knobs, and the front door's
  shed-spike window;

plus the two acceptance pins the ISSUE names: identical virtual-clock
failures yield **bit-identical bundle hashes** across runs, and the full
forensic stack (SLO + recorder + tracer + metrics) leaves served
signatures byte-identical to a plain engine's.
"""

import json
from types import SimpleNamespace

import pytest

from repro.obs import (
    DEFAULT_SLO_TARGETS,
    FlightRecorder,
    MetricsRegistry,
    SIG_DEADLINE_MISS,
    SIG_DIVERGENCE,
    SIG_MAP_STALE_THRASH,
    SIG_OK,
    SIG_WRONG_WINNER,
    SLOTracker,
    Tracer,
    classify_session,
    load_bundle,
    parse_prometheus,
    recorder_from_env,
    signature_census,
)
from repro.scheduler import LatencyAutoscaler
from repro.sensors.scenarios import ScenarioKind
from repro.serving import ServingEngine, StreamSegment, StreamSpec, mixed_fleet
from repro.serving.engine import run_session
from repro.serving.streams import cold_start_fleet

RATE = 5.0


def _spec(stream_id="triage", environment=None, seed=0):
    indoor = (StreamSegment(ScenarioKind.INDOOR_UNKNOWN, 2.0,
                            environment=environment)
              if environment else
              StreamSegment(ScenarioKind.INDOOR_UNKNOWN, 2.0, label="inside"))
    return StreamSpec(
        stream_id=stream_id,
        segments=(
            StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, 1.0, label="approach"),
            indoor,
        ),
        camera_rate_hz=RATE,
        seed=seed,
    )


# ------------------------------------------------------------ SLO tracker


class TestSLOTracker:
    def test_tenant_for_deadline_is_exact_match(self):
        slo = SLOTracker()
        assert slo.tenant_for_deadline(200.0) == "gold"
        assert slo.tenant_for_deadline(400.0) == "silver"
        assert slo.tenant_for_deadline(800.0) == "bronze"
        assert slo.tenant_for_deadline(999.0) is None
        assert slo.tenant_for_deadline(None) is None

    def test_best_effort_is_exempt(self):
        assert "best_effort" not in DEFAULT_SLO_TARGETS

    def test_all_miss_burn_rate_is_inverse_error_budget(self):
        slo = SLOTracker()
        for tick in range(10):
            slo.record("gold", float(tick), ok=False)
        # gold objective 99.5% -> budget 0.005 -> all-miss burn = 200x.
        assert slo.burn_rate("gold", 60.0, now=9.0) == pytest.approx(200.0)
        assert slo.totals("gold") == (0, 10)
        assert "gold" in slo.fast_burns()

    def test_fast_burn_needs_both_windows(self):
        """The SRE multi-window AND: an old burst that has left the fast
        window must not page, however bad the slow window still looks."""
        slo = SLOTracker(fast_window_s=1.0, slow_window_s=1000.0)
        for tick in range(10):
            slo.record("gold", float(tick), ok=False)
        for tick in range(100, 110):
            slo.record("gold", float(tick), ok=True)
        rates = slo.burn_rates()["gold"]
        assert rates["fast"] == 0.0 and rates["slow"] > 8.0
        assert slo.fast_burns() == []

    def test_per_shard_burn_is_isolated(self):
        slo = SLOTracker()
        for tick in range(10):
            slo.record("gold", float(tick), ok=False, shard=0)
            slo.record("gold", float(tick), ok=True, shard=1)
        assert "gold" in slo.fast_burns(shard=0)
        assert slo.fast_burns(shard=1) == []
        # The tenant-level view aggregates both shards' events.
        assert slo.totals("gold") == (10, 10)
        assert slo.shards() == [0, 1]

    def test_snapshot_is_json_clean(self):
        slo = SLOTracker()
        slo.record("silver", 1.0, ok=False, shard=2)
        snapshot = json.loads(json.dumps(slo.snapshot()))
        assert snapshot["domain"] == "virtual"
        assert snapshot["tenants"]["silver"]["misses"] == 1
        assert "2" in snapshot["shards"]

    def test_bind_metrics_renders_slo_families(self):
        registry = MetricsRegistry()
        slo = SLOTracker(domain="wall")
        slo.bind_metrics(registry)
        slo.record("bronze", 0.5, ok=True)
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["eudoxus_slo_requests_total"]["samples"][
            'eudoxus_slo_requests_total{domain="wall",tenant="bronze",'
            'outcome="hit"}'] == 1.0
        assert parsed["eudoxus_slo_objective"]["samples"][
            'eudoxus_slo_objective{domain="wall",tenant="bronze"}'] == 0.95


# ----------------------------------------------------------------- triage


class TestTriage:
    @pytest.fixture(scope="class")
    def result(self):
        return run_session(_spec())

    def test_clean_session_is_ok(self, result):
        assert classify_session(result) == SIG_OK

    def test_deadline_misses_classify(self, result):
        assert classify_session(result, deadline_misses=3) == SIG_DEADLINE_MISS

    def test_divergence_outranks_misses(self, result):
        # A negative threshold makes any finite RMSE a divergence — the
        # knob exists precisely so tests need not build a diverging world.
        assert classify_session(result, deadline_misses=3,
                                divergence_rmse_m=-1.0) == SIG_DIVERGENCE

    def test_stale_thrash_outranks_wrong_winner_and_misses(self, result):
        assert classify_session(result, deadline_misses=3,
                                stale_thrash_min=0) == SIG_MAP_STALE_THRASH

    def test_wrong_winner_when_promised_map_served_slam(self):
        """A session that explored an environment with SLAM, classified
        against an assignment claiming that environment was mapped, is a
        wrong-winner: registration was expected, SLAM won."""
        from repro.serving.streams import segment_environment_id
        spec = _spec(environment="triage-atrium")
        environment_id = segment_environment_id(spec, 1)
        assert environment_id is not None
        result = run_session(spec)
        assert classify_session(result) == SIG_OK
        assert classify_session(
            result, mapped_environments=(environment_id,)) == SIG_WRONG_WINNER

    def test_census_aggregates_sorted(self):
        census = signature_census({"a": SIG_OK, "b": SIG_DEADLINE_MISS,
                                   "c": SIG_OK})
        assert census == {SIG_DEADLINE_MISS: 1, SIG_OK: 2}
        assert list(census) == sorted(census)


# -------------------------------------------------------- flight recorder


def _report(signatures=None, deadline_misses=0):
    return SimpleNamespace(failure_signatures=signatures or {},
                           deadline_misses=deadline_misses)


class TestFlightRecorder:
    def test_record_is_content_addressed_and_dedupes(self, tmp_path):
        recorder = FlightRecorder(root=tmp_path)
        first = recorder.record("divergence", {"streams": ["a"]})
        again = recorder.record("divergence", {"streams": ["a"]})
        other = recorder.record("divergence", {"streams": ["b"]})
        assert first == again and first != other
        assert len(recorder.bundle_paths()) == 2
        bundle = load_bundle(first)
        assert bundle["kind"] == "divergence"
        assert bundle["bundle_hash"][:16] in first.name

    def test_eviction_keeps_newest(self, tmp_path):
        recorder = FlightRecorder(root=tmp_path, max_bundles=2)
        for index in range(4):
            recorder.record("deadline_miss_burst", {"wave": index})
        assert len(recorder.bundle_paths()) == 2

    def test_env_knobs(self, tmp_path, monkeypatch):
        monkeypatch.delenv("EUDOXUS_RECORDER", raising=False)
        assert recorder_from_env() is None
        monkeypatch.setenv("EUDOXUS_RECORDER", "0")
        assert recorder_from_env() is None
        monkeypatch.setenv("EUDOXUS_RECORDER", "1")
        monkeypatch.setenv("EUDOXUS_RECORDER_MAX_BUNDLES", "3")
        recorder = recorder_from_env()
        assert recorder is not None and recorder.max_bundles == 3
        monkeypatch.setenv("EUDOXUS_RECORDER_MAX_BUNDLES", "junk")
        assert recorder_from_env().max_bundles == 16

    def test_triggers_in_severity_order(self, tmp_path):
        recorder = FlightRecorder(root=tmp_path)
        assert recorder.triggers_for(_report()) == []
        assert recorder.triggers_for(_report(deadline_misses=8)) == [
            "deadline_miss_burst"]
        fired = recorder.triggers_for(
            _report({"a": SIG_DIVERGENCE, "b": SIG_MAP_STALE_THRASH},
                    deadline_misses=20))
        assert fired == ["divergence", "map_stale_thrash",
                         "deadline_miss_burst"]

    def test_shed_spike_window_fills_then_resets(self, tmp_path):
        recorder = FlightRecorder(root=tmp_path, shed_spike=3,
                                  shed_window_s=10.0)
        assert recorder.note_shed("saturated", 1.0) is None
        assert recorder.note_shed("saturated", 2.0) is None
        path = recorder.note_shed("deadline_infeasible", 3.0,
                                  context={"admission_tail": []})
        assert path is not None
        bundle = load_bundle(path)
        assert bundle["payload"]["shed_count"] == 3
        assert bundle["payload"]["reasons"] == {"deadline_infeasible": 1,
                                                "saturated": 2}
        assert bundle["telemetry"] == {"admission_tail": []}
        # The window cleared: the next shed starts a fresh count.
        assert recorder.note_shed("saturated", 4.0) is None

    def test_old_sheds_age_out_of_the_window(self, tmp_path):
        recorder = FlightRecorder(root=tmp_path, shed_spike=3,
                                  shed_window_s=10.0)
        recorder.note_shed("saturated", 1.0)
        recorder.note_shed("saturated", 2.0)
        assert recorder.note_shed("saturated", 50.0) is None


# -------------------------------------------------- engine acceptance pins


def _starved_engine(slo, recorder):
    return ServingEngine(
        store=None, max_workers=1,
        autoscaler=LatencyAutoscaler(min_workers=1, max_workers=1),
        frames_per_worker_tick=1, slo=slo, recorder=recorder)


class TestForensicAcceptance:
    def test_identical_failures_yield_bit_identical_bundles(self, tmp_path):
        """The ISSUE's determinism pin: two fresh runs of the identical
        starved fleet produce the identical content-addressed bundle."""
        names, hashes = [], []
        for run in ("first", "second"):
            fleet = cold_start_fleet(4, deadline_ms=200.0)
            recorder = FlightRecorder(root=tmp_path / run)
            report = _starved_engine(SLOTracker(), recorder).serve(
                fleet, parallel=False, ingestion="streaming")
            assert report.deadline_misses > 0
            paths = recorder.bundle_paths()
            assert paths, "starved fleet captured no bundle"
            names.append([path.name for path in paths])
            hashes.append([load_bundle(path)["bundle_hash"]
                           for path in paths])
        assert names[0] == names[1]
        assert hashes[0] == hashes[1]

    def test_bundle_sessions_are_replayable(self, tmp_path):
        fleet = cold_start_fleet(4, deadline_ms=200.0)
        recorder = FlightRecorder(root=tmp_path)
        _starved_engine(SLOTracker(), recorder).serve(
            fleet, parallel=False, ingestion="streaming")
        bundle = load_bundle(recorder.bundle_paths()[-1])
        sessions = bundle["payload"]["sessions"]
        assert sessions
        for entry in sessions:
            assert entry["serving_key"]
            assert entry["spec_fingerprint"]
            assert entry["signature"] != SIG_OK

    def test_full_forensic_stack_is_inert(self):
        """Signatures with SLO + recorder + tracer + metrics all bound are
        byte-identical to the plain engine's (the golden contract)."""
        fleet = mixed_fleet(4, segment_duration=1.0, camera_rate_hz=RATE)
        plain = ServingEngine(store=None, max_workers=1).serve(
            fleet, parallel=False, ingestion="streaming")
        import tempfile
        with tempfile.TemporaryDirectory() as root:
            instrumented = ServingEngine(
                store=None, max_workers=1, tracer=Tracer(),
                metrics=MetricsRegistry(), slo=SLOTracker(),
                recorder=FlightRecorder(root=root)).serve(
                fleet, parallel=False, ingestion="streaming")
        assert instrumented.signature() == plain.signature()
        for stream_id, result in plain.results.items():
            assert (instrumented.results[stream_id].signature()
                    == result.signature())
