"""Tests for the FPGA accelerator model: resources, memory, cycle models, energy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.mapping import SlamWorkload
from repro.backend.msckf import VioWorkload
from repro.backend.tracking import RegistrationWorkload
from repro.baselines.platforms import KABY_LAKE_MULTI
from repro.common.timing import LatencyRecord
from repro.frontend.frontend import FrontendWorkload
from repro.hardware.backend_accel import BackendAcceleratorModel
from repro.hardware.dma import AXI4, PCIE_3, DmaModel
from repro.hardware.energy import EnergyModel
from repro.hardware.frontend_accel import FrontendAcceleratorModel
from repro.hardware.memory import (
    FrontendMemoryPlan,
    StencilBufferSpec,
    replicated_buffer_bytes,
    replication_beneficial,
    shared_buffer_bytes,
)
from repro.hardware.platform import EDX_CAR, EDX_DRONE
from repro.hardware.resources import ResourceModel, ResourceUsage, VIRTEX_7_690T, ZYNQ_ZU9


def car_workload(features=200):
    return FrontendWorkload(
        image_width=1280, image_height=720,
        keypoints_left=features, keypoints_right=features,
        descriptors_computed=2 * features,
        stereo_candidates=features * features,
        stereo_matches=int(features * 0.75),
        tracked_points=int(features * 0.8),
        temporal_matches=int(features * 0.7),
    )


class TestDma:
    def test_transfer_time_monotonic(self):
        dma = DmaModel(bandwidth_gbps=1.0)
        assert dma.transfer_ms(1_000_000) > dma.transfer_ms(1_000)
        assert dma.transfer_ms(0) == 0.0

    def test_pcie_faster_than_axi(self):
        payload = 10_000_000
        assert PCIE_3.transfer_ms(payload) < AXI4.transfer_ms(payload)

    def test_round_trip(self):
        dma = DmaModel(bandwidth_gbps=1.0, fixed_latency_us=10.0)
        assert dma.round_trip_ms(1000, 1000) == pytest.approx(2 * dma.transfer_ms(1000))


class TestResources:
    def test_car_matches_table2(self):
        usage = EDX_CAR.resource_model().total()
        assert usage.lut == pytest.approx(350671, rel=0.05)
        assert usage.flip_flop == pytest.approx(239347, rel=0.05)
        assert usage.dsp == pytest.approx(1284, rel=0.05)
        assert usage.bram_mb == pytest.approx(5.0, rel=0.08)

    def test_drone_matches_table2(self):
        usage = EDX_DRONE.resource_model().total()
        assert usage.lut == pytest.approx(231547, rel=0.05)
        assert usage.dsp == pytest.approx(1072, rel=0.05)

    def test_utilization_below_capacity(self):
        for platform in (EDX_CAR, EDX_DRONE):
            usage = platform.resource_model().total()
            assert platform.device.fits(usage)
            utilization = platform.device.utilization(usage)
            assert all(0 < value <= 100 for value in utilization.values())

    def test_no_sharing_exceeds_device(self):
        for platform in (EDX_CAR, EDX_DRONE):
            no_sharing = platform.resource_model().total_no_sharing()
            shared = platform.resource_model().total()
            assert no_sharing.lut > 1.8 * shared.lut
            assert not platform.device.fits(no_sharing)

    def test_frontend_dominates(self):
        model = EDX_CAR.resource_model()
        assert model.frontend().lut > model.backend().lut
        assert model.feature_extraction().lut > 0.5 * model.frontend().lut

    def test_breakdown_sums_to_total(self):
        model = EDX_CAR.resource_model()
        breakdown = model.breakdown()
        total_lut = sum(usage.lut for usage in breakdown.values())
        assert total_lut == pytest.approx(model.total().lut, rel=0.05)

    def test_resource_usage_arithmetic(self):
        a = ResourceUsage(lut=10, flip_flop=20, dsp=2, bram_mb=0.1)
        b = a + a.scaled(0.5)
        assert b.lut == 15
        assert b.as_dict()["dsp"] == 3

    def test_devices_have_sensible_capacity(self):
        assert VIRTEX_7_690T.lut > ZYNQ_ZU9.lut
        assert VIRTEX_7_690T.dsp > ZYNQ_ZU9.dsp


class TestStencilBuffers:
    def test_basic_sizes(self):
        spec = StencilBufferSpec(image_width=1920, stencil_heights=[4, 3])
        assert spec.line_count == 4
        assert spec.fifo_bytes == 4 * 1920
        assert spec.shift_register_bytes == 16 + 9

    def test_shared_vs_replicated(self):
        # Fig. 14: when the second consumer reads much later, replication wins.
        shared = shared_buffer_bytes(0, [100, 1_000_000])
        replicated = replicated_buffer_bytes([0, 999_000], [100, 1_000_000])
        assert replicated < shared
        assert replication_beneficial([0, 999_000], [100, 1_000_000])

    def test_replication_not_beneficial_when_consumers_close(self):
        assert not replication_beneficial([0, 0], [100, 120])

    def test_replicated_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            replicated_buffer_bytes([0], [1, 2])

    def test_memory_plan_magnitudes(self):
        plan = EDX_CAR.memory_plan()
        summary = plan.summary()
        # SPM dominates; the optimized SB is small; the unoptimized SB would
        # add megabytes (the paper reports ~9 MB extra at 1280x720).
        assert summary["scratchpad_mb"] > summary["stencil_buffer_mb"]
        assert summary["stencil_buffer_unoptimized_mb"] > summary["stencil_buffer_mb"] + 1.0
        assert summary["total_mb"] < 10.0

    def test_drone_plan_smaller_than_car(self):
        assert EDX_DRONE.memory_plan().total_mb() < EDX_CAR.memory_plan().total_mb()


class TestFrontendAccelerator:
    def test_car_latency_magnitude(self):
        model = EDX_CAR.frontend_model()
        latency = model.frame_latency(car_workload())
        # Paper: ~42.7 ms frontend latency on EDX-CAR.
        assert 25.0 < latency.critical_path_ms < 60.0
        assert latency.stereo_matching_ms > latency.feature_extraction_ms

    def test_pipelining_improves_throughput(self):
        model = EDX_CAR.frontend_model()
        workload = car_workload()
        assert model.throughput_fps(workload, pipelined=True) > model.throughput_fps(workload, pipelined=False)

    def test_temporal_matching_off_critical_path(self):
        latency = EDX_CAR.frontend_model().frame_latency(car_workload())
        assert latency.temporal_matching_ms < latency.stereo_matching_ms

    def test_latency_scales_with_resolution(self):
        model = FrontendAcceleratorModel(clock_mhz=200.0)
        small = FrontendWorkload(image_width=640, image_height=480, keypoints_left=100,
                                 keypoints_right=100, descriptors_computed=200,
                                 stereo_matches=80, tracked_points=80)
        assert model.latency_ms(car_workload()) > model.latency_ms(small)

    @given(st.integers(min_value=10, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_latency_monotonic_in_features(self, features):
        model = EDX_CAR.frontend_model()
        smaller = model.latency_ms(car_workload(features=features))
        larger = model.latency_ms(car_workload(features=features + 50))
        assert larger >= smaller


class TestBackendAccelerator:
    def test_projection_scales_with_map_points(self):
        model = EDX_CAR.backend_model()
        small = model.projection_ms(RegistrationWorkload(map_points=100))
        large = model.projection_ms(RegistrationWorkload(map_points=10000))
        assert large > small

    def test_kalman_gain_scales_with_rows(self):
        model = EDX_CAR.backend_model()
        small = model.kalman_gain_ms(VioWorkload(kalman_gain_dim=30, state_dim=195))
        large = model.kalman_gain_ms(VioWorkload(kalman_gain_dim=180, state_dim=195))
        assert large > small

    def test_marginalization_scales(self):
        model = EDX_CAR.backend_model()
        small = model.marginalization_ms(SlamWorkload(marginalized_dim=20, keyframes=8, feature_points=20))
        large = model.marginalization_ms(SlamWorkload(marginalized_dim=200, keyframes=8, feature_points=200))
        assert large > small

    def test_dma_included_costs_more(self):
        model = EDX_CAR.backend_model()
        workload = VioWorkload(kalman_gain_dim=100, state_dim=195)
        assert model.kalman_gain_ms(workload, include_dma=True) > model.kalman_gain_ms(workload, include_dma=False)

    def test_kernel_dispatch(self):
        model = EDX_CAR.backend_model()
        assert model.accelerated_kernel_name("registration") == "projection"
        assert model.accelerated_kernel_name("vio") == "kalman_gain"
        assert model.accelerated_kernel_name("slam") == "marginalization"
        with pytest.raises(ValueError):
            model.kernel_ms("unknown", None)

    def test_bigger_block_is_faster(self):
        small_block = BackendAcceleratorModel(block_size=4)
        big_block = BackendAcceleratorModel(block_size=16)
        workload = VioWorkload(kalman_gain_dim=150, state_dim=195)
        assert big_block.kalman_gain_ms(workload, include_dma=False) < small_block.kalman_gain_ms(
            workload, include_dma=False)

    def test_structured_inverse_cheaper(self):
        model = EDX_CAR.backend_model()
        assert model.inverse_cycles(120, structured=True) < model.inverse_cycles(120, structured=False)


class TestEnergyModel:
    def _record(self, frontend_ms=90.0, backend_ms=25.0):
        record = LatencyRecord(frame_index=0)
        record.add_frontend("frontend", frontend_ms)
        record.add_backend("backend", backend_ms)
        return record

    def test_baseline_energy(self):
        model = EnergyModel(host=KABY_LAKE_MULTI)
        energy = model.baseline_energy_joules(self._record())
        assert energy == pytest.approx(KABY_LAKE_MULTI.power_watts * 0.115, rel=1e-6)

    def test_accelerated_energy_lower(self):
        model = EnergyModel(host=KABY_LAKE_MULTI)
        baseline = model.baseline_energy_joules(self._record())
        accelerated = model.accelerated_energy_joules(self._record(40.0, 15.0), fpga_active_ms=45.0)
        assert accelerated < baseline

    def test_platform_energy_models(self):
        assert EDX_CAR.energy_model().host is EDX_CAR.host
        assert EDX_DRONE.energy_model().fpga_static_watts < EDX_CAR.energy_model().fpga_static_watts + 1.0
