"""Unit coverage for the observability plane (:mod:`repro.obs`).

Three layers, none of which touch the serving stack:

* the :class:`Tracer` ring buffer and its Chrome-trace export;
* the :class:`MetricsRegistry` families, including the idempotent
  re-registration contract and the render -> parse round trip;
* property-based invariants (hypothesis): histogram bucket counts are
  cumulative-monotone and label children never bleed into each other.

The serving-integration half (span determinism, golden signatures under
``EUDOXUS_TRACE=1``) lives in tests/test_obs_serving.py.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_BUCKETS,
    DEFAULT_TRACE_CAPACITY,
    MetricsRegistry,
    SpanEvent,
    TRACE_CAPACITY_ENV,
    TRACE_ENV,
    Tracer,
    parse_prometheus,
    quantize_us,
    trace_capacity,
    tracer_from_env,
    tracing_enabled,
)

# ----------------------------------------------------------------- tracer


class TestTracer:
    def test_dropped_exposed_in_prometheus_exposition(self):
        """Ring overflow is a first-class metric, not just an attribute:
        binding the tracer surfaces ``eudoxus_tracer_dropped_total``,
        collector-driven so later drops show up without re-binding."""
        tracer = Tracer(capacity=2)
        registry = MetricsRegistry()
        tracer.bind_metrics(registry)
        tracer.bind_metrics(registry)  # idempotent per registry
        for index in range(5):
            tracer.instant("tick", "engine", float(index))
        assert tracer.dropped == 3
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["eudoxus_tracer_dropped_total"]["samples"][
            "eudoxus_tracer_dropped_total"] == 3.0
        tracer.instant("tick", "engine", 9.0)
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["eudoxus_tracer_dropped_total"]["samples"][
            "eudoxus_tracer_dropped_total"] == 4.0

    def test_span_quantizes_to_integer_microseconds(self):
        tracer = Tracer()
        tracer.span("frame", "engine", 1.2345678, 0.25, stream="s-0")
        event = tracer.events[0]
        assert event.timestamp_us == 1234568
        assert event.duration_us == 250000
        assert event.phase == "X"
        assert event.clock == "virtual"
        assert event.args_dict() == {"stream": "s-0"}

    def test_instant_has_zero_duration(self):
        tracer = Tracer()
        tracer.instant("switch", "session", 2.0, clock="virtual", track="t")
        event = tracer.events[0]
        assert event.phase == "i"
        assert event.duration_us == 0

    def test_unknown_clock_domain_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.span("x", "engine", 0.0, clock="lamport")
        with pytest.raises(ValueError):
            tracer.instant("x", "engine", 0.0, clock="lamport")

    def test_args_are_frozen_and_order_insensitive(self):
        a = SpanEvent("n", "c", "X", "virtual", 0, 0, "t",
                      args=(("a", 1), ("b", 2)))
        tracer = Tracer()
        tracer.span("n", "c", 0.0, 0.0, track="t", b=2, a=1)
        assert tracer.events[0] == a

    def test_ring_overflow_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.instant(f"e{index}", "engine", float(index))
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [event.name for event in tracer.events] == ["e2", "e3", "e4"]

    def test_wall_span_measures_nonnegative_duration(self):
        tracer = Tracer()
        with tracer.wall_span("work", "kernel", track="kernels", n=3):
            pass
        event = tracer.events[0]
        assert event.clock == "wall"
        assert event.duration_us >= 0
        assert event.args_dict() == {"n": 3}

    def test_wall_span_records_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.wall_span("work", "kernel"):
                raise RuntimeError("boom")
        assert len(tracer) == 1

    def test_by_category_and_by_clock_filter(self):
        tracer = Tracer()
        tracer.instant("a", "session", 0.0)
        tracer.instant("b", "engine", 0.0)
        tracer.instant("c", "engine", 0.1, clock="wall")
        assert [event.name for event in tracer.by_category("engine")] == ["b", "c"]
        assert [event.name for event in tracer.by_clock("wall")] == ["c"]

    def test_clear_resets_buffer_and_dropped(self):
        tracer = Tracer(capacity=1)
        tracer.instant("a", "x", 0.0)
        tracer.instant("b", "x", 0.0)
        assert tracer.dropped == 1
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_chrome_export_separates_clock_domains(self, tmp_path):
        tracer = Tracer()
        tracer.span("deterministic", "engine", 0.0, 1.0, clock="virtual")
        tracer.span("telemetry", "maps", 0.0, 1.0, clock="wall", track="maps")
        path = tracer.export_chrome(tmp_path / "nested" / "trace.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        pids = {entry["pid"] for entry in events if entry["ph"] == "X"}
        assert pids == {1, 2}
        meta_names = {entry["args"]["name"] for entry in events
                      if entry["ph"] == "M" and entry["name"] == "process_name"}
        assert meta_names == {"virtual clock", "wall clock"}
        assert doc["otherData"]["dropped_events"] == 0

    def test_chrome_export_spans_and_instants_shape(self):
        tracer = Tracer()
        tracer.span("s", "engine", 0.5, 0.25)
        tracer.instant("i", "engine", 0.75)
        entries = [entry for entry in tracer.to_chrome()["traceEvents"]
                   if entry["ph"] in ("X", "i")]
        span, instant = entries
        assert span["dur"] == 250000 and span["ts"] == 500000
        assert instant["s"] == "t" and "dur" not in instant


class TestEnvKnobs:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert not tracing_enabled()
        assert tracer_from_env() is None

    @pytest.mark.parametrize("value", ["0", "false", "no", ""])
    def test_falsy_values_stay_disabled(self, monkeypatch, value):
        monkeypatch.setenv(TRACE_ENV, value)
        assert not tracing_enabled()

    def test_enabled_builds_tracer_with_env_capacity(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV, "1")
        monkeypatch.setenv(TRACE_CAPACITY_ENV, "128")
        tracer = tracer_from_env()
        assert tracer is not None and tracer.capacity == 128

    def test_malformed_capacity_falls_back(self, monkeypatch):
        monkeypatch.setenv(TRACE_CAPACITY_ENV, "not-a-number")
        assert trace_capacity() == DEFAULT_TRACE_CAPACITY
        monkeypatch.setenv(TRACE_CAPACITY_ENV, "-5")
        assert trace_capacity() == 1

    def test_quantize_rounds_half_away_sensibly(self):
        assert quantize_us(0.0000015) == 2
        assert quantize_us(1.0) == 1000000


# ---------------------------------------------------------------- metrics


class TestCounter:
    def test_inc_and_value_with_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", ("mode",))
        counter.inc(mode="vio")
        counter.inc(2.0, mode="vio")
        counter.inc(mode="slam")
        assert counter.value(mode="vio") == 3.0
        assert counter.value(mode="slam") == 1.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total", "help")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_wrong_label_set_rejected(self):
        counter = MetricsRegistry().counter("c_total", "help", ("mode",))
        with pytest.raises(ValueError):
            counter.inc(moed="vio")


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set(4.0)
        gauge.set(2.5)
        assert gauge.value() == 2.5


class TestHistogram:
    def test_snapshot_buckets_sum_count(self):
        histogram = MetricsRegistry().histogram(
            "h_ms", "help", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        snap = histogram.child_snapshot()
        assert snap["buckets"] == {"1": 1, "10": 2, "+Inf": 3}
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(55.5)

    def test_buckets_must_be_strictly_increasing(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", "help", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h2", "help", buckets=())


class TestRegistry:
    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help", ("mode",))
        second = registry.counter("c_total", "help", ("mode",))
        assert first is second

    def test_conflicting_reregistration_raises(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("mode",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "different help", ("mode",))
        with pytest.raises(ValueError):
            registry.gauge("c_total", "help", ("mode",))

    def test_collector_runs_at_render_time(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live", "help")
        state = {"value": 7.0}
        registry.register_collector(lambda reg: gauge.set(state["value"]))
        assert "live 7" in registry.render_prometheus()
        state["value"] = 9.0
        assert "live 9" in registry.render_prometheus()

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "help")
        registry.gauge("a", "help")
        assert "a" in registry and "missing" not in registry
        assert registry.names() == ["a", "b_total"]

    def test_as_dict_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("mode",)).inc(mode="vio")
        registry.histogram("h_ms", "help").observe(3.0)
        json.dumps(registry.as_dict())


# -------------------------------------------------- prometheus round trip


class TestPrometheusRoundTrip:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "eudoxus_demo_total", "Counts with labels.",
            ("mode", "outcome")).inc(3, mode="vio", outcome="ok")
        registry.gauge("eudoxus_demo_gauge", "A gauge.").set(1.5)
        hist = registry.histogram("eudoxus_demo_ms", "A histogram.",
                                  buckets=(1.0, 5.0))
        for value in (0.2, 2.0, 9.0):
            hist.observe(value)
        return registry

    def test_round_trip_preserves_samples(self):
        registry = self._registry()
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["eudoxus_demo_total"]["type"] == "counter"
        assert parsed["eudoxus_demo_total"]["samples"][
            'eudoxus_demo_total{mode="vio",outcome="ok"}'] == 3.0
        assert parsed["eudoxus_demo_gauge"]["samples"][
            "eudoxus_demo_gauge"] == 1.5
        samples = parsed["eudoxus_demo_ms"]["samples"]
        assert samples['eudoxus_demo_ms_bucket{le="1"}'] == 1.0
        assert samples['eudoxus_demo_ms_bucket{le="5"}'] == 2.0
        assert samples['eudoxus_demo_ms_bucket{le="+Inf"}'] == 3.0
        assert samples["eudoxus_demo_ms_count"] == 3.0

    def test_rendering_is_deterministic(self):
        assert (self._registry().render_prometheus()
                == self._registry().render_prometheus())

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("reason",)).inc(
            reason='say "hi"\nbye\\')
        parsed = parse_prometheus(registry.render_prometheus())
        assert len(parsed["c_total"]["samples"]) == 1

    def test_escaped_label_value_key_is_exact(self):
        """The sample key carries the escaped form verbatim — quotes,
        newlines and backslashes all inside the one brace pair."""
        registry = MetricsRegistry()
        registry.counter("c_total", "help", ("reason",)).inc(
            reason='say "hi"\nbye\\')
        parsed = parse_prometheus(registry.render_prometheus())
        key = 'c_total{reason="say \\"hi\\"\\nbye\\\\"}'
        assert parsed["c_total"]["samples"][key] == 1.0

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("metric_without_value\n")

    def test_inf_bucket_parses(self):
        parsed = parse_prometheus(
            "# TYPE h histogram\n" 'h_bucket{le="+Inf"} 4\n')
        assert parsed["h"]["samples"]['h_bucket{le="+Inf"}'] == 4.0

    def test_empty_exposition_parses_to_no_families(self):
        assert parse_prometheus("") == {}
        assert parse_prometheus("\n\n") == {}

    def test_family_with_no_samples_round_trips_empty(self):
        """A declared-but-never-incremented labeled family renders only its
        HELP/TYPE header; the parser must keep it as an empty family
        rather than dropping it or inventing a sample."""
        registry = MetricsRegistry()
        registry.counter("c_idle_total", "Never incremented.", ("mode",))
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["c_idle_total"]["type"] == "counter"
        assert parsed["c_idle_total"]["samples"] == {}


# -------------------------------------------------------------- hypothesis


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e4,
                          allow_nan=False), max_size=64))
def test_histogram_bucket_counts_are_cumulative_monotone(values):
    histogram = MetricsRegistry().histogram("h_ms", "help")
    for value in values:
        histogram.observe(value)
    snap = histogram.child_snapshot()
    counts = [snap["buckets"][key] for key in
              [k for k in snap["buckets"] if k != "+Inf"] + ["+Inf"]]
    assert all(b >= a for a, b in zip(counts, counts[1:]))
    assert counts[-1] == snap["count"] == len(values)
    assert snap["sum"] == pytest.approx(math.fsum(values))


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(
    st.sampled_from(["vio", "slam", "registration", "idle"]),
    st.integers(min_value=0, max_value=20), min_size=1))
def test_counter_label_children_are_isolated(per_mode):
    counter = MetricsRegistry().counter("c_total", "help", ("mode",))
    for mode, count in per_mode.items():
        for _ in range(count):
            counter.inc(mode=mode)
    for mode, count in per_mode.items():
        assert counter.value(mode=mode) == count


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(
    st.sampled_from(["a", "b"]),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
    max_size=40))
def test_histogram_label_children_are_isolated(observations):
    histogram = MetricsRegistry().histogram("h_ms", "help", ("track",))
    expected = {"a": 0, "b": 0}
    for track, value in observations:
        histogram.observe(value, track=track)
        expected[track] += 1
    for track, count in expected.items():
        assert histogram.child_snapshot(track=track)["count"] == count
