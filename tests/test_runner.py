"""Tests for the parallel experiment engine and its persistent run store."""

import os
import threading
import time

import numpy as np
import pytest

from repro.core.modes import BackendMode
from repro.experiments import runner as runner_module
from repro.experiments.runner import (
    ExperimentCell,
    ExperimentGrid,
    ExperimentRunner,
    RunStore,
    WorkerPool,
    code_fingerprint,
    execute_cell,
    fan_out,
)
from repro.sensors.scenarios import ScenarioKind


def _double_payload(payload):
    """Module-level so it can cross the process boundary in pool tests."""
    return {"doubled": payload["x"] * 2}


def _cell(seed: int = 0, **overrides) -> ExperimentCell:
    defaults = dict(
        scenario=ScenarioKind.OUTDOOR_UNKNOWN,
        mode=BackendMode.VIO,
        platform_kind="drone",
        duration=2.0,
        camera_rate_hz=10.0,
        landmark_count=100,
        seed=seed,
    )
    defaults.update(overrides)
    return ExperimentCell(**defaults)


class TestGridExpansion:
    def test_full_grid_size_and_determinism(self):
        grid = ExperimentGrid(
            scenarios=(ScenarioKind.INDOOR_KNOWN, ScenarioKind.OUTDOOR_KNOWN),
            modes=(BackendMode.VIO, BackendMode.SLAM),
            platform_kinds=("car", "drone"),
            frame_rates=(5.0, 10.0),
            seeds=(0, 1),
        )
        cells = grid.expand()
        assert len(cells) == 2 * 2 * 2 * 2 * 2
        assert cells == grid.expand()  # deterministic order

    def test_registration_dropped_without_map(self):
        grid = ExperimentGrid(
            scenarios=tuple(ScenarioKind),
            modes=(BackendMode.REGISTRATION, BackendMode.VIO),
        )
        cells = grid.expand()
        registration_scenarios = {
            c.scenario for c in cells if c.mode is BackendMode.REGISTRATION
        }
        assert registration_scenarios == {ScenarioKind.INDOOR_KNOWN, ScenarioKind.OUTDOOR_KNOWN}
        # VIO applies everywhere.
        assert {c.scenario for c in cells if c.mode is BackendMode.VIO} == set(ScenarioKind)

    def test_skip_inapplicable_can_be_disabled(self):
        grid = ExperimentGrid(
            scenarios=(ScenarioKind.INDOOR_UNKNOWN,),
            modes=(BackendMode.REGISTRATION,),
            skip_inapplicable=False,
        )
        assert len(grid.expand()) == 1

    def test_auto_mode_cells(self):
        grid = ExperimentGrid(scenarios=(ScenarioKind.OUTDOOR_UNKNOWN,), modes=(None,))
        cells = grid.expand()
        assert len(cells) == 1 and cells[0].mode is None

    def test_cell_payload_roundtrip(self):
        cell = _cell(seed=3, mode=None)
        assert ExperimentCell.from_payload(cell.payload()) == cell


class TestSerialParallelEquivalence:
    def test_results_identical(self):
        cells = [_cell(seed=0), _cell(seed=1)]
        serial = ExperimentRunner(store=None, max_workers=1).run_cells(cells)
        parallel_runner = ExperimentRunner(store=None, max_workers=2)
        parallel = parallel_runner.run_cells(cells)
        for cell in cells:
            a, b = serial[cell], parallel[cell]
            assert abs(a.rmse_error() - b.rmse_error()) < 1e-9
            for ea, eb in zip(a.estimates, b.estimates):
                assert np.array_equal(ea.pose.translation, eb.pose.translation)
                assert np.array_equal(ea.pose.rotation, eb.pose.rotation)
                assert ea.mode == eb.mode

    def test_memo_returns_same_object(self):
        runner = ExperimentRunner(store=None, max_workers=1)
        cell = _cell()
        assert runner.run_cell(cell) is runner.run_cell(cell)

    def test_memo_invalidated_on_config_change(self, monkeypatch):
        """A config change mid-session must bypass the in-process memo too."""
        runner = ExperimentRunner(store=None, max_workers=1)
        cell = _cell()
        first = runner.run_cell(cell)

        original_factory = runner_module.localizer_config_for

        def modified_config(platform_kind):
            config = original_factory(platform_kind)
            config.backend.msckf.window_size = 7
            return config

        monkeypatch.setattr(runner_module, "localizer_config_for", modified_config)
        second = runner.run_cell(cell)
        assert second is not first
        assert runner.stats.computed == 2

    def test_duplicate_cells_computed_once(self):
        runner = ExperimentRunner(store=None, max_workers=1)
        cell = _cell()
        results = runner.run_cells([cell, cell])
        assert len(results) == 1
        assert runner.stats.computed == 1


class TestRunStore:
    def test_disk_hit_skips_recomputation(self, tmp_path):
        store = RunStore(tmp_path)
        cell = _cell()
        first_runner = ExperimentRunner(store=store, max_workers=1)
        first = first_runner.run_cell(cell)
        assert first_runner.stats.computed == 1
        assert len(store) == 1

        # A fresh runner (fresh process in real life) resolves from disk.
        second_runner = ExperimentRunner(store=RunStore(tmp_path), max_workers=1)
        second = second_runner.run_cell(cell)
        assert second_runner.stats.computed == 0
        assert second_runner.stats.disk_hits == 1
        assert abs(first.rmse_error() - second.rmse_error()) < 1e-9

    def test_miss_on_different_cell(self, tmp_path):
        store = RunStore(tmp_path)
        runner = ExperimentRunner(store=store, max_workers=1)
        runner.run_cell(_cell(seed=0))
        fresh = ExperimentRunner(store=RunStore(tmp_path), max_workers=1)
        fresh.run_cell(_cell(seed=1))
        assert fresh.stats.computed == 1
        assert len(store) == 2

    def test_key_invalidated_on_config_change(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        cell = _cell()
        original_key = store.key_for(cell)
        ExperimentRunner(store=store, max_workers=1).run_cell(cell)

        original_factory = runner_module.localizer_config_for

        def modified_config(platform_kind):
            config = original_factory(platform_kind)
            config.backend.msckf.window_size = 7  # a config default changed
            return config

        monkeypatch.setattr(runner_module, "localizer_config_for", modified_config)
        assert store.key_for(cell) != original_key
        assert store.load(cell) is None  # the old entry no longer matches

        fresh = ExperimentRunner(store=store, max_workers=1)
        fresh.run_cell(cell)
        assert fresh.stats.computed == 1

    def test_corrupted_entry_recovered(self, tmp_path):
        store = RunStore(tmp_path)
        cell = _cell()
        runner = ExperimentRunner(store=store, max_workers=1)
        expected = runner.run_cell(cell)

        store.path_for(cell).write_bytes(b"not a pickle at all")
        fresh_store = RunStore(tmp_path)
        fresh = ExperimentRunner(store=fresh_store, max_workers=1)
        result = fresh.run_cell(cell)
        assert fresh_store.dropped == 1
        assert fresh.stats.computed == 1
        assert abs(result.rmse_error() - expected.rmse_error()) < 1e-9
        # The recomputed entry was re-persisted and is loadable again.
        assert RunStore(tmp_path).load(cell) is not None

    def test_wrong_payload_type_treated_as_corruption(self, tmp_path):
        import pickle

        store = RunStore(tmp_path)
        cell = _cell()
        store.root.mkdir(parents=True, exist_ok=True)
        store.path_for(cell).write_bytes(pickle.dumps({"not": "a result"}))
        assert store.load(cell) is None
        assert store.dropped == 1

    def test_unwritable_store_degrades_to_computation(self):
        """A bad cache root (e.g. misconfigured EUDOXUS_RUN_CACHE) must not
        crash the run — the result is computed and simply not persisted."""
        store = RunStore("/proc/nonexistent-run-store")
        runner = ExperimentRunner(store=store, max_workers=1)
        result = runner.run_cell(_cell())
        assert runner.stats.computed == 1
        assert result.rmse_error() > 0.0
        assert len(store) == 0

    def test_clear_removes_entries(self, tmp_path):
        store = RunStore(tmp_path)
        ExperimentRunner(store=store, max_workers=1).run_cell(_cell())
        assert len(store) == 1
        store.clear()
        assert len(store) == 0

    def test_stale_tmp_swept_but_live_writers_spared(self, tmp_path):
        stale = tmp_path / "abc.tmp.123"
        stale.write_bytes(b"orphan from a crashed writer")
        two_hours_ago = time.time() - 7200
        os.utime(stale, (two_hours_ago, two_hours_ago))
        in_flight = tmp_path / "def.tmp.456"
        in_flight.write_bytes(b"another process mid-save")

        store = RunStore(tmp_path)
        assert not stale.exists()     # old orphan removed on init
        assert in_flight.exists()     # recent (possibly live) write untouched
        store.clear()
        assert not in_flight.exists()  # clear removes temp files regardless of age

    def test_code_fingerprint_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestExecuteCell:
    def test_mode_override_respected(self):
        result = execute_cell(_cell(mode=BackendMode.SLAM, scenario=ScenarioKind.INDOOR_UNKNOWN))
        assert all(estimate.mode == "slam" for estimate in result.estimates)

    def test_auto_mode_follows_scenario(self):
        result = execute_cell(_cell(mode=None, scenario=ScenarioKind.OUTDOOR_UNKNOWN))
        assert all(estimate.mode == "vio" for estimate in result.estimates)


class TestStoreEviction:
    """The run store is a bounded LRU: size and age limits, hits refresh."""

    def _fill(self, store, keys, size=64):
        for i, key in enumerate(keys):
            store.save_key(key, b"x" * size)
            # Space the mtimes out so LRU order is unambiguous.
            entry = store.path_for(key)
            stamp = time.time() - 1000.0 + 10.0 * i
            os.utime(entry, (stamp, stamp))

    def test_size_bound_evicts_least_recently_used(self, tmp_path):
        store = RunStore(tmp_path, max_bytes=-1, max_age_s=-1)
        self._fill(store, ["a", "b", "c", "d"])
        sizes = [store.path_for(k).stat().st_size for k in ("a", "b", "c", "d")]
        removed = store.evict(max_bytes=sum(sizes[2:]) + 1)
        assert removed == 2
        assert not store.path_for("a").exists() and not store.path_for("b").exists()
        assert store.path_for("c").exists() and store.path_for("d").exists()

    def test_age_bound_evicts_expired_entries(self, tmp_path):
        store = RunStore(tmp_path, max_bytes=-1, max_age_s=-1)
        self._fill(store, ["old", "new"])
        old = store.path_for("old")
        stamp = time.time() - 7200.0
        os.utime(old, (stamp, stamp))
        removed = store.evict(max_age_s=3600.0)
        assert removed == 1
        assert not old.exists() and store.path_for("new").exists()

    def test_hit_refreshes_recency(self, tmp_path):
        store = RunStore(tmp_path, max_bytes=-1, max_age_s=-1)
        self._fill(store, ["cold", "hot"])
        # Make "hot" the older entry, then touch it via a load.
        stamp = time.time() - 5000.0
        os.utime(store.path_for("hot"), (stamp, stamp))
        assert store.load_key("hot") == b"x" * 64
        removed = store.evict(max_bytes=store.path_for("cold").stat().st_size + 1)
        assert removed == 1
        assert store.path_for("hot").exists() and not store.path_for("cold").exists()

    def test_eviction_applied_on_construction(self, tmp_path):
        store = RunStore(tmp_path, max_bytes=-1, max_age_s=-1)
        self._fill(store, ["stale"])
        stamp = time.time() - 10 * 86400.0
        os.utime(store.path_for("stale"), (stamp, stamp))
        rebuilt = RunStore(tmp_path, max_age_s=5 * 86400.0, max_bytes=-1)
        assert rebuilt.evicted == 1
        assert len(rebuilt) == 0

    def test_bounds_disabled_with_nonpositive_values(self, tmp_path):
        store = RunStore(tmp_path, max_bytes=-1, max_age_s=-1)
        assert store.max_bytes is None and store.max_age_s is None
        self._fill(store, ["keep"])
        assert store.evict() == 0
        assert store.path_for("keep").exists()

    def test_env_bounds_parsed(self, tmp_path, monkeypatch):
        monkeypatch.setenv(runner_module.STORE_MAX_MB_ENV, "2")
        monkeypatch.setenv(runner_module.STORE_MAX_AGE_DAYS_ENV, "1.5")
        store = RunStore(tmp_path)
        assert store.max_bytes == 2 * 1024 * 1024
        assert store.max_age_s == 1.5 * 86400.0
        monkeypatch.setenv(runner_module.STORE_MAX_MB_ENV, "not-a-number")
        monkeypatch.setenv(runner_module.STORE_MAX_AGE_DAYS_ENV, "0")
        fallback = RunStore(tmp_path)
        assert fallback.max_bytes == runner_module.DEFAULT_STORE_MAX_MB * 1024 * 1024
        assert fallback.max_age_s is None


class TestStoreEdgeCases:
    """Races and degenerate configurations the store must absorb quietly."""

    def test_eviction_under_concurrent_writers(self, tmp_path):
        """Writers and an evictor hammering one root never corrupt the store.

        Saves are atomic (temp + rename) and eviction tolerates entries
        appearing or vanishing between its directory scan and its unlinks,
        so interleaving them arbitrarily must neither raise nor leave a
        half-written entry behind.
        """
        store = RunStore(tmp_path, max_bytes=-1, max_age_s=-1)
        errors = []
        stop = threading.Event()

        def writer(worker):
            try:
                i = 0
                while not stop.is_set():
                    store.save_key(f"w{worker}-{i % 25}", b"x" * 256)
                    i += 1
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        def evictor():
            try:
                while not stop.is_set():
                    store.evict(max_bytes=4 * 256)
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(3)]
        threads.append(threading.Thread(target=evictor))
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        # Every surviving entry is whole: loadable or a clean miss, never a
        # crash; and the store still accepts new work.
        for path in list(store.root.glob("*.pkl")):
            store.load_key(path.stem)
        assert store.save_key("after-the-storm", b"y" * 16) is not None
        assert store.load_key("after-the-storm") == b"y" * 16

    def test_corrupted_entry_recovery_mid_eviction(self, tmp_path):
        """A concurrently-evicted or corrupted entry degrades to a miss."""
        store = RunStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.save_key("corrupt", b"payload")
        store.save_key("vanishing", b"payload")
        # Corruption lands mid-life (another writer died partway through).
        store.path_for("corrupt").write_bytes(b"\x80\x04 truncated garbage")
        # Eviction ranks by mtime/size only — it must not choke on the
        # unreadable entry, and unlinking it is legitimate LRU work.
        assert store.evict(max_bytes=0.5) >= 1
        # A reader that raced the evictor sees clean misses either way.
        racing = RunStore(tmp_path, max_bytes=-1, max_age_s=-1)
        assert racing.load_key("corrupt") is None
        assert racing.load_key("vanishing") is None
        # And the keys are immediately writable again.
        store.save_key("corrupt", b"recomputed")
        assert store.load_key("corrupt") == b"recomputed"

    def test_eviction_tolerates_vanishing_files(self, tmp_path, monkeypatch):
        """An entry unlinked between the scan and the unlink is not an error."""
        store = RunStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.save_key("mine", b"x" * 64)
        store.save_key("theirs", b"x" * 64)
        original_unlink = runner_module.Path.unlink

        def racing_unlink(self, *args, **kwargs):
            # Another evictor got there first: the file is already gone.
            original_unlink(self, *args, **kwargs)
            raise FileNotFoundError(self)

        monkeypatch.setattr(runner_module.Path, "unlink", racing_unlink)
        removed = store.evict(max_bytes=1)
        monkeypatch.undo()
        assert removed == 0  # both unlinks "lost the race"...
        assert len(store) == 0  # ...but the files are gone regardless

    def test_zero_max_mb_env_disables_size_bound(self, tmp_path, monkeypatch):
        """EUDOXUS_RUN_CACHE_MAX_MB=0 means unbounded, not evict-everything."""
        monkeypatch.setenv(runner_module.STORE_MAX_MB_ENV, "0")
        monkeypatch.setenv(runner_module.STORE_MAX_AGE_DAYS_ENV, "0")
        store = RunStore(tmp_path)
        assert store.max_bytes is None and store.max_age_s is None
        for i in range(8):
            store.save_key(f"entry-{i}", b"x" * 1024)
        assert store.evict() == 0
        assert len(store) == 8
        rebuilt = RunStore(tmp_path)  # construction-time sweep is a no-op too
        assert rebuilt.evicted == 0
        assert len(rebuilt) == 8


class TestWorkerPool:
    """The resizable shared pool the serving autoscaler drives."""

    def test_resize_changes_width(self):
        pool = WorkerPool(2)
        assert pool.width == 2
        assert not pool.resize(2)  # same width: no churn
        assert pool.resizes == 0
        assert pool.resize(3)
        assert pool.width == 3 and pool.resizes == 1
        assert pool.resize(0) and pool.width == 1  # floored at one worker

    def test_resize_respawns_executor(self):
        with WorkerPool(2) as pool:
            first = pool.executor()
            assert pool.executor() is first  # reused between batches
            pool.resize(3)
            second = pool.executor()
            assert second is not first

    def test_fan_out_through_shared_pool(self):
        payloads = [{"x": i} for i in range(5)]
        spawned = []
        with WorkerPool(2) as pool:
            results = dict(fan_out(_double_payload, payloads, 1,
                                   on_pool=lambda: spawned.append(True),
                                   pool=pool))
            assert {i: r["doubled"] for i, r in results.items()} == \
                {i: 2 * i for i in range(5)}
            # The pool's width governs, not the max_workers argument.
            assert spawned
            # A second batch reuses the same executor.
            again = dict(fan_out(_double_payload, payloads, 1, pool=pool))
            assert len(again) == 5

    def test_width_one_pool_runs_in_process(self):
        payloads = [{"x": i} for i in range(3)]
        spawned = []
        with WorkerPool(1) as pool:
            results = dict(fan_out(_double_payload, payloads, 8,
                                   on_pool=lambda: spawned.append(True),
                                   pool=pool))
        assert not spawned
        assert results[2]["doubled"] == 4
