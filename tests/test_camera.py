"""Tests for the pinhole camera and stereo rig models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.camera import PinholeCamera, StereoRig, world_to_camera, camera_to_world
from repro.common.geometry import Pose, euler_to_rotation


@pytest.fixture
def camera():
    return PinholeCamera.from_fov(640, 480, 90.0)


@pytest.fixture
def rig(camera):
    return StereoRig(camera=camera, baseline=0.2)


class TestPinholeCamera:
    def test_from_fov_focal_length(self, camera):
        # 90 degree horizontal FOV: fx = width / 2.
        assert np.isclose(camera.fx, 320.0)
        assert np.isclose(camera.cx, 320.0)

    def test_projection_of_centre_point(self, camera):
        pixels, valid = camera.project(np.array([[0.0, 0.0, 5.0]]))
        assert valid[0]
        assert np.allclose(pixels[0], [camera.cx, camera.cy])

    def test_point_behind_camera_invalid(self, camera):
        _, valid = camera.project(np.array([[0.0, 0.0, -1.0]]))
        assert not valid[0]

    def test_point_outside_image_invalid(self, camera):
        _, valid = camera.project(np.array([[100.0, 0.0, 1.0]]))
        assert not valid[0]

    def test_back_project_roundtrip(self, camera):
        points = np.array([[1.0, -0.5, 4.0], [-0.3, 0.2, 2.0]])
        pixels, valid = camera.project(points)
        assert valid.all()
        recovered = camera.back_project(pixels, points[:, 2])
        assert np.allclose(recovered, points, atol=1e-9)

    def test_normalized_coordinates(self, camera):
        pixels = np.array([[camera.cx, camera.cy]])
        assert np.allclose(camera.normalized_coordinates(pixels), [[0.0, 0.0]])

    def test_projection_matrix_shape(self, camera):
        assert camera.projection_matrix.shape == (3, 4)
        assert np.allclose(camera.projection_matrix[:, :3], camera.intrinsic_matrix)

    def test_scaled(self, camera):
        half = camera.scaled(0.5)
        assert half.width == 320
        assert np.isclose(half.fx, camera.fx * 0.5)

    @given(st.floats(0.5, 40.0), st.floats(-0.4, 0.4), st.floats(-0.3, 0.3))
    @settings(max_examples=30, deadline=None)
    def test_projection_depth_invariance(self, depth, nx, ny):
        camera = PinholeCamera.from_fov(640, 480, 90.0)
        point = np.array([[nx * depth, ny * depth, depth]])
        pixels, valid = camera.project(point)
        if valid[0]:
            # Normalized coordinates recover the ray direction regardless of depth.
            normalized = camera.normalized_coordinates(pixels)[0]
            assert np.allclose(normalized, [nx, ny], atol=1e-6)


class TestStereoRig:
    def test_disparity_depth_roundtrip(self, rig):
        depths = np.array([1.0, 5.0, 20.0])
        disparity = rig.disparity(depths)
        assert np.allclose(rig.depth_from_disparity(disparity), depths)

    def test_disparity_decreases_with_depth(self, rig):
        assert rig.disparity(2.0) > rig.disparity(10.0)

    def test_triangulate_roundtrip(self, rig):
        points = np.array([[0.5, -0.2, 3.0], [-1.0, 0.4, 8.0]])
        left, right, valid = rig.project_stereo(points)
        assert valid.all()
        recovered = rig.triangulate(left, right)
        assert np.allclose(recovered, points, atol=1e-6)

    def test_project_stereo_validity_requires_both_views(self, rig):
        # A point far to the left may be visible in the left camera only.
        point = np.array([[-4.0, 0.0, 2.0]])
        _, _, valid = rig.project_stereo(point)
        assert not valid[0]


class TestWorldCameraTransforms:
    def test_roundtrip(self, rng):
        pose = Pose(euler_to_rotation(0.4, 0.1, -0.2), rng.normal(size=3))
        points = rng.normal(size=(6, 3)) * 5.0
        camera_points = world_to_camera(pose, points)
        recovered = camera_to_world(pose, camera_points)
        assert np.allclose(recovered, points, atol=1e-9)

    def test_origin_maps_to_negative_translation(self):
        pose = Pose(np.eye(3), np.array([1.0, 2.0, 3.0]))
        camera_points = world_to_camera(pose, np.zeros((1, 3)))
        assert np.allclose(camera_points[0], [-1.0, -2.0, -3.0])
