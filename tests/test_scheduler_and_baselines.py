"""Tests for the runtime scheduler, regression models and CPU baseline models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.mapping import SlamWorkload
from repro.backend.msckf import VioWorkload
from repro.backend.tracking import RegistrationWorkload
from repro.baselines.cpu import BackendCostModel, CpuLatencyModel, FrontendCostModel
from repro.baselines.platforms import (
    ADRENO_GPU,
    ARM_A57_MULTI,
    KABY_LAKE_MULTI,
    KABY_LAKE_SINGLE,
    TABLE_III_PLATFORMS,
)
from repro.frontend.frontend import FrontendWorkload
from repro.hardware.backend_accel import BackendAcceleratorModel
from repro.scheduler.regression import PolynomialRegression, r_squared
from repro.scheduler.scheduler import (
    KERNEL_SIZE_ATTRIBUTE,
    OracleScheduler,
    RuntimeScheduler,
    kernel_size,
    train_test_split,
)


class TestRegression:
    def test_linear_fit_exact(self):
        x = np.arange(10.0)
        y = 2.0 * x + 1.0
        model = PolynomialRegression(degree=1).fit(x, y)
        assert np.allclose(model.coefficients, [1.0, 2.0], atol=1e-6)
        assert model.score(x, y) == pytest.approx(1.0)

    def test_quadratic_fit(self):
        x = np.linspace(0, 10, 20)
        y = 0.5 * x**2 - x + 3.0
        model = PolynomialRegression(degree=2).fit(x, y)
        assert model.predict_scalar(4.0) == pytest.approx(0.5 * 16 - 4 + 3, rel=1e-6)

    def test_fit_with_noise_has_high_r2(self):
        rng = np.random.default_rng(0)
        x = np.linspace(1, 100, 50)
        y = 3.0 * x + rng.normal(0, 1.0, size=50)
        model = PolynomialRegression(degree=1).fit(x, y)
        assert model.score(x, y) > 0.95

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PolynomialRegression().predict([1.0])

    def test_insufficient_samples(self):
        with pytest.raises(ValueError):
            PolynomialRegression(degree=3).fit([1.0, 2.0], [1.0, 2.0])

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            PolynomialRegression(degree=0)

    def test_r_squared_edge_cases(self):
        assert r_squared([], []) == 0.0
        assert r_squared([1.0, 1.0], [1.0, 1.0]) == 1.0
        assert r_squared([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == pytest.approx(1.0)

    @given(st.floats(min_value=-5, max_value=5), st.floats(min_value=-5, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_linear_fit_recovers_coefficients(self, slope, intercept):
        x = np.linspace(0, 10, 30)
        y = slope * x + intercept
        model = PolynomialRegression(degree=1).fit(x, y)
        assert model.predict_scalar(5.0) == pytest.approx(slope * 5.0 + intercept, abs=1e-6)


class TestScheduler:
    def _vio_samples(self, count=40, seed=0):
        rng = np.random.default_rng(seed)
        cost = BackendCostModel()
        samples = []
        for _ in range(count):
            dim = int(rng.integers(20, 190))
            workload = VioWorkload(kalman_gain_dim=dim, state_dim=195, features_used=dim // 3,
                                   jacobian_rows=dim, qr_rows=dim, imu_samples=10)
            samples.append((workload, cost.vio_ms(workload)["kalman_gain"]))
        return samples

    def test_kernel_size_attributes(self):
        assert kernel_size("registration", RegistrationWorkload(map_points=123)) == 123
        assert kernel_size("vio", VioWorkload(kalman_gain_dim=44)) == 44
        assert kernel_size("slam", SlamWorkload(feature_points=77)) == 77
        assert set(KERNEL_SIZE_ATTRIBUTE) == {"registration", "vio", "slam"}

    def test_training_and_prediction(self):
        scheduler = RuntimeScheduler(BackendAcceleratorModel())
        samples = self._vio_samples()
        r2 = scheduler.train_from_frames("vio", [s[0] for s in samples], [s[1] for s in samples])
        assert r2 > 0.95
        assert scheduler.is_trained("vio")

    def test_offload_decision_prefers_cheaper_side(self):
        accel = BackendAcceleratorModel(offload_setup_ms=5.0)
        scheduler = RuntimeScheduler(accel)
        samples = self._vio_samples()
        scheduler.train_from_frames("vio", [s[0] for s in samples], [s[1] for s in samples])
        cheap = VioWorkload(kalman_gain_dim=10, state_dim=195)
        expensive = VioWorkload(kalman_gain_dim=180, state_dim=195)
        cost = BackendCostModel()
        cheap_decision = scheduler.decide("vio", cheap, cost.vio_ms(cheap)["kalman_gain"])
        expensive_decision = scheduler.decide("vio", expensive, cost.vio_ms(expensive)["kalman_gain"])
        assert expensive_decision.offload
        assert not cheap_decision.offload

    def test_untrained_mode_offloads_conservatively(self):
        scheduler = RuntimeScheduler(BackendAcceleratorModel())
        decision = scheduler.decide("slam", SlamWorkload(feature_points=100, marginalized_dim=150,
                                                         keyframes=8), actual_cpu_ms=50.0)
        assert decision.offload

    def test_evaluation_close_to_oracle(self):
        scheduler = RuntimeScheduler(BackendAcceleratorModel())
        samples = self._vio_samples(count=60)
        train, test = train_test_split(samples, train_fraction=0.25, seed=1)
        scheduler.train_from_frames("vio", [s[0] for s in train], [s[1] for s in train])
        evaluation = scheduler.evaluate("vio", [s[0] for s in test], [s[1] for s in test])
        assert evaluation.r2 > 0.9
        assert evaluation.gap_to_oracle_percent < 5.0
        assert evaluation.mean_latency_ms <= evaluation.never_offload_mean_latency_ms + 1e-9

    def test_oracle_scheduler(self):
        oracle = OracleScheduler(BackendAcceleratorModel())
        workload = RegistrationWorkload(map_points=4000)
        decision = oracle.decide("registration", workload, actual_cpu_ms=100.0)
        assert decision.offload
        decision = oracle.decide("registration", workload, actual_cpu_ms=0.0001)
        assert not decision.offload

    def test_train_test_split_deterministic(self):
        items = list(range(20))
        a = train_test_split(items, 0.25, seed=3)
        b = train_test_split(items, 0.25, seed=3)
        assert a == b
        assert len(a[0]) == 5
        assert len(a[0]) + len(a[1]) == 20


class TestFrontendCostModel:
    def _workload(self, width=1280, height=720, features=200):
        return FrontendWorkload(
            image_width=width, image_height=height, keypoints_left=features,
            keypoints_right=features, descriptors_computed=2 * features,
            stereo_candidates=features * features, stereo_matches=150,
            tracked_points=160, temporal_matches=140,
        )

    def test_car_frontend_magnitude(self):
        # The paper's baseline frontend latency is ~92 ms at 1280x720.
        total = FrontendCostModel().total_ms(self._workload())
        assert 60.0 < total < 130.0

    def test_scales_with_resolution(self):
        model = FrontendCostModel()
        assert model.total_ms(self._workload()) > model.total_ms(self._workload(640, 480, 120))

    def test_kernel_names(self):
        kernels = FrontendCostModel().kernel_ms(self._workload())
        assert set(kernels) == {"feature_extraction", "stereo_matching", "temporal_matching"}
        assert all(v >= 0 for v in kernels.values())


class TestBackendCostModel:
    def test_projection_linear(self):
        model = BackendCostModel()
        a = model.registration_ms(RegistrationWorkload(map_points=100))["projection"]
        b = model.registration_ms(RegistrationWorkload(map_points=200))["projection"]
        assert b == pytest.approx(2 * a)

    def test_kalman_quadratic(self):
        model = BackendCostModel()
        a = model.vio_ms(VioWorkload(kalman_gain_dim=100, state_dim=195))["kalman_gain"]
        b = model.vio_ms(VioWorkload(kalman_gain_dim=200, state_dim=195))["kalman_gain"]
        assert b > 2 * a  # super-linear growth of the quadratic term

    def test_marginalization_zero_without_marginalized_state(self):
        model = BackendCostModel()
        kernels = model.slam_ms(SlamWorkload(marginalized_dim=0, feature_points=100))
        assert kernels["marginalization"] == 0.0

    def test_mode_dispatch(self):
        model = BackendCostModel()
        with pytest.raises(ValueError):
            model.kernel_ms("bogus", None)


class TestCpuLatencyModel:
    def test_platform_factor_applied(self):
        workload = FrontendWorkload(image_width=640, image_height=480, keypoints_left=100,
                                    keypoints_right=100, descriptors_computed=200,
                                    stereo_matches=80, tracked_points=80)
        backend_workload = RegistrationWorkload(map_points=300, matches=80, pose_iterations=5)
        fast = CpuLatencyModel(platform=KABY_LAKE_MULTI).frame_record(0, "registration", workload, backend_workload)
        slow = CpuLatencyModel(platform=ARM_A57_MULTI).frame_record(0, "registration", workload, backend_workload)
        assert slow.total > fast.total

    def test_fixed_overhead_recorded(self):
        workload = FrontendWorkload(image_width=640, image_height=480)
        record = CpuLatencyModel(platform=ADRENO_GPU).frame_record(
            0, "registration", workload, RegistrationWorkload(map_points=10))
        assert record.backend.get("platform_overhead", 0.0) == pytest.approx(40.0)

    def test_energy_per_frame(self):
        workload = FrontendWorkload(image_width=640, image_height=480)
        model = CpuLatencyModel(platform=KABY_LAKE_MULTI)
        record = model.frame_record(0, "registration", workload, RegistrationWorkload(map_points=100))
        assert model.energy_per_frame_joules(record) == pytest.approx(
            KABY_LAKE_MULTI.power_watts * record.total / 1000.0)

    def test_table_iii_ordering(self):
        # The single-core variants must be slower than the multi-core baseline.
        assert KABY_LAKE_SINGLE.speed_factor > KABY_LAKE_MULTI.speed_factor
        assert set(TABLE_III_PLATFORMS) >= {"single_core", "multi_core", "adreno_gpu"}
