"""Tests for characterization statistics and the end-to-end accelerator model."""

import numpy as np
import pytest

from repro.characterization.report import format_table, percent
from repro.characterization.stats import (
    backend_kernel_breakdown,
    frontend_backend_shares,
    kernel_series,
    kernel_variation,
    latency_series,
    worst_to_best_ratio,
)
from repro.common.config import LocalizerConfig
from repro.common.timing import LatencyRecord
from repro.core.framework import EudoxusLocalizer
from repro.core.modes import BackendMode
from repro.hardware.accelerator import EudoxusAccelerator
from repro.hardware.platform import EDX_CAR, EDX_DRONE


def make_records(count=20, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    for i in range(count):
        record = LatencyRecord(frame_index=i, mode="vio")
        record.add_frontend("feature_extraction", 50.0 + rng.uniform(0, 10))
        record.add_frontend("stereo_matching", 30.0 + rng.uniform(0, 5))
        record.add_backend("kalman_gain", rng.uniform(1, 25))
        record.add_backend("jacobian", rng.uniform(1, 5))
        records.append(record)
    return records


class TestCharacterizationStats:
    def test_shares_sum_to_hundred(self):
        shares = frontend_backend_shares(make_records())
        total = shares["frontend"]["share_percent"] + shares["backend"]["share_percent"]
        assert total == pytest.approx(100.0)
        assert shares["frontend"]["share_percent"] > shares["backend"]["share_percent"]

    def test_backend_rsd_higher_for_variable_kernel(self):
        shares = frontend_backend_shares(make_records())
        assert shares["backend"]["rsd_percent"] > shares["frontend"]["rsd_percent"]

    def test_breakdown_percentages(self):
        breakdown = backend_kernel_breakdown(make_records())
        assert set(breakdown) == {"kalman_gain", "jacobian"}
        assert sum(breakdown.values()) == pytest.approx(100.0)

    def test_breakdown_empty(self):
        assert backend_kernel_breakdown([]) == {}

    def test_latency_series_sorted(self):
        frontend, backend = latency_series(make_records())
        totals = frontend + backend
        assert np.all(np.diff(totals) >= -1e-9)

    def test_kernel_series_shapes(self):
        series = kernel_series(make_records(), ["kalman_gain", "missing"])
        assert series["kalman_gain"].shape == (20,)
        assert np.allclose(series["missing"], 0.0)

    def test_kernel_variation(self):
        variation = kernel_variation(make_records())
        assert variation["kalman_gain"]["rsd_percent"] > variation["feature_extraction"]["rsd_percent"]

    def test_worst_to_best(self):
        ratio = worst_to_best_ratio(make_records())
        assert ratio > 1.0

    def test_report_formatting(self):
        table = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="demo")
        assert "demo" in table
        assert "2.50" in table
        assert percent(12.345) == "12.3%"


@pytest.fixture(scope="module")
def short_run(outdoor_sequence):
    config = LocalizerConfig()
    config.frontend.max_features = 100
    localizer = EudoxusLocalizer(config, mode_override=BackendMode.VIO)
    return localizer.process_sequence(outdoor_sequence)


class TestEudoxusAccelerator:
    def test_accelerate_produces_speedup(self, short_run):
        accelerator = EudoxusAccelerator(EDX_CAR)
        summary = accelerator.accelerate(short_run)
        assert len(summary.frames) == len(short_run)
        assert summary.speedup() > 1.3
        assert summary.accelerated_stats().mean < summary.baseline_stats().mean

    def test_variation_reduced(self, short_run):
        summary = EudoxusAccelerator(EDX_CAR).accelerate(short_run)
        assert summary.sd_reduction_percent() > 0.0

    def test_energy_reduced(self, short_run):
        summary = EudoxusAccelerator(EDX_CAR).accelerate(short_run)
        assert summary.mean_accelerated_energy_j() < summary.mean_baseline_energy_j()
        assert 20.0 < summary.energy_reduction_percent() < 95.0

    def test_pipelined_fps_higher(self, short_run):
        summary = EudoxusAccelerator(EDX_CAR).accelerate(short_run)
        assert summary.accelerated_fps(pipelined=True) >= summary.accelerated_fps(pipelined=False)
        assert summary.accelerated_fps(pipelined=False) > summary.baseline_fps()

    def test_scheduler_training_fits_vio_model(self, short_run):
        accelerator = EudoxusAccelerator(EDX_CAR)
        r2 = accelerator.train_scheduler(short_run)
        # On very short low-texture runs the kernel sizes barely vary, so we
        # only require that a model was fit and its score is finite; the
        # benchmark-scale runs reproduce the paper's 0.8-0.98 R^2 values.
        assert "vio" in r2
        assert np.isfinite(r2["vio"])
        assert accelerator.scheduler.is_trained("vio")

    def test_policies_ordering(self, short_run):
        accelerator = EudoxusAccelerator(EDX_CAR)
        accelerator.train_scheduler(short_run)
        oracle = accelerator.accelerate(short_run, scheduler="oracle", train=False)
        runtime = accelerator.accelerate(short_run, scheduler="runtime", train=False)
        never = accelerator.accelerate(short_run, scheduler="never", train=False)
        assert oracle.accelerated_stats().mean <= runtime.accelerated_stats().mean + 1e-6
        assert runtime.accelerated_stats().mean <= never.accelerated_stats().mean + 1e-6

    def test_per_mode_split(self, short_run):
        summary = EudoxusAccelerator(EDX_CAR).accelerate(short_run)
        per_mode = summary.per_mode()
        assert set(per_mode) == {"vio"}
        assert len(per_mode["vio"].frames) == len(summary.frames)

    def test_drone_platform_also_works(self, short_run):
        summary = EudoxusAccelerator(EDX_DRONE).accelerate(short_run)
        assert summary.speedup() > 1.0

    def test_offloaded_kernel_replaced(self, short_run):
        accelerator = EudoxusAccelerator(EDX_CAR)
        summary = accelerator.accelerate(short_run, scheduler="always", train=False)
        frame = summary.frames[len(summary.frames) // 2]
        assert frame.offloaded
        baseline_kernel = frame.baseline_record.backend.get("kalman_gain", 0.0)
        accel_kernel = frame.accelerated_record.backend.get("kalman_gain", 0.0)
        assert accel_kernel <= baseline_kernel + 1.0
