"""Tests for the matrix building blocks (Table I substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    BuildingBlock,
    OperationTrace,
    backward_substitution,
    blocked_matmul,
    blocked_transpose,
    cholesky,
    forward_substitution,
    lu_decompose,
    matmul,
    qr_decompose,
    quadratic_form,
    solve_cholesky,
    solve_linear,
    symmetric_inverse,
    traced,
    transpose,
)
from repro.linalg.blocked import block_count, matmul_block_iterations
from repro.linalg.solvers import block_diag_plus_dense_inverse
from repro.linalg.primitives import PrimitiveCall, TABLE_I_DECOMPOSITION


def random_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


sizes = st.integers(min_value=2, max_value=12)


class TestBlockedOps:
    @given(sizes, sizes, sizes, st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_blocked_matmul_matches_numpy(self, m, k, n, block):
        rng = np.random.default_rng(m * 100 + k * 10 + n)
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        assert np.allclose(blocked_matmul(a, b, block_size=block), a @ b, atol=1e-9)

    def test_blocked_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            blocked_matmul(np.ones((2, 3)), np.ones((4, 2)))

    def test_blocked_matmul_bad_block(self):
        with pytest.raises(ValueError):
            blocked_matmul(np.ones((2, 2)), np.ones((2, 2)), block_size=0)

    @given(sizes, sizes)
    @settings(max_examples=20, deadline=None)
    def test_blocked_transpose(self, m, n):
        rng = np.random.default_rng(m * 13 + n)
        a = rng.normal(size=(m, n))
        assert np.allclose(blocked_transpose(a, block_size=3), a.T)

    def test_block_count(self):
        assert block_count((16, 16), 16) == 1
        assert block_count((17, 16), 16) == 2
        assert matmul_block_iterations(32, 32, 32, 16) == 8

    def test_traced_matmul_records_primitive(self):
        trace = OperationTrace()
        with traced(trace):
            matmul(np.ones((2, 3)), np.ones((3, 4)))
            transpose(np.ones((2, 3)))
        used = trace.blocks_used()
        assert used[BuildingBlock.MULTIPLICATION] == 1
        assert used[BuildingBlock.TRANSPOSE] == 1

    def test_quadratic_form_symmetric(self):
        p = random_spd(6, seed=3)
        h = np.random.default_rng(1).normal(size=(4, 6))
        s = quadratic_form(h, p)
        assert np.allclose(s, s.T)
        assert np.allclose(s, h @ p @ h.T, atol=1e-9)


class TestDecompositions:
    @given(st.integers(min_value=2, max_value=15))
    @settings(max_examples=20, deadline=None)
    def test_cholesky_reconstructs(self, n):
        a = random_spd(n, seed=n)
        lower = cholesky(a)
        assert np.allclose(lower @ lower.T, a, atol=1e-8)
        assert np.allclose(np.triu(lower, 1), 0.0)

    def test_cholesky_rejects_non_square(self):
        with pytest.raises(ValueError):
            cholesky(np.ones((2, 3)))

    def test_cholesky_rejects_indefinite(self):
        with pytest.raises(np.linalg.LinAlgError):
            cholesky(np.array([[1.0, 0.0], [0.0, -5.0]]))

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_lu_reconstructs(self, n):
        rng = np.random.default_rng(n * 7)
        a = rng.normal(size=(n, n)) + np.eye(n) * 0.5
        permutation, lower, upper = lu_decompose(a)
        assert np.allclose(lower @ upper, a[permutation], atol=1e-8)

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_qr_reconstructs(self, m, n):
        rng = np.random.default_rng(m * 31 + n)
        a = rng.normal(size=(m, n))
        q, r = qr_decompose(a)
        assert np.allclose(q @ r, a, atol=1e-8)
        assert np.allclose(q.T @ q, np.eye(q.shape[1]), atol=1e-8)

    def test_qr_upper_triangular(self):
        a = np.random.default_rng(0).normal(size=(8, 4))
        _, r = qr_decompose(a)
        assert np.allclose(np.tril(r, -1), 0.0, atol=1e-8)


class TestSolvers:
    def test_forward_substitution(self):
        lower = np.tril(random_spd(5, seed=1))
        x_true = np.arange(1.0, 6.0)
        assert np.allclose(forward_substitution(lower, lower @ x_true), x_true, atol=1e-9)

    def test_backward_substitution(self):
        upper = np.triu(random_spd(5, seed=2))
        x_true = np.arange(1.0, 6.0)
        assert np.allclose(backward_substitution(upper, upper @ x_true), x_true, atol=1e-9)

    def test_substitution_shape_errors(self):
        with pytest.raises(ValueError):
            forward_substitution(np.eye(3), np.ones(4))
        with pytest.raises(ValueError):
            backward_substitution(np.eye(3), np.ones((4, 1)))

    def test_singular_triangular_raises(self):
        singular = np.array([[1.0, 0.0], [1.0, 0.0]])
        with pytest.raises(np.linalg.LinAlgError):
            forward_substitution(singular, np.ones(2))

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_solve_cholesky(self, n):
        a = random_spd(n, seed=n + 50)
        x_true = np.random.default_rng(n).normal(size=n)
        assert np.allclose(solve_cholesky(a, a @ x_true), x_true, atol=1e-7)

    def test_solve_cholesky_multiple_rhs(self):
        a = random_spd(6, seed=9)
        x_true = np.random.default_rng(9).normal(size=(6, 3))
        assert np.allclose(solve_cholesky(a, a @ x_true), x_true, atol=1e-7)

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_solve_linear(self, n):
        rng = np.random.default_rng(n * 3 + 1)
        a = rng.normal(size=(n, n)) + np.eye(n)
        x_true = rng.normal(size=n)
        assert np.allclose(solve_linear(a, a @ x_true), x_true, atol=1e-7)

    def test_symmetric_inverse(self):
        a = random_spd(7, seed=11)
        assert np.allclose(symmetric_inverse(a) @ a, np.eye(7), atol=1e-7)

    def test_symmetric_inverse_rejects_non_square(self):
        with pytest.raises(ValueError):
            symmetric_inverse(np.ones((3, 4)))

    def test_structured_inverse_matches_dense(self):
        rng = np.random.default_rng(21)
        m, d = 9, 6
        diagonal = rng.uniform(1.0, 3.0, size=m)
        dense = random_spd(d, seed=22)
        coupling = rng.normal(size=(m, d)) * 0.1
        full = np.zeros((m + d, m + d))
        full[:m, :m] = np.diag(diagonal)
        full[:m, m:] = coupling
        full[m:, :m] = coupling.T
        full[m:, m:] = dense
        structured = block_diag_plus_dense_inverse(diagonal, dense, coupling)
        assert np.allclose(structured, np.linalg.inv(full), atol=1e-6)

    def test_structured_inverse_shape_check(self):
        with pytest.raises(ValueError):
            block_diag_plus_dense_inverse(np.ones(3), np.eye(6), np.ones((4, 6)))


class TestOperationTrace:
    def test_flops_positive(self):
        call = PrimitiveCall(BuildingBlock.MULTIPLICATION, (10, 20), (20, 5))
        assert call.flops == 2 * 10 * 20 * 5

    def test_trace_records_kernel_blocks(self):
        trace = OperationTrace()
        with traced(trace):
            a = random_spd(8, seed=4)
            solve_cholesky(a, np.ones(8))
        used = trace.blocks_used()
        assert BuildingBlock.DECOMPOSITION in used
        assert BuildingBlock.SUBSTITUTION in used
        assert trace.total_flops() > 0

    def test_nested_traces_both_record(self):
        outer, inner = OperationTrace(), OperationTrace()
        with traced(outer):
            with traced(inner):
                matmul(np.ones((2, 2)), np.ones((2, 2)))
        assert outer.blocks_used() == inner.blocks_used()

    def test_table1_decomposition_is_complete(self):
        assert set(TABLE_I_DECOMPOSITION) == {"projection", "kalman_gain", "marginalization"}
        assert BuildingBlock.INVERSE in TABLE_I_DECOMPOSITION["marginalization"]
        assert BuildingBlock.MULTIPLICATION in TABLE_I_DECOMPOSITION["projection"]

    def test_trace_clear(self):
        trace = OperationTrace()
        trace.record(BuildingBlock.TRANSPOSE, (3, 3))
        trace.clear()
        assert trace.calls == []
