"""Tests for latency records/statistics and configuration dataclasses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import (
    BackendConfig,
    FrontendConfig,
    LocalizerConfig,
    MSCKFConfig,
    SensorConfig,
)
from repro.common.timing import (
    KernelTiming,
    LatencyRecord,
    StopwatchCollector,
    TimingStats,
    frontend_backend_split,
    merge_records,
    total_stats,
)


class TestLatencyRecord:
    def test_totals(self):
        record = LatencyRecord(frame_index=0)
        record.add_frontend("feature_extraction", 10.0)
        record.add_frontend("stereo_matching", 20.0)
        record.add_backend("kalman_gain", 5.0)
        assert record.frontend_total == 30.0
        assert record.backend_total == 5.0
        assert record.total == 35.0

    def test_add_accumulates(self):
        record = LatencyRecord(frame_index=0)
        record.add_backend("solver", 3.0)
        record.add_backend("solver", 2.0)
        assert record.backend["solver"] == 5.0

    def test_kernel_lookup(self):
        record = LatencyRecord(frame_index=0)
        record.add_frontend("feature_extraction", 1.0)
        record.add_backend("projection", 2.0)
        assert record.kernel("feature_extraction") == 1.0
        assert record.kernel("projection") == 2.0
        assert record.kernel("missing") == 0.0

    def test_scaled(self):
        record = LatencyRecord(frame_index=0)
        record.add_frontend("a", 10.0)
        record.add_backend("b", 4.0)
        scaled = record.scaled(frontend_factor=0.5, backend_factor=2.0)
        assert scaled.frontend_total == 5.0
        assert scaled.backend_total == 8.0


class TestTimingStats:
    def test_basic_statistics(self):
        stats = TimingStats([10.0, 20.0, 30.0])
        assert stats.mean == 20.0
        assert stats.minimum == 10.0
        assert stats.maximum == 30.0
        assert stats.count == 3

    def test_rsd(self):
        stats = TimingStats([10.0, 10.0, 10.0])
        assert stats.rsd == 0.0
        varied = TimingStats([5.0, 15.0])
        assert varied.rsd > 0.0

    def test_worst_to_best_ratio(self):
        stats = TimingStats([10.0, 40.0])
        assert np.isclose(stats.worst_to_best_ratio, 4.0)

    def test_empty(self):
        stats = TimingStats([])
        assert stats.mean == 0.0
        assert stats.rsd == 0.0

    def test_percentile(self):
        stats = TimingStats(list(range(101)))
        assert np.isclose(stats.percentile(50), 50.0)

    @given(st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_mean_bounded_by_min_max(self, values):
        stats = TimingStats(values)
        assert stats.minimum - 1e-9 <= stats.mean <= stats.maximum + 1e-9


class TestStopwatch:
    def test_measure_accumulates(self):
        collector = StopwatchCollector()
        with collector.measure("section"):
            sum(range(1000))
        with collector.measure("section"):
            sum(range(1000))
        assert collector.as_dict()["section"] >= 0.0
        assert len(collector.timings) == 2
        collector.reset()
        assert collector.total() == 0.0


class TestRecordAggregation:
    def _records(self):
        records = []
        for i in range(4):
            record = LatencyRecord(frame_index=i)
            record.add_frontend("fe", 10.0 + i)
            record.add_backend("kernel", 2.0 * i)
            records.append(record)
        return records

    def test_merge_records(self):
        merged = merge_records(self._records())
        assert set(merged) == {"fe", "kernel"}
        assert merged["fe"].count == 4

    def test_total_stats(self):
        stats = total_stats(self._records())
        assert stats.count == 4
        assert stats.maximum > stats.minimum

    def test_frontend_backend_split(self):
        split = frontend_backend_split(self._records())
        assert split["frontend"].mean > split["backend"].mean


class TestConfigs:
    def test_frontend_config_validation(self):
        with pytest.raises(ValueError):
            FrontendConfig(max_features=0)
        with pytest.raises(ValueError):
            FrontendConfig(orb_bits=100)

    def test_sensor_config_derived(self):
        config = SensorConfig(camera_rate_hz=10.0, imu_rate_hz=100.0)
        assert config.imu_per_frame == 10
        assert config.resolution == (config.image_width, config.image_height)

    def test_localizer_presets(self):
        car = LocalizerConfig.car_default()
        drone = LocalizerConfig.drone_default()
        assert car.sensors.image_width > drone.sensors.image_width
        assert car.frontend.max_features >= drone.frontend.max_features

    def test_backend_config_defaults(self):
        config = BackendConfig()
        assert config.msckf.window_size == 30
        assert config.mapping.window_size > 1

    def test_msckf_config_fields(self):
        config = MSCKFConfig(window_size=10)
        assert config.window_size == 10
        assert config.observation_noise > 0
