"""Serving layer: streams, online mode switching, engine determinism.

The load-bearing guarantees pinned here:

* N concurrent sessions served through the process pool produce
  bit-identical trajectories and mode switches to the same sessions served
  serially through the multiplexing event loop;
* mode switches fire at the injected transition frames (exactly at map
  entry/exit, within the hysteresis window of GPS loss/reacquisition);
* session results round-trip through the persistent run store;
* served telemetry trains the runtime offload scheduler.
"""

import numpy as np
import pytest

from repro.experiments.common import accelerator_for
from repro.experiments.runner import RunStore
from repro.sensors.scenarios import ScenarioKind
from repro.serving import (
    ModeSwitchPolicy,
    ServingEngine,
    Session,
    StreamSegment,
    StreamSpec,
    mixed_deployment_stream,
    mixed_fleet,
    random_stream,
    run_session,
    serving_key,
)
from repro.serving.engine import scheduler_training_samples, train_offload_scheduler

SEGMENT = 2.0
RATE = 5.0
FRAMES_PER_SEGMENT = int(SEGMENT * RATE)  # 10


def _spec(stream_id, kinds_and_events, seed=0):
    segments = tuple(
        StreamSegment(kind=kind, duration=SEGMENT, gps_outage_probability=outage)
        for kind, outage in kinds_and_events
    )
    return StreamSpec(stream_id=stream_id, segments=segments,
                      camera_rate_hz=RATE, landmark_count=120, seed=seed)


class TestStreams:
    def test_spec_payload_roundtrip(self):
        spec = random_stream("client-7", seed=13, segment_count=5)
        assert StreamSpec.from_payload(spec.payload()) == spec

    def test_mixed_fleet_distinct_and_mixed(self):
        fleet = mixed_fleet(8, segment_duration=1.0)
        assert len({spec.stream_id for spec in fleet}) == 8
        assert len({spec.seed for spec in fleet}) == 8
        # Phase rotation: the fleet does not start in lockstep.
        assert len({spec.segments[0].kind for spec in fleet}) > 1
        # Every session is the 50/25/25 mix over the four environments.
        for spec in fleet:
            kinds = {segment.kind for segment in spec.segments}
            assert kinds == set(ScenarioKind)

    def test_mixed_stream_contains_dropout_event(self):
        spec = mixed_deployment_stream("client-0", segment_duration=1.0)
        assert any(segment.gps_outage_probability >= 1.0 for segment in spec.segments)

    def test_stream_frame_count(self):
        spec = _spec("c", [(ScenarioKind.OUTDOOR_UNKNOWN, 0.0),
                           (ScenarioKind.INDOOR_UNKNOWN, 0.0)])
        assert spec.frame_count == 2 * FRAMES_PER_SEGMENT


class TestModeSwitchPolicy:
    def test_warm_start_trusts_first_fix(self):
        policy = ModeSwitchPolicy()
        assert policy.observe(True) is True
        policy.reset()
        assert policy.observe(False) is False

    def test_hysteresis(self):
        policy = ModeSwitchPolicy(acquire_frames=2, lose_frames=3)
        policy.observe(True)
        # A single multipath dropout must not flip the mode.
        assert policy.observe(False) is True
        assert policy.observe(True) is True
        # Three consecutive misses do.
        assert [policy.observe(False) for _ in range(3)] == [True, True, False]
        # Two consecutive fixes re-acquire.
        assert [policy.observe(True) for _ in range(2)] == [False, True]


class TestOnlineModeSwitching:
    def test_switches_fire_at_injected_transitions(self):
        spec = _spec("transitions", [
            (ScenarioKind.OUTDOOR_UNKNOWN, 0.0),   # frames 0-9: GPS -> VIO
            (ScenarioKind.INDOOR_UNKNOWN, 0.0),    # frames 10-19: no GPS, no map
            (ScenarioKind.INDOOR_KNOWN, 0.0),      # frames 20-29: map entry
            (ScenarioKind.OUTDOOR_KNOWN, 0.0),     # frames 30-39: GPS back
        ])
        result = run_session(spec)
        events = [(s.frame_index, s.to_mode, s.reason) for s in result.mode_switches]
        assert events[0] == (0, "vio", "startup")
        # GPS loss is declared after lose_frames consecutive missing fixes.
        assert events[1] == (10 + 2, "slam", "gps_lost")
        # Map availability switches without hysteresis: exactly at the boundary.
        assert events[2] == (20, "registration", "map_entry")
        # Reacquisition after acquire_frames consecutive fixes.
        assert events[3] == (30 + 1, "vio", "gps_reacquired")
        assert len(events) == 4
        assert result.segment_starts == [0, 10, 20, 30]

    def test_dropout_burst_and_reacquisition(self):
        spec = _spec("dropout", [
            (ScenarioKind.OUTDOOR_KNOWN, 0.0),
            (ScenarioKind.OUTDOOR_KNOWN, 1.0),     # full outage burst
            (ScenarioKind.OUTDOOR_KNOWN, 0.0),
        ])
        result = run_session(spec)
        events = [(s.frame_index, s.to_mode, s.reason) for s in result.mode_switches]
        # With a survey map on board, GPS loss falls back to registration,
        # not SLAM (Fig. 2), and the client reacquires VIO afterwards.
        assert (10 + 2, "registration", "gps_lost") in events
        assert (20 + 1, "vio", "gps_reacquired") in events

    def test_modes_executed_match_policy(self):
        spec = _spec("modes", [(ScenarioKind.OUTDOOR_UNKNOWN, 0.0),
                               (ScenarioKind.INDOOR_UNKNOWN, 0.0)])
        result = run_session(spec)
        modes = [estimate.mode for estimate in result.trajectory.estimates]
        assert modes[:10] == ["vio"] * 10
        # After the dropout is declared (3-frame hysteresis) SLAM serves.
        assert modes[13:] == ["slam"] * 7

    def test_session_stays_localized_through_switches(self):
        result = run_session(mixed_deployment_stream("acc", segment_duration=SEGMENT,
                                                     camera_rate_hz=RATE))
        assert result.trajectory.rmse_error() < 2.0


class TestServingDeterminism:
    @pytest.fixture(scope="class")
    def fleet(self):
        return mixed_fleet(4, segment_duration=SEGMENT, camera_rate_hz=RATE)

    @pytest.fixture(scope="class")
    def serial_report(self, fleet):
        return ServingEngine(store=None, max_workers=1).serve(fleet, parallel=False)

    def test_serial_event_loop_multiplexes(self, serial_report):
        assert serial_report.session_count == 4
        # All sessions share a frame rate, so every tick batches the fleet.
        assert serial_report.mean_batch_size > 1.0

    def test_parallel_bit_identical_to_serial(self, fleet, serial_report):
        parallel_report = ServingEngine(store=None, max_workers=2).serve(fleet, parallel=True)
        # Guard against a vacuous pass: a pool must actually have spawned
        # (report.parallel stays False when fan_out falls back in-process).
        assert parallel_report.parallel
        assert parallel_report.session_count == serial_report.session_count
        for stream_id, serial_result in serial_report.results.items():
            parallel_result = parallel_report.results[stream_id]
            assert parallel_result.signature() == serial_result.signature()
            # Signature equality is backed by exact pose equality.
            for a, b in zip(serial_result.trajectory.estimates,
                            parallel_result.trajectory.estimates):
                np.testing.assert_array_equal(a.pose.rotation, b.pose.rotation)
                np.testing.assert_array_equal(a.pose.translation, b.pose.translation)
                assert a.mode == b.mode
            assert ([(s.frame_index, s.to_mode, s.reason) for s in serial_result.mode_switches]
                    == [(s.frame_index, s.to_mode, s.reason) for s in parallel_result.mode_switches])

    def test_signature_ignores_wall_time_telemetry(self, serial_report):
        result = next(iter(serial_report.results.values()))
        signature = result.signature()
        result.frame_wall_ms[0] += 123.0
        assert result.signature() == signature

    def test_interleaved_equals_isolated(self, fleet, serial_report):
        """The event loop's interleaving cannot leak state across sessions."""
        isolated = run_session(fleet[0])
        assert isolated.signature() == serial_report.results[fleet[0].stream_id].signature()

    def test_exhausted_stream_served_on_both_paths(self):
        """A zero-segment stream yields an empty result, serially and pooled."""
        fleet = [StreamSpec(stream_id="empty", segments=(), camera_rate_hz=RATE),
                 _spec("real", [(ScenarioKind.OUTDOOR_UNKNOWN, 0.0)])]
        serial = ServingEngine(store=None, max_workers=1).serve(fleet, parallel=False)
        pooled = ServingEngine(store=None, max_workers=2).serve(fleet, parallel=True)
        for report in (serial, pooled):
            assert report.session_count == 2
            assert report.results["empty"].frame_count == 0
        assert serial.results["empty"].signature() == pooled.results["empty"].signature()


class TestServingStore:
    def test_session_results_roundtrip(self, tmp_path):
        fleet = mixed_fleet(2, segment_duration=1.0, camera_rate_hz=RATE)
        store = RunStore(tmp_path)
        first = ServingEngine(store=store, max_workers=1).serve(fleet)
        assert first.computed_sessions == 2 and first.store_hits == 0
        second = ServingEngine(store=store, max_workers=1).serve(fleet)
        assert second.computed_sessions == 0 and second.store_hits == 2
        for stream_id in first.results:
            assert second.results[stream_id].signature() == first.results[stream_id].signature()

    def test_key_covers_spec(self, tmp_path):
        a = mixed_deployment_stream("a", seed=0, segment_duration=1.0)
        b = mixed_deployment_stream("a", seed=1, segment_duration=1.0)
        assert serving_key(a) != serving_key(b)

    def test_duplicate_stream_ids_rejected(self):
        spec = mixed_deployment_stream("dup", segment_duration=1.0)
        with pytest.raises(ValueError):
            ServingEngine().serve([spec, spec])


class TestSchedulerTelemetryFeed:
    @pytest.fixture(scope="class")
    def results(self):
        fleet = mixed_fleet(2, segment_duration=SEGMENT, camera_rate_hz=RATE)
        return ServingEngine(store=None, max_workers=1).serve(fleet).results

    def test_samples_cover_served_modes(self, results):
        accelerator = accelerator_for("drone")
        samples = scheduler_training_samples(results, accelerator)
        served_modes = {estimate.mode for result in results.values()
                        for estimate in result.trajectory.estimates}
        assert set(samples) == served_modes
        for workloads, latencies in samples.values():
            assert len(workloads) == len(latencies) > 0

    def test_trains_offload_scheduler(self, results):
        accelerator = accelerator_for("drone")
        fits = train_offload_scheduler(results, accelerator)
        assert fits, "no mode had enough traffic to train"
        for mode, r2 in fits.items():
            assert accelerator.scheduler.is_trained(mode)
            assert r2 <= 1.0 + 1e-9
        mode = next(iter(fits))
        workload = next(
            backend_result.workload
            for result in results.values()
            for backend_result in result.trajectory.backend_results
            if backend_result.mode == mode
        )
        decision = accelerator.scheduler.decide(mode, workload, actual_cpu_ms=1.0)
        assert decision.predicted_cpu_ms >= 0.0

    def test_online_observation_refits(self, results):
        accelerator = accelerator_for("drone")
        scheduler = accelerator.scheduler
        samples = scheduler_training_samples(results, accelerator)
        mode, (workloads, latencies) = max(samples.items(), key=lambda kv: len(kv[1][0]))
        assert len(workloads) >= 8
        refit_r2 = None
        for workload, cpu_ms in zip(workloads, latencies):
            fit = scheduler.observe(mode, workload, cpu_ms, refit_every=8)
            refit_r2 = fit if fit is not None else refit_r2
        assert refit_r2 is not None
        assert scheduler.is_trained(mode)
