"""Serving layer: streams, online mode switching, engine determinism.

The load-bearing guarantees pinned here:

* N concurrent sessions served through the process pool produce
  bit-identical trajectories and mode switches to the same sessions served
  serially — through the legacy materialized multiplexer *and* through the
  arrival-time streaming-ingestion event loop (with or without autoscaled
  capacity);
* the incremental frame iterator reproduces the materialized frame grid
  exactly — no dropped or duplicated frames at segment transitions;
* bounded ingress queues push back instead of buffering without limit;
* mode switches fire at the injected transition frames (exactly at map
  entry/exit, within the hysteresis window of GPS loss/reacquisition);
* session results round-trip through the persistent run store;
* served telemetry trains the runtime offload scheduler (batch after the
  fact, and online per served frame).
"""

import numpy as np
import pytest

from repro.experiments.common import accelerator_for
from repro.experiments.runner import RunStore, sensor_config_for
from repro.scheduler import LatencyAutoscaler
from repro.sensors.dataset import segment_frame_count
from repro.sensors.scenarios import ScenarioKind
from repro.serving import (
    ModeSwitchPolicy,
    ScenarioStream,
    ServingEngine,
    Session,
    StreamSegment,
    StreamSpec,
    mixed_deployment_stream,
    mixed_fleet,
    random_stream,
    run_session,
    serving_key,
)
from repro.serving.engine import scheduler_training_samples, train_offload_scheduler

SEGMENT = 2.0
RATE = 5.0
FRAMES_PER_SEGMENT = int(SEGMENT * RATE)  # 10


def _sensor_config(spec):
    return sensor_config_for(spec.platform_kind, spec.camera_rate_hz, spec.seed)


def _spec(stream_id, kinds_and_events, seed=0):
    segments = tuple(
        StreamSegment(kind=kind, duration=SEGMENT, gps_outage_probability=outage)
        for kind, outage in kinds_and_events
    )
    return StreamSpec(stream_id=stream_id, segments=segments,
                      camera_rate_hz=RATE, landmark_count=120, seed=seed)


class TestStreams:
    def test_spec_payload_roundtrip(self):
        spec = random_stream("client-7", seed=13, segment_count=5)
        assert StreamSpec.from_payload(spec.payload()) == spec

    def test_mixed_fleet_distinct_and_mixed(self):
        fleet = mixed_fleet(8, segment_duration=1.0)
        assert len({spec.stream_id for spec in fleet}) == 8
        assert len({spec.seed for spec in fleet}) == 8
        # Phase rotation: the fleet does not start in lockstep.
        assert len({spec.segments[0].kind for spec in fleet}) > 1
        # Every session is the 50/25/25 mix over the four environments.
        for spec in fleet:
            kinds = {segment.kind for segment in spec.segments}
            assert kinds == set(ScenarioKind)

    def test_mixed_stream_contains_dropout_event(self):
        spec = mixed_deployment_stream("client-0", segment_duration=1.0)
        assert any(segment.gps_outage_probability >= 1.0 for segment in spec.segments)

    def test_stream_frame_count(self):
        spec = _spec("c", [(ScenarioKind.OUTDOOR_UNKNOWN, 0.0),
                           (ScenarioKind.INDOOR_UNKNOWN, 0.0)])
        assert spec.frame_count == 2 * FRAMES_PER_SEGMENT

    def test_payload_serializes_floats_exactly(self):
        """The pool worker rebuilds specs from payloads — no quantization.

        A duration that differs from a round value only past the sixth
        decimal must survive the payload round-trip bit-for-bit; otherwise
        the pool path would serve a different segment than the serial path
        and distinct specs would collide onto one cache key.
        """
        awkward = StreamSpec(
            stream_id="exact",
            segments=(StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, 0.5000001),),
            camera_rate_hz=RATE, landmark_count=100, seed=1,
            deadline_ms=123.4567890123,
        )
        rebuilt = StreamSpec.from_payload(awkward.payload())
        assert rebuilt == awkward
        assert rebuilt.frame_count == awkward.frame_count
        plain = StreamSpec(
            stream_id="exact",
            segments=(StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, 0.5),),
            camera_rate_hz=RATE, landmark_count=100, seed=1,
        )
        assert serving_key(awkward) != serving_key(plain)

    def test_deadline_roundtrips_and_defaults_to_none(self):
        spec = mixed_deployment_stream("qos", deadline_ms=250.0)
        assert StreamSpec.from_payload(spec.payload()).deadline_ms == 250.0
        assert random_stream("best-effort").deadline_ms is None
        fleet = mixed_fleet(2, segment_duration=1.0, deadline_ms=100.0)
        assert all(s.deadline_ms == 100.0 for s in fleet)


class TestStreamBoundaryExactness:
    """The incremental iterator's frame grid is exact at segment boundaries.

    Segment pacing quantizes each segment to ``round(duration * rate)``
    frames (floored at 2) on the fixed 30 s trajectory timescale; these
    tests pin that the quantization never drops or duplicates a frame at a
    transition — the stream is one contiguous, uniformly spaced grid whose
    length is exactly ``spec.frame_count`` — and that the iterator's view
    is frame-for-frame identical to what a served session records.
    """

    # Durations chosen to stress the quantization: 0.5 s and 0.7 s at 5 Hz
    # are 2.5 and 3.5 nominal frames (banker's rounding: 2 and 4), 0.3 s
    # hits the 2-frame floor.
    AWKWARD = (0.5, 0.7, 2.0, 0.3, 1.0)

    def _awkward_spec(self):
        kinds = list(ScenarioKind)
        segments = tuple(
            StreamSegment(kind=kinds[i % len(kinds)], duration=duration)
            for i, duration in enumerate(self.AWKWARD)
        )
        return StreamSpec(stream_id="awkward", segments=segments,
                          camera_rate_hz=RATE, landmark_count=100, seed=3)

    def test_iterator_grid_is_contiguous_and_uniform(self):
        spec = self._awkward_spec()
        stream = ScenarioStream(spec, _sensor_config(spec))
        frames = list(stream.frames())
        assert len(frames) == spec.frame_count
        indices = [sf.frame.index for sf in frames]
        assert indices == list(range(spec.frame_count))
        times = np.array([sf.frame.timestamp for sf in frames])
        np.testing.assert_allclose(np.diff(times), 1.0 / RATE, atol=1e-9)
        arrivals = np.array([sf.arrival_time for sf in frames])
        np.testing.assert_array_equal(arrivals, times)

    def test_segment_counts_match_quantization(self):
        spec = self._awkward_spec()
        stream = ScenarioStream(spec, _sensor_config(spec))
        per_segment = {}
        for sf in stream.frames():
            per_segment[sf.segment_index] = per_segment.get(sf.segment_index, 0) + 1
        assert per_segment == {
            i: segment_frame_count(duration, RATE)
            for i, duration in enumerate(self.AWKWARD)
        }

    def test_iterator_matches_served_session_frame_for_frame(self):
        """No off-by-one between the arrival view and the served trajectory."""
        spec = self._awkward_spec()
        stream = ScenarioStream(spec, _sensor_config(spec))
        iterated = [(sf.frame.index, sf.frame.timestamp, sf.segment_index)
                    for sf in stream.frames()]
        result = run_session(spec)
        served = [(e.frame_index, e.timestamp) for e in result.trajectory.estimates]
        assert [(i, t) for i, t, _ in iterated] == served
        # Segment starts land exactly where the iterator changes segments.
        boundaries = [iterated[k][0] for k in range(len(iterated))
                      if k == 0 or iterated[k][2] != iterated[k - 1][2]]
        assert result.segment_starts == boundaries

    def test_segments_are_built_lazily(self, monkeypatch):
        """Pulling early frames must not materialize later segments."""
        spec = self._awkward_spec()
        session = Session(spec)
        built = []
        original = ScenarioStream.build_segment

        def counting_build(self, index, start_time=0.0, start_index=0):
            built.append(index)
            return original(self, index, start_time=start_time,
                           start_index=start_index)

        monkeypatch.setattr(ScenarioStream, "build_segment", counting_build)
        for _ in range(3):  # first segment has 2 frames; peek opens the 2nd
            session.step()
        assert max(built) <= 1
        assert len(built) <= 2


class TestModeSwitchPolicy:
    def test_warm_start_trusts_first_fix(self):
        policy = ModeSwitchPolicy()
        assert policy.observe(True) is True
        policy.reset()
        assert policy.observe(False) is False

    def test_hysteresis(self):
        policy = ModeSwitchPolicy(acquire_frames=2, lose_frames=3)
        policy.observe(True)
        # A single multipath dropout must not flip the mode.
        assert policy.observe(False) is True
        assert policy.observe(True) is True
        # Three consecutive misses do.
        assert [policy.observe(False) for _ in range(3)] == [True, True, False]
        # Two consecutive fixes re-acquire.
        assert [policy.observe(True) for _ in range(2)] == [False, True]


class TestOnlineModeSwitching:
    def test_switches_fire_at_injected_transitions(self):
        spec = _spec("transitions", [
            (ScenarioKind.OUTDOOR_UNKNOWN, 0.0),   # frames 0-9: GPS -> VIO
            (ScenarioKind.INDOOR_UNKNOWN, 0.0),    # frames 10-19: no GPS, no map
            (ScenarioKind.INDOOR_KNOWN, 0.0),      # frames 20-29: map entry
            (ScenarioKind.OUTDOOR_KNOWN, 0.0),     # frames 30-39: GPS back
        ])
        result = run_session(spec)
        events = [(s.frame_index, s.to_mode, s.reason) for s in result.mode_switches]
        assert events[0] == (0, "vio", "startup")
        # GPS loss is declared after lose_frames consecutive missing fixes.
        assert events[1] == (10 + 2, "slam", "gps_lost")
        # Map availability switches without hysteresis: exactly at the boundary.
        assert events[2] == (20, "registration", "map_entry")
        # Reacquisition after acquire_frames consecutive fixes.
        assert events[3] == (30 + 1, "vio", "gps_reacquired")
        assert len(events) == 4
        assert result.segment_starts == [0, 10, 20, 30]

    def test_dropout_burst_and_reacquisition(self):
        spec = _spec("dropout", [
            (ScenarioKind.OUTDOOR_KNOWN, 0.0),
            (ScenarioKind.OUTDOOR_KNOWN, 1.0),     # full outage burst
            (ScenarioKind.OUTDOOR_KNOWN, 0.0),
        ])
        result = run_session(spec)
        events = [(s.frame_index, s.to_mode, s.reason) for s in result.mode_switches]
        # With a survey map on board, GPS loss falls back to registration,
        # not SLAM (Fig. 2), and the client reacquires VIO afterwards.
        assert (10 + 2, "registration", "gps_lost") in events
        assert (20 + 1, "vio", "gps_reacquired") in events

    def test_modes_executed_match_policy(self):
        spec = _spec("modes", [(ScenarioKind.OUTDOOR_UNKNOWN, 0.0),
                               (ScenarioKind.INDOOR_UNKNOWN, 0.0)])
        result = run_session(spec)
        modes = [estimate.mode for estimate in result.trajectory.estimates]
        assert modes[:10] == ["vio"] * 10
        # After the dropout is declared (3-frame hysteresis) SLAM serves.
        assert modes[13:] == ["slam"] * 7

    def test_session_stays_localized_through_switches(self):
        result = run_session(mixed_deployment_stream("acc", segment_duration=SEGMENT,
                                                     camera_rate_hz=RATE))
        assert result.trajectory.rmse_error() < 2.0


class TestServingDeterminism:
    @pytest.fixture(scope="class")
    def fleet(self):
        return mixed_fleet(4, segment_duration=SEGMENT, camera_rate_hz=RATE)

    @pytest.fixture(scope="class")
    def serial_report(self, fleet):
        return ServingEngine(store=None, max_workers=1).serve(fleet, parallel=False)

    def test_serial_event_loop_multiplexes(self, serial_report):
        assert serial_report.session_count == 4
        # All sessions share a frame rate, so every tick batches the fleet.
        assert serial_report.mean_batch_size > 1.0

    def test_parallel_bit_identical_to_serial(self, fleet, serial_report):
        parallel_report = ServingEngine(store=None, max_workers=2).serve(fleet, parallel=True)
        # Guard against a vacuous pass: a pool must actually have spawned
        # (report.parallel stays False when fan_out falls back in-process).
        assert parallel_report.parallel
        assert parallel_report.session_count == serial_report.session_count
        for stream_id, serial_result in serial_report.results.items():
            parallel_result = parallel_report.results[stream_id]
            assert parallel_result.signature() == serial_result.signature()
            # Signature equality is backed by exact pose equality.
            for a, b in zip(serial_result.trajectory.estimates,
                            parallel_result.trajectory.estimates):
                np.testing.assert_array_equal(a.pose.rotation, b.pose.rotation)
                np.testing.assert_array_equal(a.pose.translation, b.pose.translation)
                assert a.mode == b.mode
            assert ([(s.frame_index, s.to_mode, s.reason) for s in serial_result.mode_switches]
                    == [(s.frame_index, s.to_mode, s.reason) for s in parallel_result.mode_switches])

    def test_signature_ignores_wall_time_telemetry(self, serial_report):
        result = next(iter(serial_report.results.values()))
        signature = result.signature()
        result.frame_wall_ms[0] += 123.0
        assert result.signature() == signature

    def test_interleaved_equals_isolated(self, fleet, serial_report):
        """The event loop's interleaving cannot leak state across sessions."""
        isolated = run_session(fleet[0])
        assert isolated.signature() == serial_report.results[fleet[0].stream_id].signature()

    def test_exhausted_stream_served_on_both_paths(self):
        """A zero-segment stream yields an empty result, serially and pooled."""
        fleet = [StreamSpec(stream_id="empty", segments=(), camera_rate_hz=RATE),
                 _spec("real", [(ScenarioKind.OUTDOOR_UNKNOWN, 0.0)])]
        serial = ServingEngine(store=None, max_workers=1).serve(fleet, parallel=False)
        pooled = ServingEngine(store=None, max_workers=2).serve(fleet, parallel=True)
        for report in (serial, pooled):
            assert report.session_count == 2
            assert report.results["empty"].frame_count == 0
        assert serial.results["empty"].signature() == pooled.results["empty"].signature()


class TestStreamingIngestion:
    """The arrival-time event loop: ingress bounds, latency, determinism."""

    @pytest.fixture(scope="class")
    def fleet(self):
        return mixed_fleet(3, segment_duration=1.0, camera_rate_hz=RATE,
                           deadline_ms=300.0)

    @pytest.fixture(scope="class")
    def materialized(self, fleet):
        return ServingEngine(store=None, max_workers=1).serve(
            fleet, parallel=False, ingestion="materialized")

    def test_streaming_identical_to_materialized(self, fleet, materialized):
        streaming = ServingEngine(store=None, max_workers=1).serve(
            fleet, parallel=False, ingestion="streaming")
        assert streaming.ingestion == "streaming"
        assert materialized.ingestion == "materialized"
        for stream_id, expected in materialized.results.items():
            assert streaming.results[stream_id].signature() == expected.signature()

    def test_streaming_under_autoscaled_capacity_identical(self, fleet, materialized):
        """Throttled capacity reshuffles *when* frames are served, never what."""
        autoscaler = LatencyAutoscaler(min_workers=1, max_workers=4, window=32,
                                       grow_patience=2, shrink_patience=4,
                                       cooldown=2)
        engine = ServingEngine(store=None, max_workers=1, autoscaler=autoscaler,
                               frames_per_worker_tick=1)
        report = engine.serve(fleet, parallel=False, ingestion="streaming")
        for stream_id, expected in materialized.results.items():
            assert report.results[stream_id].signature() == expected.signature()
        # Under-provisioned start: a backlog formed and latency was measured.
        assert report.virtual_latency_percentile(95.0) > 0.0
        assert report.scale_decisions, "every tick logs a decision"
        assert any(d.action == "grow" for d in report.scale_decisions)
        assert report.final_workers > 1

    def test_unthrottled_streaming_serves_on_arrival(self, fleet):
        """Without an autoscaler nothing queues: zero serving latency."""
        report = ServingEngine(store=None, max_workers=1).serve(
            fleet, parallel=False, ingestion="streaming")
        assert report.ticks > 0
        assert report.virtual_latency_percentile(95.0) == 0.0
        assert report.deadline_misses == 0
        assert report.mean_batch_size > 1.0

    def test_ingress_queue_is_bounded(self):
        spec = _spec("bounded", [(ScenarioKind.OUTDOOR_UNKNOWN, 0.0),
                                 (ScenarioKind.INDOOR_UNKNOWN, 0.0)])
        session = Session(spec, ingress_capacity=4)
        admitted = session.ingest_ready(clock=1e9)  # everything has "arrived"
        assert admitted == 4
        assert session.pending == 4
        # Backpressure: a full queue refuses frames...
        assert session.ingest_ready(clock=1e9) == 0
        # ...and serving frees slots one for one.
        session.serve_pending()
        assert session.ingest_ready(clock=1e9) == 1

    def test_ingest_tolerates_clock_drift(self):
        """A clock built from repeated float adds must not defer on-time frames.

        Eight accumulated 0.2 s ticks land a few ulps below the exactly
        stamped 1.6 s arrival; without admission slack that frame would be
        admitted one tick late and record a phantom frame interval of
        serving latency.
        """
        spec = _spec("drift", [(ScenarioKind.OUTDOOR_UNKNOWN, 0.0)])
        drifted = 0.0
        for _ in range(8):
            drifted += 1.0 / RATE
        assert drifted < 8.0 / RATE  # the drift this test exists for
        session = Session(spec, ingress_capacity=20)
        admitted = session.ingest_ready(drifted)
        # Frames 0..8 (timestamps 0.0 .. 1.6) have all arrived by the
        # drifted clock and must all be admitted.
        assert admitted == 9

    def test_ingest_rejects_when_full(self):
        spec = _spec("rej", [(ScenarioKind.OUTDOOR_UNKNOWN, 0.0)])
        donor = Session(spec)
        frames = [donor.stream.frames().__next__()]
        session = Session(spec, ingress_capacity=1)
        assert session.ingest(frames[0])
        assert not session.ingest(frames[0])

    def test_online_scheduler_feed(self, fleet):
        accelerator = accelerator_for("drone")
        engine = ServingEngine(store=None, max_workers=1, accelerator=accelerator)
        report = engine.serve(fleet, parallel=False, ingestion="streaming")
        served_modes = {estimate.mode for result in report.results.values()
                        for estimate in result.trajectory.estimates}
        for mode in served_modes:
            assert accelerator.scheduler.observation_count(mode) > 0
        total = sum(accelerator.scheduler.observation_count(m) for m in served_modes)
        assert total == report.frame_count

    def test_unknown_ingestion_mode_rejected(self, fleet):
        with pytest.raises(ValueError):
            ServingEngine(store=None, max_workers=1).serve(fleet, ingestion="psychic")

    def test_explicit_ingestion_forces_serial_loop(self, fleet):
        """Naming an ingestion must win over the automatic pool choice.

        Otherwise the loop a caller explicitly asked to measure would
        silently depend on the host's core count.
        """
        report = ServingEngine(store=None, max_workers=8).serve(
            fleet, ingestion="materialized")
        assert report.ingestion == "materialized"
        assert not report.parallel
        with pytest.raises(ValueError):
            ServingEngine(store=None, max_workers=8).serve(
                fleet, parallel=True, ingestion="streaming")

    def test_streaming_empty_stream(self):
        fleet = [StreamSpec(stream_id="empty", segments=(), camera_rate_hz=RATE)]
        report = ServingEngine(store=None, max_workers=1).serve(
            fleet, parallel=False, ingestion="streaming")
        assert report.results["empty"].frame_count == 0

    def test_autoscaled_pool_path_identical(self, fleet, materialized):
        """Wave dispatch through the resizable pool preserves signatures."""
        autoscaler = LatencyAutoscaler(min_workers=2, max_workers=2)
        engine = ServingEngine(store=None, max_workers=2, autoscaler=autoscaler)
        report = engine.serve(fleet, parallel=True)
        assert report.ingestion == "pool"
        assert report.scale_decisions  # one decision per dispatch wave
        for stream_id, expected in materialized.results.items():
            assert report.results[stream_id].signature() == expected.signature()

    def test_pool_path_grows_under_queue_pressure(self):
        """Sessions stuck behind a narrow pool must be able to force growth.

        Per-frame compute is far under the deadline, so only the queue-wait
        signal can push pressure over the grow threshold; the autoscaler's
        bounds are also narrowed to the engine's max_workers, so the
        decision log never reports a width the pool could not have.
        """
        fleet = mixed_fleet(5, segment_duration=1.0, camera_rate_hz=RATE,
                            deadline_ms=100.0)
        autoscaler = LatencyAutoscaler(min_workers=1, max_workers=8,
                                       grow_patience=1, shrink_patience=50,
                                       cooldown=0)
        engine = ServingEngine(store=None, max_workers=2, autoscaler=autoscaler)
        report = engine.serve(fleet, parallel=True)
        assert any(d.action == "grow" for d in report.scale_decisions)
        # During the call the decision log is bounded by the real pool cap;
        # afterwards the scaler's full sizing state is restored, so a later
        # streaming serve's virtual capacity stays host-independent.
        assert all(d.workers_after <= 2 for d in report.scale_decisions)
        assert autoscaler.max_workers == 8
        assert autoscaler.workers == 1


class TestServingAccounting:
    """Deadline-miss accounting and decision-clock continuity.

    ``deadline_misses`` used to be computed in two separate code paths
    (streaming vs pool) that could drift apart; it is now a single helper
    with one definition — virtual-schedule violations only — and these
    tests pin it across every ingestion path.
    """

    @pytest.fixture(scope="class")
    def fleet(self):
        return mixed_fleet(3, segment_duration=1.0, camera_rate_hz=RATE,
                           deadline_ms=300.0)

    def test_deadline_misses_identical_across_ingestion_paths(self, fleet):
        """Same fleet, three paths, one number.

        The materialized and pool paths serve every frame on arrival by
        construction, and the unthrottled streaming loop does too — so the
        shared definition makes all three report identical misses (zero),
        where the old split accounting let the pool path silently diverge.
        """
        materialized = ServingEngine(store=None, max_workers=1).serve(
            fleet, parallel=False, ingestion="materialized")
        streaming = ServingEngine(store=None, max_workers=1).serve(
            fleet, parallel=False, ingestion="streaming")
        pooled = ServingEngine(store=None, max_workers=2).serve(
            fleet, parallel=True)
        assert pooled.ingestion == "pool"
        assert (materialized.deadline_misses
                == streaming.deadline_misses
                == pooled.deadline_misses
                == 0)

    def test_throttled_misses_match_recorded_latencies(self, fleet):
        """The counter is exactly the over-deadline latency samples.

        A starved streaming loop queues frames past the uniform 300 ms
        deadline; every miss the report counts must correspond one-to-one
        with a ``virtual_latency_ms`` sample above the deadline — the
        single-accounting-point invariant.
        """
        autoscaler = LatencyAutoscaler(min_workers=1, max_workers=1,
                                       window=32)
        engine = ServingEngine(store=None, max_workers=1,
                               autoscaler=autoscaler,
                               frames_per_worker_tick=1)
        report = engine.serve(fleet, parallel=False, ingestion="streaming")
        over = sum(1 for latency in report.virtual_latency_ms if latency > 300.0)
        assert report.deadline_misses == over
        assert report.deadline_misses > 0  # the throttle actually bit

    def test_decision_log_monotone_across_serve_calls(self, fleet):
        """A shared autoscaler's log stays clock-ordered call to call.

        Each serve call's virtual clock restarts near zero; the engine's
        continuity offset must keep the accumulated decision log sorted by
        clock (and tick) so the service's metrics endpoint can order it.
        """
        autoscaler = LatencyAutoscaler(min_workers=1, max_workers=4,
                                       window=32, grow_patience=2,
                                       shrink_patience=4, cooldown=2)
        engine = ServingEngine(store=None, max_workers=1,
                               autoscaler=autoscaler,
                               frames_per_worker_tick=1)
        engine.serve(fleet, parallel=False, ingestion="streaming")
        first_count = len(autoscaler.decisions)
        engine.serve(fleet, parallel=False, ingestion="streaming")
        assert len(autoscaler.decisions) > first_count
        decisions = list(autoscaler.decisions)
        clocks = [d.clock for d in decisions]
        assert clocks == sorted(clocks)
        # The second call's decisions (prime included) sit strictly after
        # every clock of the first call's.
        assert clocks[first_count] > clocks[first_count - 1]
        ticks = [d.tick for d in decisions]
        assert ticks == sorted(ticks) and len(set(ticks)) == len(ticks)


class TestServingStore:
    def test_session_results_roundtrip(self, tmp_path):
        fleet = mixed_fleet(2, segment_duration=1.0, camera_rate_hz=RATE)
        store = RunStore(tmp_path)
        first = ServingEngine(store=store, max_workers=1).serve(fleet)
        assert first.computed_sessions == 2 and first.store_hits == 0
        second = ServingEngine(store=store, max_workers=1).serve(fleet)
        assert second.computed_sessions == 0 and second.store_hits == 2
        for stream_id in first.results:
            assert second.results[stream_id].signature() == first.results[stream_id].signature()

    def test_key_covers_spec(self, tmp_path):
        a = mixed_deployment_stream("a", seed=0, segment_duration=1.0)
        b = mixed_deployment_stream("a", seed=1, segment_duration=1.0)
        assert serving_key(a) != serving_key(b)

    def test_key_ignores_deadline(self):
        """A QoS change must keep the cache warm — results are identical."""
        a = mixed_deployment_stream("a", segment_duration=1.0)
        b = mixed_deployment_stream("a", segment_duration=1.0, deadline_ms=400.0)
        assert serving_key(a) == serving_key(b)

    def test_store_hit_reports_requested_deadline(self, tmp_path):
        """A hit computed under another QoS contract reports the current one."""
        cold = mixed_fleet(1, segment_duration=1.0, camera_rate_hz=RATE)
        warm = mixed_fleet(1, segment_duration=1.0, camera_rate_hz=RATE,
                           deadline_ms=250.0)
        store = RunStore(tmp_path)
        ServingEngine(store=store, max_workers=1).serve(cold)
        report = ServingEngine(store=store, max_workers=1).serve(warm)
        assert report.store_hits == 1
        payload = report.results[warm[0].stream_id].spec_payload
        assert payload["deadline_ms"] == 250.0

    def test_warm_serve_still_reports_resolution_path(self, tmp_path):
        fleet = mixed_fleet(2, segment_duration=1.0, camera_rate_hz=RATE)
        store = RunStore(tmp_path)
        ServingEngine(store=store, max_workers=1).serve(fleet)
        warm = ServingEngine(store=store, max_workers=1).serve(
            fleet, parallel=False, ingestion="streaming")
        assert warm.store_hits == 2
        assert warm.ingestion == "streaming"

    def test_duplicate_stream_ids_rejected(self):
        spec = mixed_deployment_stream("dup", segment_duration=1.0)
        with pytest.raises(ValueError):
            ServingEngine().serve([spec, spec])


class TestSchedulerTelemetryFeed:
    @pytest.fixture(scope="class")
    def results(self):
        fleet = mixed_fleet(2, segment_duration=SEGMENT, camera_rate_hz=RATE)
        return ServingEngine(store=None, max_workers=1).serve(fleet).results

    def test_samples_cover_served_modes(self, results):
        accelerator = accelerator_for("drone")
        samples = scheduler_training_samples(results, accelerator)
        served_modes = {estimate.mode for result in results.values()
                        for estimate in result.trajectory.estimates}
        assert set(samples) == served_modes
        for workloads, latencies in samples.values():
            assert len(workloads) == len(latencies) > 0

    def test_trains_offload_scheduler(self, results):
        accelerator = accelerator_for("drone")
        fits = train_offload_scheduler(results, accelerator)
        assert fits, "no mode had enough traffic to train"
        for mode, r2 in fits.items():
            assert accelerator.scheduler.is_trained(mode)
            assert r2 <= 1.0 + 1e-9
        mode = next(iter(fits))
        workload = next(
            backend_result.workload
            for result in results.values()
            for backend_result in result.trajectory.backend_results
            if backend_result.mode == mode
        )
        decision = accelerator.scheduler.decide(mode, workload, actual_cpu_ms=1.0)
        assert decision.predicted_cpu_ms >= 0.0

    def test_online_observation_refits(self, results):
        accelerator = accelerator_for("drone")
        scheduler = accelerator.scheduler
        samples = scheduler_training_samples(results, accelerator)
        mode, (workloads, latencies) = max(samples.items(), key=lambda kv: len(kv[1][0]))
        assert len(workloads) >= 8
        refit_r2 = None
        for workload, cpu_ms in zip(workloads, latencies):
            fit = scheduler.observe(mode, workload, cpu_ms, refit_every=8)
            refit_r2 = fit if fit is not None else refit_r2
        assert refit_r2 is not None
        assert scheduler.is_trained(mode)
