"""Fast guard for the Fig. 3 qualitative result (per-scenario winners).

The benchmark sweep in ``benchmarks/test_fig03_accuracy.py`` asserts the
paper's winner ordering at full characterization length; this test pins the
same facts on a short (6 s) single-frame-rate sequence so the qualitative
result is guarded by the unit suite without paying for the benchmark.  The
6 s duration matters for Fig. 3a: the indoor IMU degradation
(:mod:`repro.sensors.scenarios`) needs a few seconds of bias random walk
before unaided VIO falls behind SLAM, which is exactly the effect the paper
attributes to indoor environments.
"""

import pytest

from repro.experiments.fig03_accuracy import accuracy_vs_framerate, best_algorithm_per_scenario
from repro.sensors.scenarios import ScenarioKind


@pytest.fixture(scope="module")
def report():
    # Same cells as the smoke benchmark tier, so the persistent run store is
    # shared between this guard and `pytest benchmarks -m smoke`.
    return accuracy_vs_framerate(
        frame_rates=(10.0,), duration=6.0, platform_kind="drone", landmark_count=250,
    )


def test_winner_per_scenario(report):
    best = best_algorithm_per_scenario(report)
    # SLAM wins indoors without a map (Fig. 3a): the degraded indoor IMU
    # makes unaided VIO drift while SLAM never consumes the IMU.
    assert best[ScenarioKind.INDOOR_UNKNOWN.value] == "slam"
    # VIO+GPS wins outdoors — including outdoor_known, where the degraded
    # outdoor survey map keeps registration behind GPS aiding (Fig. 3d).
    assert best[ScenarioKind.OUTDOOR_UNKNOWN.value] == "vio"
    assert best[ScenarioKind.OUTDOOR_KNOWN.value] == "vio"
    # Indoors with a map, a map-based method wins.
    assert best[ScenarioKind.INDOOR_KNOWN.value] in ("registration", "slam")


def test_indoor_unknown_slam_beats_vio(report):
    """Fig. 3a margin: SLAM beats drift-prone VIO indoors without a map."""
    rows = report[ScenarioKind.INDOOR_UNKNOWN.value]
    slam = [r["rmse_m"] for r in rows if r["algorithm"] == "slam"]
    vio = [r["rmse_m"] for r in rows if r["algorithm"] == "vio"]
    assert slam and vio
    assert max(slam) < min(vio)


def test_outdoor_map_registration_degrades(report):
    """GPS aiding beats map registration outdoors by a clear margin."""
    rows = report[ScenarioKind.OUTDOOR_KNOWN.value]
    registration = [r["rmse_m"] for r in rows if r["algorithm"] == "registration"]
    vio = [r["rmse_m"] for r in rows if r["algorithm"] == "vio"]
    assert registration and vio
    assert min(registration) > 1.5 * max(vio)


def test_registration_absent_without_map(report):
    for scenario in (ScenarioKind.INDOOR_UNKNOWN.value, ScenarioKind.OUTDOOR_UNKNOWN.value):
        assert all(row["algorithm"] != "registration" for row in report[scenario])


def test_indoor_known_map_quality_preserved(report):
    """The indoor survey map stays accurate: registration error is small."""
    rows = report[ScenarioKind.INDOOR_KNOWN.value]
    registration = [r["rmse_m"] for r in rows if r["algorithm"] == "registration"]
    assert registration and min(registration) < 1.0
