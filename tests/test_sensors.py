"""Tests for the sensor simulation: trajectories, worlds, IMU, GPS, datasets."""

import numpy as np
import pytest

from repro.common.geometry import Pose
from repro.sensors.dataset import Frame, SequenceBuilder
from repro.sensors.gps import GpsSimulator
from repro.sensors.imu import GRAVITY, ImuSimulator, integrate_imu
from repro.sensors.scenarios import (
    OperatingScenario,
    ScenarioKind,
    mixed_deployment_sequence,
    scenario_catalog,
)
from repro.sensors.trajectory import (
    circle_trajectory,
    figure_eight_trajectory,
    random_smooth_trajectory,
    straight_trajectory,
    warehouse_trajectory,
)
from repro.sensors.world import LandmarkWorld, body_frame_from_camera, camera_frame_from_body
from repro.common.config import SensorConfig


class TestTrajectories:
    def test_circle_radius(self):
        trajectory = circle_trajectory(radius=10.0, period=40.0)
        sample = trajectory.sample(7.0)
        assert np.isclose(np.linalg.norm(sample.pose.translation[:2]), 10.0, atol=1e-6)

    def test_circle_speed_constant(self):
        trajectory = circle_trajectory(radius=10.0, period=40.0)
        speeds = [np.linalg.norm(trajectory.sample(t).velocity) for t in (1.0, 5.0, 13.0)]
        assert np.allclose(speeds, speeds[0], rtol=1e-3)

    def test_straight_moves_forward(self):
        trajectory = straight_trajectory(speed=5.0)
        first = trajectory.sample(0.0).pose.translation
        later = trajectory.sample(4.0).pose.translation
        assert later[0] - first[0] > 15.0

    def test_figure_eight_bounded(self):
        trajectory = figure_eight_trajectory(scale=5.0, period=20.0)
        for t in np.linspace(0, 20, 20):
            position = trajectory.sample(float(t)).pose.translation
            assert np.all(np.abs(position[:2]) <= 5.5)

    def test_warehouse_stays_nonnegative_x(self):
        trajectory = warehouse_trajectory(aisle_length=10.0, speed=1.0)
        for t in np.linspace(0, 30, 30):
            x = trajectory.sample(float(t)).pose.translation[0]
            assert -0.5 <= x <= 10.5

    def test_yaw_follows_direction_of_travel(self):
        trajectory = straight_trajectory(speed=3.0, lateral_wiggle=0.0)
        sample = trajectory.sample(2.0)
        yaw, _, _ = sample.pose.euler()
        assert abs(yaw) < 1e-3

    def test_sample_range_count_and_spacing(self):
        trajectory = circle_trajectory()
        samples = trajectory.sample_range(duration=2.0, rate_hz=10.0)
        assert len(samples) == 20
        assert np.isclose(samples[1].timestamp - samples[0].timestamp, 0.1)

    def test_random_trajectory_deterministic(self):
        a = random_smooth_trajectory(seed=4).sample(3.0).pose.translation
        b = random_smooth_trajectory(seed=4).sample(3.0).pose.translation
        assert np.allclose(a, b)

    def test_finite_difference_consistency(self):
        trajectory = circle_trajectory(radius=5.0, period=30.0)
        sample = trajectory.sample(3.0)
        dt = 1e-3
        ahead = trajectory.sample(3.0 + dt).pose.translation
        behind = trajectory.sample(3.0 - dt).pose.translation
        velocity_fd = (ahead - behind) / (2 * dt)
        assert np.allclose(velocity_fd, sample.velocity, atol=1e-3)


class TestLandmarkWorld:
    def _world(self, indoor=True):
        path = np.stack([np.linspace(0, 10, 20), np.zeros(20), np.ones(20)], axis=1)
        factory = LandmarkWorld.indoor if indoor else LandmarkWorld.outdoor
        return factory(path, count=80, seed=1)

    def test_count_and_ids(self):
        world = self._world()
        assert len(world) == 80
        assert world.landmarks[5].landmark_id == 5

    def test_indoor_closer_than_outdoor(self):
        indoor = self._world(indoor=True)
        outdoor = self._world(indoor=False)
        indoor_spread = np.abs(indoor.positions[:, 1]).mean()
        outdoor_spread = np.abs(outdoor.positions[:, 1]).mean()
        assert indoor_spread < outdoor_spread

    def test_visibility_and_observation(self, small_rig):
        world = self._world()
        pose = Pose.identity()
        visible = world.visible_from(pose, small_rig.camera, max_depth=30.0)
        observations = world.observe(pose, small_rig.camera, max_depth=30.0)
        assert set(observations.keys()).issubset(set(visible))

    def test_subset(self):
        world = self._world()
        sub = world.subset([0, 1, 2])
        assert len(sub) == 3

    def test_frame_conversion_roundtrip(self, rng):
        points = rng.normal(size=(10, 3))
        roundtrip = body_frame_from_camera(camera_frame_from_body(points))
        assert np.allclose(roundtrip, points, atol=1e-12)

    def test_camera_frame_convention(self):
        # Body +x (forward) should become camera +z (optical axis).
        forward = camera_frame_from_body(np.array([[1.0, 0.0, 0.0]]))[0]
        assert np.allclose(forward, [0.0, 0.0, 1.0])


class TestImu:
    def test_stationary_measures_gravity(self):
        from repro.sensors.trajectory import TrajectorySample

        truth = TrajectorySample(
            timestamp=0.0, pose=Pose.identity(), velocity=np.zeros(3),
            acceleration=np.zeros(3), angular_velocity=np.zeros(3),
        )
        imu = ImuSimulator(gyro_noise=0.0, accel_noise=0.0, gyro_bias_walk=0.0, accel_bias_walk=0.0)
        sample = imu.measure(truth, dt=0.01)
        assert np.allclose(sample.linear_acceleration, -GRAVITY, atol=1e-9)
        assert np.allclose(sample.angular_velocity, np.zeros(3), atol=1e-9)

    def test_noise_is_reproducible(self):
        from repro.sensors.trajectory import TrajectorySample

        truth = TrajectorySample(0.0, Pose.identity(), np.zeros(3), np.zeros(3), np.zeros(3))
        a = ImuSimulator(seed=5).measure(truth, 0.01)
        b = ImuSimulator(seed=5).measure(truth, 0.01)
        assert np.allclose(a.linear_acceleration, b.linear_acceleration)

    def test_integration_recovers_straight_motion(self):
        trajectory = straight_trajectory(speed=2.0, lateral_wiggle=0.0)
        samples = trajectory.sample_range(duration=1.0, rate_hz=200.0)
        imu = ImuSimulator(gyro_noise=0.0, accel_noise=0.0, gyro_bias_walk=0.0, accel_bias_walk=0.0)
        measurements = imu.measure_interval(samples)
        pose, velocity = integrate_imu(measurements, samples[0].pose, samples[0].velocity)
        assert np.allclose(pose.translation, samples[-1].pose.translation, atol=0.05)

    def test_noisy_integration_drifts(self):
        trajectory = straight_trajectory(speed=2.0)
        samples = trajectory.sample_range(duration=3.0, rate_hz=100.0)
        imu = ImuSimulator(gyro_noise=5e-3, accel_noise=5e-2, seed=2)
        measurements = imu.measure_interval(samples)
        pose, _ = integrate_imu(measurements, samples[0].pose, samples[0].velocity)
        drift = np.linalg.norm(pose.translation - samples[-1].pose.translation)
        assert drift > 0.0


class TestGps:
    def test_indoor_blocked(self):
        gps = GpsSimulator(indoor=True)
        assert gps.measure(0.0, Pose.identity()) is None
        assert gps.availability() == 0.0

    def test_outdoor_fix_near_truth(self):
        gps = GpsSimulator(noise_std=0.1, multipath_probability=0.0, seed=1)
        pose = Pose(np.eye(3), np.array([5.0, -2.0, 1.0]))
        fix = gps.measure(0.0, pose)
        assert fix is not None
        assert np.linalg.norm(fix.position - pose.translation) < 1.0

    def test_outages(self):
        gps = GpsSimulator(outage_probability=1.0)
        assert gps.measure(0.0, Pose.identity()) is None

    def test_availability_matches_outage(self):
        gps = GpsSimulator(outage_probability=0.25)
        assert np.isclose(gps.availability(), 0.75)


class TestScenariosAndDataset:
    def test_scenario_taxonomy(self):
        assert ScenarioKind.INDOOR_UNKNOWN.preferred_backend == "slam"
        assert ScenarioKind.INDOOR_KNOWN.preferred_backend == "registration"
        assert ScenarioKind.OUTDOOR_UNKNOWN.preferred_backend == "vio"
        assert ScenarioKind.OUTDOOR_KNOWN.preferred_backend == "vio"
        assert not ScenarioKind.INDOOR_UNKNOWN.has_gps
        assert ScenarioKind.OUTDOOR_KNOWN.has_map

    def test_catalog_covers_all_scenarios(self):
        catalog = scenario_catalog(duration=5.0)
        assert set(catalog.keys()) == set(ScenarioKind)

    def test_mixed_deployment_mix(self):
        segments = mixed_deployment_sequence()
        outdoor = sum(1 for s in segments if not s.is_indoor)
        assert outdoor == 2  # 50% outdoor frames
        assert len(segments) == 4

    def test_sequence_structure(self, outdoor_sequence):
        assert len(outdoor_sequence) > 10
        frame = outdoor_sequence.frames[5]
        assert isinstance(frame, Frame)
        assert frame.observation_count > 0
        assert len(frame.imu_samples) > 0
        assert frame.has_gps  # outdoor scenario provides GPS
        assert np.isclose(outdoor_sequence.frame_rate, 10.0, atol=0.5)

    def test_indoor_sequence_has_no_gps(self, indoor_sequence):
        assert all(not frame.has_gps for frame in indoor_sequence.frames)
        assert not indoor_sequence.has_prebuilt_map

    def test_mapped_sequence_flag(self, indoor_mapped_sequence):
        assert indoor_mapped_sequence.has_prebuilt_map

    def test_observations_match_projection(self, outdoor_sequence):
        frame = outdoor_sequence.frames[3]
        rig = outdoor_sequence.rig
        world = outdoor_sequence.world
        for landmark_id, obs in list(frame.observations.items())[:10]:
            disparity = obs.left_pixel[0] - obs.right_pixel[0]
            assert disparity > -2.0  # disparity is positive up to noise
            assert 0 <= obs.left_pixel[0] <= rig.camera.width
        assert len(world) == outdoor_sequence.config.landmark_count

    def test_imu_batches_cover_frame_interval(self, outdoor_sequence):
        frame = outdoor_sequence.frames[4]
        stamps = [s.timestamp for s in frame.imu_samples]
        assert stamps[0] >= outdoor_sequence.frames[3].timestamp - 1e-6
        assert stamps[-1] <= frame.timestamp + 1e-6
        assert len(stamps) >= outdoor_sequence.config.imu_per_frame

    def test_build_mixed_indices_contiguous(self, small_sensor_config):
        builder = SequenceBuilder(small_sensor_config)
        catalog = scenario_catalog(duration=2.0, landmark_count=60)
        segments = builder.build_mixed([catalog[ScenarioKind.OUTDOOR_UNKNOWN],
                                        catalog[ScenarioKind.INDOOR_UNKNOWN]])
        assert segments[1].frames[0].index == segments[0].frames[-1].index + 1
        assert segments[1].frames[0].timestamp > segments[0].frames[-1].timestamp

    def test_ground_truth_accessors(self, indoor_sequence):
        positions = indoor_sequence.ground_truth_positions()
        assert positions.shape == (len(indoor_sequence), 3)
        assert len(indoor_sequence.ground_truth_trajectory()) == len(indoor_sequence)


class TestImageRendering:
    def test_rendered_images_present(self, rendered_sequence):
        frame = rendered_sequence.frames[0]
        assert frame.has_images
        assert frame.left_image.shape == (120, 160)
        assert frame.left_image.max() <= 255.0
        assert frame.left_image.min() >= 0.0

    def test_rendered_images_differ_between_views(self, rendered_sequence):
        frame = rendered_sequence.frames[0]
        assert not np.allclose(frame.left_image, frame.right_image)
