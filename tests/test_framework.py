"""Integration tests for the unified localization framework (Fig. 4 dataflow)."""

import numpy as np
import pytest

from repro.common.config import LocalizerConfig
from repro.core.framework import EudoxusLocalizer
from repro.core.modes import BackendMode
from repro.core.result import PoseEstimate, TrajectoryResult
from repro.sensors.scenarios import ScenarioKind


@pytest.fixture(scope="module")
def config():
    config = LocalizerConfig()
    config.frontend.max_features = 100
    return config


class TestFrameworkIntegration:
    def test_outdoor_uses_vio_and_is_accurate(self, outdoor_sequence, config):
        localizer = EudoxusLocalizer(config)
        result = localizer.process_sequence(outdoor_sequence)
        assert len(result) == len(outdoor_sequence)
        assert all(e.mode == "vio" for e in result.estimates)
        assert result.rmse_error() < 1.0

    def test_indoor_unmapped_uses_slam(self, indoor_sequence, config):
        localizer = EudoxusLocalizer(config)
        result = localizer.process_sequence(indoor_sequence)
        assert all(e.mode == "slam" for e in result.estimates)
        # Low-resolution fixture: require staying localized on the 5 m course.
        assert result.rmse_error() < 1.5

    def test_indoor_mapped_uses_registration(self, indoor_mapped_sequence, config):
        localizer = EudoxusLocalizer(config)
        result = localizer.process_sequence(indoor_mapped_sequence)
        assert all(e.mode == "registration" for e in result.estimates)
        assert result.rmse_error() < 0.5

    def test_mode_override(self, indoor_sequence, config):
        localizer = EudoxusLocalizer(config, mode_override=BackendMode.VIO)
        result = localizer.process_sequence(indoor_sequence)
        assert all(e.mode == "vio" for e in result.estimates)

    def test_registration_falls_back_to_slam_without_map(self, indoor_sequence, config):
        localizer = EudoxusLocalizer(config, mode_override=BackendMode.REGISTRATION)
        result = localizer.process_sequence(indoor_sequence)
        # No survey map exists for this sequence: the framework runs SLAM instead.
        assert all(e.mode == "slam" for e in result.estimates)

    def test_registration_fallback_is_reported(self, indoor_sequence, config):
        """Regression: the fallback path reports the mode that actually ran.

        The BackendResult must carry mode="slam" (not the requested
        registration) and record the requested mode in its diagnostics, so
        downstream per-mode aggregation attributes the frames correctly.
        """
        localizer = EudoxusLocalizer(config, mode_override=BackendMode.REGISTRATION)
        result = localizer.process_sequence(indoor_sequence)
        assert localizer.registration is None
        for backend_result in result.backend_results:
            assert backend_result.mode == "slam"
            assert backend_result.diagnostics["fallback_from"] == "registration"
        # The per-mode split sees only SLAM frames — no phantom registration bin.
        assert set(result.per_mode().keys()) == {"slam"}

    def test_no_fallback_marker_when_map_exists(self, indoor_mapped_sequence, config):
        localizer = EudoxusLocalizer(config, mode_override=BackendMode.REGISTRATION)
        result = localizer.process_sequence(indoor_mapped_sequence)
        for backend_result in result.backend_results:
            assert backend_result.mode == "registration"
            assert "fallback_from" not in backend_result.diagnostics

    def test_results_carry_workloads_and_latencies(self, outdoor_sequence, config):
        localizer = EudoxusLocalizer(config)
        result = localizer.process_sequence(outdoor_sequence)
        assert len(result.frontend_results) == len(result)
        assert len(result.backend_results) == len(result)
        assert len(result.latency_records) == len(result)
        record = result.latency_records[5]
        assert record.frontend_total > 0.0
        assert result.mean_feature_count() > 10

    def test_process_frame_requires_prepare(self, outdoor_sequence, config):
        localizer = EudoxusLocalizer(config)
        with pytest.raises(RuntimeError):
            localizer.process_frame(outdoor_sequence.frames[0], outdoor_sequence)

    def test_process_mixed_concatenates(self, outdoor_sequence, indoor_sequence, config):
        localizer = EudoxusLocalizer(config)
        combined = localizer.process_mixed([outdoor_sequence, indoor_sequence])
        assert len(combined) == len(outdoor_sequence) + len(indoor_sequence)
        modes = {e.mode for e in combined.estimates}
        assert modes == {"vio", "slam"}


class TestTrajectoryResult:
    def _result(self):
        result = TrajectoryResult()
        for i in range(10):
            pose = PoseEstimate(
                frame_index=i, timestamp=0.1 * i,
                pose=__import__("repro.common.geometry", fromlist=["Pose"]).Pose(
                    np.eye(3), np.array([float(i), 0.1, 0.0])
                ),
                mode="vio" if i % 2 == 0 else "slam",
                ground_truth=__import__("repro.common.geometry", fromlist=["Pose"]).Pose(
                    np.eye(3), np.array([float(i), 0.0, 0.0])
                ),
            )
            result.estimates.append(pose)
        return result

    def test_rmse(self):
        assert self._result().rmse_error() == pytest.approx(0.1)

    def test_skip_initial(self):
        assert self._result().rmse_error(skip_initial=5) == pytest.approx(0.1)

    def test_per_mode_split(self):
        by_mode = self._result().per_mode()
        assert set(by_mode) == {"vio", "slam"}
        assert len(by_mode["vio"]) == 5

    def test_translation_error_property(self):
        estimate = self._result().estimates[0]
        assert estimate.translation_error == pytest.approx(0.1)

    def test_empty_result(self):
        empty = TrajectoryResult()
        assert empty.rmse_error() == 0.0
        assert empty.relative_error_percent() == 0.0
        assert empty.mean_feature_count() == 0.0


class TestAccuracyOrdering:
    """The core Fig. 2/3 claim: each scenario prefers a different algorithm.

    Two of the paper's orderings are asserted here: VIO+GPS dominates SLAM
    outdoors, and registration against a survey map matches or beats
    drift-prone VIO in known indoor environments.  The third (SLAM beating
    unaided VIO indoors, Fig. 3a) needs a few seconds of indoor IMU
    degradation (see :mod:`repro.sensors.scenarios`) to manifest and is
    guarded at 6 s in ``tests/test_fig03_winners.py``.
    """

    def test_vio_with_gps_beats_slam_outdoors(self, outdoor_sequence, config):
        vio_error = EudoxusLocalizer(config, mode_override=BackendMode.VIO).process_sequence(
            outdoor_sequence).rmse_error()
        slam_error = EudoxusLocalizer(config, mode_override=BackendMode.SLAM).process_sequence(
            outdoor_sequence).rmse_error()
        assert vio_error < slam_error

    def test_registration_competitive_with_vio_indoors_with_map(self, indoor_mapped_sequence, config):
        registration_error = EudoxusLocalizer(config).process_sequence(
            indoor_mapped_sequence).rmse_error()
        vio_error = EudoxusLocalizer(config, mode_override=BackendMode.VIO).process_sequence(
            indoor_mapped_sequence).rmse_error()
        assert registration_error < vio_error + 0.1

    def test_slam_usable_without_gps_or_map(self, indoor_sequence, config):
        slam_error = EudoxusLocalizer(config, mode_override=BackendMode.SLAM).process_sequence(
            indoor_sequence).rmse_error()
        # Low-resolution fixture: SLAM must stay localized on the 5 m course
        # even though neither GPS nor a survey map is available.
        assert slam_error < 1.5
