"""Tests for map tracking, the registration backend, modes and metrics."""

import numpy as np
import pytest

from repro.backend.registration import RegistrationBackend
from repro.backend.tracking import LocalizationMap, MapPoint, MapTracker, RegistrationWorkload
from repro.common.config import BackendConfig, TrackingConfig
from repro.common.geometry import Pose, euler_to_rotation
from repro.core.modes import BackendMode, ModeSelector
from repro.frontend.frontend import VisualFrontend
from repro.metrics.trajectory import (
    absolute_trajectory_error,
    relative_trajectory_error_percent,
    rmse,
    trajectory_length,
    umeyama_alignment,
)
from repro.sensors.scenarios import ScenarioKind


class TestLocalizationMap:
    def test_from_world(self, indoor_mapped_sequence):
        localization_map = LocalizationMap.from_world(indoor_mapped_sequence.world, position_noise=0.01)
        assert len(localization_map) == len(indoor_mapped_sequence.world)
        assert localization_map.positions.shape == (len(localization_map), 3)
        assert localization_map.descriptors().shape[0] == len(localization_map)

    def test_update_and_add_point(self):
        localization_map = LocalizationMap()
        localization_map.add_point(MapPoint(1, [0.0, 0.0, 0.0]))
        localization_map.update_point(1, [1.0, 0.0, 0.0])
        localization_map.update_point(2, [2.0, 0.0, 0.0])
        assert np.allclose(localization_map.points[1].position, [1.0, 0.0, 0.0])
        assert 2 in localization_map.points

    def test_from_landmark_positions(self):
        positions = {3: np.array([1.0, 2.0, 3.0]), 7: np.array([4.0, 5.0, 6.0])}
        localization_map = LocalizationMap.from_landmark_positions(positions)
        assert set(localization_map.point_ids) == {3, 7}


class TestMapTracker:
    def test_recovers_pose_against_survey_map(self, indoor_mapped_sequence):
        localization_map = LocalizationMap.from_world(indoor_mapped_sequence.world, position_noise=0.02)
        tracker = MapTracker(TrackingConfig(), camera=indoor_mapped_sequence.rig.camera)
        frontend = VisualFrontend(rig=indoor_mapped_sequence.rig, sparse=True, dropout_probability=0.0)
        errors = []
        for frame in indoor_mapped_sequence.frames[:10]:
            pose, workload = tracker.track(frontend.process(frame), localization_map)
            assert pose is not None
            errors.append(pose.distance_to(frame.ground_truth))
            assert workload.map_points == len(localization_map)
            assert workload.matches >= workload.inliers
        assert np.mean(errors) < 0.3

    def test_returns_none_without_enough_matches(self, indoor_sequence):
        tracker = MapTracker(TrackingConfig(min_inliers=8))
        frontend = VisualFrontend(rig=indoor_sequence.rig, sparse=True)
        empty_map = LocalizationMap()
        pose, workload = tracker.track(frontend.process(indoor_sequence.frames[0]), empty_map)
        assert pose is None
        assert workload.map_points == 0

    def test_kernel_timings(self, indoor_mapped_sequence):
        localization_map = LocalizationMap.from_world(indoor_mapped_sequence.world)
        tracker = MapTracker(camera=indoor_mapped_sequence.rig.camera)
        frontend = VisualFrontend(rig=indoor_mapped_sequence.rig, sparse=True)
        tracker.track(frontend.process(indoor_mapped_sequence.frames[0]), localization_map)
        assert {"projection", "match", "pose_optimization", "update"}.issubset(tracker.last_kernel_ms)


class TestRegistrationBackend:
    def test_accuracy_on_mapped_indoor(self, indoor_mapped_sequence):
        backend = RegistrationBackend.from_world(
            indoor_mapped_sequence.world, map_noise=0.03, camera=indoor_mapped_sequence.rig.camera
        )
        frontend = VisualFrontend(rig=indoor_mapped_sequence.rig, sparse=True, dropout_probability=0.0)
        errors = []
        for frame in indoor_mapped_sequence.frames[:20]:
            result = backend.process(frontend.process(frame), frame)
            errors.append(result.pose.distance_to(frame.ground_truth))
            assert result.mode == "registration"
        assert np.sqrt(np.mean(np.square(errors))) < 0.3

    def test_holds_last_pose_when_tracking_fails(self, indoor_mapped_sequence):
        backend = RegistrationBackend(LocalizationMap(), camera=indoor_mapped_sequence.rig.camera)
        frontend = VisualFrontend(rig=indoor_mapped_sequence.rig, sparse=True)
        result = backend.process(frontend.process(indoor_mapped_sequence.frames[0]),
                                 indoor_mapped_sequence.frames[0])
        assert not result.valid
        assert isinstance(result.workload, RegistrationWorkload)

    def test_reset(self, indoor_mapped_sequence):
        backend = RegistrationBackend.from_world(indoor_mapped_sequence.world)
        backend._last_pose = Pose.identity()
        backend.reset()
        assert backend._last_pose is None


class TestModeSelector:
    def test_scenario_mapping(self):
        assert ModeSelector.select_for_scenario(ScenarioKind.OUTDOOR_UNKNOWN) is BackendMode.VIO
        assert ModeSelector.select_for_scenario(ScenarioKind.OUTDOOR_KNOWN) is BackendMode.VIO
        assert ModeSelector.select_for_scenario(ScenarioKind.INDOOR_KNOWN) is BackendMode.REGISTRATION
        assert ModeSelector.select_for_scenario(ScenarioKind.INDOOR_UNKNOWN) is BackendMode.SLAM

    def test_override(self, outdoor_sequence):
        selector = ModeSelector(override=BackendMode.SLAM)
        assert selector.select(outdoor_sequence.frames[0], has_map=True) is BackendMode.SLAM

    def test_map_availability_overrides_scenario_flag(self, indoor_sequence):
        selector = ModeSelector()
        assert selector.select(indoor_sequence.frames[0], has_map=True) is BackendMode.REGISTRATION
        assert selector.select(indoor_sequence.frames[0], has_map=False) is BackendMode.SLAM


class TestMetrics:
    def test_rmse(self):
        assert rmse([3.0, 4.0]) == pytest.approx(np.sqrt(12.5))
        assert rmse([]) == 0.0

    def test_umeyama_recovers_transform(self, rng):
        points = rng.normal(size=(20, 3))
        rotation_true = euler_to_rotation(0.4, 0.1, -0.2)
        translation_true = np.array([1.0, -2.0, 0.5])
        transformed = points @ rotation_true.T + translation_true
        rotation, translation, scale = umeyama_alignment(points, transformed)
        assert np.allclose(rotation, rotation_true, atol=1e-6)
        assert np.allclose(translation, translation_true, atol=1e-6)
        assert np.isclose(scale, 1.0)

    def test_umeyama_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            umeyama_alignment(np.zeros((4, 3)), np.zeros((5, 3)))

    def test_absolute_trajectory_error(self):
        reference = [Pose(np.eye(3), np.array([float(i), 0, 0])) for i in range(10)]
        estimated = [Pose(np.eye(3), np.array([float(i), 0.5, 0])) for i in range(10)]
        assert absolute_trajectory_error(estimated, reference) == pytest.approx(0.5)

    def test_aligned_error_removes_constant_offset(self):
        reference = [Pose(np.eye(3), np.array([float(i), 0, 0])) for i in range(10)]
        estimated = [Pose(np.eye(3), np.array([float(i) + 3.0, 0, 0])) for i in range(10)]
        assert absolute_trajectory_error(estimated, reference, align=True) < 1e-6

    def test_relative_error_zero_for_perfect(self):
        reference = [Pose(np.eye(3), np.array([0.3 * i, 0, 0])) for i in range(30)]
        assert relative_trajectory_error_percent(reference, reference) == pytest.approx(0.0)

    def test_trajectory_length(self):
        poses = [Pose(np.eye(3), np.array([float(i), 0, 0])) for i in range(5)]
        assert trajectory_length(poses) == pytest.approx(4.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            absolute_trajectory_error([Pose.identity()], [Pose.identity(), Pose.identity()])
