"""Tests for mapping (bundle adjustment), marginalization, BoW and SLAM."""

import numpy as np
import pytest

from repro.backend.bow import BinaryVocabulary, KeyframeDatabase
from repro.backend.mapping import KeyframeMapper, SlamWorkload
from repro.backend.marginalization import marginalize_schur, marginalize_structured
from repro.backend.slam import SlamBackend
from repro.common.config import BackendConfig, MappingConfig
from repro.common.geometry import Pose
from repro.frontend.frontend import VisualFrontend
from repro.frontend.orb import descriptor_from_seed


def random_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


class TestMarginalization:
    def test_matches_dense_schur(self):
        hessian = random_spd(12, seed=1)
        gradient = np.random.default_rng(1).normal(size=12)
        result = marginalize_schur(hessian, gradient, list(range(4)))
        a_mm, a_mr = hessian[:4, :4], hessian[:4, 4:]
        a_rm, a_rr = hessian[4:, :4], hessian[4:, 4:]
        expected_h = a_rr - a_rm @ np.linalg.inv(a_mm) @ a_mr
        expected_b = gradient[4:] - a_rm @ np.linalg.inv(a_mm) @ gradient[:4]
        assert np.allclose(result.hessian, expected_h, atol=1e-5)
        assert np.allclose(result.gradient, expected_b, atol=1e-5)
        assert result.marginalized_dim == 4
        assert result.remaining_dim == 8

    def test_no_indices_is_identity(self):
        hessian = random_spd(5, seed=2)
        gradient = np.ones(5)
        result = marginalize_schur(hessian, gradient, [])
        assert np.allclose(result.hessian, hessian)
        assert np.allclose(result.gradient, gradient)

    def test_all_indices_yields_empty(self):
        hessian = random_spd(4, seed=3)
        result = marginalize_schur(hessian, np.ones(4), [0, 1, 2, 3])
        assert result.remaining_dim == 0
        assert result.hessian.shape == (0, 0)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            marginalize_schur(np.eye(3), np.ones(3), [5])

    def test_inconsistent_shapes_raise(self):
        with pytest.raises(ValueError):
            marginalize_schur(np.eye(3), np.ones(4), [0])

    def test_prior_hessian_positive_semidefinite(self):
        hessian = random_spd(10, seed=5)
        result = marginalize_schur(hessian, np.zeros(10), [0, 1, 2])
        assert np.all(np.linalg.eigvalsh(result.hessian) > -1e-8)

    def test_structured_matches_generic(self):
        rng = np.random.default_rng(7)
        m, d, r = 6, 6, 8
        diag = rng.uniform(1.0, 2.0, size=m)
        pose_block = random_spd(d, seed=8)
        coupling = rng.normal(size=(m, d)) * 0.1
        a_mm = np.zeros((m + d, m + d))
        a_mm[:m, :m] = np.diag(diag)
        a_mm[:m, m:] = coupling
        a_mm[m:, :m] = coupling.T
        a_mm[m:, m:] = pose_block
        a_mr = rng.normal(size=(m + d, r)) * 0.2
        a_rr = random_spd(r, seed=9)
        b_m = rng.normal(size=m + d)
        b_r = rng.normal(size=r)

        full = np.zeros((m + d + r, m + d + r))
        full[: m + d, : m + d] = a_mm
        full[: m + d, m + d :] = a_mr
        full[m + d :, : m + d] = a_mr.T
        full[m + d :, m + d :] = a_rr
        generic = marginalize_schur(full, np.concatenate([b_m, b_r]), list(range(m + d)))
        structured = marginalize_structured(diag, pose_block, coupling, a_mr, a_rr, b_m, b_r)
        assert np.allclose(structured.hessian, generic.hessian, atol=1e-4)
        assert np.allclose(structured.gradient, generic.gradient, atol=1e-4)


class TestBagOfWords:
    def _descriptors(self, count=64, seed=0):
        return np.stack([descriptor_from_seed(seed * 1000 + i) for i in range(count)])

    def test_train_and_quantize(self):
        vocabulary = BinaryVocabulary(num_words=8, seed=1)
        descriptors = self._descriptors(64)
        vocabulary.train(descriptors)
        assert vocabulary.trained
        words = vocabulary.quantize(descriptors[:10])
        assert words.shape == (10,)
        assert words.max() < 8

    def test_train_requires_enough_descriptors(self):
        vocabulary = BinaryVocabulary(num_words=16)
        with pytest.raises(ValueError):
            vocabulary.train(self._descriptors(4))

    def test_transform_normalized(self):
        vocabulary = BinaryVocabulary(num_words=8, seed=2)
        vocabulary.train(self._descriptors(64))
        vector = vocabulary.transform(self._descriptors(20, seed=5))
        assert np.isclose(np.abs(vector).sum(), 1.0)

    def test_untrained_raises(self):
        with pytest.raises(RuntimeError):
            BinaryVocabulary().quantize(self._descriptors(4))

    def test_database_query_prefers_same_place(self):
        vocabulary = BinaryVocabulary(num_words=16, seed=3)
        place_a = self._descriptors(40, seed=10)
        place_b = self._descriptors(40, seed=20)
        vocabulary.train(np.vstack([place_a, place_b]))
        database = KeyframeDatabase()
        database.add(1, vocabulary.transform(place_a))
        database.add(2, vocabulary.transform(place_b))
        query = vocabulary.transform(place_a[:30])
        ranked = database.query(query, top_k=2)
        assert ranked[0][0] == 1
        assert ranked[0][1] > ranked[1][1]
        assert ranked[0][1] > 0.5
        assert len(database) == 2

    def test_best_match_threshold(self):
        database = KeyframeDatabase()
        database.add(1, np.array([1.0, 0.0]))
        assert database.best_match(np.array([0.0, 1.0]), min_score=0.9) is None


class TestKeyframeMapper:
    def _frontend_results(self, sequence, count):
        frontend = VisualFrontend(rig=sequence.rig, sparse=True, dropout_probability=0.0)
        return [frontend.process(frame) for frame in sequence.frames[:count]]

    def test_keyframe_insertion_and_map_growth(self, indoor_sequence):
        mapper = KeyframeMapper(MappingConfig(window_size=4))
        results = self._frontend_results(indoor_sequence, 6)
        for result, frame in zip(results, indoor_sequence.frames[:6]):
            mapper.insert_keyframe(result, frame.ground_truth)
        assert len(mapper.keyframes) <= 4
        assert mapper.map_size > 20
        assert mapper.latest_pose() is not None

    def test_should_insert_keyframe_thresholds(self):
        mapper = KeyframeMapper(MappingConfig(keyframe_translation=0.5, keyframe_rotation=0.3))
        assert mapper.should_insert_keyframe(Pose.identity())  # first keyframe always
        mapper.keyframes.append(
            type("KF", (), {"pose": Pose.identity(), "frame_index": 0, "observations": {}})()
        )
        near = Pose(np.eye(3), np.array([0.1, 0.0, 0.0]))
        far = Pose(np.eye(3), np.array([1.0, 0.0, 0.0]))
        assert not mapper.should_insert_keyframe(near)
        assert mapper.should_insert_keyframe(far)

    def test_bundle_adjustment_improves_noisy_pose(self, indoor_sequence):
        mapper = KeyframeMapper(MappingConfig(window_size=5, max_iterations=6))
        results = self._frontend_results(indoor_sequence, 5)
        rng = np.random.default_rng(0)
        errors_before, errors_after = [], []
        for i, (result, frame) in enumerate(zip(results, indoor_sequence.frames[:5])):
            guess = frame.ground_truth
            if i > 0:
                guess = frame.ground_truth.perturb(rng.normal(0, 0.01, 3), rng.normal(0, 0.05, 3))
            errors_before.append(guess.distance_to(frame.ground_truth))
            mapper.insert_keyframe(result, guess)
        for keyframe, frame in zip(mapper.keyframes, indoor_sequence.frames[:5]):
            errors_after.append(keyframe.pose.distance_to(frame.ground_truth))
        assert np.mean(errors_after) <= np.mean(errors_before) + 0.02

    def test_marginalization_produces_prior_and_workload(self, indoor_sequence):
        mapper = KeyframeMapper(MappingConfig(window_size=3))
        results = self._frontend_results(indoor_sequence, 6)
        for result, frame in zip(results, indoor_sequence.frames[:6]):
            workload = mapper.insert_keyframe(result, frame.ground_truth)
        assert mapper._prior_hessian is not None
        assert workload.marginalized_dim > 0
        assert workload.feature_points > 0
        assert workload.keyframes == 3

    def test_kernel_timings_reported(self, indoor_sequence):
        mapper = KeyframeMapper(MappingConfig(window_size=3))
        results = self._frontend_results(indoor_sequence, 4)
        for result, frame in zip(results, indoor_sequence.frames[:4]):
            mapper.insert_keyframe(result, frame.ground_truth)
        assert {"init", "solver", "marginalization"}.issubset(mapper.last_kernel_ms.keys())


class TestSlamBackend:
    def test_tracks_indoor_sequence(self, indoor_sequence):
        frontend = VisualFrontend(rig=indoor_sequence.rig, sparse=True, dropout_probability=0.0)
        slam = SlamBackend(BackendConfig(), camera=indoor_sequence.rig.camera)
        errors = []
        for frame in indoor_sequence.frames[:30]:
            result = slam.process(frontend.process(frame), frame)
            errors.append(result.pose.distance_to(frame.ground_truth))
        # The fixture uses a low-resolution (320x240) rig, so stereo depth is
        # noisy; the requirement is staying localized, not centimetre accuracy.
        assert np.mean(errors) < 0.8
        assert errors[-1] < 1.5

    def test_map_grows_and_persists(self, indoor_sequence):
        frontend = VisualFrontend(rig=indoor_sequence.rig, sparse=True, dropout_probability=0.0)
        slam = SlamBackend(BackendConfig(), camera=indoor_sequence.rig.camera)
        for frame in indoor_sequence.frames[:15]:
            slam.process(frontend.process(frame), frame)
        persisted = slam.persist_map()
        assert len(persisted) == slam.mapper.map_size
        assert len(persisted) > 20

    def test_workload_and_kernels(self, indoor_sequence):
        frontend = VisualFrontend(rig=indoor_sequence.rig, sparse=True)
        slam = SlamBackend(BackendConfig(), camera=indoor_sequence.rig.camera)
        result = slam.process(frontend.process(indoor_sequence.frames[0]), indoor_sequence.frames[0])
        assert result.mode == "slam"
        assert isinstance(result.workload, SlamWorkload)
        assert {"solver", "marginalization", "init"}.issubset(result.kernel_ms.keys())

    def test_reset(self, indoor_sequence):
        frontend = VisualFrontend(rig=indoor_sequence.rig, sparse=True)
        slam = SlamBackend(BackendConfig(), camera=indoor_sequence.rig.camera)
        slam.process(frontend.process(indoor_sequence.frames[0]), indoor_sequence.frames[0])
        slam.reset()
        assert not slam.initialized
        assert slam.mapper.map_size == 0
