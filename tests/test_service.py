"""Service front door: QoS mapping, admission control, HTTP lifecycle.

Three layers of coverage, matching the package's structure:

* pure units (QoS catalog, admission verdicts, arrival profiles) need no
  event loop at all;
* the service lifecycle tests run a real :class:`LocalizationService` on
  an ephemeral port inside ``asyncio.run`` (no pytest-asyncio in the
  container) and speak actual HTTP through the loadgen client;
* the determinism contract: a session served through the front door
  yields the byte-identical signature the library call yields.
"""

import asyncio
import os

import pytest

from repro.scheduler import LatencyAutoscaler
from repro.sensors.scenarios import ScenarioKind
from repro.serving import ServingEngine, StreamSegment, StreamSpec, serving_key
from repro.serving.engine import run_session
from repro.service import (
    AdmissionController,
    ArrivalProfile,
    DEFAULT_QOS_CLASSES,
    LoadGenerator,
    LocalizationService,
    MAX_INFLIGHT_ENV,
    PORT_ENV,
    QoSClass,
    SHED_POLICY_ENV,
    apply_qos,
)
from repro.service.loadgen import request

RATE = 5.0

SEGMENTS_WIRE = [
    {"kind": "outdoor_unknown", "duration": 1.0, "label": "approach"},
    {"kind": "indoor_unknown", "duration": 1.0, "label": "inside"},
]


def _spec(stream_id="lib", deadline_ms=None, seed=0):
    return StreamSpec(
        stream_id=stream_id,
        segments=(
            StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, 1.0, label="approach"),
            StreamSegment(ScenarioKind.INDOOR_UNKNOWN, 1.0, label="inside"),
        ),
        camera_rate_hz=RATE,
        seed=seed,
        deadline_ms=deadline_ms,
    )


def _run(coro_fn, engine=None, **service_kwargs):
    """Start a service on an ephemeral port, run the test coroutine, stop."""
    async def main():
        service = LocalizationService(
            engine if engine is not None else ServingEngine(store=None),
            port=0, **service_kwargs)
        await service.start()
        try:
            return await coro_fn(service)
        finally:
            await service.stop()
    return asyncio.run(main())


# ------------------------------------------------------------------- QoS


class TestQoS:
    def test_apply_stamps_class_deadline(self):
        spec = _spec()
        gold = apply_qos(spec, DEFAULT_QOS_CLASSES["gold"])
        assert gold.deadline_ms == 200.0
        assert gold.stream_id == spec.stream_id
        assert gold.segments == spec.segments

    def test_best_effort_has_no_deadline(self):
        spec = apply_qos(_spec(deadline_ms=123.0),
                         DEFAULT_QOS_CLASSES["best_effort"])
        assert spec.deadline_ms is None

    def test_qos_change_keeps_serving_cache_warm(self):
        """serving_key excludes the deadline, so re-admitting a stream
        under a different class re-uses its cached result."""
        spec = _spec()
        silver = apply_qos(spec, DEFAULT_QOS_CLASSES["silver"])
        bronze = apply_qos(spec, DEFAULT_QOS_CLASSES["bronze"])
        assert serving_key(silver) == serving_key(bronze)

    def test_default_catalog_shape(self):
        assert set(DEFAULT_QOS_CLASSES) == {"gold", "silver", "bronze",
                                            "best_effort"}
        assert not DEFAULT_QOS_CLASSES["gold"].sheddable
        assert all(DEFAULT_QOS_CLASSES[name].sheddable
                   for name in ("silver", "bronze", "best_effort"))


# -------------------------------------------------------------- admission


class TestAdmission:
    def test_policy_none_admits_everything(self):
        controller = AdmissionController(policy="none", max_inflight=1)
        decision = controller.admit(DEFAULT_QOS_CLASSES["bronze"], inflight=999)
        assert decision.admitted

    def test_inflight_cap_sheds_every_class(self):
        controller = AdmissionController(policy="inflight", max_inflight=2)
        assert controller.admit(DEFAULT_QOS_CLASSES["gold"], inflight=1).admitted
        decision = controller.admit(DEFAULT_QOS_CLASSES["gold"], inflight=2)
        assert not decision.admitted
        assert decision.reason == "max_inflight"
        assert controller.shed_counts == {"max_inflight": 1}

    def test_saturation_sheds_sheddable_admits_protected(self):
        controller = AdmissionController(
            policy="saturation", max_inflight=8, saturated_fn=lambda: True)
        shed = controller.admit(DEFAULT_QOS_CLASSES["silver"], inflight=0)
        assert not shed.admitted and shed.reason == "saturated"
        kept = controller.admit(DEFAULT_QOS_CLASSES["gold"], inflight=0)
        assert kept.admitted and kept.saturated

    def test_saturated_bound_tightens_protected_admissions(self):
        controller = AdmissionController(
            policy="saturation", max_inflight=8, saturated_inflight=2,
            saturated_fn=lambda: True)
        gold = DEFAULT_QOS_CLASSES["gold"]
        assert controller.admit(gold, inflight=1).admitted
        decision = controller.admit(gold, inflight=2)
        assert not decision.admitted
        assert decision.reason == "saturated"
        assert decision.limit == 2

    def test_not_saturated_admits_normally(self):
        controller = AdmissionController(
            policy="saturation", max_inflight=8, saturated_fn=lambda: False)
        assert controller.admit(DEFAULT_QOS_CLASSES["bronze"], inflight=7).admitted

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(policy="psychic")
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)

    def test_snapshot_counts(self):
        controller = AdmissionController(
            policy="saturation", max_inflight=1, saturated_fn=lambda: False)
        controller.admit(DEFAULT_QOS_CLASSES["silver"], inflight=0)
        controller.admit(DEFAULT_QOS_CLASSES["silver"], inflight=1)
        snapshot = controller.snapshot()
        assert snapshot["admitted"] == 1
        assert snapshot["shed"] == 1
        assert snapshot["shed_reasons"] == {"max_inflight": 1}


# --------------------------------------------------------- arrival profiles


class TestArrivalProfile:
    def test_schedules_are_seeded_and_deterministic(self):
        profile = ArrivalProfile(kind="poisson", rate=5.0, duration_s=20.0,
                                 seed=3)
        assert profile.arrivals() == profile.arrivals()
        other = ArrivalProfile(kind="poisson", rate=5.0, duration_s=20.0,
                               seed=4)
        assert profile.arrivals() != other.arrivals()

    def test_arrivals_stay_inside_the_run(self):
        for kind in ("poisson", "diurnal", "flash"):
            profile = ArrivalProfile(kind=kind, rate=3.0, peak_rate=9.0,
                                     duration_s=10.0, seed=1)
            times = profile.arrivals()
            assert times == sorted(times)
            assert all(0.0 <= t < 10.0 for t in times)

    def test_flash_crowd_concentrates_midrun(self):
        profile = ArrivalProfile(kind="flash", rate=1.0, peak_rate=20.0,
                                 duration_s=30.0, flash_fraction=0.3, seed=7)
        times = profile.arrivals()
        inside = sum(1 for t in times if 10.5 <= t < 19.5)
        outside = len(times) - inside
        # The crowd window is 30% of the run but carries the vast majority
        # of arrivals at a 20x rate ratio.
        assert inside > 2 * outside

    def test_diurnal_rate_peaks_midrun(self):
        profile = ArrivalProfile(kind="diurnal", rate=2.0, peak_rate=10.0,
                                 duration_s=40.0)
        assert profile.rate_at(20.0) == pytest.approx(10.0)
        assert profile.rate_at(0.0) == pytest.approx(2.0)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            ArrivalProfile(kind="psychic")
        with pytest.raises(ValueError):
            ArrivalProfile(kind="flash", rate=5.0, peak_rate=1.0)
        with pytest.raises(ValueError):
            ArrivalProfile(rate=0.0)


# ------------------------------------------------------------ env knobs


class TestEnvKnobs:
    def test_service_env_defaults(self, monkeypatch):
        monkeypatch.setenv(PORT_ENV, "9999")
        monkeypatch.setenv(MAX_INFLIGHT_ENV, "5")
        monkeypatch.setenv(SHED_POLICY_ENV, "inflight")
        service = LocalizationService(ServingEngine(store=None))
        assert service.port == 9999
        assert service.admission.max_inflight == 5
        assert service.admission.policy == "inflight"

    def test_explicit_arguments_beat_env(self, monkeypatch):
        monkeypatch.setenv(PORT_ENV, "9999")
        controller = AdmissionController(policy="none")
        service = LocalizationService(ServingEngine(store=None), port=0,
                                      admission=controller)
        assert service.port == 0
        assert service.admission is controller


# ------------------------------------------------------- service lifecycle


class TestServiceLifecycle:
    def test_end_to_end_session_over_http(self):
        async def scenario(service):
            status, payload = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": "e2e", "qos": "silver",
                 "segments": SEGMENTS_WIRE, "camera_rate_hz": RATE})
            assert status == 201
            assert payload["state"] == "queued"
            assert payload["deadline_ms"] == 400.0
            status, result = await request(
                service.host, service.port, "GET", "/v1/sessions/e2e/result")
            assert status == 200
            assert result["state"] == "done"
            assert result["frames"] > 0
            assert result["signature"]
            status, health = await request(
                service.host, service.port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            assert health["inflight"] == 0
            return result
        result = _run(scenario)
        assert result["qos"] == "silver"

    def test_front_door_signature_matches_library_call(self):
        """The determinism contract across the network boundary."""
        async def scenario(service):
            await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": "parity", "qos": "gold",
                 "segments": SEGMENTS_WIRE, "camera_rate_hz": RATE, "seed": 3})
            _, result = await request(
                service.host, service.port, "GET",
                "/v1/sessions/parity/result")
            return result["signature"]
        served = _run(scenario)
        library = run_session(_spec("parity", deadline_ms=200.0, seed=3))
        assert served == library.signature()

    def test_feed_then_seal_then_result(self):
        async def scenario(service):
            status, _ = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": "fed", "qos": "bronze", "camera_rate_hz": RATE})
            assert status == 201
            status, payload = await request(
                service.host, service.port, "POST",
                "/v1/sessions/fed/segments",
                {"segments": SEGMENTS_WIRE[:1]})
            assert status == 200 and payload["state"] == "open"
            status, payload = await request(
                service.host, service.port, "POST",
                "/v1/sessions/fed/segments",
                {"segments": SEGMENTS_WIRE[1:], "seal": True})
            assert status == 200 and payload["state"] == "queued"
            status, result = await request(
                service.host, service.port, "GET", "/v1/sessions/fed/result")
            assert status == 200 and result["frames"] > 0
            # Sealed sessions refuse further segments.
            status, _ = await request(
                service.host, service.port, "POST",
                "/v1/sessions/fed/segments", {"segments": SEGMENTS_WIRE})
            assert status == 409
        _run(scenario)

    def test_error_mapping(self):
        async def scenario(service):
            # Unknown QoS class -> 400.
            status, payload = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"qos": "diamond"})
            assert status == 400 and "diamond" in payload["error"]
            # Client-quoted deadline -> 400 (deadlines are service-assigned).
            status, payload = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"qos": "silver", "deadline_ms": 50.0})
            assert status == 400 and "QoS" in payload["error"]
            # Unknown session -> 404.
            status, _ = await request(
                service.host, service.port, "GET", "/v1/sessions/ghost")
            assert status == 404
            # Result of an empty open session -> 409.
            await request(service.host, service.port, "POST", "/v1/sessions",
                          {"stream_id": "empty", "qos": "silver"})
            status, _ = await request(
                service.host, service.port, "GET",
                "/v1/sessions/empty/result")
            assert status == 409
            # Bad segment kind -> 400.
            status, _ = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"qos": "silver", "segments": [{"kind": "underwater"}]})
            assert status == 400
            # Unknown route -> 404.
            status, _ = await request(
                service.host, service.port, "GET", "/v2/anything")
            assert status == 404
        _run(scenario)

    def test_duplicate_stream_id_conflicts(self):
        async def scenario(service):
            body = {"stream_id": "twin", "qos": "silver",
                    "segments": SEGMENTS_WIRE, "camera_rate_hz": RATE}
            status, _ = await request(service.host, service.port, "POST",
                                      "/v1/sessions", body)
            assert status == 201
            status, _ = await request(service.host, service.port, "POST",
                                      "/v1/sessions", body)
            assert status == 409
        _run(scenario)


# ------------------------------------------------------- admission at door


class TestServiceAdmission:
    def test_inflight_cap_sheds_with_503(self):
        controller = AdmissionController(policy="inflight", max_inflight=1)

        async def scenario(service):
            # First session stays open (no segments) — it occupies the slot.
            status, _ = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": "holder", "qos": "silver"})
            assert status == 201
            status, payload = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": "refused", "qos": "silver"})
            assert status == 503
            assert "max_inflight" in payload["error"]
            return service
        service = _run(scenario, admission=controller)
        assert service.admission.shed_counts == {"max_inflight": 1}
        assert "refused" not in service.sessions

    def test_saturation_sheds_sheddable_but_not_protected(self):
        controller = AdmissionController(
            policy="saturation", max_inflight=8, saturated_fn=lambda: True)

        async def scenario(service):
            status, payload = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": "shed-me", "qos": "bronze"})
            assert status == 503
            assert "saturated" in payload["error"]
            status, _ = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": "vip", "qos": "gold",
                 "segments": SEGMENTS_WIRE, "camera_rate_hz": RATE})
            assert status == 201
            status, result = await request(
                service.host, service.port, "GET", "/v1/sessions/vip/result")
            assert status == 200 and result["state"] == "done"
        _run(scenario, admission=controller)

    def test_shed_session_leaves_no_trace(self, tmp_path):
        """A shed request must never touch the engine or either store."""
        from repro.experiments.runner import RunStore
        from repro.maps import MapStore
        run_root = tmp_path / "runs"
        map_root = tmp_path / "maps"
        engine = ServingEngine(store=RunStore(root=run_root),
                               map_store=MapStore(root=map_root))
        serve_calls = []
        original_serve = engine.serve
        engine.serve = lambda *a, **k: (serve_calls.append(a),
                                        original_serve(*a, **k))[1]
        controller = AdmissionController(
            policy="saturation", max_inflight=8, saturated_fn=lambda: True)

        async def scenario(service):
            status, _ = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": "doomed", "qos": "silver",
                 "segments": SEGMENTS_WIRE, "camera_rate_hz": RATE})
            assert status == 503
            return service
        service = _run(scenario, engine=engine, admission=controller)
        assert not serve_calls, "shed session must not reach the engine"
        assert "doomed" not in service.sessions
        assert not list(run_root.rglob("*")), "run store must stay untouched"
        assert not list(map_root.rglob("*")), "map store must stay untouched"

    def test_saturation_signal_wired_to_engine_autoscaler(self):
        """The default controller probes the engine's shared autoscaler."""
        autoscaler = LatencyAutoscaler(min_workers=1, max_workers=1,
                                       grow_patience=1)
        engine = ServingEngine(store=None, autoscaler=autoscaler)
        service = LocalizationService(engine, port=0)
        assert service.admission.saturated_inflight == \
            1 * engine.frames_per_worker_tick
        assert not service.admission.saturated_fn()
        autoscaler.observe(1000.0, deadline_ms=100.0)
        autoscaler.decide()
        assert autoscaler.saturated
        assert service.admission.saturated_fn()


# ---------------------------------------------------------------- metrics


class TestServiceMetrics:
    def test_metrics_report_waves_and_ordered_decisions(self):
        autoscaler = LatencyAutoscaler(min_workers=1, max_workers=2,
                                       window=32, grow_patience=1,
                                       cooldown=0)
        engine = ServingEngine(store=None, autoscaler=autoscaler,
                               frames_per_worker_tick=1)

        async def scenario(service):
            for index in range(2):  # two separate waves
                await request(
                    service.host, service.port, "POST", "/v1/sessions",
                    {"stream_id": f"wave-{index}", "qos": "silver",
                     "segments": SEGMENTS_WIRE, "camera_rate_hz": RATE,
                     "seed": index})
                await request(
                    service.host, service.port, "GET",
                    f"/v1/sessions/wave-{index}/result")
            status, metrics = await request(
                service.host, service.port, "GET", "/v1/metrics")
            assert status == 200
            return metrics
        metrics = _run(scenario, engine=engine)
        assert metrics["sessions"]["created"] == 2
        assert metrics["sessions"]["completed"] == 2
        assert metrics["sessions"]["inflight"] == 0
        assert len(metrics["waves"]) == 2
        assert metrics["turnaround_ms"]["p95"] > 0.0
        clocks = [d["clock"] for d in metrics["scale_decisions"]]
        assert clocks and clocks == sorted(clocks)
        ticks = [d["tick"] for d in metrics["scale_decisions"]]
        assert ticks == sorted(ticks) and len(set(ticks)) == len(ticks)

    def test_loadgen_round_trip(self):
        """A tiny open-loop run against a healthy service completes fully."""
        async def scenario(service):
            generator = LoadGenerator(
                service.host, service.port,
                session_body={"segments": SEGMENTS_WIRE,
                              "camera_rate_hz": RATE},
                qos_cycle=("silver", "bronze"))
            profile = ArrivalProfile(kind="poisson", rate=4.0,
                                     duration_s=1.0, seed=5)
            return await generator.run(profile)
        report = _run(scenario)
        assert report.offered > 0
        assert report.completed == report.admitted == report.offered
        assert report.shed == 0 and report.errors == 0
        assert len(report.signatures) == report.completed
        summary = report.summary()
        assert summary["shed_rate"] == 0.0
        assert summary["p95_turnaround_ms"] > 0.0


# ------------------------------------------------------- sharded front door


def _sharded_engine(shards=2):
    from repro.cluster import ShardedServingEngine
    # max_workers == min_workers so a single over-pressure observation
    # saturates a shard (same idiom as the plain-engine saturation test).
    return ShardedServingEngine(
        shards,
        autoscaler_factory=lambda shard: LatencyAutoscaler(
            min_workers=1, max_workers=1, grow_patience=1),
        shard_parallel=False,
    )


def _stream_for_shard(engine, shard, prefix="svc"):
    """A stream id the engine's live ring routes to ``shard``."""
    for index in range(4096):
        stream_id = f"{prefix}-{index}"
        if engine.ring.shard_for(stream_id) == shard:
            return stream_id
    raise AssertionError(f"no stream id found for shard {shard}")


def _saturate_shard(engine, shard):
    scaler = engine.autoscalers[shard]
    scaler.observe(1000.0, deadline_ms=100.0)
    scaler.decide()
    assert scaler.saturated


class TestShardedService:
    def test_default_admission_wired_to_shard_probes(self):
        """A sharded engine behind the door gets per-shard admission: the
        target-shard probe, all-shards fallback, and the pinned cluster
        capacity as the tightened bound."""
        engine = _sharded_engine()
        service = LocalizationService(engine, port=0)
        assert service.admission.shard_saturated_fn == engine.saturated_for
        assert service.admission.saturated_inflight == engine.pinned_capacity
        assert service.admission.saturated_inflight == \
            2 * 1 * engine.frames_per_worker_tick
        # Zero-arg fallback is ALL-shards saturation, not any-shard.
        assert not service.admission.saturated_fn()
        _saturate_shard(engine, 0)
        assert not service.admission.saturated_fn()
        _saturate_shard(engine, 1)
        assert service.admission.saturated_fn()

    def test_sheds_by_target_shard_not_cluster(self):
        """One hot shard refuses only its own streams; traffic bound for
        the idle sibling keeps flowing."""
        engine = _sharded_engine()
        _saturate_shard(engine, 0)
        hot = _stream_for_shard(engine, 0)
        cool = _stream_for_shard(engine, 1)

        async def scenario(service):
            status, payload = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": hot, "qos": "bronze",
                 "segments": SEGMENTS_WIRE, "camera_rate_hz": RATE})
            assert status == 503
            assert "saturated" in payload["error"]
            status, _ = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": cool, "qos": "bronze",
                 "segments": SEGMENTS_WIRE, "camera_rate_hz": RATE})
            assert status == 201
            status, result = await request(
                service.host, service.port, "GET",
                f"/v1/sessions/{cool}/result")
            assert status == 200 and result["state"] == "done"
            return service
        service = _run(scenario, engine=engine)
        assert service.admission.shed_counts == {"saturated": 1}
        assert hot not in service.sessions

    def test_healthz_and_metrics_expose_cluster_shape(self):
        engine = _sharded_engine()

        async def scenario(service):
            await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": "shape", "qos": "silver",
                 "segments": SEGMENTS_WIRE, "camera_rate_hz": RATE})
            await request(service.host, service.port, "GET",
                          "/v1/sessions/shape/result")
            _, health = await request(service.host, service.port, "GET",
                                      "/healthz")
            _, metrics = await request(service.host, service.port, "GET",
                                       "/v1/metrics")
            return health, metrics
        health, metrics = _run(scenario, engine=engine)
        assert [row["shard"] for row in health["shards"]] == [0, 1]
        assert all(not row["saturated"] for row in health["shards"])
        assert metrics["cluster"]["shards"] == 2
        assert metrics["cluster"]["waves_served"] == 1
        assert metrics["scale_decisions"], "shard decisions must surface"
        assert all("shard" in d for d in metrics["scale_decisions"])

    def test_sharded_front_door_signature_parity(self):
        """Determinism across both boundaries at once: network + sharding."""
        async def scenario(service):
            await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"stream_id": "parity", "qos": "gold",
                 "segments": SEGMENTS_WIRE, "camera_rate_hz": RATE, "seed": 3})
            _, result = await request(
                service.host, service.port, "GET",
                "/v1/sessions/parity/result")
            return result["signature"]
        served = _run(scenario, engine=_sharded_engine())
        library = run_session(_spec("parity", deadline_ms=200.0, seed=3))
        assert served == library.signature()
