"""Tests for the dense vision-frontend algorithms: FAST, ORB, LK, stereo."""

import numpy as np
import pytest

from repro.frontend.fast import FastDetector, Keypoint, keypoints_to_array
from repro.frontend.filtering import (
    bilinear_sample,
    gaussian_blur,
    gaussian_kernel_1d,
    image_pyramid,
    sobel_gradients,
)
from repro.frontend.optical_flow import LucasKanadeTracker
from repro.frontend.orb import (
    OrbDescriptor,
    descriptor_from_seed,
    hamming_distance,
    hamming_distance_matrix,
)
from repro.frontend.stereo import StereoMatcher


def checkerboard(width=96, height=72, square=6, low=40.0, high=210.0, spacing=16, seed=0):
    """A synthetic image of scattered bright squares with strong FAST corners.

    Isolated squares produce L-corners that pass the FAST segment test
    (checkerboard X-corners famously do not), while still giving the stereo
    and optical-flow tests plenty of texture to work with.
    """
    rng = np.random.default_rng(seed)
    image = np.full((height, width), low)
    for y in range(6, height - square - 6, spacing):
        for x in range(6, width - square - 6, spacing):
            jx, jy = rng.integers(0, 4, size=2)
            image[y + jy : y + jy + square, x + jx : x + jx + square] = high
    return image


class TestFiltering:
    def test_gaussian_kernel_normalized(self):
        kernel = gaussian_kernel_1d(1.5)
        assert np.isclose(kernel.sum(), 1.0)
        assert kernel[len(kernel) // 2] == kernel.max()

    def test_gaussian_kernel_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            gaussian_kernel_1d(0.0)

    def test_blur_preserves_constant_image(self):
        image = np.full((20, 30), 87.0)
        assert np.allclose(gaussian_blur(image, 1.0), image)

    def test_blur_reduces_variance(self):
        rng = np.random.default_rng(0)
        image = rng.uniform(0, 255, size=(40, 40))
        assert gaussian_blur(image, 2.0).std() < image.std()

    def test_sobel_on_ramp(self):
        image = np.tile(np.arange(32, dtype=float), (16, 1))
        gx, gy = sobel_gradients(image)
        assert np.allclose(gx[4:-4, 4:-4], 1.0, atol=1e-6)
        assert np.allclose(gy[4:-4, 4:-4], 0.0, atol=1e-6)

    def test_pyramid_levels(self):
        image = checkerboard()
        pyramid = image_pyramid(image, levels=3)
        assert len(pyramid) == 3
        assert pyramid[1].shape[0] == image.shape[0] // 2

    def test_pyramid_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            image_pyramid(checkerboard(), levels=0)

    def test_bilinear_sample_exact_on_grid(self):
        image = np.arange(12, dtype=float).reshape(3, 4)
        assert bilinear_sample(image, np.array([2.0]), np.array([1.0]))[0] == image[1, 2]

    def test_bilinear_sample_interpolates(self):
        image = np.array([[0.0, 10.0], [0.0, 10.0]])
        value = bilinear_sample(image, np.array([0.5]), np.array([0.0]))[0]
        assert np.isclose(value, 5.0)


class TestFast:
    def test_detects_checkerboard_corners(self):
        detector = FastDetector(threshold=20.0, max_features=200)
        keypoints = detector.detect(checkerboard())
        assert len(keypoints) > 10

    def test_no_corners_on_flat_image(self):
        detector = FastDetector(threshold=10.0)
        assert detector.detect(np.full((48, 64), 100.0)) == []

    def test_max_features_respected(self):
        detector = FastDetector(threshold=10.0, max_features=5)
        keypoints = detector.detect(checkerboard())
        assert len(keypoints) <= 5

    def test_keypoints_inside_border(self):
        detector = FastDetector(threshold=15.0, border=4)
        image = checkerboard()
        for kp in detector.detect(image):
            assert 4 <= kp.x < image.shape[1] - 4
            assert 4 <= kp.y < image.shape[0] - 4

    def test_invalid_arc_length(self):
        with pytest.raises(ValueError):
            FastDetector(arc_length=20)

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            FastDetector().detect(np.ones(100))

    def test_tiny_image_returns_empty(self):
        assert FastDetector().detect(np.ones((4, 4))) == []

    def test_keypoints_to_array(self):
        array = keypoints_to_array([Keypoint(1.0, 2.0, 3.0), Keypoint(4.0, 5.0, 6.0)])
        assert array.shape == (2, 2)
        assert keypoints_to_array([]).shape == (0, 2)


class TestOrb:
    def test_hamming_distance_basics(self):
        a = np.zeros(32, dtype=np.uint8)
        b = np.zeros(32, dtype=np.uint8)
        assert hamming_distance(a, b) == 0
        b[0] = 0xFF
        assert hamming_distance(a, b) == 8

    def test_hamming_matrix_shape(self):
        a = np.random.default_rng(0).integers(0, 256, size=(3, 32), dtype=np.uint8)
        b = np.random.default_rng(1).integers(0, 256, size=(5, 32), dtype=np.uint8)
        d = hamming_distance_matrix(a, b)
        assert d.shape == (3, 5)
        assert d[1, 2] == hamming_distance(a[1], b[2])

    def test_hamming_mismatched_length_raises(self):
        with pytest.raises(ValueError):
            hamming_distance(np.zeros(32, dtype=np.uint8), np.zeros(16, dtype=np.uint8))

    def test_descriptor_shape(self):
        image = checkerboard()
        keypoints = FastDetector(threshold=15.0, max_features=20).detect(image)
        descriptors = OrbDescriptor(bits=256).compute(image, keypoints)
        assert descriptors.shape == (len(keypoints), 32)
        assert descriptors.dtype == np.uint8

    def test_descriptor_empty_keypoints(self):
        descriptors = OrbDescriptor().compute(checkerboard(), [])
        assert descriptors.shape == (0, 32)

    def test_descriptor_stable_across_identical_images(self):
        image = checkerboard()
        keypoints = FastDetector(threshold=15.0, max_features=10).detect(image)
        orb = OrbDescriptor(seed=3)
        a = orb.compute(image, keypoints)
        b = orb.compute(image.copy(), keypoints)
        assert np.array_equal(a, b)

    def test_descriptor_discriminative(self):
        image = checkerboard()
        keypoints = FastDetector(threshold=15.0, max_features=30).detect(image)
        orb = OrbDescriptor()
        descriptors = orb.compute(image, keypoints)
        if len(keypoints) >= 2:
            self_distance = hamming_distance(descriptors[0], descriptors[0])
            assert self_distance == 0

    def test_bits_must_be_multiple_of_eight(self):
        with pytest.raises(ValueError):
            OrbDescriptor(bits=100)

    def test_descriptor_from_seed_deterministic(self):
        a = descriptor_from_seed(1234)
        b = descriptor_from_seed(1234)
        c = descriptor_from_seed(9999)
        assert np.array_equal(a, b)
        assert hamming_distance(a, c) > 50

    def test_descriptor_from_seed_noise_bits(self):
        rng = np.random.default_rng(0)
        a = descriptor_from_seed(42)
        noisy = descriptor_from_seed(42, noise_bits=8, rng=rng)
        assert 0 < hamming_distance(a, noisy) <= 8


class TestStereoMatcher:
    def _pair_with_shift(self, shift=6):
        left = checkerboard()
        right = np.roll(left, -shift, axis=1)
        detector = FastDetector(threshold=15.0, max_features=60)
        orb = OrbDescriptor()
        left_kp = detector.detect(left)
        right_kp = detector.detect(right)
        return left, right, left_kp, orb.compute(left, left_kp), right_kp, orb.compute(right, right_kp)

    def test_matches_shifted_image(self):
        left, right, lkp, ld, rkp, rd = self._pair_with_shift(6)
        matcher = StereoMatcher(max_hamming=100, max_disparity=20)
        matches = matcher.match(lkp, ld, rkp, rd, left, right)
        assert len(matches) > 3
        disparities = [m.disparity for m in matches]
        assert 3.0 <= np.median(disparities) <= 9.0

    def test_no_matches_on_empty_inputs(self):
        matcher = StereoMatcher()
        assert matcher.match([], np.zeros((0, 32), np.uint8), [], np.zeros((0, 32), np.uint8)) == []

    def test_disparity_positive(self):
        left, right, lkp, ld, rkp, rd = self._pair_with_shift(6)
        matches = StereoMatcher(max_hamming=100).match(lkp, ld, rkp, rd)
        assert all(m.disparity > 0 for m in matches)

    def test_right_keypoints_not_reused(self):
        left, right, lkp, ld, rkp, rd = self._pair_with_shift(6)
        matches = StereoMatcher(max_hamming=100).match(lkp, ld, rkp, rd)
        right_indices = [m.right_index for m in matches]
        assert len(right_indices) == len(set(right_indices))


class TestLucasKanade:
    def test_tracks_translation(self):
        image = gaussian_blur(checkerboard(), 1.0)
        shifted = np.roll(image, 3, axis=1)
        points = keypoints_to_array(FastDetector(threshold=15.0, max_features=15).detect(image))
        tracker = LucasKanadeTracker(window=11, iterations=20)
        results = tracker.track(image, shifted, points)
        good = tracker.good_tracks(results)
        assert len(good) >= len(results) // 2
        dx = np.median([r.current[0] - r.previous[0] for r in good])
        assert 2.0 <= dx <= 4.0

    def test_empty_points(self):
        tracker = LucasKanadeTracker()
        assert tracker.track(checkerboard(), checkerboard(), np.zeros((0, 2))) == []

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            LucasKanadeTracker(window=8)

    def test_flat_region_fails_gracefully(self):
        image = np.full((64, 64), 100.0)
        tracker = LucasKanadeTracker()
        results = tracker.track(image, image, np.array([[32.0, 32.0]]))
        assert not results[0].converged
