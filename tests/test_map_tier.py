"""The tiered map-distribution plane (ROADMAP item 5, tier layer).

Contracts pinned here:

* **Tier-1 cache**: a :class:`SnapshotCache` lookup whose version stamp
  matches the store head is a hit — no unpickle, no merge, no store
  resolve traffic; the quality gate is applied per lookup over one cached
  canonical; bounds evict LRU; ``invalidate`` is exact.
* **Cross-instance invalidation**: a *foreign* store handle publishing or
  compacting the environment flips the version stamp, so every sibling
  cache misses and recomputes — the cache can never serve content the
  store would no longer produce (the sharded engine's coordination plane,
  extended from ``TestMapStoreCrossInstance``).
* **Bounded staleness**: ``staleness_bound=K`` serves an entry at most K
  distinct canonical-version movements behind head, counted as stale
  serves, never silently; ``0`` (the default) is strict.
* **Tier-2 delta sync**: ``materialize`` rebuilds the exact canonical
  from ``{version, inputs}`` references; the sharded engine ships
  references instead of snapshots and the byte accounting shows it.
* **Update-aware drift gating**: observed ``map_stale`` evidence closes a
  drifting environment's own quality gate *before* the next wave's
  sessions demote mid-segment, and the gate lifts when the canonical
  version moves.
"""

import numpy as np
import pytest

from repro.cluster import ShardedServingEngine
from repro.maps import (
    MapSnapshot,
    MapStore,
    SnapshotCache,
    SyncAccounting,
    resolve_staleness_bound,
)
from repro.maps.tier import MAP_STALENESS_ENV, payload_bytes
from repro.sensors.scenarios import ScenarioKind
from repro.serving import (
    ServingEngine,
    StreamSegment,
    StreamSpec,
    drifting_environment_fleet,
)

SEGMENT = 2.0
RATE = 5.0
EASY_GATE = 0.05


def _snapshot(environment_id="env-a", count=40, spread=4.0, residual=0.05,
              seed=0, id_offset=0, **overrides):
    rng = np.random.default_rng(seed)
    defaults = dict(
        environment_id=environment_id,
        landmark_ids=np.arange(id_offset, id_offset + count),
        positions=rng.uniform(-spread, spread, size=(count, 3)),
        mean_residual_m=residual,
        max_residual_m=3.0 * residual,
        source="test",
    )
    defaults.update(overrides)
    return MapSnapshot(**defaults)


def _store(tmp_path, name="maps"):
    return MapStore(tmp_path / name, max_bytes=-1, max_age_s=-1)


def _env_spec(stream_id, environment, seed=0):
    return StreamSpec(
        stream_id=stream_id,
        segments=(StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT,
                                environment=environment),),
        camera_rate_hz=RATE, landmark_count=120, seed=seed)


class TestResolveStalenessBound:
    def test_default_is_strict(self):
        assert resolve_staleness_bound() == 0

    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(MAP_STALENESS_ENV, "5")
        assert resolve_staleness_bound(2) == 2
        assert resolve_staleness_bound() == 5

    def test_negative_and_garbage_clamp_to_strict(self, monkeypatch):
        assert resolve_staleness_bound(-3) == 0
        monkeypatch.setenv(MAP_STALENESS_ENV, "-1")
        assert resolve_staleness_bound() == 0
        monkeypatch.setenv(MAP_STALENESS_ENV, "lots")
        assert resolve_staleness_bound() == 0


class TestSnapshotCache:
    def test_hit_skips_store_entirely(self, tmp_path):
        store = _store(tmp_path)
        store.publish(_snapshot())
        cache = SnapshotCache(store)
        first = cache.resolve("env-a", min_quality=0.0)
        assert first is not None
        assert (cache.misses, cache.hits) == (1, 0)
        store_counts = (store.resolve_hits, store.resolve_misses)
        second = cache.resolve("env-a", min_quality=0.0)
        assert second is first  # the cached object, no reload, no re-merge
        assert (cache.misses, cache.hits) == (1, 1)
        # A hit validates via the directory stamp only — the store's
        # resolve machinery is never consulted.
        assert (store.resolve_hits, store.resolve_misses) == store_counts
        assert cache.hit_rate == 0.5

    def test_quality_gate_is_per_lookup(self, tmp_path):
        store = _store(tmp_path)
        store.publish(_snapshot(count=12, spread=0.5))
        cache = SnapshotCache(store)
        strict = cache.resolve("env-a", min_quality=0.99)
        assert strict is None  # gated out...
        assert cache.resolve("env-a", min_quality=0.0) is not None
        # ...but both lookups shared one cached merge (miss then hit).
        assert (cache.misses, cache.hits) == (1, 1)

    def test_foreign_publish_flips_the_stamp(self, tmp_path):
        """Satellite: cross-instance invalidation through the cache."""
        mine, sibling = _store(tmp_path), _store(tmp_path)
        mine.publish(_snapshot(count=40, seed=1))
        cache = SnapshotCache(mine)
        first = cache.resolve("env-a", min_quality=0.0)
        assert cache.resolve("env-a", min_quality=0.0).version == first.version
        assert (cache.misses, cache.hits) == (1, 1)
        # A foreign handle publishes new content: the stamp moves, the
        # cache must miss and recompute — never serve the old canonical.
        sibling.publish(_snapshot(count=40, seed=2, id_offset=100))
        second = cache.resolve("env-a", min_quality=0.0)
        assert second.version != first.version
        assert second.landmark_count > first.landmark_count
        assert (cache.misses, cache.hits) == (2, 1)

    def test_foreign_compaction_flips_the_stamp(self, tmp_path):
        mine, sibling = _store(tmp_path), _store(tmp_path)
        mine.publish(_snapshot(count=30, seed=3))
        mine.publish(_snapshot(count=30, seed=4, id_offset=200))
        cache = SnapshotCache(mine)
        merged = cache.resolve("env-a", min_quality=0.0)
        # The sibling compacts history down to the merged canonical (the
        # post-update shape): same content, different stem set — stamp
        # moves, so the entry revalidates as a miss.
        sibling.publish(merged)
        for key in sibling.version_stamp("env-a"):
            if key != f"env-a__{merged.version}":
                sibling.path_for(key).unlink()
        cache.resolve("env-a", min_quality=0.0)
        assert (cache.misses, cache.hits) == (2, 0)

    def test_entry_bound_evicts_lru(self, tmp_path):
        store = _store(tmp_path)
        for env in ("env-a", "env-b", "env-c"):
            store.publish(_snapshot(environment_id=env))
        cache = SnapshotCache(store, max_entries=2)
        cache.resolve("env-a", min_quality=0.0)
        cache.resolve("env-b", min_quality=0.0)
        cache.resolve("env-c", min_quality=0.0)  # evicts env-a (oldest)
        assert cache.entry_count == 2
        assert cache.evictions == 1
        cache.resolve("env-b", min_quality=0.0)
        assert cache.hits == 1  # env-b survived
        cache.resolve("env-a", min_quality=0.0)
        assert cache.misses == 4  # env-a was evicted: recompute

    def test_single_entry_over_byte_bound_still_serves(self, tmp_path):
        store = _store(tmp_path)
        store.publish(_snapshot(count=400))
        cache = SnapshotCache(store, max_mb=1e-6)  # impossibly tight
        assert cache.resolve("env-a", min_quality=0.0) is not None
        # The sole entry exceeds the byte bound but must not thrash away.
        assert cache.entry_count == 1
        assert cache.resolve("env-a", min_quality=0.0) is not None
        assert cache.hits == 1

    def test_invalidate_counts_and_scopes(self, tmp_path):
        store = _store(tmp_path)
        store.publish(_snapshot(environment_id="env-a"))
        store.publish(_snapshot(environment_id="env-b"))
        cache = SnapshotCache(store)
        cache.resolve("env-a", min_quality=0.0)
        cache.resolve("env-b", min_quality=0.0)
        assert cache.invalidate("env-a") == 1
        assert cache.entry_count == 1
        assert cache.invalidate() == 1
        assert cache.entry_count == 0 and cache.cached_bytes == 0
        assert cache.invalidations == 2


class TestBoundedStaleness:
    def test_strict_mode_misses_on_stamp_move(self, tmp_path):
        mine, sibling = _store(tmp_path), _store(tmp_path)
        mine.publish(_snapshot(seed=1))
        cache = SnapshotCache(mine)
        cache.resolve("env-a", min_quality=0.0)
        sibling.publish(_snapshot(seed=2, id_offset=100))
        fresh = cache.resolve("env-a", min_quality=0.0, staleness_bound=0)
        assert fresh.landmark_count == 80  # the recomputed merge
        assert cache.stale_serves == 0

    def test_bound_serves_k_versions_behind(self, tmp_path):
        mine, sibling = _store(tmp_path), _store(tmp_path)
        mine.publish(_snapshot(seed=1))
        cache = SnapshotCache(mine)
        old = cache.resolve("env-a", min_quality=0.0)
        sibling.publish(_snapshot(seed=2, id_offset=100))
        # One version behind, bound 1: served stale, counted.
        stale = cache.resolve("env-a", min_quality=0.0, staleness_bound=1)
        assert stale.version == old.version
        # Repeated looks at the SAME moved head stay "1 behind".
        again = cache.resolve("env-a", min_quality=0.0, staleness_bound=1)
        assert again.version == old.version
        assert cache.stale_serves == 2
        # A second distinct movement exceeds the bound: recompute.
        sibling.publish(_snapshot(seed=3, id_offset=200))
        fresh = cache.resolve("env-a", min_quality=0.0, staleness_bound=1)
        assert fresh.version != old.version
        assert fresh.landmark_count == 120
        assert (cache.misses, cache.stale_serves) == (2, 2)

    def test_engine_staleness_bound_defers_foreign_publishes(self, tmp_path):
        store = _store(tmp_path)
        cold = [_env_spec("cold-0", "depot", seed=0),
                _env_spec("cold-1", "depot", seed=1000)]
        seed_engine = ServingEngine(store=None, max_workers=1, map_store=store,
                                    min_map_quality=EASY_GATE)
        seed_engine.serve(cold, parallel=False, ingestion="streaming")
        bounded = ServingEngine(store=None, max_workers=1,
                                map_store=_store(tmp_path),
                                min_map_quality=EASY_GATE, map_updates=False,
                                map_staleness_bound=1)
        warm = bounded.serve([_env_spec("w0", "depot", seed=7000)],
                             parallel=False, ingestion="streaming")
        pinned = next(iter(warm.fleet_maps.values()))
        assert warm.map_cache_misses == 1 and warm.map_staleness_served == 0
        # A foreign wave (another engine) republishes: head moves.
        seed_engine.serve([_env_spec("f0", "depot", seed=8000)],
                          parallel=False, ingestion="streaming")
        stale = bounded.serve([_env_spec("w1", "depot", seed=9000)],
                              parallel=False, ingestion="streaming")
        # Within the bound the engine serves the version it already has —
        # reported as a stale serve, not hidden in the hit count.
        assert next(iter(stale.fleet_maps.values())) == pinned
        assert stale.map_staleness_served == 1
        assert stale.map_cache_hit_rate == 1.0
        # Strict engines on the same root see the new head immediately.
        strict = ServingEngine(store=None, max_workers=1,
                               map_store=_store(tmp_path),
                               min_map_quality=EASY_GATE, map_updates=False)
        head = strict.serve([_env_spec("w2", "depot", seed=9500)],
                            parallel=False, ingestion="streaming")
        assert next(iter(head.fleet_maps.values())) != pinned


class TestMaterialize:
    def test_rebuild_is_the_exact_canonical(self, tmp_path):
        store = _store(tmp_path)
        store.publish(_snapshot(seed=1))
        store.publish(_snapshot(seed=2, id_offset=100))
        stamp, canonical = store.canonical_provenance("env-a")
        # A fresh handle + cache (the shard side) rebuilds from references.
        shard_cache = SnapshotCache(_store(tmp_path))
        rebuilt = shard_cache.materialize("env-a", canonical.version, stamp)
        assert rebuilt is not None and rebuilt.version == canonical.version
        assert shard_cache.materializations == 1
        # Idempotent: the cached entry satisfies the same reference.
        again = shard_cache.materialize("env-a", canonical.version, stamp)
        assert again is rebuilt
        assert shard_cache.materializations == 1

    def test_unloadable_or_mismatched_inputs_return_none(self, tmp_path):
        store = _store(tmp_path)
        snapshot = _snapshot(seed=1)
        store.publish(snapshot)
        cache = SnapshotCache(store)
        assert cache.materialize("env-a", snapshot.version,
                                 ["env-a__missing"]) is None
        assert cache.materialize("env-a", "not-the-version",
                                 [f"env-a__{snapshot.version}"]) is None
        assert cache.materialize("env-a", snapshot.version, []) is None
        assert cache.materializations == 0


class TestSyncAccounting:
    def test_record_and_savings(self):
        sync = SyncAccounting()
        assert sync.savings_fraction == 0.0
        sync.record(full_bytes=1000, delta_bytes=100, environments=2)
        sync.record(full_bytes=1000, delta_bytes=900, environments=2,
                    fallbacks=1)
        assert sync.waves == 2 and sync.environments == 4
        assert sync.fallbacks == 1
        assert sync.savings_fraction == pytest.approx(0.5)
        assert sync.as_dict()["savings_fraction"] == pytest.approx(0.5)

    def test_payload_bytes_is_pickle_cost(self):
        assert payload_bytes({"a": 1}) > 0
        assert payload_bytes(_snapshot(count=200)) > \
            payload_bytes({"version": "x" * 64, "inputs": ["y" * 70]})


class TestClusterDeltaSync:
    def _warm_store(self, tmp_path):
        store = _store(tmp_path)
        cold = [_env_spec(f"cold-{i}", "depot", seed=seed)
                for i, seed in enumerate((0, 1000))]
        ServingEngine(store=None, max_workers=1, map_store=store,
                      min_map_quality=EASY_GATE).serve(
            cold, parallel=False, ingestion="streaming")
        return store

    def test_process_wave_ships_references_not_snapshots(self, tmp_path):
        self._warm_store(tmp_path)
        # map_updates off: an applied update fold moves the canonical and
        # would (correctly) turn the second wave into a revalidating miss;
        # the frozen store isolates the cache/sync protocol itself.
        cluster = ShardedServingEngine(
            2, map_store=_store(tmp_path), min_map_quality=EASY_GATE,
            shard_parallel=True, map_updates=False)
        warm = [_env_spec(f"warm-{i}", "depot", seed=5000 + i)
                for i in range(4)]
        report = cluster.serve(warm, parallel=True)
        # The payload path ran (on a 1-core host fan_out computes the same
        # payloads in-process — the protocol is identical either way).
        assert len(report.fleet_maps) == 1
        sync = cluster.sync_accounting
        assert sync.waves == 1 and sync.fallbacks == 0
        # The acceptance pin: references cost strictly less than the
        # full-snapshot protocol would have for the same wave.
        assert 0 < sync.delta_bytes < sync.full_bytes
        # Coordinator resolve went through its Tier-1 cache.
        assert report.map_cache_misses == 1
        second = cluster.serve(
            [_env_spec(f"again-{i}", "depot", seed=6000 + i)
             for i in range(4)], parallel=True)
        assert second.map_cache_hits >= 1

    def test_sequential_waves_ship_nothing(self, tmp_path):
        self._warm_store(tmp_path)
        cluster = ShardedServingEngine(
            2, map_store=_store(tmp_path), min_map_quality=EASY_GATE,
            shard_parallel=False)
        cluster.serve([_env_spec(f"warm-{i}", "depot", seed=5000 + i)
                       for i in range(4)], parallel=False)
        # In-process shards share the coordinator's objects: no sync bytes.
        assert cluster.sync_accounting.waves == 0


class TestUpdateAwareDriftGate:
    """Satellite: observed drift evidence closes the gate pre-demotion."""

    def _drift_kwargs(self):
        return dict(environment="yard", segment_duration=SEGMENT,
                    camera_rate_hz=RATE, drift_m=2.0, drift_fraction=0.4,
                    drift_seed=7)

    def test_condemned_version_is_withheld_until_repaired(self, tmp_path,
                                                          monkeypatch):
        import repro.serving.session as session_module
        original_publish_gate = session_module.MIN_PUBLISH_LANDMARKS
        store = _store(tmp_path)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE)
        engine.serve(drifting_environment_fleet(
            2, segment_duration=SEGMENT, camera_rate_hz=RATE,
            environment="yard"), parallel=False, ingestion="streaming")
        # Now suppress BOTH repair channels: the drifted wave demotes
        # (map_stale) but produces no update and republishes nothing —
        # exactly the regime where re-serving the same canonical would
        # demote every wave forever.
        monkeypatch.setattr("repro.serving.session.MIN_UPDATE_LANDMARKS",
                            10 ** 9)
        monkeypatch.setattr("repro.serving.session.MIN_PUBLISH_LANDMARKS",
                            10 ** 9)
        stale = engine.serve(
            drifting_environment_fleet(2, base_seed=20000, prefix="stale",
                                       **self._drift_kwargs()),
            parallel=False, ingestion="streaming")
        reasons = {switch.reason for result in stale.results.values()
                   for switch in result.mode_switches}
        assert "map_stale" in reasons
        assert not stale.maps_updated and stale.maps_published == 0
        condemned = dict(engine._map_drift_evidence)
        assert condemned  # the demotion was recorded as evidence
        # The next wave must NOT be handed the condemned map at all: no
        # acquisition, no mid-segment demotion — the gate closed first.
        gated = engine.serve(
            drifting_environment_fleet(2, base_seed=30000, prefix="gated",
                                       **self._drift_kwargs()),
            parallel=False, ingestion="streaming")
        assert gated.fleet_maps == {}
        assert gated.map_acquisition_count == 0
        gated_reasons = {switch.reason for result in gated.results.values()
                         for switch in result.mode_switches}
        assert "map_stale" not in gated_reasons
        # Re-enable publication: the still-gated fleet runs SLAM on the
        # drifted world and republishes, moving the canonical...
        monkeypatch.setattr("repro.serving.session.MIN_PUBLISH_LANDMARKS",
                            original_publish_gate)
        repair = engine.serve(
            drifting_environment_fleet(2, base_seed=40000, prefix="repair",
                                       **self._drift_kwargs()),
            parallel=False, ingestion="streaming")
        assert repair.fleet_maps == {} and repair.maps_published > 0
        # ...which lifts the gate: the next wave resolves and serves the
        # repaired version, not the condemned one.
        recovered = engine.serve(
            drifting_environment_fleet(2, base_seed=50000, prefix="recov",
                                       **self._drift_kwargs()),
            parallel=False, ingestion="streaming")
        assert recovered.fleet_maps
        for environment_id, version in recovered.fleet_maps.items():
            assert condemned.get(environment_id) != version
        assert engine._map_drift_evidence == {}

    def test_publish_only_engines_never_gate(self, tmp_path, monkeypatch):
        """A map_updates=False engine observes the same demotions but must
        not withhold — it is the control arm of the update experiments."""
        monkeypatch.setattr("repro.serving.session.MIN_UPDATE_LANDMARKS",
                            10 ** 9)
        store = _store(tmp_path)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE, map_updates=False)
        engine.serve(drifting_environment_fleet(
            2, segment_duration=SEGMENT, camera_rate_hz=RATE,
            environment="yard"), parallel=False, ingestion="streaming")
        stale = engine.serve(
            drifting_environment_fleet(2, base_seed=20000, prefix="stale",
                                       **self._drift_kwargs()),
            parallel=False, ingestion="streaming")
        reasons = {switch.reason for result in stale.results.values()
                   for switch in result.mode_switches}
        assert "map_stale" in reasons
        assert engine._map_drift_evidence == {}
