"""Fleet map service: snapshots, merging, and the persistent map store.

The load-bearing guarantees pinned here:

* snapshots are content-addressed (canonical landmark order, version digest
  covering everything that affects served results) and carry an honest
  quality score (monotone in landmarks/coverage, falling with residuals);
* the merger aligns and dedups overlapping snapshots deterministically, and
  merging a map with itself is a strict no-op;
* the map store mirrors the run store's robustness contract: atomic
  concurrent-writer-safe publishes, corrupt snapshots degrading to clean
  misses, LRU eviction with ``EUDOXUS_MAP_CACHE_MAX_MB=0`` meaning
  *unbounded*, and a quality-gated canonical resolve.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.maps import (
    DEFAULT_MAP_CACHE_MAX_MB,
    MapMerger,
    MapSnapshot,
    MapStore,
    degrade_snapshot,
    merge_quality,
    quality_score,
)
from repro.maps import store as store_module
from repro.maps.snapshot import QUALITY_COUNT_SCALE


def _snapshot(environment_id="env-a", count=40, spread=4.0, residual=0.05,
              seed=0, id_offset=0, **overrides):
    rng = np.random.default_rng(seed)
    defaults = dict(
        environment_id=environment_id,
        landmark_ids=np.arange(id_offset, id_offset + count),
        positions=rng.uniform(-spread, spread, size=(count, 3)),
        mean_residual_m=residual,
        max_residual_m=3.0 * residual,
        source="test",
    )
    defaults.update(overrides)
    return MapSnapshot(**defaults)


class TestSnapshot:
    def test_canonical_order_makes_version_insertion_independent(self):
        rng = np.random.default_rng(3)
        ids = np.array([5, 1, 9, 2])
        positions = rng.normal(size=(4, 3))
        a = MapSnapshot("env", ids, positions)
        shuffle = np.array([2, 0, 3, 1])
        b = MapSnapshot("env", ids[shuffle], positions[shuffle])
        assert a.version == b.version
        np.testing.assert_array_equal(a.landmark_ids, np.sort(ids))
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_version_covers_content(self):
        base = _snapshot()
        moved = _snapshot()
        moved.positions = moved.positions + 1e-9
        assert base.version != moved.version
        noisier = _snapshot(residual=0.2)
        assert base.version != noisier.version
        elsewhere = _snapshot(environment_id="env-b")
        assert base.version != elsewhere.version

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MapSnapshot("env", np.arange(3), np.zeros((2, 3)))

    def test_snapshots_compare_by_identity_not_arrays(self):
        """eq=False: comparisons return booleans instead of raising on the
        numpy fields; content equality is what ``version`` is for."""
        a = MapSnapshot("env", np.arange(2), np.zeros((2, 3)))
        b = MapSnapshot("env", np.arange(2), np.zeros((2, 3)))
        assert a != b and a == a
        assert a in [b, a]
        assert len({a, b}) == 2
        assert a.version == b.version

    def test_quality_shape(self):
        assert quality_score(0, 0.0, 0.0) == 0.0
        small = quality_score(10, 1.0, 0.05)
        big = quality_score(200, 10.0, 0.05)
        assert 0.0 < small < big < 1.0
        # Residuals only ever hurt.
        assert quality_score(200, 10.0, 2.0) < big

    def test_empty_snapshot_has_zero_quality(self):
        empty = MapSnapshot("env", np.zeros(0, dtype=np.int64), np.zeros((0, 3)))
        assert empty.landmark_count == 0
        assert empty.coverage_m == 0.0
        assert empty.quality == 0.0

    def test_localization_map_view(self):
        snapshot = _snapshot(count=12)
        localization_map = snapshot.to_localization_map()
        assert len(localization_map) == 12
        lid = int(snapshot.landmark_ids[3])
        np.testing.assert_array_equal(localization_map.points[lid].position,
                                      snapshot.positions[3])

    def test_degrade_lowers_quality_and_changes_version(self):
        snapshot = _snapshot(count=80, residual=0.05)
        degraded = degrade_snapshot(snapshot, position_noise_m=0.8,
                                    drop_fraction=0.5, seed=1)
        assert degraded.environment_id == snapshot.environment_id
        assert degraded.landmark_count < snapshot.landmark_count
        assert degraded.mean_residual_m > snapshot.mean_residual_m
        assert degraded.quality < snapshot.quality
        assert degraded.version != snapshot.version
        # Deterministic injection: same seed, same degraded map.
        again = degrade_snapshot(snapshot, position_noise_m=0.8,
                                 drop_fraction=0.5, seed=1)
        assert again.version == degraded.version


class TestMerger:
    def test_self_merge_is_noop(self):
        snapshot = _snapshot()
        merged = MapMerger().merge([snapshot, snapshot])
        assert merged is snapshot

    def test_merge_across_environments_rejected(self):
        with pytest.raises(ValueError):
            MapMerger().merge([_snapshot(environment_id="a", residual=0.05),
                               _snapshot(environment_id="b", residual=0.2)])

    def test_merge_unions_landmarks(self):
        a = _snapshot(count=30, id_offset=0, seed=1)
        b = _snapshot(count=30, id_offset=20, seed=2)  # 10 shared ids
        merged = MapMerger().merge([a, b])
        assert merged.landmark_count == 50
        assert merged.merged_from == 2
        assert merged.source == "merged"
        # Added coverage/landmarks never lower the canonical quality below
        # the best input (residuals held comparable).
        assert merged.quality >= max(a.quality, b.quality) - 1e-9

    def test_merge_aligns_drifted_snapshot(self):
        """A rigidly-drifted duplicate must be pulled back onto the anchor."""
        anchor = _snapshot(count=40, seed=3)
        rotation = np.array([[0.0, -1.0, 0.0],
                             [1.0, 0.0, 0.0],
                             [0.0, 0.0, 1.0]])
        drifted = MapSnapshot(
            environment_id=anchor.environment_id,
            landmark_ids=anchor.landmark_ids.copy(),
            positions=anchor.positions @ rotation.T + np.array([0.5, -0.2, 0.1]),
            mean_residual_m=anchor.mean_residual_m * 2.0,  # worse: not anchor
            max_residual_m=anchor.max_residual_m,
        )
        merged = MapMerger().merge([anchor, drifted])
        assert merged.landmark_count == anchor.landmark_count
        np.testing.assert_allclose(merged.positions, anchor.positions, atol=1e-6)

    def test_tiny_overlap_skips_alignment(self):
        a = _snapshot(count=20, id_offset=0, seed=4)
        b = _snapshot(count=20, id_offset=18, seed=5)  # 2 shared < min_shared
        merged = MapMerger(min_shared_for_alignment=8).merge([a, b])
        assert merged.landmark_count == 38

    def test_merge_order_invariant(self):
        a = _snapshot(count=25, id_offset=0, seed=6, residual=0.04)
        b = _snapshot(count=25, id_offset=10, seed=7, residual=0.08)
        c = _snapshot(count=25, id_offset=20, seed=8, residual=0.06)
        forward = MapMerger().merge([a, b, c])
        backward = MapMerger().merge([c, b, a])
        assert forward.version == backward.version

    def test_merge_quality_empty(self):
        assert merge_quality([]) == 0.0

    def test_all_empty_snapshots_merge_to_empty_canonical(self):
        """Distinct-version zero-landmark inputs must not crash the merge."""
        a = degrade_snapshot(_snapshot(residual=0.05), drop_fraction=1.0, seed=1)
        b = degrade_snapshot(_snapshot(residual=0.10), drop_fraction=1.0, seed=2)
        assert a.landmark_count == b.landmark_count == 0
        assert a.version != b.version
        merged = MapMerger().merge([a, b])
        assert merged.landmark_count == 0
        assert merged.quality == 0.0


class TestMapStore:
    def test_publish_and_resolve_roundtrip(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshot = _snapshot(count=120, spread=6.0, residual=0.03)
        assert store.publish(snapshot) is not None
        assert store.published == 1
        assert len(store) == 1
        resolved = MapStore(tmp_path, max_bytes=-1, max_age_s=-1).resolve("env-a")
        assert resolved is not None
        assert resolved.version == snapshot.version

    def test_publish_is_idempotent(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshot = _snapshot()
        first = store.publish(snapshot)
        assert store.publish(snapshot) == first
        assert len(store) == 1
        # Only the first write counts as publishing; the repeat merely
        # refreshed the entry's LRU recency.
        assert store.published == 1
        old = time.time() - 5000.0
        os.utime(first, (old, old))
        store.publish(snapshot)
        assert first.stat().st_mtime > old + 1000.0

    def test_publish_rewrites_entry_evicted_mid_touch(self, tmp_path, monkeypatch):
        """An entry evicted between the existence check and the recency
        touch is rewritten — publish never reports a vanished snapshot as
        persisted."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshot = _snapshot()
        path = store.publish(snapshot)
        original_utime = store_module.os.utime

        def racing_utime(target, *args, **kwargs):
            # The evictor got there first: the entry vanishes mid-touch.
            if str(target) == str(path):
                path.unlink(missing_ok=True)
                raise FileNotFoundError(target)
            return original_utime(target, *args, **kwargs)

        monkeypatch.setattr(store_module.os, "utime", racing_utime)
        republished = store.publish(snapshot)
        monkeypatch.undo()
        assert republished == path and path.exists()
        assert store.resolve("env-a", min_quality=0.0) is not None

    def test_unsafe_environment_rejected(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        with pytest.raises(ValueError):
            store.publish(_snapshot(environment_id="../escape"))
        # "__" is the filename delimiter: "atrium__old" entries would be
        # captured by resolve("atrium")'s prefix glob, so both publishing
        # and querying such an id are rejected outright — as are edge
        # underscores ("room_" would write "room___v", which the "room__*"
        # scan captures too).
        for unsafe in ("atrium__old", "room_", "_room", "_"):
            with pytest.raises(ValueError):
                store.publish(_snapshot(environment_id=unsafe))
            with pytest.raises(ValueError):
                store.resolve(unsafe)
        with pytest.raises(ValueError):
            store.snapshots("env*")
        # Interior single underscores and single-character ids stay legal.
        assert store.publish(_snapshot(environment_id="room_b")) is not None
        assert store.publish(_snapshot(environment_id="r")) is not None

    def test_environments_listed_per_prefix(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(environment_id="env-a", seed=1))
        store.publish(_snapshot(environment_id="env-a", seed=2))
        store.publish(_snapshot(environment_id="env-b", seed=3))
        assert store.environments() == ["env-a", "env-b"]
        assert len(store.snapshots("env-a")) == 2
        assert store.snapshots("env-missing") == []

    def test_resolve_merges_and_gates(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(count=60, id_offset=0, seed=1, spread=5.0))
        store.publish(_snapshot(count=60, id_offset=40, seed=2, spread=5.0))
        merged = store.resolve("env-a", min_quality=0.0)
        assert merged.landmark_count == 100  # union of 0..59 and 40..99
        # The gate: an impossible bar yields no servable map.
        assert store.resolve("env-a", min_quality=0.999) is None

    def test_resolve_memo_tracks_new_publishes(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(count=50, id_offset=0, seed=1))
        first = store.resolve("env-a", min_quality=0.0)
        store.publish(_snapshot(count=50, id_offset=30, seed=2))
        second = store.resolve("env-a", min_quality=0.0)
        assert second.landmark_count > first.landmark_count
        # One memo entry per environment, replaced in place — a long-lived
        # serving process alternating publish/resolve stays bounded.
        assert len(store._canonical) == 1

    def test_resolve_memo_keyed_by_merger_parameters(self, tmp_path):
        """Different mergers must not alias to one cached canonical map."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        good = _snapshot(count=120, spread=6.0, residual=0.03, seed=1)
        store.publish(good)
        store.publish(degrade_snapshot(good, position_noise_m=1.5,
                                       drop_fraction=0.4, seed=2))
        quarantined = store.resolve("env-a", MapMerger(quarantine_fraction=0.9),
                                    min_quality=0.0)
        permissive = store.resolve("env-a", MapMerger(quarantine_fraction=0.0),
                                   min_quality=0.0)
        assert quarantined.version != permissive.version
        assert quarantined.mean_residual_m < permissive.mean_residual_m

    def test_degraded_map_fails_the_gate(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        good = _snapshot(count=150, spread=6.0, residual=0.03)
        gate = good.quality - 1e-6
        store.publish(degrade_snapshot(good, position_noise_m=1.5,
                                       drop_fraction=0.6, seed=4))
        assert store.resolve("env-a", min_quality=gate) is None
        # A good snapshot restores service: the merger quarantines the
        # clearly-degraded contribution instead of averaging it in.
        store.publish(good)
        assert store.resolve("env-a", min_quality=gate) is not None


class TestMapStoreEdgeCases:
    """The run-store robustness contract, mirrored onto the map store."""

    def test_concurrent_publishers_vs_evictor(self, tmp_path):
        """Publishers and an evictor hammering one root never corrupt it."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        errors = []
        stop = threading.Event()

        def publisher(worker):
            try:
                i = 0
                while not stop.is_set():
                    store.publish(_snapshot(environment_id=f"env-{worker}",
                                            count=20, seed=i % 25))
                    i += 1
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        def evictor():
            try:
                while not stop.is_set():
                    store.evict(max_bytes=4 * 1024)
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        threads = [threading.Thread(target=publisher, args=(w,)) for w in range(3)]
        threads.append(threading.Thread(target=evictor))
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        # Every surviving snapshot is whole: loadable or a clean miss.
        for environment in store.environments():
            store.snapshots(environment)
        after = _snapshot(environment_id="after-the-storm")
        assert store.publish(after) is not None
        assert store.resolve("after-the-storm", min_quality=0.0) is not None

    def test_corrupt_snapshot_recovered_as_miss(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        good = _snapshot(count=60, seed=1)
        bad = _snapshot(count=60, seed=2)
        store.publish(good)
        store.publish(bad)
        store.path_for(f"env-a__{bad.version}").write_bytes(b"\x80\x04 truncated")
        fresh = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshots = fresh.snapshots("env-a")
        assert [s.version for s in snapshots] == [good.version]
        assert fresh.dropped == 1
        # The corrupt entry was unlinked; republishing heals the store.
        assert fresh.publish(bad) is not None
        assert len(fresh.snapshots("env-a")) == 2

    def test_wrong_payload_type_treated_as_corruption(self, tmp_path):
        import pickle

        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.root.mkdir(parents=True, exist_ok=True)
        store.path_for("env-a__deadbeef").write_bytes(pickle.dumps({"not": "a map"}))
        assert store.snapshots("env-a") == []
        assert store.dropped == 1

    def test_unwritable_root_degrades_quietly(self):
        store = MapStore("/proc/nonexistent-map-store")
        assert store.publish(_snapshot()) is None
        assert store.published == 0
        assert store.resolve("env-a") is None

    def test_zero_max_mb_env_disables_size_bound(self, tmp_path, monkeypatch):
        """EUDOXUS_MAP_CACHE_MAX_MB=0 means unbounded, not evict-everything."""
        monkeypatch.setenv(store_module.MAP_CACHE_MAX_MB_ENV, "0")
        monkeypatch.setenv(store_module.MAP_CACHE_MAX_AGE_DAYS_ENV, "0")
        store = MapStore(tmp_path)
        assert store.max_bytes is None and store.max_age_s is None
        for i in range(6):
            store.publish(_snapshot(count=50, seed=i))
        assert store.evict() == 0
        assert len(store) == 6
        rebuilt = MapStore(tmp_path)  # construction-time sweep is a no-op too
        assert rebuilt.evicted == 0
        assert len(rebuilt) == 6

    def test_env_bounds_and_root_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_module.MAP_CACHE_MAX_MB_ENV, "3")
        monkeypatch.setenv(store_module.MAP_CACHE_MAX_AGE_DAYS_ENV, "1.5")
        store = MapStore(tmp_path)
        assert store.max_bytes == 3 * 1024 * 1024
        assert store.max_age_s == 1.5 * 86400.0
        monkeypatch.setenv(store_module.MAP_CACHE_MAX_MB_ENV, "not-a-number")
        fallback = MapStore(tmp_path)
        assert fallback.max_bytes == DEFAULT_MAP_CACHE_MAX_MB * 1024 * 1024
        monkeypatch.setenv(store_module.MAP_CACHE_ENV, str(tmp_path / "override"))
        override = MapStore()
        assert override.base_root == tmp_path / "override"
        # The active directory embeds the code generation.
        assert override.root.parent == override.base_root

    def test_code_generation_isolates_snapshots(self, tmp_path, monkeypatch):
        """Maps never outlive the code that generated their worlds."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(count=60))
        assert store.resolve("env-a", min_quality=0.0) is not None
        monkeypatch.setattr(store_module, "code_fingerprint", lambda: "f" * 64)
        next_generation = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        assert next_generation.root != store.root
        assert next_generation.resolve("env-a", min_quality=0.0) is None
        assert len(next_generation) == 0

    def test_stale_generations_swept_by_age(self, tmp_path, monkeypatch):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(count=60))
        old_root = store.root
        stamp = time.time() - 7200.0
        for path in list(old_root.glob("*.pkl")) + [old_root]:
            os.utime(path, (stamp, stamp))
        monkeypatch.setattr(store_module, "code_fingerprint", lambda: "f" * 64)
        # Age bound disabled: the superseded generation is left alone.
        MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        assert old_root.is_dir()
        # With an age bound tighter than the directory's age, it is swept —
        # but only generation-shaped children: an unrelated subdirectory of
        # a user-supplied root (e.g. a sibling run cache) is never touched.
        unrelated = tmp_path / "runs"
        unrelated.mkdir()
        (unrelated / "entry.pkl").write_bytes(b"not ours")
        os.utime(unrelated / "entry.pkl", (stamp, stamp))
        os.utime(unrelated, (stamp, stamp))
        MapStore(tmp_path, max_bytes=-1, max_age_s=3600.0)
        assert not old_root.exists()
        assert (unrelated / "entry.pkl").exists()

    def test_lru_eviction_keeps_recently_resolved(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        cold = _snapshot(environment_id="cold-env", count=40, seed=1)
        hot = _snapshot(environment_id="hot-env", count=40, seed=2)
        store.publish(cold)
        store.publish(hot)
        stale = time.time() - 5000.0
        for key in (f"cold-env__{cold.version}", f"hot-env__{hot.version}"):
            os.utime(store.path_for(key), (stale, stale))
        # Resolving touches the hot entry (hits refresh recency)...
        assert store.resolve("hot-env", min_quality=0.0) is not None
        # ...so the size bound evicts the cold one first.
        removed = store.evict(max_bytes=store.path_for(
            f"hot-env__{hot.version}").stat().st_size + 1)
        assert removed == 1
        assert store.snapshots("cold-env") == []
        assert len(store.snapshots("hot-env")) == 1

    def test_quality_count_scale_sanity(self):
        # The scale the serving gate is calibrated against; moving it
        # silently would reshuffle every fleet's SLAM/registration split.
        assert QUALITY_COUNT_SCALE == 60.0
