"""Fleet map service: snapshots, merging, and the persistent map store.

The load-bearing guarantees pinned here:

* snapshots are content-addressed (canonical landmark order, version digest
  covering everything that affects served results) and carry an honest
  quality score (monotone in landmarks/coverage, falling with residuals);
* the merger aligns and dedups overlapping snapshots deterministically, and
  merging a map with itself is a strict no-op;
* the map store mirrors the run store's robustness contract: atomic
  concurrent-writer-safe publishes, corrupt snapshots degrading to clean
  misses, LRU eviction with ``EUDOXUS_MAP_CACHE_MAX_MB=0`` meaning
  *unbounded*, and a quality-gated canonical resolve.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.maps import (
    DEFAULT_MAP_CACHE_MAX_MB,
    MapMerger,
    MapSnapshot,
    MapStore,
    MapUpdate,
    degrade_snapshot,
    merge_quality,
    quality_score,
)
from repro.maps import store as store_module
from repro.maps.snapshot import QUALITY_COUNT_SCALE


def _snapshot(environment_id="env-a", count=40, spread=4.0, residual=0.05,
              seed=0, id_offset=0, **overrides):
    rng = np.random.default_rng(seed)
    defaults = dict(
        environment_id=environment_id,
        landmark_ids=np.arange(id_offset, id_offset + count),
        positions=rng.uniform(-spread, spread, size=(count, 3)),
        mean_residual_m=residual,
        max_residual_m=3.0 * residual,
        source="test",
    )
    defaults.update(overrides)
    return MapSnapshot(**defaults)


def _update(snapshot, landmark_ids, observed_positions, residuals, counts=None,
            base_version=None, source="session", segment_index=0):
    landmark_ids = np.asarray(landmark_ids, dtype=np.int64)
    counts = (np.full(landmark_ids.size, 4, dtype=np.int64)
              if counts is None else np.asarray(counts, dtype=np.int64))
    residuals = np.asarray(residuals, dtype=np.float64)
    return MapUpdate(
        environment_id=snapshot.environment_id,
        base_version=base_version or snapshot.version,
        landmark_ids=landmark_ids,
        observation_counts=counts,
        observed_positions=np.asarray(observed_positions, dtype=np.float64),
        mean_residuals_m=residuals,
        max_residuals_m=residuals * 2.0,
        source=source,
        segment_index=segment_index,
        frame_count=int(counts.max()) if counts.size else 0,
    )


class TestSnapshot:
    def test_canonical_order_makes_version_insertion_independent(self):
        rng = np.random.default_rng(3)
        ids = np.array([5, 1, 9, 2])
        positions = rng.normal(size=(4, 3))
        a = MapSnapshot("env", ids, positions)
        shuffle = np.array([2, 0, 3, 1])
        b = MapSnapshot("env", ids[shuffle], positions[shuffle])
        assert a.version == b.version
        np.testing.assert_array_equal(a.landmark_ids, np.sort(ids))
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_version_covers_content(self):
        base = _snapshot()
        moved = _snapshot()
        moved.positions = moved.positions + 1e-9
        assert base.version != moved.version
        noisier = _snapshot(residual=0.2)
        assert base.version != noisier.version
        elsewhere = _snapshot(environment_id="env-b")
        assert base.version != elsewhere.version

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            MapSnapshot("env", np.arange(3), np.zeros((2, 3)))

    def test_snapshots_compare_by_identity_not_arrays(self):
        """eq=False: comparisons return booleans instead of raising on the
        numpy fields; content equality is what ``version`` is for."""
        a = MapSnapshot("env", np.arange(2), np.zeros((2, 3)))
        b = MapSnapshot("env", np.arange(2), np.zeros((2, 3)))
        assert a != b and a == a
        assert a in [b, a]
        assert len({a, b}) == 2
        assert a.version == b.version

    def test_quality_shape(self):
        assert quality_score(0, 0.0, 0.0) == 0.0
        small = quality_score(10, 1.0, 0.05)
        big = quality_score(200, 10.0, 0.05)
        assert 0.0 < small < big < 1.0
        # Residuals only ever hurt.
        assert quality_score(200, 10.0, 2.0) < big

    def test_empty_snapshot_has_zero_quality(self):
        empty = MapSnapshot("env", np.zeros(0, dtype=np.int64), np.zeros((0, 3)))
        assert empty.landmark_count == 0
        assert empty.coverage_m == 0.0
        assert empty.quality == 0.0

    def test_localization_map_view(self):
        snapshot = _snapshot(count=12)
        localization_map = snapshot.to_localization_map()
        assert len(localization_map) == 12
        lid = int(snapshot.landmark_ids[3])
        np.testing.assert_array_equal(localization_map.points[lid].position,
                                      snapshot.positions[3])

    def test_degrade_lowers_quality_and_changes_version(self):
        snapshot = _snapshot(count=80, residual=0.05)
        degraded = degrade_snapshot(snapshot, position_noise_m=0.8,
                                    drop_fraction=0.5, seed=1)
        assert degraded.environment_id == snapshot.environment_id
        assert degraded.landmark_count < snapshot.landmark_count
        assert degraded.mean_residual_m > snapshot.mean_residual_m
        assert degraded.quality < snapshot.quality
        assert degraded.version != snapshot.version
        # Deterministic injection: same seed, same degraded map.
        again = degrade_snapshot(snapshot, position_noise_m=0.8,
                                 drop_fraction=0.5, seed=1)
        assert again.version == degraded.version


class TestMerger:
    def test_self_merge_is_noop(self):
        snapshot = _snapshot()
        merged = MapMerger().merge([snapshot, snapshot])
        assert merged is snapshot

    def test_merge_across_environments_rejected(self):
        with pytest.raises(ValueError):
            MapMerger().merge([_snapshot(environment_id="a", residual=0.05),
                               _snapshot(environment_id="b", residual=0.2)])

    def test_merge_unions_landmarks(self):
        a = _snapshot(count=30, id_offset=0, seed=1)
        b = _snapshot(count=30, id_offset=20, seed=2)  # 10 shared ids
        merged = MapMerger().merge([a, b])
        assert merged.landmark_count == 50
        assert merged.merged_from == 2
        assert merged.source == "merged"
        # Added coverage/landmarks never lower the canonical quality below
        # the best input (residuals held comparable).
        assert merged.quality >= max(a.quality, b.quality) - 1e-9

    def test_merge_aligns_drifted_snapshot(self):
        """A rigidly-drifted duplicate must be pulled back onto the anchor."""
        anchor = _snapshot(count=40, seed=3)
        rotation = np.array([[0.0, -1.0, 0.0],
                             [1.0, 0.0, 0.0],
                             [0.0, 0.0, 1.0]])
        drifted = MapSnapshot(
            environment_id=anchor.environment_id,
            landmark_ids=anchor.landmark_ids.copy(),
            positions=anchor.positions @ rotation.T + np.array([0.5, -0.2, 0.1]),
            mean_residual_m=anchor.mean_residual_m * 2.0,  # worse: not anchor
            max_residual_m=anchor.max_residual_m,
        )
        merged = MapMerger().merge([anchor, drifted])
        assert merged.landmark_count == anchor.landmark_count
        np.testing.assert_allclose(merged.positions, anchor.positions, atol=1e-6)

    def test_tiny_overlap_skips_alignment(self):
        a = _snapshot(count=20, id_offset=0, seed=4)
        b = _snapshot(count=20, id_offset=18, seed=5)  # 2 shared < min_shared
        merged = MapMerger(min_shared_for_alignment=8).merge([a, b])
        assert merged.landmark_count == 38

    def test_merge_order_invariant(self):
        a = _snapshot(count=25, id_offset=0, seed=6, residual=0.04)
        b = _snapshot(count=25, id_offset=10, seed=7, residual=0.08)
        c = _snapshot(count=25, id_offset=20, seed=8, residual=0.06)
        forward = MapMerger().merge([a, b, c])
        backward = MapMerger().merge([c, b, a])
        assert forward.version == backward.version

    def test_merge_quality_empty(self):
        assert merge_quality([]) == 0.0

    def test_all_empty_snapshots_merge_to_empty_canonical(self):
        """Distinct-version zero-landmark inputs must not crash the merge."""
        a = degrade_snapshot(_snapshot(residual=0.05), drop_fraction=1.0, seed=1)
        b = degrade_snapshot(_snapshot(residual=0.10), drop_fraction=1.0, seed=2)
        assert a.landmark_count == b.landmark_count == 0
        assert a.version != b.version
        merged = MapMerger().merge([a, b])
        assert merged.landmark_count == 0
        assert merged.quality == 0.0


class TestMergerUpdates:
    """MapMerger.apply_updates: confirm / relocate / prune per landmark."""

    def test_confirmed_landmark_blends_by_observation_count(self):
        snapshot = _snapshot(count=10, seed=1)
        target = int(snapshot.landmark_ids[0])
        observed = snapshot.positions[0] + np.array([0.05, 0.0, 0.0])
        update = _update(snapshot, [target], [observed], [0.05], counts=[9])
        updated = MapMerger().apply_updates(snapshot, [update])
        index = int(np.searchsorted(updated.landmark_ids, target))
        expected = (1 * snapshot.positions[0] + 9 * observed) / 10.0
        np.testing.assert_allclose(updated.positions[index], expected)
        assert updated.observation_counts[index] == 10
        assert updated.landmark_count == snapshot.landmark_count
        assert updated.source == "updated"
        assert updated.version != snapshot.version

    def test_drifted_landmark_relocated_when_well_observed(self):
        snapshot = _snapshot(count=10, seed=2)
        target = int(snapshot.landmark_ids[3])
        moved_to = snapshot.positions[3] + np.array([2.0, -1.0, 0.5])
        update = _update(snapshot, [target], [moved_to], [2.3], counts=[6])
        updated = MapMerger(drift_residual_m=0.5).apply_updates(snapshot, [update])
        index = int(np.searchsorted(updated.landmark_ids, target))
        # The stale prior is discarded: the landmark sits exactly where the
        # fleet now observes it, backed only by the fresh observations.
        np.testing.assert_allclose(updated.positions[index], moved_to)
        assert updated.observation_counts[index] == 6

    def test_drifted_landmark_pruned_when_under_observed(self):
        snapshot = _snapshot(count=10, seed=3)
        target = int(snapshot.landmark_ids[5])
        update = _update(snapshot, [target], [snapshot.positions[5] + 3.0],
                         [3.0], counts=[2])
        updated = MapMerger(drift_residual_m=0.5,
                            relocate_min_observations=3).apply_updates(
            snapshot, [update])
        assert target not in updated.landmark_ids
        assert updated.landmark_count == snapshot.landmark_count - 1

    def test_unobserved_landmarks_carried_through(self):
        snapshot = _snapshot(count=10, seed=4)
        target = int(snapshot.landmark_ids[0])
        update = _update(snapshot, [target], [snapshot.positions[0]], [0.02])
        updated = MapMerger().apply_updates(snapshot, [update])
        for i, lid in enumerate(snapshot.landmark_ids[1:], start=1):
            index = int(np.searchsorted(updated.landmark_ids, lid))
            np.testing.assert_array_equal(updated.positions[index],
                                          snapshot.positions[i])

    def test_successful_update_improves_residual_stats(self):
        """Confirmed observations shrink the reported residuals — the gate
        sees a *better* map after a healthy update, not a worse one."""
        snapshot = _snapshot(count=20, seed=5, residual=0.2)
        update = _update(snapshot, snapshot.landmark_ids,
                         snapshot.positions, np.full(20, 0.1), counts=np.full(20, 8))
        updated = MapMerger().apply_updates(snapshot, [update])
        assert updated.mean_residual_m < snapshot.mean_residual_m
        assert updated.quality > snapshot.quality

    def test_foreign_environment_update_rejected(self):
        snapshot = _snapshot(environment_id="env-a")
        foreign = _snapshot(environment_id="env-b")
        update = _update(foreign, [int(foreign.landmark_ids[0])],
                         [foreign.positions[0]], [0.05])
        with pytest.raises(ValueError):
            MapMerger().apply_updates(snapshot, [update])

    def test_no_updates_is_identity(self):
        snapshot = _snapshot(count=12, seed=6)
        assert MapMerger().apply_updates(snapshot, []) is snapshot

    def test_merge_blends_overlaps_by_observation_count(self):
        """A heavily-confirmed landmark outweighs a single sighting."""
        base = _snapshot(count=30, seed=7)
        confirmed = MapSnapshot(
            environment_id=base.environment_id,
            landmark_ids=base.landmark_ids.copy(),
            positions=base.positions.copy(),
            mean_residual_m=base.mean_residual_m,
            max_residual_m=base.max_residual_m,
            observation_counts=np.full(30, 9, dtype=np.int64),
        )
        shifted = MapSnapshot(
            environment_id=base.environment_id,
            landmark_ids=base.landmark_ids.copy(),
            positions=base.positions + np.array([1.0, 0.0, 0.0]),
            mean_residual_m=base.mean_residual_m * 1.5,  # not the anchor
            max_residual_m=base.max_residual_m,
        )
        merged = MapMerger(min_shared_for_alignment=1000).merge([confirmed, shifted])
        # 9:1 weighting pulls the blend to within 0.1 of the confirmed map.
        offsets = merged.positions - base.positions
        np.testing.assert_allclose(offsets[:, 0], 0.1, atol=1e-9)
        np.testing.assert_array_equal(merged.observation_counts, np.full(30, 10))


class TestMapStore:
    def test_publish_and_resolve_roundtrip(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshot = _snapshot(count=120, spread=6.0, residual=0.03)
        assert store.publish(snapshot) is not None
        assert store.published == 1
        assert len(store) == 1
        resolved = MapStore(tmp_path, max_bytes=-1, max_age_s=-1).resolve("env-a")
        assert resolved is not None
        assert resolved.version == snapshot.version

    def test_publish_is_idempotent(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshot = _snapshot()
        first = store.publish(snapshot)
        assert store.publish(snapshot) == first
        assert len(store) == 1
        # Only the first write counts as publishing; the repeat merely
        # refreshed the entry's LRU recency.
        assert store.published == 1
        old = time.time() - 5000.0
        os.utime(first, (old, old))
        store.publish(snapshot)
        assert first.stat().st_mtime > old + 1000.0

    def test_publish_rewrites_entry_evicted_mid_touch(self, tmp_path, monkeypatch):
        """An entry evicted between the existence check and the recency
        touch is rewritten — publish never reports a vanished snapshot as
        persisted."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshot = _snapshot()
        path = store.publish(snapshot)
        original_utime = store_module.os.utime

        def racing_utime(target, *args, **kwargs):
            # The evictor got there first: the entry vanishes mid-touch.
            if str(target) == str(path):
                path.unlink(missing_ok=True)
                raise FileNotFoundError(target)
            return original_utime(target, *args, **kwargs)

        monkeypatch.setattr(store_module.os, "utime", racing_utime)
        republished = store.publish(snapshot)
        monkeypatch.undo()
        assert republished == path and path.exists()
        assert store.resolve("env-a", min_quality=0.0) is not None

    def test_unsafe_environment_rejected(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        with pytest.raises(ValueError):
            store.publish(_snapshot(environment_id="../escape"))
        # "__" is the filename delimiter: "atrium__old" entries would be
        # captured by resolve("atrium")'s prefix glob, so both publishing
        # and querying such an id are rejected outright — as are edge
        # underscores ("room_" would write "room___v", which the "room__*"
        # scan captures too).
        for unsafe in ("atrium__old", "room_", "_room", "_"):
            with pytest.raises(ValueError):
                store.publish(_snapshot(environment_id=unsafe))
            with pytest.raises(ValueError):
                store.resolve(unsafe)
        with pytest.raises(ValueError):
            store.snapshots("env*")
        # Interior single underscores and single-character ids stay legal.
        assert store.publish(_snapshot(environment_id="room_b")) is not None
        assert store.publish(_snapshot(environment_id="r")) is not None

    def test_environments_listed_per_prefix(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(environment_id="env-a", seed=1))
        store.publish(_snapshot(environment_id="env-a", seed=2))
        store.publish(_snapshot(environment_id="env-b", seed=3))
        assert store.environments() == ["env-a", "env-b"]
        assert len(store.snapshots("env-a")) == 2
        assert store.snapshots("env-missing") == []

    def test_resolve_merges_and_gates(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(count=60, id_offset=0, seed=1, spread=5.0))
        store.publish(_snapshot(count=60, id_offset=40, seed=2, spread=5.0))
        merged = store.resolve("env-a", min_quality=0.0)
        assert merged.landmark_count == 100  # union of 0..59 and 40..99
        # The gate: an impossible bar yields no servable map.
        assert store.resolve("env-a", min_quality=0.999) is None

    def test_resolve_memo_tracks_new_publishes(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(count=50, id_offset=0, seed=1))
        first = store.resolve("env-a", min_quality=0.0)
        store.publish(_snapshot(count=50, id_offset=30, seed=2))
        second = store.resolve("env-a", min_quality=0.0)
        assert second.landmark_count > first.landmark_count
        # One memo entry per environment, replaced in place — a long-lived
        # serving process alternating publish/resolve stays bounded.
        assert len(store._canonical) == 1

    def test_resolve_memo_keyed_by_merger_parameters(self, tmp_path):
        """Different mergers must not alias to one cached canonical map."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        good = _snapshot(count=120, spread=6.0, residual=0.03, seed=1)
        store.publish(good)
        store.publish(degrade_snapshot(good, position_noise_m=1.5,
                                       drop_fraction=0.4, seed=2))
        quarantined = store.resolve("env-a", MapMerger(quarantine_fraction=0.9),
                                    min_quality=0.0)
        permissive = store.resolve("env-a", MapMerger(quarantine_fraction=0.0),
                                   min_quality=0.0)
        assert quarantined.version != permissive.version
        assert quarantined.mean_residual_m < permissive.mean_residual_m

    def test_degraded_map_fails_the_gate(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        good = _snapshot(count=150, spread=6.0, residual=0.03)
        gate = good.quality - 1e-6
        store.publish(degrade_snapshot(good, position_noise_m=1.5,
                                       drop_fraction=0.6, seed=4))
        assert store.resolve("env-a", min_quality=gate) is None
        # A good snapshot restores service: the merger quarantines the
        # clearly-degraded contribution instead of averaging it in.
        store.publish(good)
        assert store.resolve("env-a", min_quality=gate) is not None


class TestMapStoreUpdates:
    """MapStore.apply_updates: fold deltas into a new version, compact."""

    def test_apply_updates_writes_new_version_and_compacts(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        a = _snapshot(count=40, id_offset=0, seed=1)
        b = _snapshot(count=40, id_offset=20, seed=2)
        store.publish(a)
        store.publish(b)
        canonical = store.resolve("env-a", min_quality=0.0)
        update = _update(canonical, canonical.landmark_ids[:10],
                         canonical.positions[:10], np.full(10, 0.02))
        applied = store.apply_updates([update])
        assert set(applied) == {"env-a"}
        # The history is compacted into the single updated snapshot: pruned
        # or refreshed landmarks can never resurrect from stale inputs.
        assert len(store.snapshots("env-a")) == 1
        resolved = store.resolve("env-a", min_quality=0.0)
        assert resolved.version == applied["env-a"].version
        assert resolved.version != canonical.version
        assert store.updated == 1

    def test_apply_updates_prunes_for_good(self, tmp_path):
        """A pruned landmark stays pruned after re-resolve (compaction)."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshot = _snapshot(count=30, seed=3)
        store.publish(snapshot)
        target = int(snapshot.landmark_ids[4])
        update = _update(snapshot, [target], [snapshot.positions[4] + 5.0],
                         [5.0], counts=[2])
        store.apply_updates([update], merger=MapMerger(drift_residual_m=0.5,
                                                       relocate_min_observations=3))
        resolved = store.resolve("env-a", min_quality=0.0)
        assert target not in resolved.landmark_ids

    def test_apply_updates_without_history_is_noop(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        phantom = _snapshot(environment_id="never-published")
        update = _update(phantom, [0], [np.zeros(3)], [0.1])
        assert store.apply_updates([update]) == {}
        assert store.updated == 0

    def test_reapplication_converges_and_stays_compact(self, tmp_path):
        """Re-applying the same delta keeps exactly one snapshot on disk and
        only ever pulls positions further toward the observed mean —
        convergent, never divergent."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshot = _snapshot(count=30, seed=4)
        store.publish(snapshot)
        target = int(snapshot.landmark_ids[0])
        observed = snapshot.positions[0] + np.array([0.1, 0.0, 0.0])
        update = _update(snapshot, [target], [observed], [0.1], counts=[4])
        distances = []
        for _ in range(3):
            store.apply_updates([update])
            assert len(store.snapshots("env-a")) == 1
            resolved = store.resolve("env-a", min_quality=0.0)
            index = int(np.searchsorted(resolved.landmark_ids, target))
            distances.append(float(np.linalg.norm(
                resolved.positions[index] - observed)))
        assert distances[0] > distances[1] > distances[2]

    def test_pure_reconfirmation_quiesces(self, tmp_path):
        """An update that re-confirms the map exactly where it already is
        (zero offset, residuals at the established level) must NOT mint a
        new canonical version — a converged environment stops churning
        serving cache keys."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshot = _snapshot(count=30, seed=8, residual=0.05)
        store.publish(snapshot)
        confirm = _update(snapshot, snapshot.landmark_ids[:12],
                          snapshot.positions[:12], np.full(12, 0.05),
                          counts=np.full(12, 6))
        assert store.apply_updates([confirm]) == {}
        assert store.updated == 0
        assert [s.version for s in store.snapshots("env-a")] == [snapshot.version]

    def test_quiesced_multi_snapshot_history_not_compacted(self, tmp_path):
        """A quiesced application of a multi-snapshot history reports no
        change and leaves the history alone — re-materializing the same
        canonical is not a 'change' the next wave could observe."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(count=40, id_offset=0, seed=10, residual=0.05))
        store.publish(_snapshot(count=40, id_offset=20, seed=11, residual=0.05))
        canonical = store.resolve("env-a", min_quality=0.0)
        confirm = _update(canonical, canonical.landmark_ids[:12],
                          canonical.positions[:12],
                          np.full(12, canonical.mean_residual_m),
                          counts=np.full(12, 6))
        assert store.apply_updates([confirm]) == {}
        assert store.updated == 0
        assert len(store.snapshots("env-a")) == 2
        assert store.resolve("env-a", min_quality=0.0).version == canonical.version

    def test_noise_dominated_confirmation_keeps_honest_residuals(self):
        """Scatter is irreducible: n noisy observations of an unmoved
        landmark must not shrink its reported residual below what was
        measured (quality cannot compound toward perfect)."""
        snapshot = _snapshot(count=10, seed=9, residual=0.3)
        target = int(snapshot.landmark_ids[0])
        # Observed mean sits exactly on the map position (offset 0), but
        # the individual observations scattered by ~0.3 m.
        update = _update(snapshot, [target], [snapshot.positions[0]],
                         [0.3], counts=[9])
        updated = MapMerger().apply_updates(snapshot, [update])
        if updated is not snapshot:  # quiesced is also acceptable
            index = int(np.searchsorted(updated.landmark_ids, target))
            assert updated.observation_counts[index] == 10
        # Either way the reported stats never dip below the measured 0.3.
        assert updated.mean_residual_m >= 0.3 - 1e-9

    def test_apply_updates_unwritable_root_keeps_history(self, tmp_path, monkeypatch):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshot = _snapshot(count=30, seed=5)
        store.publish(snapshot)
        update = _update(snapshot, snapshot.landmark_ids[:12],
                         snapshot.positions[:12], np.full(12, 0.03))
        # Make the root unwritable for the new version's file.
        monkeypatch.setattr(MapStore, "save_key", lambda self, key, result: None)
        assert store.apply_updates([update]) == {}
        monkeypatch.undo()
        # The existing history was NOT compacted away.
        assert len(store.snapshots("env-a")) == 1
        assert store.resolve("env-a", min_quality=0.0).version == snapshot.version

    def test_update_application_order_invariant(self, tmp_path):
        """Worker completion order must not change the updated version."""
        snapshot = _snapshot(count=40, seed=6)
        updates = [
            _update(snapshot, snapshot.landmark_ids[:20],
                    snapshot.positions[:20] + 0.01, np.full(20, 0.04),
                    source=f"s-{i}", segment_index=i)
            for i in range(3)
        ]
        versions = []
        for order in ([0, 1, 2], [2, 0, 1], [1, 2, 0]):
            root = tmp_path / f"order-{order[0]}{order[1]}{order[2]}"
            store = MapStore(root, max_bytes=-1, max_age_s=-1)
            store.publish(snapshot)
            applied = store.apply_updates([updates[i] for i in order])
            versions.append(applied["env-a"].version)
        assert len(set(versions)) == 1


class TestMapStoreEdgeCases:
    """The run-store robustness contract, mirrored onto the map store."""

    def test_eviction_invalidates_canonical_memo(self, tmp_path):
        """An evicted snapshot must not keep being served from the memo.

        The resolve memo is keyed on the on-disk file stems (re-derived
        every call), so eviction already can't serve stale *content* — this
        guard pins the two remaining contracts: a fully-evicted environment
        resolves to None (not the memoized canonical), and its memo entry
        is pruned rather than retained indefinitely.
        """
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        keep = _snapshot(environment_id="keep-env", count=60, seed=1)
        lose = _snapshot(environment_id="lose-env", count=60, seed=2)
        store.publish(keep)
        store.publish(lose)
        assert store.resolve("keep-env", min_quality=0.0) is not None
        assert store.resolve("lose-env", min_quality=0.0) is not None
        assert set(store._canonical) == {"keep-env", "lose-env"}
        # Age the loser; resolve refreshed keep-env's recency above it.
        stale = time.time() - 5000.0
        os.utime(store.path_for(f"lose-env__{lose.version}"), (stale, stale))
        assert store.resolve("keep-env", min_quality=0.0) is not None
        removed = store.evict(max_bytes=store.path_for(
            f"keep-env__{keep.version}").stat().st_size + 1)
        assert removed == 1
        # The evicted environment is gone from disk, from resolve AND from
        # the memo; the survivor keeps serving (and keeps its memo entry).
        assert store.resolve("lose-env", min_quality=0.0) is None
        assert set(store._canonical) == {"keep-env"}
        assert store.resolve("keep-env", min_quality=0.0).version == keep.version

    def test_generation_sweep_cannot_leave_stale_memo(self, tmp_path, monkeypatch):
        """_sweep_stale_generations only ever removes *other* generations'
        directories, and it runs at construction time — before the memo has
        any entries — so there is no stale-memo window to exploit."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(count=60))
        old_root = store.root
        stamp = time.time() - 7200.0
        for path in list(old_root.glob("*.pkl")) + [old_root]:
            os.utime(path, (stamp, stamp))
        monkeypatch.setattr(store_module, "code_fingerprint", lambda: "e" * 64)
        fresh = MapStore(tmp_path, max_bytes=-1, max_age_s=3600.0)
        assert not old_root.exists()
        assert fresh._canonical == {}
        assert fresh.resolve("env-a", min_quality=0.0) is None

    def test_concurrent_publishers_vs_evictor(self, tmp_path):
        """Publishers and an evictor hammering one root never corrupt it."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        errors = []
        stop = threading.Event()

        def publisher(worker):
            try:
                i = 0
                while not stop.is_set():
                    store.publish(_snapshot(environment_id=f"env-{worker}",
                                            count=20, seed=i % 25))
                    i += 1
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        def evictor():
            try:
                while not stop.is_set():
                    store.evict(max_bytes=4 * 1024)
            except Exception as exc:  # pragma: no cover - the failure signal
                errors.append(exc)

        threads = [threading.Thread(target=publisher, args=(w,)) for w in range(3)]
        threads.append(threading.Thread(target=evictor))
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        # Every surviving snapshot is whole: loadable or a clean miss.
        for environment in store.environments():
            store.snapshots(environment)
        after = _snapshot(environment_id="after-the-storm")
        assert store.publish(after) is not None
        assert store.resolve("after-the-storm", min_quality=0.0) is not None

    def test_corrupt_snapshot_recovered_as_miss(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        good = _snapshot(count=60, seed=1)
        bad = _snapshot(count=60, seed=2)
        store.publish(good)
        store.publish(bad)
        store.path_for(f"env-a__{bad.version}").write_bytes(b"\x80\x04 truncated")
        fresh = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshots = fresh.snapshots("env-a")
        assert [s.version for s in snapshots] == [good.version]
        assert fresh.dropped == 1
        # The corrupt entry was unlinked; republishing heals the store.
        assert fresh.publish(bad) is not None
        assert len(fresh.snapshots("env-a")) == 2

    def test_wrong_payload_type_treated_as_corruption(self, tmp_path):
        import pickle

        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.root.mkdir(parents=True, exist_ok=True)
        store.path_for("env-a__deadbeef").write_bytes(pickle.dumps({"not": "a map"}))
        assert store.snapshots("env-a") == []
        assert store.dropped == 1

    def test_unwritable_root_degrades_quietly(self):
        store = MapStore("/proc/nonexistent-map-store")
        assert store.publish(_snapshot()) is None
        assert store.published == 0
        assert store.resolve("env-a") is None

    def test_zero_max_mb_env_disables_size_bound(self, tmp_path, monkeypatch):
        """EUDOXUS_MAP_CACHE_MAX_MB=0 means unbounded, not evict-everything."""
        monkeypatch.setenv(store_module.MAP_CACHE_MAX_MB_ENV, "0")
        monkeypatch.setenv(store_module.MAP_CACHE_MAX_AGE_DAYS_ENV, "0")
        store = MapStore(tmp_path)
        assert store.max_bytes is None and store.max_age_s is None
        for i in range(6):
            store.publish(_snapshot(count=50, seed=i))
        assert store.evict() == 0
        assert len(store) == 6
        rebuilt = MapStore(tmp_path)  # construction-time sweep is a no-op too
        assert rebuilt.evicted == 0
        assert len(rebuilt) == 6

    def test_env_bounds_and_root_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_module.MAP_CACHE_MAX_MB_ENV, "3")
        monkeypatch.setenv(store_module.MAP_CACHE_MAX_AGE_DAYS_ENV, "1.5")
        store = MapStore(tmp_path)
        assert store.max_bytes == 3 * 1024 * 1024
        assert store.max_age_s == 1.5 * 86400.0
        monkeypatch.setenv(store_module.MAP_CACHE_MAX_MB_ENV, "not-a-number")
        fallback = MapStore(tmp_path)
        assert fallback.max_bytes == DEFAULT_MAP_CACHE_MAX_MB * 1024 * 1024
        monkeypatch.setenv(store_module.MAP_CACHE_ENV, str(tmp_path / "override"))
        override = MapStore()
        assert override.base_root == tmp_path / "override"
        # The active directory embeds the code generation.
        assert override.root.parent == override.base_root

    def test_code_generation_isolates_snapshots(self, tmp_path, monkeypatch):
        """Maps never outlive the code that generated their worlds."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(count=60))
        assert store.resolve("env-a", min_quality=0.0) is not None
        monkeypatch.setattr(store_module, "code_fingerprint", lambda: "f" * 64)
        next_generation = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        assert next_generation.root != store.root
        assert next_generation.resolve("env-a", min_quality=0.0) is None
        assert len(next_generation) == 0

    def test_stale_generations_swept_by_age(self, tmp_path, monkeypatch):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        store.publish(_snapshot(count=60))
        old_root = store.root
        stamp = time.time() - 7200.0
        for path in list(old_root.glob("*.pkl")) + [old_root]:
            os.utime(path, (stamp, stamp))
        monkeypatch.setattr(store_module, "code_fingerprint", lambda: "f" * 64)
        # Age bound disabled: the superseded generation is left alone.
        MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        assert old_root.is_dir()
        # With an age bound tighter than the directory's age, it is swept —
        # but only generation-shaped children: an unrelated subdirectory of
        # a user-supplied root (e.g. a sibling run cache) is never touched.
        unrelated = tmp_path / "runs"
        unrelated.mkdir()
        (unrelated / "entry.pkl").write_bytes(b"not ours")
        os.utime(unrelated / "entry.pkl", (stamp, stamp))
        os.utime(unrelated, (stamp, stamp))
        MapStore(tmp_path, max_bytes=-1, max_age_s=3600.0)
        assert not old_root.exists()
        assert (unrelated / "entry.pkl").exists()

    def test_lru_eviction_keeps_recently_resolved(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        cold = _snapshot(environment_id="cold-env", count=40, seed=1)
        hot = _snapshot(environment_id="hot-env", count=40, seed=2)
        store.publish(cold)
        store.publish(hot)
        stale = time.time() - 5000.0
        for key in (f"cold-env__{cold.version}", f"hot-env__{hot.version}"):
            os.utime(store.path_for(key), (stale, stale))
        # Resolving touches the hot entry (hits refresh recency)...
        assert store.resolve("hot-env", min_quality=0.0) is not None
        # ...so the size bound evicts the cold one first.
        removed = store.evict(max_bytes=store.path_for(
            f"hot-env__{hot.version}").stat().st_size + 1)
        assert removed == 1
        assert store.snapshots("cold-env") == []
        assert len(store.snapshots("hot-env")) == 1

    def test_quality_count_scale_sanity(self):
        # The scale the serving gate is calibrated against; moving it
        # silently would reshuffle every fleet's SLAM/registration split.
        assert QUALITY_COUNT_SCALE == 60.0


class TestMapStoreCrossInstance:
    """Two store handles on one root: the sharded engine's coordination plane.

    The canonical-merge memo is keyed on the full on-disk stem set (rescanned
    every call) + merger signature — so a *foreign* publish or compaction by
    a sibling handle must be picked up as a recompute (a resolve miss, with
    churn recorded if the version moved), never served stale from the memo.
    """

    def _store(self, tmp_path):
        return MapStore(tmp_path, max_bytes=-1, max_age_s=-1)

    def test_foreign_publish_is_a_miss_not_a_hit(self, tmp_path):
        mine, sibling = self._store(tmp_path), self._store(tmp_path)
        mine.publish(_snapshot(count=40, seed=1))
        first = mine.resolve("env-a", min_quality=0.0)
        assert (mine.resolve_misses, mine.resolve_hits) == (1, 0)
        # Unchanged disk: the memo serves, counted as a hit.
        assert mine.resolve("env-a", min_quality=0.0).version == first.version
        assert (mine.resolve_misses, mine.resolve_hits) == (1, 1)
        # A sibling handle publishes new content; this handle's next resolve
        # must rescan, recompute, and account a miss + a churn event.
        sibling.publish(_snapshot(count=40, seed=2, id_offset=100))
        second = mine.resolve("env-a", min_quality=0.0)
        assert second.landmark_count > first.landmark_count
        assert (mine.resolve_misses, mine.resolve_hits) == (2, 1)
        assert mine.version_churn["env-a"] == 2  # None -> v1, v1 -> v2

    def test_unchanged_disk_hits_do_not_churn(self, tmp_path):
        mine = self._store(tmp_path)
        mine.publish(_snapshot(count=40, seed=1))
        for _ in range(3):
            mine.resolve("env-a", min_quality=0.0)
        assert mine.version_churn["env-a"] == 1
        assert mine.resolve_hits == 2

    def test_foreign_compaction_is_visible(self, tmp_path):
        mine, sibling = self._store(tmp_path), self._store(tmp_path)
        snapshot = _snapshot(count=30, seed=3)
        mine.publish(snapshot)
        mine.resolve("env-a", min_quality=0.0)  # memoize the pre-update state
        target = int(snapshot.landmark_ids[4])
        update = _update(snapshot, [target], [snapshot.positions[4] + 5.0],
                         [5.0], counts=[2])
        sibling.apply_updates([update],
                              merger=MapMerger(drift_residual_m=0.5,
                                               relocate_min_observations=3))
        # The sibling replaced the history on disk; this handle's memo keys
        # no longer match the stems and the pruned landmark stays gone.
        resolved = mine.resolve("env-a", min_quality=0.0)
        assert target not in resolved.landmark_ids

    def test_handle_created_before_content_sees_it(self, tmp_path):
        early = self._store(tmp_path)
        assert not early.has_history("env-a")
        self._store(tmp_path).publish(_snapshot())
        assert early.has_history("env-a")
        assert early.resolve("env-a", min_quality=0.0) is not None

    def test_two_handles_resolve_identical_canonicals(self, tmp_path):
        mine, sibling = self._store(tmp_path), self._store(tmp_path)
        mine.publish(_snapshot(count=50, seed=1))
        sibling.publish(_snapshot(count=50, seed=2, id_offset=40))
        assert mine.resolve("env-a", min_quality=0.0).version == \
            sibling.resolve("env-a", min_quality=0.0).version


# ----------------------------------------------- concurrent publisher workers


def _concurrent_publish_worker(root, barrier, seed, id_offset):
    """One shard's wave: publish a shared snapshot + its own, repeatedly."""
    store = MapStore(root, max_bytes=-1, max_age_s=-1)
    shared = _snapshot(count=30, seed=7)  # identical content in every worker
    own = _snapshot(count=20, seed=seed, id_offset=id_offset)
    barrier.wait()
    for _ in range(3):
        store.publish(shared)
        store.publish(own)


def _concurrent_apply_worker(root, barrier, updates):
    """One shard applying the wave's deltas through its own handle."""
    store = MapStore(root, max_bytes=-1, max_age_s=-1)
    merger = MapMerger(drift_residual_m=0.5, relocate_min_observations=3)
    barrier.wait()
    store.apply_updates(updates, merger=merger)


class TestMapStoreConcurrentProcesses:
    """Two real processes sharing one root — the sharded serve() in anger."""

    def _run(self, workers):
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)

    def test_concurrent_publishers_converge(self, tmp_path):
        import multiprocessing
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        self._run([
            context.Process(target=_concurrent_publish_worker,
                            args=(tmp_path, barrier, seed, offset))
            for seed, offset in ((11, 100), (22, 200))
        ])
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        # Content-addressed idempotency under concurrency: the shared
        # snapshot exists once, each worker's own snapshot once — three
        # files, no duplicates, no torn writes.
        assert len(store.snapshots("env-a")) == 3
        # Two fresh handles (the "next wave" of two shards) resolve the
        # same canonical merge of everything both publishers wrote.
        other = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        mine = store.resolve("env-a", min_quality=0.0)
        assert mine is not None
        assert mine.version == other.resolve("env-a", min_quality=0.0).version
        assert mine.landmark_count > 30  # merged, not just the shared one

    def test_concurrent_update_application_stays_consistent(self, tmp_path):
        import multiprocessing
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        snapshot = _snapshot(count=30, seed=3)
        store.publish(snapshot)
        target = int(snapshot.landmark_ids[4])
        updates = [_update(snapshot, [target], [snapshot.positions[4] + 5.0],
                           [5.0], counts=[2])]
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        self._run([
            context.Process(target=_concurrent_apply_worker,
                            args=(tmp_path, barrier, updates))
            for _ in range(2)
        ])
        # Whatever the interleaving, the store converges: the second
        # application either hit the idempotent-target fast path or
        # quiesced against the already-updated canonical.  Pruned content
        # must not resurrect, and any two next-wave handles must agree.
        merger = MapMerger(drift_residual_m=0.5, relocate_min_observations=3)
        first = MapStore(tmp_path, max_bytes=-1, max_age_s=-1).resolve(
            "env-a", merger=merger, min_quality=0.0)
        second = MapStore(tmp_path, max_bytes=-1, max_age_s=-1).resolve(
            "env-a", merger=merger, min_quality=0.0)
        assert first is not None
        assert target not in first.landmark_ids
        assert first.version == second.version
        # Compaction held: at most the updated snapshot (plus, in the worst
        # interleaving, one superseded survivor that the next application
        # would fold away) remains on disk.
        assert len(store.snapshots("env-a")) <= 2
