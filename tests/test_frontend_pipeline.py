"""Tests for the VisualFrontend orchestrator (sparse and dense paths)."""

import numpy as np
import pytest

from repro.common.config import FrontendConfig
from repro.frontend.frontend import (
    FrontendWorkload,
    TrackObservation,
    VisualFrontend,
    stereo_point_noise,
    synthetic_descriptors_for_tracks,
)


class TestStereoPointNoise:
    def test_grows_with_depth(self):
        near = stereo_point_noise(2.0, fx=320.0, baseline=0.2, pixel_noise=0.3)
        far = stereo_point_noise(40.0, fx=320.0, baseline=0.2, pixel_noise=0.3)
        assert far[0] > near[0]
        assert far[1] > near[1]

    def test_depth_noise_quadratic(self):
        a = stereo_point_noise(10.0, 320.0, 0.2, 0.3)[0]
        b = stereo_point_noise(20.0, 320.0, 0.2, 0.3)[0]
        assert 3.5 <= b / a <= 4.5

    def test_floor_applied(self):
        noise = stereo_point_noise(0.5, 320.0, 0.2, 0.3, floor=0.02)
        assert np.all(noise >= 0.02)


class TestTrackObservation:
    def test_derived_quantities(self):
        obs = TrackObservation(
            track_id=7,
            left_pixel=[100.0, 50.0],
            right_pixel=[90.0, 50.0],
            point_camera=[0.1, 0.2, 6.4],
            point_body=[6.4, -0.1, -0.2],
            noise_std=[0.3, 0.01, 0.01],
        )
        assert obs.disparity == 10.0
        assert np.isclose(obs.depth, 6.4)
        assert np.isclose(obs.depth_std, 0.3)

    def test_default_noise(self):
        obs = TrackObservation(1, [0, 0], [0, 0], [0, 0, 1], [1, 0, 0])
        assert obs.noise_std.shape == (3,)


class TestSparseFrontend:
    def test_produces_observations(self, outdoor_sequence):
        frontend = VisualFrontend(rig=outdoor_sequence.rig, sparse=True, dropout_probability=0.0)
        result = frontend.process(outdoor_sequence.frames[0])
        assert result.feature_count > 10
        assert result.workload.stereo_matches == result.feature_count
        assert all(obs.depth > 0 for obs in result.observations)

    def test_track_persistence(self, outdoor_sequence):
        frontend = VisualFrontend(rig=outdoor_sequence.rig, sparse=True, dropout_probability=0.0)
        first = frontend.process(outdoor_sequence.frames[0])
        second = frontend.process(outdoor_sequence.frames[1])
        common = set(first.track_ids) & set(second.track_ids)
        assert len(common) > 5
        # Ages increase for persistent tracks.
        for obs in second.observations:
            if obs.track_id in common:
                assert obs.age >= 2

    def test_triangulation_accuracy(self, outdoor_sequence):
        frontend = VisualFrontend(rig=outdoor_sequence.rig, sparse=True, dropout_probability=0.0)
        frame = outdoor_sequence.frames[2]
        result = frontend.process(frame)
        errors = []
        for obs in result.observations:
            landmark = outdoor_sequence.world.landmarks[obs.track_id].position
            world_point = frame.ground_truth.transform_point(obs.point_body)
            errors.append(np.linalg.norm(world_point - landmark))
        assert np.median(errors) < 3.0

    def test_max_features_respected(self, outdoor_sequence):
        config = FrontendConfig(max_features=20)
        frontend = VisualFrontend(config=config, rig=outdoor_sequence.rig, sparse=True)
        result = frontend.process(outdoor_sequence.frames[0])
        assert result.feature_count <= 20

    def test_min_disparity_filter(self, outdoor_sequence):
        config = FrontendConfig(min_disparity=5.0)
        frontend = VisualFrontend(config=config, rig=outdoor_sequence.rig, sparse=True,
                                  dropout_probability=0.0)
        result = frontend.process(outdoor_sequence.frames[0])
        assert all(obs.disparity >= 5.0 - 1.0 for obs in result.observations)

    def test_lost_tracks_reported(self, outdoor_sequence):
        frontend = VisualFrontend(rig=outdoor_sequence.rig, sparse=True, dropout_probability=0.0)
        for frame in outdoor_sequence.frames[:6]:
            result = frontend.process(frame)
        # After several frames of forward motion some tracks must have left the view.
        assert frontend.active_track_count > 0

    def test_reset(self, outdoor_sequence):
        frontend = VisualFrontend(rig=outdoor_sequence.rig, sparse=True)
        frontend.process(outdoor_sequence.frames[0])
        frontend.reset()
        assert frontend.active_track_count == 0

    def test_missing_rig_raises(self, outdoor_sequence):
        frontend = VisualFrontend(sparse=True)
        with pytest.raises(ValueError):
            frontend.process(outdoor_sequence.frames[0])

    def test_workload_counters(self, outdoor_sequence):
        frontend = VisualFrontend(rig=outdoor_sequence.rig, sparse=True, dropout_probability=0.0)
        result = frontend.process(outdoor_sequence.frames[0])
        workload = result.workload
        assert workload.image_pixels == outdoor_sequence.rig.camera.width * outdoor_sequence.rig.camera.height
        assert workload.correspondence_bytes > 0
        assert workload.descriptors_computed == 2 * workload.keypoints_left

    def test_measured_timings_present(self, outdoor_sequence):
        frontend = VisualFrontend(rig=outdoor_sequence.rig, sparse=True)
        result = frontend.process(outdoor_sequence.frames[0])
        assert set(result.measured_ms) == {"feature_extraction", "stereo_matching", "temporal_matching"}

    def test_observation_lookup(self, outdoor_sequence):
        frontend = VisualFrontend(rig=outdoor_sequence.rig, sparse=True, dropout_probability=0.0)
        result = frontend.process(outdoor_sequence.frames[0])
        track_id = result.track_ids[0]
        assert result.observation_for(track_id).track_id == track_id
        assert result.observation_for(-1) is None


class TestDenseFrontend:
    def test_dense_pipeline_runs(self, rendered_sequence):
        config = FrontendConfig(max_features=60, fast_threshold=18.0, min_disparity=0.5)
        frontend = VisualFrontend(config=config, rig=rendered_sequence.rig, sparse=False)
        results = [frontend.process(frame) for frame in rendered_sequence.frames[:3]]
        assert all(r.workload.keypoints_left > 0 for r in results)
        # At least some stereo correspondences should be found on rendered frames.
        assert any(r.feature_count > 0 for r in results)

    def test_dense_tracks_propagate(self, rendered_sequence):
        config = FrontendConfig(max_features=60, fast_threshold=18.0, min_disparity=0.5)
        frontend = VisualFrontend(config=config, rig=rendered_sequence.rig, sparse=False)
        first = frontend.process(rendered_sequence.frames[0])
        second = frontend.process(rendered_sequence.frames[1])
        if first.feature_count and second.feature_count:
            assert second.workload.tracked_points >= 0

    def test_sparse_fallback_without_images(self, outdoor_sequence):
        frontend = VisualFrontend(rig=outdoor_sequence.rig, sparse=False)
        result = frontend.process(outdoor_sequence.frames[0])
        # No rendered images: the frontend falls back to the sparse path.
        assert result.feature_count > 0


class TestSyntheticDescriptors:
    def test_shapes_and_determinism(self, outdoor_sequence):
        frontend = VisualFrontend(rig=outdoor_sequence.rig, sparse=True, dropout_probability=0.0)
        result = frontend.process(outdoor_sequence.frames[0])
        descriptors = synthetic_descriptors_for_tracks(result.observations, noise_bits=0)
        again = synthetic_descriptors_for_tracks(result.observations, noise_bits=0)
        assert descriptors.shape == (result.feature_count, 32)
        assert np.array_equal(descriptors, again)

    def test_empty(self):
        assert synthetic_descriptors_for_tracks([]).shape == (0, 32)
