"""Horizontal sharding: ring, rebalancer, and the sharded serving engine.

The load-bearing contracts, in order of importance:

* **Bit-identity.**  A 1-shard :class:`ShardedServingEngine` produces a
  report whose :meth:`ServingReport.signature` equals the plain engine's,
  and an N-shard cluster serves every session to the plain engine's exact
  :meth:`SessionResult.signature` — sharding is an execution topology, not
  a result change.
* **Store-mediated coordination.**  Shards publish through their own map
  store handles; the coordinator applies the wave's MapUpdate deltas in
  one fold; the refreshed canonical maps are what every shard resolves
  next wave.
* **Single-box assumption sweep.**  Cross-shard duplicate rejection before
  any shard serves; per-target-shard saturation for admission (not
  any-shard); churn telemetry counted once, not once per shard handle.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.cluster import (
    DEFAULT_SLOT_COUNT,
    HashRing,
    RebalanceDecision,
    ShardRebalancer,
    ShardedServingEngine,
    ShardedServingReport,
    resolve_shard_count,
    resolve_slot_count,
)
from repro.experiments.runner import RunStore
from repro.maps import MapStore
from repro.scheduler import LatencyAutoscaler
from repro.serving import ServingEngine, multi_environment_fleet


def small_fleet(count=5, prefix="session", base_seed=0):
    """A fast multi-environment fleet: transit + two indoor environments."""
    return multi_environment_fleet(
        count, segment_duration=1.0, base_seed=base_seed,
        deadline_ms=400.0, prefix=prefix)


def session_signatures(report):
    return {stream_id: result.signature()
            for stream_id, result in report.results.items()}


def make_scaler(shard=0):
    return LatencyAutoscaler(min_workers=1, max_workers=4)


# --------------------------------------------------------------------- ring


class TestHashRing:
    def test_slot_is_sha256_of_stream_id(self):
        # Never Python's salted hash(): the mapping must be identical in
        # every interpreter, or shards in different processes would route
        # the same stream differently.
        ring = HashRing(4)
        digest = hashlib.sha256(b"session-007").digest()
        expected = int.from_bytes(digest[:8], "big") % ring.slot_count
        assert ring.slot_of("session-007") == expected

    def test_initial_assignment_is_balanced(self):
        ring = HashRing(3, slot_count=64)
        sizes = [len(ring.slots_of(shard)) for shard in range(3)]
        assert sum(sizes) == 64
        assert max(sizes) - min(sizes) <= 1

    def test_shard_for_follows_slot_assignment(self):
        ring = HashRing(2, slot_count=8)
        stream = "session-001"
        slot = ring.slot_of(stream)
        assert ring.shard_for(stream) == ring.shard_of_slot(slot)
        other = 1 - ring.shard_for(stream)
        ring.move([slot], other)
        assert ring.shard_for(stream) == other

    def test_move_counts_only_real_changes(self):
        ring = HashRing(2, slot_count=8)
        slots = ring.slots_of(1)[:2]
        assert ring.move(slots, 1) == 0  # already there
        assert ring.move(slots, 0) == 2
        assert ring.moves == 2

    def test_move_validates_slot_and_target(self):
        ring = HashRing(2, slot_count=8)
        with pytest.raises(ValueError):
            ring.move([0], 5)
        with pytest.raises(ValueError):
            ring.move([99], 0)

    def test_slot_count_knobs(self, monkeypatch):
        assert resolve_slot_count() == DEFAULT_SLOT_COUNT
        monkeypatch.setenv("EUDOXUS_SHARD_SLOTS", "16")
        assert resolve_slot_count() == 16
        assert resolve_slot_count(32) == 32  # explicit beats env
        with pytest.raises(ValueError):
            HashRing(8, slot_count=4)  # fewer slots than shards

    def test_shard_count_env_knob(self, monkeypatch):
        assert resolve_shard_count() == 1
        monkeypatch.setenv("EUDOXUS_SHARDS", "3")
        assert resolve_shard_count() == 3
        assert resolve_shard_count(2) == 2


# --------------------------------------------------------------- rebalancer


class TestShardRebalancer:
    def ring_with_costs(self, hot=0, cool=1):
        ring = HashRing(2, slot_count=8)
        # All cost on the hot shard, spread over its slots.
        costs = {slot: 10.0 for slot in ring.slots_of(hot)}
        return ring, costs

    def test_moves_slots_hot_to_cool(self):
        ring, costs = self.ring_with_costs()
        decisions = ShardRebalancer(pressure_gap=0.5).rebalance(
            ring, [3.0, 0.2], costs, wave=7)
        assert len(decisions) == 1
        decision = decisions[0]
        assert decision.source == 0 and decision.target == 1
        assert decision.wave == 7
        assert decision.slots  # something actually moved
        for slot in decision.slots:
            assert ring.shard_of_slot(slot) == 1

    def test_no_move_below_pressure_gap(self):
        ring, costs = self.ring_with_costs()
        before = ring.assignment()
        assert ShardRebalancer(pressure_gap=0.5).rebalance(
            ring, [1.0, 0.8], costs) == []
        assert ring.assignment() == before

    def test_single_loaded_slot_does_not_swap_the_hotspot(self):
        # One stream carries all the load: moving its slot would just make
        # the cool shard the hot one.  The strict midpoint test keeps it.
        ring = HashRing(2, slot_count=8)
        slot = ring.slots_of(0)[0]
        before = ring.assignment()
        decisions = ShardRebalancer(pressure_gap=0.5).rebalance(
            ring, [5.0, 0.0], {slot: 30.0})
        assert decisions == []
        assert ring.assignment() == before

    def test_max_slot_moves_caps_the_transfer(self):
        ring, costs = self.ring_with_costs()
        decisions = ShardRebalancer(pressure_gap=0.5,
                                    max_slot_moves=1).rebalance(
            ring, [3.0, 0.0], costs)
        assert len(decisions[0].slots) == 1

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("EUDOXUS_REBALANCE_GAP", "2.5")
        monkeypatch.setenv("EUDOXUS_REBALANCE_MAX_SLOTS", "2")
        rebalancer = ShardRebalancer()
        assert rebalancer.pressure_gap == 2.5
        assert rebalancer.max_slot_moves == 2
        assert ShardRebalancer(pressure_gap=0.1).pressure_gap == 0.1


# ------------------------------------------------------------ bit-identity


@pytest.fixture(scope="module")
def identity_reports(tmp_path_factory):
    """Serve the same fleet through the plain engine, a 1-shard cluster,
    and a 2-shard cluster (separate store roots each), once per module."""
    tmp = tmp_path_factory.mktemp("cluster-identity")
    fleet = small_fleet(5)
    reports = {}
    plain = ServingEngine(
        store=RunStore(tmp / "runs-plain", -1, -1),
        map_store=MapStore(tmp / "maps-plain", -1, -1),
        autoscaler=make_scaler())
    reports["plain"] = plain.serve(fleet, parallel=False, ingestion="streaming")
    for shards in (1, 2):
        engine = ShardedServingEngine(
            shards,
            run_store=RunStore(tmp / f"runs-{shards}", -1, -1),
            map_store=MapStore(tmp / f"maps-{shards}", -1, -1),
            autoscaler_factory=make_scaler,
            shard_parallel=False)
        reports[shards] = engine.serve(fleet)
        reports[f"engine-{shards}"] = engine
    return reports


class TestShardedBitIdentity:
    def test_single_shard_signature_is_bit_identical_to_plain(self, identity_reports):
        # THE acceptance pin: one shard is the plain engine, exactly —
        # same session results, same resolved maps, same post-wave
        # canonical versions.
        assert identity_reports[1].signature() == \
            identity_reports["plain"].signature()

    def test_two_shards_serve_identical_sessions(self, identity_reports):
        assert session_signatures(identity_reports[2]) == \
            session_signatures(identity_reports["plain"])

    def test_two_shards_apply_identical_map_updates(self, identity_reports):
        assert identity_reports[2].maps_updated == \
            identity_reports["plain"].maps_updated
        assert identity_reports[2].fleet_maps == \
            identity_reports["plain"].fleet_maps

    def test_report_signature_matches_across_shard_counts(self, identity_reports):
        assert identity_reports[2].signature() == \
            identity_reports["plain"].signature()

    def test_merged_report_counters(self, identity_reports):
        report = identity_reports[2]
        assert isinstance(report, ShardedServingReport)
        assert report.session_count == 5
        assert report.computed_sessions == 5
        assert report.store_hits == 0
        assert report.shard_count == 2
        assert set(report.shard_of) == {spec.stream_id
                                        for spec in small_fleet(5)}
        loaded = [rep for rep in report.shard_reports if rep is not None]
        assert sum(rep.session_count for rep in loaded) == 5
        assert report.ticks == sum(rep.ticks for rep in loaded)
        assert report.maps_published == sum(rep.maps_published
                                            for rep in loaded)

    def test_merged_as_dict_extends_the_plain_shape(self, identity_reports):
        plain_keys = set(identity_reports["plain"].as_dict())
        payload = identity_reports[2].as_dict()
        assert plain_keys <= set(payload)
        assert set(payload) - plain_keys == {
            "shard_count", "shard_of", "shards", "rebalances",
            "slot_assignment"}
        assert len(payload["shards"]) == 2
        assert len(payload["slot_assignment"]) == DEFAULT_SLOT_COUNT

    def test_churn_counted_once_not_per_shard(self, identity_reports):
        # Each shard handle observing the same canonical version change
        # must not multiply one global event by the shard count.
        plain_churn = identity_reports["plain"].map_version_churn
        assert identity_reports[2].map_version_churn == plain_churn

    def test_final_workers_sums_shards(self, identity_reports):
        report = identity_reports[2]
        loaded = [rep for rep in report.shard_reports if rep is not None]
        assert report.final_workers == sum(rep.final_workers
                                           for rep in loaded)


# ------------------------------------------------------- cluster behaviors


class TestShardedServing:
    def test_duplicate_stream_rejected_before_any_shard_serves(self, tmp_path):
        # The single-box bug: per-engine duplicate detection only catches
        # duplicates landing on the same shard, and only after sibling
        # shards already served.  The coordinator must refuse the whole
        # fleet at the door.
        store = RunStore(tmp_path / "runs", -1, -1)
        engine = ShardedServingEngine(
            2, run_store=store, autoscaler_factory=make_scaler,
            shard_parallel=False)
        fleet = small_fleet(4)
        dup = fleet + [fleet[0]]
        with pytest.raises(ValueError, match="duplicate stream_id"):
            engine.serve(dup)
        # No shard did any work: nothing was computed into the shared store.
        assert len(store) == 0
        assert engine.waves_served == 0

    def test_second_wave_replays_from_the_shared_store(self, tmp_path):
        engine = ShardedServingEngine(
            2, run_store=RunStore(tmp_path / "runs", -1, -1),
            map_store=MapStore(tmp_path / "maps", -1, -1),
            autoscaler_factory=make_scaler, shard_parallel=False)
        fleet = small_fleet(4)
        first = engine.serve(fleet)
        second = engine.serve(fleet)
        assert first.computed_sessions == 4 and first.store_hits == 0
        assert second.store_hits == 4 and second.computed_sessions == 0
        assert second.replayed_streams == sorted(spec.stream_id
                                                 for spec in fleet)
        # Replayed sessions' deltas were applied when first computed;
        # re-applying would double-count their observations.
        assert second.maps_updated == {}

    def test_wave_two_resolves_wave_one_canonical_maps(self, tmp_path):
        # The store IS the coordination plane: shard publishes and the
        # coordinator's update fold from wave 1 become every shard's
        # canonical assignment in wave 2.
        engine = ShardedServingEngine(
            2, map_store=MapStore(tmp_path / "maps", -1, -1),
            min_map_quality=0.0,  # short segments: don't let the quality
            autoscaler_factory=make_scaler,  # gate hide the lifecycle
            shard_parallel=False)
        first = engine.serve(small_fleet(4))
        assert first.fleet_maps == {}  # cold world: nothing to resolve yet
        assert first.maps_published > 0
        second = engine.serve(small_fleet(4, prefix="wave2", base_seed=50))
        # Both shared environments (atrium + warehouse world digests) now
        # resolve to canonical maps built from wave 1's publishes.
        assert len(second.fleet_maps) == 2
        for environment_id, version in first.maps_updated.items():
            assert second.fleet_maps[environment_id] == version

    def test_process_parallel_shards_match_sequential(self, tmp_path):
        fleet = small_fleet(4)
        sequential = ShardedServingEngine(
            2, map_store=MapStore(tmp_path / "maps-seq", -1, -1),
            autoscaler_factory=make_scaler, shard_parallel=False)
        processes = ShardedServingEngine(
            2, map_store=MapStore(tmp_path / "maps-proc", -1, -1),
            autoscaler_factory=make_scaler, shard_parallel=True)
        seq_report = sequential.serve(fleet)
        proc_report = processes.serve(fleet)
        assert session_signatures(proc_report) == session_signatures(seq_report)
        assert proc_report.maps_updated == seq_report.maps_updated
        assert proc_report.signature() == seq_report.signature()
        # Subprocess controller state was folded back into the resident
        # scalers: widths live, decision logs populated.
        for scaler in processes.autoscalers:
            assert scaler.workers >= 1
            assert len(scaler.decisions) > 0

    def test_empty_fleet_serves_to_an_empty_report(self):
        engine = ShardedServingEngine(2, autoscaler_factory=make_scaler,
                                      shard_parallel=False)
        report = engine.serve([])
        assert report.session_count == 0
        assert report.rebalances == []

    def test_rebalance_decisions_reroute_the_next_wave(self, tmp_path):
        class ForcedRebalancer:
            """Deterministically move stream 0's slot to the other shard."""

            def __init__(self, ring_slot, target):
                self.ring_slot = ring_slot
                self.target = target
                self.fired = False

            def rebalance(self, ring, pressures, slot_costs, wave=0):
                if self.fired:
                    return []
                self.fired = True
                ring.move([self.ring_slot], self.target)
                return [RebalanceDecision(
                    wave=wave, source=1 - self.target, target=self.target,
                    slots=(self.ring_slot,), moved_cost=1.0,
                    source_pressure=2.0, target_pressure=0.0,
                    reason="forced for test")]

        fleet = small_fleet(4)
        probe = HashRing(2)
        stream = fleet[0].stream_id
        slot = probe.slot_of(stream)
        target = 1 - probe.shard_for(stream)
        engine = ShardedServingEngine(
            2, run_store=RunStore(tmp_path / "runs", -1, -1),
            autoscaler_factory=make_scaler, shard_parallel=False,
            rebalancer=ForcedRebalancer(slot, target))
        first = engine.serve(fleet)
        assert len(first.rebalances) == 1
        assert first.shard_of[stream] == 1 - target  # moved AFTER serving
        second = engine.serve(fleet)
        assert second.shard_of[stream] == target  # ... takes effect next wave
        # Relocation is invisible to results: the shared run store replays
        # the session on its new shard.
        assert second.results[stream].signature() == \
            first.results[stream].signature()
        assert engine.describe()["slot_moves"] == 1

    def test_organic_rebalance_from_skewed_pressure(self):
        # End-to-end through _rebalance: synthesize the autoscaler state a
        # skewed wave leaves behind and check slots actually flow from the
        # pressured shard to the idle one.
        engine = ShardedServingEngine(
            2, autoscaler_factory=make_scaler, shard_parallel=False,
            rebalancer=ShardRebalancer(pressure_gap=0.5, max_slot_moves=4))
        # Rig a genuinely skewed fleet: most streams hash to one shard, so
        # the pressured shard also carries the larger expected cost.
        candidates = small_fleet(10)
        by_shard = {0: [], 1: []}
        for spec in candidates:
            by_shard[engine.ring.shard_for(spec.stream_id)].append(spec)
        hot = 0 if len(by_shard[0]) >= len(by_shard[1]) else 1
        fleet = by_shard[hot][:5] + by_shard[1 - hot][:1]
        assert len(fleet) == 6
        from repro.serving.engine import ServingReport
        from repro.scheduler.autoscaler import ScaleDecision

        def fake_report(pressure):
            report = ServingReport()
            report.scale_decisions.append(ScaleDecision(
                tick=1, clock=1.0, action="hold", workers_before=1,
                workers_after=1, p50_ms=0.0, p95_ms=0.0, pressure=pressure,
                reason="synthetic", saturated=False))
            return report

        reports = [None, None]
        reports[hot] = fake_report(3.0)
        reports[1 - hot] = fake_report(0.1)
        before = len(engine.ring.slots_of(hot))
        decisions = engine._rebalance(fleet, reports, {})
        assert len(decisions) == 1
        assert decisions[0].source == hot and decisions[0].target == 1 - hot
        assert len(engine.ring.slots_of(hot)) < before


# ------------------------------------------------------- admission surface


class TestClusterAdmissionSurface:
    def saturate(self, scaler):
        scaler.workers = scaler.max_workers
        scaler._saturated = True

    def test_saturated_for_judges_the_target_shard_only(self):
        engine = ShardedServingEngine(2, autoscaler_factory=make_scaler,
                                      shard_parallel=False)
        fleet = small_fleet(6)
        shard_of = {spec.stream_id: engine.ring.shard_for(spec.stream_id)
                    for spec in fleet}
        assert len(set(shard_of.values())) == 2  # fleet spans both shards
        self.saturate(engine.autoscalers[0])
        for stream_id, shard in shard_of.items():
            assert engine.saturated_for(stream_id) == (shard == 0)

    def test_cluster_saturated_means_all_shards(self):
        engine = ShardedServingEngine(2, autoscaler_factory=make_scaler,
                                      shard_parallel=False)
        assert not engine.saturated
        self.saturate(engine.autoscalers[0])
        assert not engine.saturated  # one hot shard is not cluster exhaustion
        self.saturate(engine.autoscalers[1])
        assert engine.saturated

    def test_saturated_for_follows_the_live_ring(self):
        engine = ShardedServingEngine(2, autoscaler_factory=make_scaler,
                                      shard_parallel=False)
        stream = "session-000"
        home = engine.ring.shard_for(stream)
        self.saturate(engine.autoscalers[home])
        assert engine.saturated_for(stream)
        # A rebalance relocates the stream: the probe must judge the new
        # shard immediately.
        engine.ring.move([engine.ring.slot_of(stream)], 1 - home)
        assert not engine.saturated_for(stream)

    def test_sync_adopts_state_and_next_wave_clears_saturation(self):
        scaler = make_scaler()
        scaler.sync(3, saturated=True)
        assert scaler.workers == 3 and scaler.saturated
        scaler.sync(99, saturated=False)  # clamped to max_workers
        assert scaler.workers == scaler.max_workers and not scaler.saturated

    def test_pinned_capacity_sums_shards(self):
        engine = ShardedServingEngine(3, autoscaler_factory=make_scaler,
                                      shard_parallel=False)
        assert engine.pinned_capacity == \
            3 * 4 * engine.frames_per_worker_tick
        bare = ShardedServingEngine(2, shard_parallel=False)
        assert bare.pinned_capacity is None

    def test_shard_health_and_describe_shapes(self):
        engine = ShardedServingEngine(2, autoscaler_factory=make_scaler,
                                      shard_parallel=False)
        health = engine.shard_health()
        assert [row["shard"] for row in health] == [0, 1]
        assert all(set(row) == {"shard", "slots", "workers", "saturated"}
                   for row in health)
        topology = engine.describe()
        assert topology["shards"] == 2
        assert sum(topology["slots_per_shard"].values()) == \
            topology["slot_count"]


# ------------------------------------------------------------ metrics plane


class TestClusterMetrics:
    def test_cluster_families_record_per_shard(self, tmp_path):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        engine = ShardedServingEngine(
            2, map_store=MapStore(tmp_path / "maps", -1, -1),
            autoscaler_factory=make_scaler, shard_parallel=False,
            metrics=registry)
        report = engine.serve(small_fleet(4))
        sessions = registry.counter(
            "eudoxus_cluster_shard_sessions_total",
            "Sessions resolved per shard, by outcome.", ("shard", "outcome"))
        total = sum(sessions.value(shard=str(shard), outcome="computed")
                    for shard in range(2))
        assert total == report.computed_sessions == 4
        frames = registry.counter("eudoxus_cluster_shard_frames_total",
                                  "Frames served per shard.", ("shard",))
        assert sum(frames.value(shard=str(shard))
                   for shard in range(2)) == report.frame_count

    def test_bind_is_idempotent_and_coexists_with_plain_engine(self, tmp_path):
        from repro.obs import MetricsRegistry
        registry = MetricsRegistry()
        plain = ServingEngine(store=None, metrics=registry)
        engine = ShardedServingEngine(2, autoscaler_factory=make_scaler,
                                      shard_parallel=False)
        engine.bind_metrics(registry)
        engine.bind_metrics(registry)  # idempotent re-bind
        assert "eudoxus_cluster_rebalances_total" in registry
        assert "eudoxus_engine_sessions_total" in registry
