"""Serving integration of the fleet map service.

The contracts pinned here:

* sessions naming the same environment traverse the *same* landmark world
  (the substrate that makes cross-session map reuse physically meaningful);
* a cold fleet's SLAM segments publish snapshots at segment/stream exits,
  and the engine writes them to the map store after serving;
* a later wave acquires the merged fleet map: acquisitions are logged,
  registration displaces SLAM in the mode log, and the ``map_acquired``
  switch reason marks the online map-entry event;
* materialized, streaming and pool execution stay bit-identical with map
  acquisition enabled (resolution happens once, up front);
* the resolved map version is folded into the serving cache key, so warm
  and cold serves of one spec occupy different run-store entries;
* the quality gate keeps unusable (degraded/stale) maps out of serving.
"""

import numpy as np
import pytest

from repro.experiments.runner import RunStore, sensor_config_for
from repro.maps import MapStore, degrade_snapshot
from repro.scheduler import LatencyAutoscaler
from repro.sensors.scenarios import ScenarioKind
from repro.serving import (
    MODE_FRAME_COST,
    ScenarioStream,
    ServingEngine,
    Session,
    StreamSegment,
    StreamSpec,
    cold_start_fleet,
    drift_world,
    drifting_environment_fleet,
    expected_segment_mode,
    mixed_fleet,
    multi_environment_fleet,
    segment_environment_id,
    serving_key,
)

SEGMENT = 2.0
RATE = 5.0
# Short test fleets build small maps; a permissive gate keeps the focus on
# the lifecycle (dedicated tests pin the gate behavior itself).
EASY_GATE = 0.05


def _env_spec(stream_id, environment, seed=0, lead_kind=None,
              segment_duration=SEGMENT):
    """One session: optional lead segment, then a shared indoor segment."""
    segments = []
    if lead_kind is not None:
        segments.append(StreamSegment(lead_kind, segment_duration))
    segments.append(StreamSegment(ScenarioKind.INDOOR_UNKNOWN, segment_duration,
                                  environment=environment))
    return StreamSpec(stream_id=stream_id, segments=tuple(segments),
                      camera_rate_hz=RATE, landmark_count=120, seed=seed)


def _warm_store(tmp_path, environment="shared-env", seeds=(0, 1000)):
    """A map store seeded by a small cold wave over ``environment``."""
    store = MapStore(tmp_path / "maps", max_bytes=-1, max_age_s=-1)
    cold = [_env_spec(f"cold-{i}", environment, seed=seed)
            for i, seed in enumerate(seeds)]
    ServingEngine(store=None, max_workers=1, map_store=store,
                  min_map_quality=EASY_GATE).serve(
        cold, parallel=False, ingestion="streaming")
    return store


class TestSharedWorlds:
    def test_same_environment_same_world(self):
        a = _env_spec("a", "atrium", seed=0)
        b = _env_spec("b", "atrium", seed=123456)
        world_a = ScenarioStream(a, sensor_config_for("drone", RATE, a.seed)).build_segment(0).world
        world_b = ScenarioStream(b, sensor_config_for("drone", RATE, b.seed)).build_segment(0).world
        np.testing.assert_array_equal(world_a.positions, world_b.positions)

    def test_different_environment_different_world(self):
        a = _env_spec("a", "atrium", seed=0)
        b = _env_spec("b", "warehouse", seed=0)
        world_a = ScenarioStream(a, sensor_config_for("drone", RATE, a.seed)).build_segment(0).world
        world_b = ScenarioStream(b, sensor_config_for("drone", RATE, b.seed)).build_segment(0).world
        assert not np.array_equal(world_a.positions, world_b.positions)

    def test_unshared_segment_keeps_session_world(self):
        """Without an environment, sessions stay in per-seed worlds."""
        a = StreamSpec("a", (StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT),),
                       camera_rate_hz=RATE, landmark_count=120, seed=0)
        b = StreamSpec("b", (StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT),),
                       camera_rate_hz=RATE, landmark_count=120, seed=1000)
        world_a = ScenarioStream(a, sensor_config_for("drone", RATE, 0)).build_segment(0).world
        world_b = ScenarioStream(b, sensor_config_for("drone", RATE, 1000)).build_segment(0).world
        assert not np.array_equal(world_a.positions, world_b.positions)

    def test_environment_id_covers_world_determinants(self):
        base = _env_spec("a", "atrium")
        assert segment_environment_id(base, 0) == segment_environment_id(
            _env_spec("b", "atrium", seed=999), 0)
        other_rate = StreamSpec("c", base.segments, camera_rate_hz=10.0,
                                landmark_count=120, seed=0)
        assert segment_environment_id(base, 0) != segment_environment_id(other_rate, 0)
        other_count = StreamSpec("d", base.segments, camera_rate_hz=RATE,
                                 landmark_count=80, seed=0)
        assert segment_environment_id(base, 0) != segment_environment_id(other_count, 0)

    def test_environment_roundtrips_through_payload(self):
        spec = _env_spec("a", "atrium", lead_kind=ScenarioKind.OUTDOOR_UNKNOWN)
        rebuilt = StreamSpec.from_payload(spec.payload())
        assert rebuilt == spec
        assert rebuilt.environment_ids == spec.environment_ids
        assert list(spec.environment_ids) == [1]

    def test_fleet_factories_name_environments(self):
        cold = cold_start_fleet(3, environment="depot", explore_segments=2)
        for spec in cold:
            assert [seg.environment for seg in spec.segments] == [None, "depot", "depot"]
        tour = multi_environment_fleet(2, environments=("a", "b"))
        assert [seg.environment for seg in tour[0].segments] == [None, "a", "b"]
        assert [seg.environment for seg in tour[1].segments] == [None, "b", "a"]
        mixed = mixed_fleet(2, indoor_environment="depot")
        for spec in mixed:
            kinds = {seg.kind: seg.environment for seg in spec.segments}
            assert kinds[ScenarioKind.INDOOR_UNKNOWN] == "depot"


class TestMapLifecycle:
    def test_cold_session_publishes_at_exits(self, tmp_path):
        """One snapshot per SLAM stretch: segment exits and the stream end."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        spec = StreamSpec("cold", (
            StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT, environment="atrium"),
            StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, SEGMENT),
            StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT, environment="atrium"),
        ), camera_rate_hz=RATE, landmark_count=120, seed=0)
        report = ServingEngine(store=None, max_workers=1, map_store=store).serve(
            [spec], parallel=False, ingestion="streaming")
        result = report.results["cold"]
        # Segment 0 publishes at its exit, segment 2 at stream end; the
        # unshared outdoor segment publishes nothing.
        assert [s.segment_index for s in result.published_maps] == [0, 2]
        assert report.maps_published == 2
        environment_id = spec.environment_ids[0]
        assert {s.environment_id for s in result.published_maps} == {environment_id}
        assert len(store.snapshots(environment_id)) == 2
        for snapshot in result.published_maps:
            assert snapshot.source == "cold"
            assert snapshot.landmark_count > 0
            assert snapshot.frame_count > 0
        # Serving the same session again republishes identical content:
        # store recency refreshes, but nothing new is counted as published.
        again = ServingEngine(store=None, max_workers=1, map_store=store).serve(
            [spec], parallel=False, ingestion="streaming")
        assert again.maps_published == 0
        assert len(store.snapshots(environment_id)) == 2

    def test_mid_segment_slam_reset_restarts_publish_gate(self):
        """A mapper reset discards the map, so the frame gate restarts too.

        Otherwise a just-reset one-keyframe fragment — whose window
        residuals are deceptively near zero — could pass the publish gate
        on a stale count and outrank honest snapshots in the fleet merge.
        """
        from repro.core.modes import BackendMode

        spec = _env_spec("reset", "shared-env", seed=3)
        session = Session(spec)
        for _ in range(6):  # serve SLAM frames in the shared segment
            session.step()
        assert session._segment_slam_frames >= 3
        frame = session.stream.build_segment(0).frames[5]
        session._handover(BackendMode.SLAM, frame)
        assert session._segment_slam_frames == 0

    def test_registration_sessions_do_not_republish(self, tmp_path):
        store = _warm_store(tmp_path)
        warm = [_env_spec("warm", "shared-env", seed=7777)]
        report = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE).serve(
            warm, parallel=False, ingestion="streaming")
        result = report.results["warm"]
        assert result.map_acquisitions
        assert not result.published_maps
        assert report.maps_published == 0

    def test_surveyed_map_beats_fleet_map(self, tmp_path):
        """A prebuilt (survey) map wins over any fleet map for that segment."""
        store = _warm_store(tmp_path)
        spec = StreamSpec("kn", (
            StreamSegment(ScenarioKind.INDOOR_KNOWN, SEGMENT, environment="shared-env"),
        ), camera_rate_hz=RATE, landmark_count=120, seed=5)
        # Surveyed segments sit outside the map service entirely: no
        # environment id, so their cache keys are independent of map-store
        # evolution they could never observe.
        assert spec.environment_ids == {}
        report = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE).serve(
            [spec], parallel=False, ingestion="streaming")
        assert not report.results["kn"].map_acquisitions
        assert report.fleet_maps == {}

    def test_warm_wave_registers_with_map_acquired_reason(self, tmp_path):
        store = _warm_store(tmp_path)
        # Lead with an *unshared* indoor segment: SLAM, then the fleet map
        # unlocks registration at the shared segment — the online map-entry.
        warm = [_env_spec("warm", "shared-env", seed=4242,
                          lead_kind=ScenarioKind.INDOOR_UNKNOWN)]
        report = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE).serve(
            warm, parallel=False, ingestion="streaming")
        result = report.results["warm"]
        acquisition = result.map_acquisitions[0]
        assert acquisition.segment_index == 1
        assert acquisition.version == report.fleet_maps[acquisition.environment_id]
        modes = [e.mode for e in result.trajectory.estimates]
        boundary = result.segment_starts[1]
        assert set(modes[:boundary]) == {"slam"}
        assert set(modes[boundary:]) == {"registration"}
        switches = [(s.frame_index, s.to_mode, s.reason) for s in result.mode_switches]
        assert (boundary, "registration", "map_acquired") in switches
        # Accuracy stays sane against the fleet-built (not surveyed) map.
        assert result.trajectory.rmse_error() < 2.0

    def test_quality_gate_blocks_acquisition(self, tmp_path):
        store = _warm_store(tmp_path)
        warm = [_env_spec("warm", "shared-env", seed=4242)]
        report = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=0.999).serve(
            warm, parallel=False, ingestion="streaming")
        result = report.results["warm"]
        assert not result.map_acquisitions
        assert report.fleet_maps == {}
        assert {e.mode for e in result.trajectory.estimates} == {"slam"}
        # Staying cold, the wave keeps publishing snapshots of its own.
        assert result.published_maps

    def test_stale_map_injection_rejected_by_gate(self, tmp_path):
        """A degraded (stale) fleet map fails the gate; sessions stay SLAM."""
        seeded = _warm_store(tmp_path)
        environment_id = _env_spec("x", "shared-env").environment_ids[0]
        good = seeded.resolve(environment_id, min_quality=0.0)
        stale_store = MapStore(tmp_path / "stale", max_bytes=-1, max_age_s=-1)
        stale_store.publish(degrade_snapshot(good, position_noise_m=2.0,
                                             drop_fraction=0.5, seed=9))
        gate = good.quality * 0.8
        assert stale_store.resolve(environment_id, min_quality=gate) is None
        warm = [_env_spec("warm", "shared-env", seed=4242)]
        report = ServingEngine(store=None, max_workers=1, map_store=stale_store,
                               min_map_quality=gate).serve(
            warm, parallel=False, ingestion="streaming")
        assert not report.results["warm"].map_acquisitions
        assert {e.mode for e in report.results["warm"].trajectory.estimates} == {"slam"}

    def test_multi_environment_tour_acquires_everywhere(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE)
        cold = multi_environment_fleet(2, environments=("atrium", "depot"),
                                       segment_duration=SEGMENT,
                                       camera_rate_hz=RATE, landmark_count=120)
        engine.serve(cold, parallel=False, ingestion="streaming")
        assert len(store.environments()) == 2
        warm = multi_environment_fleet(1, environments=("atrium", "depot"),
                                       base_seed=5000, prefix="wave2",
                                       segment_duration=SEGMENT,
                                       camera_rate_hz=RATE, landmark_count=120)
        report = engine.serve(warm, parallel=False, ingestion="streaming")
        result = report.results["wave2-000"]
        assert len(result.map_acquisitions) == 2
        assert len({a.environment_id for a in result.map_acquisitions}) == 2
        assert len(report.fleet_maps) == 2
        assert report.summary()["map_acquisitions"] == 2


def _modes(report):
    return report.mode_census()


def _switch_reasons(report):
    return [switch.reason for result in report.results.values()
            for switch in result.mode_switches]


class TestMapUpdateLifecycle:
    """The closed lifecycle: registration sessions hand deltas back."""

    def test_warm_sessions_produce_and_apply_updates(self, tmp_path):
        store = _warm_store(tmp_path)
        environment_id = _env_spec("x", "shared-env").environment_ids[0]
        before = store.resolve(environment_id, min_quality=0.0).version
        warm = [_env_spec("warm", "shared-env", seed=7777)]
        report = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE).serve(
            warm, parallel=False, ingestion="streaming")
        result = report.results["warm"]
        # The session registered against the map and handed back a delta...
        assert result.map_acquisitions and result.map_updates
        update = result.map_updates[0]
        assert update.environment_id == environment_id
        assert update.base_version == before
        assert update.landmark_count >= 8
        assert update.observation_total >= update.landmark_count
        # ...which the engine folded into a new canonical version, visible
        # in the report and on re-resolve, with the history compacted.
        assert report.map_update_count == 1
        assert set(report.maps_updated) == {environment_id}
        after = store.resolve(environment_id, min_quality=0.0).version
        assert after == report.maps_updated[environment_id] != before
        assert len(store.snapshots(environment_id)) == 1

    def test_updates_visible_next_wave_never_mid_call(self, tmp_path):
        """The serve call that produced the updates still served the
        pre-update canonical (resolution is pre-dispatch); the next call
        acquires the refreshed version."""
        store = _warm_store(tmp_path)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE)
        first = engine.serve([_env_spec("w1", "shared-env", seed=7777)],
                             parallel=False, ingestion="streaming")
        environment_id = next(iter(first.fleet_maps))
        assert first.fleet_maps[environment_id] != first.maps_updated[environment_id]
        second = engine.serve([_env_spec("w2", "shared-env", seed=8888)],
                              parallel=False, ingestion="streaming")
        assert (second.fleet_maps[environment_id]
                == first.maps_updated[environment_id])
        assert (second.results["w2"].map_acquisitions[0].version
                == first.maps_updated[environment_id])

    def test_updates_disabled_keeps_store_frozen(self, tmp_path):
        store = _warm_store(tmp_path)
        environment_id = _env_spec("x", "shared-env").environment_ids[0]
        history = [s.version for s in store.snapshots(environment_id)]
        report = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE, map_updates=False).serve(
            [_env_spec("warm", "shared-env", seed=7777)],
            parallel=False, ingestion="streaming")
        # Sessions still *produce* deltas (pure data in the result)...
        assert report.map_update_count == 1
        # ...but nothing is applied: the PR-4 publish-only behavior.
        assert report.maps_updated == {}
        assert [s.version for s in store.snapshots(environment_id)] == history

    def test_replayed_sessions_do_not_republish_into_live_history(self, tmp_path):
        """A run-store hit must not write its published_maps back into an
        environment with live history: re-publishing a cached wave's
        snapshots would resurrect content apply_updates deliberately
        compacted (pruned landmarks must stay pruned)."""
        run_store = RunStore(tmp_path / "runs", max_bytes=-1, max_age_s=-1)
        map_store = MapStore(tmp_path / "maps", max_bytes=-1, max_age_s=-1)
        # The replaying engine never resolves a map (impossible gate), so
        # the cold wave's serving key stays stable across the compaction.
        replaying = ServingEngine(store=run_store, max_workers=1,
                                  map_store=map_store, min_map_quality=0.999)
        cold = [_env_spec("cold", "shared-env", seed=0)]
        first = replaying.serve(cold, parallel=False, ingestion="streaming")
        assert first.maps_published > 0
        environment_id = _env_spec("x", "shared-env").environment_ids[0]
        # A warm wave through a serving engine updates + compacts the env.
        ServingEngine(store=None, max_workers=1, map_store=map_store,
                      min_map_quality=EASY_GATE).serve(
            [_env_spec("warm", "shared-env", seed=7777)],
            parallel=False, ingestion="streaming")
        compacted = [s.version for s in map_store.snapshots(environment_id)]
        assert len(compacted) == 1  # history folded into the updated version
        # Replaying the cold wave must leave the compacted history alone.
        again = replaying.serve(cold, parallel=False, ingestion="streaming")
        assert again.store_hits == 1
        assert again.maps_published == 0
        assert ([s.version for s in map_store.snapshots(environment_id)]
                == compacted)

    def test_replayed_sessions_reseed_emptied_store(self, tmp_path):
        """The flip side: if the map store was evicted/wiped while the run
        store stayed warm, replayed sessions re-seed the empty environment
        — otherwise those maps would be lost for as long as the cache
        keeps hitting."""
        run_store = RunStore(tmp_path / "runs", max_bytes=-1, max_age_s=-1)
        map_store = MapStore(tmp_path / "maps", max_bytes=-1, max_age_s=-1)
        engine = ServingEngine(store=run_store, max_workers=1,
                               map_store=map_store, min_map_quality=0.999)
        cold = [_env_spec("cold", "shared-env", seed=0)]
        first = engine.serve(cold, parallel=False, ingestion="streaming")
        assert first.maps_published > 0
        environment_id = _env_spec("x", "shared-env").environment_ids[0]
        versions = {s.version for s in map_store.snapshots(environment_id)}
        for key in list(map_store._snapshot_keys(environment_id)):
            map_store.path_for(key).unlink()  # the eviction
        again = engine.serve(cold, parallel=False, ingestion="streaming")
        assert again.store_hits == 1
        assert again.maps_published == first.maps_published
        assert {s.version
                for s in map_store.snapshots(environment_id)} == versions

    def test_three_wave_lifecycle_bit_identical_across_paths(self, tmp_path):
        """publish -> resolve -> update -> re-resolve over three serve
        calls: every execution path replays the identical store evolution
        and produces bit-identical results wave for wave."""
        def lifecycle(label, serve):
            store = MapStore(tmp_path / label, max_bytes=-1, max_age_s=-1)
            waves = []
            for wave_index, base_seed in enumerate((0, 5000, 11000)):
                fleet = [_env_spec(f"v{wave_index}-{i}", "shared-env",
                                   seed=base_seed + 1000 * i) for i in range(2)]
                waves.append(serve(store, fleet))
            return waves

        def serial(ingestion):
            def serve(store, fleet):
                return ServingEngine(store=None, max_workers=1, map_store=store,
                                     min_map_quality=EASY_GATE).serve(
                    fleet, parallel=False, ingestion=ingestion)
            return serve

        def pooled(store, fleet):
            return ServingEngine(store=None, max_workers=2, map_store=store,
                                 min_map_quality=EASY_GATE).serve(
                fleet, parallel=True)

        materialized = lifecycle("materialized", serial("materialized"))
        streaming = lifecycle("streaming", serial("streaming"))
        pool = lifecycle("pool", pooled)
        assert any(report.parallel for report in pool), (
            "no pool spawned — the comparison would be vacuous")
        # Wave 1 published, wave 2 acquired + updated, wave 3 acquired the
        # refreshed canonical: the lifecycle actually closed.
        assert materialized[0].maps_published > 0
        assert materialized[1].map_update_count > 0 and materialized[1].maps_updated
        assert (list(materialized[2].fleet_maps.values())
                == list(materialized[1].maps_updated.values()))
        for wave_index in range(3):
            expected = materialized[wave_index]
            for other in (streaming[wave_index], pool[wave_index]):
                assert other.fleet_maps == expected.fleet_maps
                assert other.maps_updated == expected.maps_updated
                for stream_id, result in expected.results.items():
                    assert (other.results[stream_id].signature()
                            == result.signature())


class TestDriftingWorlds:
    """Landmark displacement bursts: staleness -> update -> recovery."""

    def test_drift_world_moves_only_the_chosen_fraction(self):
        spec = _env_spec("a", "atrium")
        world = ScenarioStream(
            spec, sensor_config_for("drone", RATE, 0)).build_segment(0).world
        drifted = drift_world(world, drift_m=2.0, fraction=0.4, seed=7)
        assert len(drifted) == len(world)
        assert [lm.landmark_id for lm in drifted.landmarks] == \
            [lm.landmark_id for lm in world.landmarks]
        moved = np.linalg.norm(drifted.positions - world.positions, axis=1) > 0
        assert 0 < moved.sum() < len(world)
        # Deterministic: same seed, same burst.
        again = drift_world(world, drift_m=2.0, fraction=0.4, seed=7)
        np.testing.assert_array_equal(again.positions, drifted.positions)

    def test_drift_does_not_change_environment_identity(self):
        """The fleet cannot observe the drift from the spec: same
        environment id, so the stale map is still resolved and served —
        the condition the staleness lifecycle exists for."""
        plain = drifting_environment_fleet(1, environment="yard")[0]
        drifted = drifting_environment_fleet(1, environment="yard",
                                             drift_m=2.0, drift_fraction=0.4)[0]
        assert plain.environment_ids == drifted.environment_ids
        # But the serving cache key differs: drifted worlds produce
        # different results and must not alias cached pre-drift sessions.
        assert serving_key(plain) != serving_key(drifted)

    def test_inert_drift_normalizes_to_legacy_identity(self):
        """Zero-effect drift parameters (m=0 or fraction=0, any seed) build
        the identical world, so they normalize to the canonical no-drift
        segment: payload shape and cache keys stay exactly legacy —
        factory-built and hand-built equivalent fleets share the cache."""
        plain = StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT,
                              environment="yard")
        inert = StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT,
                              environment="yard", world_drift_m=2.0,
                              world_drift_fraction=0.0, world_drift_seed=5)
        assert inert == plain and not inert.drifted
        assert "world_drift_m" not in plain.payload()
        assert inert.payload() == plain.payload()
        # Factory default drift_seed must not split the cache either.
        factory = drifting_environment_fleet(1, environment="yard")[0]
        hand_built = cold_start_fleet(1, environment="yard")[0]
        assert serving_key(factory) == serving_key(hand_built)
        # Active drift round-trips through the payload losslessly.
        active = StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT,
                               environment="yard", world_drift_m=2.0,
                               world_drift_fraction=0.4, world_drift_seed=5)
        assert StreamSegment.from_payload(active.payload()) == active
        assert active.drifted

    def test_stale_map_demoted_then_recovered_through_updates(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE)
        cold = drifting_environment_fleet(2, environment="yard",
                                          segment_duration=SEGMENT,
                                          camera_rate_hz=RATE)
        assert engine.serve(cold, parallel=False,
                            ingestion="streaming").maps_published > 0
        drift_kwargs = dict(environment="yard", segment_duration=SEGMENT,
                            camera_rate_hz=RATE, drift_m=2.0,
                            drift_fraction=0.4, drift_seed=7)
        stale_wave = drifting_environment_fleet(2, base_seed=20000,
                                                prefix="stale", **drift_kwargs)
        stale = engine.serve(stale_wave, parallel=False, ingestion="streaming")
        # The drifted world reads as inflated residuals: sessions demote the
        # stale map mid-segment and fall back to SLAM...
        assert "map_stale" in _switch_reasons(stale)
        assert _modes(stale).get("slam", 0) > 0
        # ...and their updates carry the inflated residual evidence.
        assert stale.map_update_count > 0
        assert stale.maps_updated
        # The next wave on the same drifted world registers cleanly against
        # the repaired canonical: no demotion, no SLAM.
        recovered_wave = drifting_environment_fleet(2, base_seed=30000,
                                                    prefix="recov", **drift_kwargs)
        recovered = engine.serve(recovered_wave, parallel=False,
                                 ingestion="streaming")
        assert "map_stale" not in _switch_reasons(recovered)
        assert _modes(recovered).get("slam", 0) == 0
        assert recovered.map_acquisition_count == len(recovered_wave) * 2


class TestMapAwareSizing:
    """The mode-mix sizing prior and cost-aware streaming capacity."""

    def test_expected_segment_mode_follows_fig2(self):
        spec = StreamSpec("s", (
            StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, SEGMENT),
            StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, SEGMENT,
                          gps_outage_probability=1.0),
            StreamSegment(ScenarioKind.INDOOR_KNOWN, SEGMENT),
            StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT,
                          environment="atrium"),
        ), camera_rate_hz=RATE, landmark_count=120, seed=0)
        environment_id = spec.environment_ids[3]
        assert expected_segment_mode(spec, 0) == "vio"
        assert expected_segment_mode(spec, 1) == "slam"  # full outage
        assert expected_segment_mode(spec, 2) == "registration"  # surveyed
        assert expected_segment_mode(spec, 3) == "slam"  # no fleet map yet
        assert expected_segment_mode(spec, 3, {environment_id}) == "registration"
        assert (MODE_FRAME_COST["registration"] < MODE_FRAME_COST["slam"]
                and MODE_FRAME_COST["vio"] < MODE_FRAME_COST["slam"])

    def test_partial_outage_interpolates_cost(self):
        """A 90%-outage segment serves 90% of its frames GPS-denied; the
        sizing cost must interpolate, not round to VIO (a mostly-denied
        fleet primed as pure VIO would start 3x too narrow)."""
        spec = StreamSpec("s", (
            StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, SEGMENT,
                          gps_outage_probability=0.9),
        ), camera_rate_hz=RATE, landmark_count=120, seed=0)
        assert expected_segment_mode(spec, 0) == "slam"  # the majority mode
        costs = ServingEngine._segment_costs(spec, {})
        expected = 0.1 * MODE_FRAME_COST["vio"] + 0.9 * MODE_FRAME_COST["slam"]
        assert costs == (pytest.approx(expected),)

    def test_warm_fleet_primes_lower_than_cold(self, tmp_path):
        def autoscaler():
            return LatencyAutoscaler(min_workers=1, max_workers=8, window=48,
                                     grow_patience=2, shrink_patience=4,
                                     cooldown=2)

        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)

        def serve(fleet):
            engine = ServingEngine(store=None, max_workers=1, map_store=store,
                                   min_map_quality=EASY_GATE,
                                   autoscaler=autoscaler(),
                                   frames_per_worker_tick=2)
            return engine.serve(fleet, parallel=False, ingestion="streaming")

        cold = serve(cold_start_fleet(4, environment="size-env",
                                      segment_duration=SEGMENT,
                                      camera_rate_hz=RATE, deadline_ms=400.0))
        warm = serve(cold_start_fleet(4, environment="size-env", base_seed=9000,
                                      segment_duration=SEGMENT,
                                      camera_rate_hz=RATE, deadline_ms=400.0,
                                      prefix="warm"))
        cold_prime, warm_prime = (report.scale_decisions[0]
                                  for report in (cold, warm))
        assert cold_prime.action == warm_prime.action == "prime"
        # The warm fleet's registration-dominant mix sizes strictly smaller.
        assert warm_prime.workers_after < cold_prime.workers_after
        assert warm.map_acquisition_count == 8

    def test_prime_scales_demand_by_frame_rate(self, tmp_path):
        """A slow session delivers a fraction of a frame per event-loop
        tick; the prior must not count it as a full frame (heterogeneous
        fleets would otherwise prime over-wide and shrink back — the exact
        cold-start cycle the prior exists to avoid)."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)

        def engine():
            return ServingEngine(store=None, max_workers=1, map_store=store,
                                 autoscaler=LatencyAutoscaler(min_workers=1,
                                                              max_workers=16),
                                 frames_per_worker_tick=1)

        def slam_spec(stream_id, rate):
            return StreamSpec(stream_id, (
                StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT),
            ), camera_rate_hz=rate, landmark_count=120, seed=0)

        fast = slam_spec("fast", 10.0)
        slow = [slam_spec(f"slow-{i}", 5.0) for i in range(3)]
        e = engine()
        costs = {spec.stream_id: e._segment_costs(spec, {})
                 for spec in [fast] + slow}
        decision = e._prime_autoscaler([fast] + slow, costs)
        # 1 full-rate SLAM session + 3 half-rate ones = 2.5 cost-units per
        # tick, not the naive 4.
        assert decision.workers_after == 3

    def test_sizing_disabled_without_map_store(self):
        """No map store => no mode-mix knowledge => no prime decision (the
        PR-3 autoscaling behavior, golden-pinned elsewhere)."""
        engine = ServingEngine(store=None, max_workers=1,
                               autoscaler=LatencyAutoscaler(min_workers=1,
                                                            max_workers=4))
        assert not engine.map_aware_sizing
        report = engine.serve(
            [_env_spec("plain", "anywhere", seed=1)],
            parallel=False, ingestion="streaming")
        assert all(d.action != "prime" for d in report.scale_decisions)


class TestMapDeterminism:
    @pytest.fixture(scope="class")
    def warm_setup(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("maps-determinism")
        store = _warm_store(tmp)
        warm = [_env_spec(f"w-{i}", "shared-env", seed=3000 + 1000 * i,
                          lead_kind=ScenarioKind.OUTDOOR_UNKNOWN)
                for i in range(3)]
        return store, warm

    def _engine(self, store, max_workers=1):
        # map_updates=False freezes the store across the repeated serves of
        # this class: these tests pin the acquisition contract against ONE
        # canonical map state.  The closed update lifecycle (where each
        # serve refreshes the canonical) has its own determinism suite in
        # TestMapUpdateLifecycle, with a fresh store per execution path.
        return ServingEngine(store=None, max_workers=max_workers, map_store=store,
                             min_map_quality=EASY_GATE, map_updates=False)

    def test_all_paths_identical_with_acquisition(self, warm_setup):
        store, warm = warm_setup
        materialized = self._engine(store).serve(warm, parallel=False,
                                                 ingestion="materialized")
        streaming = self._engine(store).serve(warm, parallel=False,
                                              ingestion="streaming")
        pooled = self._engine(store, max_workers=2).serve(warm, parallel=True)
        assert pooled.parallel, "no pool spawned — the comparison would be vacuous"
        for report in (materialized, streaming, pooled):
            assert report.map_acquisition_count == len(warm)
        for stream_id, expected in materialized.results.items():
            assert streaming.results[stream_id].signature() == expected.signature()
            assert pooled.results[stream_id].signature() == expected.signature()
            pooled_acquisitions = pooled.results[stream_id].map_acquisitions
            assert ([(a.environment_id, a.version, a.frame_index)
                     for a in expected.map_acquisitions]
                    == [(a.environment_id, a.version, a.frame_index)
                        for a in pooled_acquisitions])

    def test_acquisition_changes_signature(self, warm_setup):
        store, warm = warm_setup
        with_map = self._engine(store).serve(warm, parallel=False,
                                             ingestion="streaming")
        mapless = ServingEngine(store=None, max_workers=1).serve(
            warm, parallel=False, ingestion="streaming")
        for stream_id in with_map.results:
            assert (with_map.results[stream_id].signature()
                    != mapless.results[stream_id].signature())

    def test_serving_key_folds_map_versions(self, warm_setup):
        store, warm = warm_setup
        spec = warm[0]
        environment_id = spec.environment_ids[1]
        version = store.resolve(environment_id, min_quality=EASY_GATE).version
        assert serving_key(spec) == serving_key(spec, {})
        assert serving_key(spec) != serving_key(spec, {environment_id: version})
        assert (serving_key(spec, {environment_id: version})
                != serving_key(spec, {environment_id: "f" * 16}))

    def test_run_store_separates_cold_and_warm_entries(self, warm_setup, tmp_path):
        """The same spec before/after the fleet map matured never collides."""
        store, warm = warm_setup
        run_store = RunStore(tmp_path / "runs", max_bytes=-1, max_age_s=-1)
        spec = warm[0]
        cold_engine = ServingEngine(store=run_store, max_workers=1)
        cold_report = cold_engine.serve([spec], parallel=False, ingestion="streaming")
        assert cold_report.computed_sessions == 1
        warm_engine = ServingEngine(store=run_store, max_workers=1, map_store=store,
                                    min_map_quality=EASY_GATE, map_updates=False)
        first = warm_engine.serve([spec], parallel=False, ingestion="streaming")
        assert first.store_hits == 0 and first.computed_sessions == 1
        second = warm_engine.serve([spec], parallel=False, ingestion="streaming")
        assert second.store_hits == 1 and second.computed_sessions == 0
        assert (second.results[spec.stream_id].signature()
                == first.results[spec.stream_id].signature())
        # The cached warm result still carries its acquisition provenance.
        assert second.results[spec.stream_id].map_acquisitions
        # And the cold entry is untouched: serving mapless hits it again.
        again_cold = cold_engine.serve([spec], parallel=False, ingestion="streaming")
        assert again_cold.store_hits == 1
        assert not again_cold.results[spec.stream_id].map_acquisitions
