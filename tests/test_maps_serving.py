"""Serving integration of the fleet map service.

The contracts pinned here:

* sessions naming the same environment traverse the *same* landmark world
  (the substrate that makes cross-session map reuse physically meaningful);
* a cold fleet's SLAM segments publish snapshots at segment/stream exits,
  and the engine writes them to the map store after serving;
* a later wave acquires the merged fleet map: acquisitions are logged,
  registration displaces SLAM in the mode log, and the ``map_acquired``
  switch reason marks the online map-entry event;
* materialized, streaming and pool execution stay bit-identical with map
  acquisition enabled (resolution happens once, up front);
* the resolved map version is folded into the serving cache key, so warm
  and cold serves of one spec occupy different run-store entries;
* the quality gate keeps unusable (degraded/stale) maps out of serving.
"""

import numpy as np
import pytest

from repro.experiments.runner import RunStore, sensor_config_for
from repro.maps import MapStore, degrade_snapshot
from repro.sensors.scenarios import ScenarioKind
from repro.serving import (
    ScenarioStream,
    ServingEngine,
    Session,
    StreamSegment,
    StreamSpec,
    cold_start_fleet,
    mixed_fleet,
    multi_environment_fleet,
    segment_environment_id,
    serving_key,
)

SEGMENT = 2.0
RATE = 5.0
# Short test fleets build small maps; a permissive gate keeps the focus on
# the lifecycle (dedicated tests pin the gate behavior itself).
EASY_GATE = 0.05


def _env_spec(stream_id, environment, seed=0, lead_kind=None,
              segment_duration=SEGMENT):
    """One session: optional lead segment, then a shared indoor segment."""
    segments = []
    if lead_kind is not None:
        segments.append(StreamSegment(lead_kind, segment_duration))
    segments.append(StreamSegment(ScenarioKind.INDOOR_UNKNOWN, segment_duration,
                                  environment=environment))
    return StreamSpec(stream_id=stream_id, segments=tuple(segments),
                      camera_rate_hz=RATE, landmark_count=120, seed=seed)


def _warm_store(tmp_path, environment="shared-env", seeds=(0, 1000)):
    """A map store seeded by a small cold wave over ``environment``."""
    store = MapStore(tmp_path / "maps", max_bytes=-1, max_age_s=-1)
    cold = [_env_spec(f"cold-{i}", environment, seed=seed)
            for i, seed in enumerate(seeds)]
    ServingEngine(store=None, max_workers=1, map_store=store,
                  min_map_quality=EASY_GATE).serve(
        cold, parallel=False, ingestion="streaming")
    return store


class TestSharedWorlds:
    def test_same_environment_same_world(self):
        a = _env_spec("a", "atrium", seed=0)
        b = _env_spec("b", "atrium", seed=123456)
        world_a = ScenarioStream(a, sensor_config_for("drone", RATE, a.seed)).build_segment(0).world
        world_b = ScenarioStream(b, sensor_config_for("drone", RATE, b.seed)).build_segment(0).world
        np.testing.assert_array_equal(world_a.positions, world_b.positions)

    def test_different_environment_different_world(self):
        a = _env_spec("a", "atrium", seed=0)
        b = _env_spec("b", "warehouse", seed=0)
        world_a = ScenarioStream(a, sensor_config_for("drone", RATE, a.seed)).build_segment(0).world
        world_b = ScenarioStream(b, sensor_config_for("drone", RATE, b.seed)).build_segment(0).world
        assert not np.array_equal(world_a.positions, world_b.positions)

    def test_unshared_segment_keeps_session_world(self):
        """Without an environment, sessions stay in per-seed worlds."""
        a = StreamSpec("a", (StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT),),
                       camera_rate_hz=RATE, landmark_count=120, seed=0)
        b = StreamSpec("b", (StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT),),
                       camera_rate_hz=RATE, landmark_count=120, seed=1000)
        world_a = ScenarioStream(a, sensor_config_for("drone", RATE, 0)).build_segment(0).world
        world_b = ScenarioStream(b, sensor_config_for("drone", RATE, 1000)).build_segment(0).world
        assert not np.array_equal(world_a.positions, world_b.positions)

    def test_environment_id_covers_world_determinants(self):
        base = _env_spec("a", "atrium")
        assert segment_environment_id(base, 0) == segment_environment_id(
            _env_spec("b", "atrium", seed=999), 0)
        other_rate = StreamSpec("c", base.segments, camera_rate_hz=10.0,
                                landmark_count=120, seed=0)
        assert segment_environment_id(base, 0) != segment_environment_id(other_rate, 0)
        other_count = StreamSpec("d", base.segments, camera_rate_hz=RATE,
                                 landmark_count=80, seed=0)
        assert segment_environment_id(base, 0) != segment_environment_id(other_count, 0)

    def test_environment_roundtrips_through_payload(self):
        spec = _env_spec("a", "atrium", lead_kind=ScenarioKind.OUTDOOR_UNKNOWN)
        rebuilt = StreamSpec.from_payload(spec.payload())
        assert rebuilt == spec
        assert rebuilt.environment_ids == spec.environment_ids
        assert list(spec.environment_ids) == [1]

    def test_fleet_factories_name_environments(self):
        cold = cold_start_fleet(3, environment="depot", explore_segments=2)
        for spec in cold:
            assert [seg.environment for seg in spec.segments] == [None, "depot", "depot"]
        tour = multi_environment_fleet(2, environments=("a", "b"))
        assert [seg.environment for seg in tour[0].segments] == [None, "a", "b"]
        assert [seg.environment for seg in tour[1].segments] == [None, "b", "a"]
        mixed = mixed_fleet(2, indoor_environment="depot")
        for spec in mixed:
            kinds = {seg.kind: seg.environment for seg in spec.segments}
            assert kinds[ScenarioKind.INDOOR_UNKNOWN] == "depot"


class TestMapLifecycle:
    def test_cold_session_publishes_at_exits(self, tmp_path):
        """One snapshot per SLAM stretch: segment exits and the stream end."""
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        spec = StreamSpec("cold", (
            StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT, environment="atrium"),
            StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, SEGMENT),
            StreamSegment(ScenarioKind.INDOOR_UNKNOWN, SEGMENT, environment="atrium"),
        ), camera_rate_hz=RATE, landmark_count=120, seed=0)
        report = ServingEngine(store=None, max_workers=1, map_store=store).serve(
            [spec], parallel=False, ingestion="streaming")
        result = report.results["cold"]
        # Segment 0 publishes at its exit, segment 2 at stream end; the
        # unshared outdoor segment publishes nothing.
        assert [s.segment_index for s in result.published_maps] == [0, 2]
        assert report.maps_published == 2
        environment_id = spec.environment_ids[0]
        assert {s.environment_id for s in result.published_maps} == {environment_id}
        assert len(store.snapshots(environment_id)) == 2
        for snapshot in result.published_maps:
            assert snapshot.source == "cold"
            assert snapshot.landmark_count > 0
            assert snapshot.frame_count > 0
        # Serving the same session again republishes identical content:
        # store recency refreshes, but nothing new is counted as published.
        again = ServingEngine(store=None, max_workers=1, map_store=store).serve(
            [spec], parallel=False, ingestion="streaming")
        assert again.maps_published == 0
        assert len(store.snapshots(environment_id)) == 2

    def test_mid_segment_slam_reset_restarts_publish_gate(self):
        """A mapper reset discards the map, so the frame gate restarts too.

        Otherwise a just-reset one-keyframe fragment — whose window
        residuals are deceptively near zero — could pass the publish gate
        on a stale count and outrank honest snapshots in the fleet merge.
        """
        from repro.core.modes import BackendMode

        spec = _env_spec("reset", "shared-env", seed=3)
        session = Session(spec)
        for _ in range(6):  # serve SLAM frames in the shared segment
            session.step()
        assert session._segment_slam_frames >= 3
        frame = session.stream.build_segment(0).frames[5]
        session._handover(BackendMode.SLAM, frame)
        assert session._segment_slam_frames == 0

    def test_registration_sessions_do_not_republish(self, tmp_path):
        store = _warm_store(tmp_path)
        warm = [_env_spec("warm", "shared-env", seed=7777)]
        report = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE).serve(
            warm, parallel=False, ingestion="streaming")
        result = report.results["warm"]
        assert result.map_acquisitions
        assert not result.published_maps
        assert report.maps_published == 0

    def test_surveyed_map_beats_fleet_map(self, tmp_path):
        """A prebuilt (survey) map wins over any fleet map for that segment."""
        store = _warm_store(tmp_path)
        spec = StreamSpec("kn", (
            StreamSegment(ScenarioKind.INDOOR_KNOWN, SEGMENT, environment="shared-env"),
        ), camera_rate_hz=RATE, landmark_count=120, seed=5)
        # Surveyed segments sit outside the map service entirely: no
        # environment id, so their cache keys are independent of map-store
        # evolution they could never observe.
        assert spec.environment_ids == {}
        report = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE).serve(
            [spec], parallel=False, ingestion="streaming")
        assert not report.results["kn"].map_acquisitions
        assert report.fleet_maps == {}

    def test_warm_wave_registers_with_map_acquired_reason(self, tmp_path):
        store = _warm_store(tmp_path)
        # Lead with an *unshared* indoor segment: SLAM, then the fleet map
        # unlocks registration at the shared segment — the online map-entry.
        warm = [_env_spec("warm", "shared-env", seed=4242,
                          lead_kind=ScenarioKind.INDOOR_UNKNOWN)]
        report = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE).serve(
            warm, parallel=False, ingestion="streaming")
        result = report.results["warm"]
        acquisition = result.map_acquisitions[0]
        assert acquisition.segment_index == 1
        assert acquisition.version == report.fleet_maps[acquisition.environment_id]
        modes = [e.mode for e in result.trajectory.estimates]
        boundary = result.segment_starts[1]
        assert set(modes[:boundary]) == {"slam"}
        assert set(modes[boundary:]) == {"registration"}
        switches = [(s.frame_index, s.to_mode, s.reason) for s in result.mode_switches]
        assert (boundary, "registration", "map_acquired") in switches
        # Accuracy stays sane against the fleet-built (not surveyed) map.
        assert result.trajectory.rmse_error() < 2.0

    def test_quality_gate_blocks_acquisition(self, tmp_path):
        store = _warm_store(tmp_path)
        warm = [_env_spec("warm", "shared-env", seed=4242)]
        report = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=0.999).serve(
            warm, parallel=False, ingestion="streaming")
        result = report.results["warm"]
        assert not result.map_acquisitions
        assert report.fleet_maps == {}
        assert {e.mode for e in result.trajectory.estimates} == {"slam"}
        # Staying cold, the wave keeps publishing snapshots of its own.
        assert result.published_maps

    def test_stale_map_injection_rejected_by_gate(self, tmp_path):
        """A degraded (stale) fleet map fails the gate; sessions stay SLAM."""
        seeded = _warm_store(tmp_path)
        environment_id = _env_spec("x", "shared-env").environment_ids[0]
        good = seeded.resolve(environment_id, min_quality=0.0)
        stale_store = MapStore(tmp_path / "stale", max_bytes=-1, max_age_s=-1)
        stale_store.publish(degrade_snapshot(good, position_noise_m=2.0,
                                             drop_fraction=0.5, seed=9))
        gate = good.quality * 0.8
        assert stale_store.resolve(environment_id, min_quality=gate) is None
        warm = [_env_spec("warm", "shared-env", seed=4242)]
        report = ServingEngine(store=None, max_workers=1, map_store=stale_store,
                               min_map_quality=gate).serve(
            warm, parallel=False, ingestion="streaming")
        assert not report.results["warm"].map_acquisitions
        assert {e.mode for e in report.results["warm"].trajectory.estimates} == {"slam"}

    def test_multi_environment_tour_acquires_everywhere(self, tmp_path):
        store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=EASY_GATE)
        cold = multi_environment_fleet(2, environments=("atrium", "depot"),
                                       segment_duration=SEGMENT,
                                       camera_rate_hz=RATE, landmark_count=120)
        engine.serve(cold, parallel=False, ingestion="streaming")
        assert len(store.environments()) == 2
        warm = multi_environment_fleet(1, environments=("atrium", "depot"),
                                       base_seed=5000, prefix="wave2",
                                       segment_duration=SEGMENT,
                                       camera_rate_hz=RATE, landmark_count=120)
        report = engine.serve(warm, parallel=False, ingestion="streaming")
        result = report.results["wave2-000"]
        assert len(result.map_acquisitions) == 2
        assert len({a.environment_id for a in result.map_acquisitions}) == 2
        assert len(report.fleet_maps) == 2
        assert report.summary()["map_acquisitions"] == 2


class TestMapDeterminism:
    @pytest.fixture(scope="class")
    def warm_setup(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("maps-determinism")
        store = _warm_store(tmp)
        warm = [_env_spec(f"w-{i}", "shared-env", seed=3000 + 1000 * i,
                          lead_kind=ScenarioKind.OUTDOOR_UNKNOWN)
                for i in range(3)]
        return store, warm

    def _engine(self, store, max_workers=1):
        return ServingEngine(store=None, max_workers=max_workers, map_store=store,
                             min_map_quality=EASY_GATE)

    def test_all_paths_identical_with_acquisition(self, warm_setup):
        store, warm = warm_setup
        materialized = self._engine(store).serve(warm, parallel=False,
                                                 ingestion="materialized")
        streaming = self._engine(store).serve(warm, parallel=False,
                                              ingestion="streaming")
        pooled = self._engine(store, max_workers=2).serve(warm, parallel=True)
        assert pooled.parallel, "no pool spawned — the comparison would be vacuous"
        for report in (materialized, streaming, pooled):
            assert report.map_acquisition_count == len(warm)
        for stream_id, expected in materialized.results.items():
            assert streaming.results[stream_id].signature() == expected.signature()
            assert pooled.results[stream_id].signature() == expected.signature()
            pooled_acquisitions = pooled.results[stream_id].map_acquisitions
            assert ([(a.environment_id, a.version, a.frame_index)
                     for a in expected.map_acquisitions]
                    == [(a.environment_id, a.version, a.frame_index)
                        for a in pooled_acquisitions])

    def test_acquisition_changes_signature(self, warm_setup):
        store, warm = warm_setup
        with_map = self._engine(store).serve(warm, parallel=False,
                                             ingestion="streaming")
        mapless = ServingEngine(store=None, max_workers=1).serve(
            warm, parallel=False, ingestion="streaming")
        for stream_id in with_map.results:
            assert (with_map.results[stream_id].signature()
                    != mapless.results[stream_id].signature())

    def test_serving_key_folds_map_versions(self, warm_setup):
        store, warm = warm_setup
        spec = warm[0]
        environment_id = spec.environment_ids[1]
        version = store.resolve(environment_id, min_quality=EASY_GATE).version
        assert serving_key(spec) == serving_key(spec, {})
        assert serving_key(spec) != serving_key(spec, {environment_id: version})
        assert (serving_key(spec, {environment_id: version})
                != serving_key(spec, {environment_id: "f" * 16}))

    def test_run_store_separates_cold_and_warm_entries(self, warm_setup, tmp_path):
        """The same spec before/after the fleet map matured never collides."""
        store, warm = warm_setup
        run_store = RunStore(tmp_path / "runs", max_bytes=-1, max_age_s=-1)
        spec = warm[0]
        cold_engine = ServingEngine(store=run_store, max_workers=1)
        cold_report = cold_engine.serve([spec], parallel=False, ingestion="streaming")
        assert cold_report.computed_sessions == 1
        warm_engine = ServingEngine(store=run_store, max_workers=1, map_store=store,
                                    min_map_quality=EASY_GATE)
        first = warm_engine.serve([spec], parallel=False, ingestion="streaming")
        assert first.store_hits == 0 and first.computed_sessions == 1
        second = warm_engine.serve([spec], parallel=False, ingestion="streaming")
        assert second.store_hits == 1 and second.computed_sessions == 0
        assert (second.results[spec.stream_id].signature()
                == first.results[spec.stream_id].signature())
        # The cached warm result still carries its acquisition provenance.
        assert second.results[spec.stream_id].map_acquisitions
        # And the cold entry is untouched: serving mapless hits it again.
        again_cold = cold_engine.serve([spec], parallel=False, ingestion="streaming")
        assert again_cold.store_hits == 1
        assert not again_cold.results[spec.stream_id].map_acquisitions
