"""Integration tests for the experiment drivers (one per paper table/figure).

These use short sequences so the whole suite stays fast; the benchmark
harness runs the same drivers with longer characterizations.
"""

import numpy as np
import pytest

from repro.core.modes import BackendMode
from repro.experiments import common
from repro.experiments.fig03_accuracy import accuracy_vs_framerate, best_algorithm_per_scenario
from repro.experiments.fig05_08_characterization import (
    backend_breakdown_by_mode,
    dominant_backend_kernel,
    frontend_backend_by_mode,
)
from repro.experiments.fig09_11_variation import dominant_variation_kernel, variation_by_mode
from repro.experiments.fig16_scaling import fit_quality, kernel_scaling_curves, measured_kalman_gain_curve
from repro.experiments.fig17_21_acceleration import acceleration_report, backend_report, frontend_report
from repro.experiments.sec7f_scheduler import scheduler_report
from repro.experiments.table1_blocks import building_block_matrix, expected_matrix, matches_paper
from repro.experiments.table2_resources import both_platform_reports, resource_report
from repro.experiments.table3_platforms import platform_speedups
from repro.sensors.scenarios import ScenarioKind

DURATION = 6.0


@pytest.fixture(scope="module", autouse=True)
def _shared_cache():
    """Warm the run cache once for all experiment tests in this module."""
    common.all_mode_runs("car", duration=DURATION)
    yield


class TestCommonInfrastructure:
    def test_platform_lookup(self):
        assert common.platform_for("car").name == "EDX-CAR"
        assert common.platform_for("drone").name == "EDX-DRONE"
        with pytest.raises(ValueError):
            common.platform_for("boat")

    def test_characterization_run_cached(self):
        first = common.characterization_run(BackendMode.VIO, "car", duration=DURATION)
        second = common.characterization_run(BackendMode.VIO, "car", duration=DURATION)
        assert first is second

    def test_baseline_records_match_length(self):
        run = common.characterization_run(BackendMode.VIO, "car", duration=DURATION)
        records = common.baseline_records(run, "car")
        assert len(records) == len(run)


class TestTable1:
    def test_measured_matches_paper(self):
        assert all(matches_paper().values())

    def test_matrix_structure(self):
        measured = building_block_matrix()
        expected = expected_matrix()
        assert set(measured) == set(expected) == {"projection", "kalman_gain", "marginalization"}
        # Projection uses only multiplication in the paper's table.
        assert expected["projection"]["matrix_multiplication"]
        assert not expected["projection"]["matrix_inverse"]


class TestCharacterizationExperiments:
    def test_frontend_dominates_all_modes(self):
        report = frontend_backend_by_mode("car", duration=DURATION)
        for mode, shares in report.items():
            assert shares["frontend"]["share_percent"] > 50.0

    def test_backend_rsd_exceeds_frontend(self):
        report = frontend_backend_by_mode("car", duration=DURATION)
        for shares in report.values():
            assert shares["backend"]["rsd_percent"] >= shares["frontend"]["rsd_percent"]

    def test_dominant_kernels_match_paper(self):
        dominant = dominant_backend_kernel("car", duration=DURATION)
        assert dominant["registration"] == "projection"
        assert dominant["vio"] == "kalman_gain"
        assert dominant["slam"] in ("solver", "marginalization")

    def test_breakdowns_are_percentages(self):
        for kernels in backend_breakdown_by_mode("car", duration=DURATION).values():
            assert sum(kernels.values()) == pytest.approx(100.0, abs=0.5)

    def test_variation_report(self):
        report = variation_by_mode("car", duration=DURATION)
        for mode, data in report.items():
            assert data["worst_to_best_ratio"] > 1.0
            assert len(data["frontend_series_ms"]) == len(data["backend_series_ms"])

    def test_dominant_variation_kernels(self):
        dominant = dominant_variation_kernel("car", duration=DURATION)
        assert dominant["registration"] in ("projection", "update", "match", "pose_optimization")
        assert dominant["slam"] in ("marginalization", "solver")


class TestScalingExperiments:
    def test_projection_linear_kalman_quadratic(self):
        curves = kernel_scaling_curves()
        assert fit_quality(curves["projection"], degree=1) > 0.99
        assert fit_quality(curves["kalman_gain"], degree=2) > 0.95
        assert fit_quality(curves["marginalization"], degree=2) > 0.95

    def test_curves_monotonic(self):
        for rows in kernel_scaling_curves().values():
            latencies = [row["latency_ms"] for row in rows]
            assert all(b >= a for a, b in zip(latencies, latencies[1:]))

    def test_measured_kalman_curve_increases(self):
        rows = measured_kalman_gain_curve(feature_points=(5, 15, 30), repeats=1)
        assert rows[-1]["latency_ms"] > rows[0]["latency_ms"]


class TestResourceExperiments:
    def test_report_structure(self):
        report = resource_report("car")
        assert report["shared_fits"]
        assert not report["no_sharing_fits"]
        assert report["frontend_share_of_lut"] > 0.5
        assert report["memory_plan_mb"]["stencil_buffer_unoptimized_mb"] > report["memory_plan_mb"]["stencil_buffer_mb"]

    def test_both_platforms(self):
        reports = both_platform_reports()
        assert reports["car"]["shared"]["lut"] > reports["drone"]["shared"]["lut"]


class TestAccelerationExperiments:
    def test_overall_speedup(self):
        report = acceleration_report("car", duration=DURATION)
        assert 1.5 < report["overall"]["speedup"] < 3.5
        for mode in ("registration", "vio", "slam"):
            assert report[mode]["speedup"] > 1.2
            assert report[mode]["sd_reduction_percent"] > 0.0
            assert report[mode]["energy_reduction_percent"] > 20.0

    def test_throughput_ordering(self):
        report = acceleration_report("car", duration=DURATION)
        overall = report["overall"]
        assert overall["eudoxus_fps_pipelined"] >= overall["eudoxus_fps_no_pipelining"]
        assert overall["eudoxus_fps_no_pipelining"] > overall["baseline_fps"]

    def test_frontend_report(self):
        report = frontend_report("car", duration=DURATION)
        assert report["frontend_speedup"] > 1.5
        assert report["stereo_matching_ms"] > report["temporal_matching_ms"]
        assert report["eudoxus_frontend_fps_pipelined"] > report["eudoxus_frontend_fps_no_pipelining"]

    def test_backend_report(self):
        report = backend_report("car", duration=DURATION)
        for mode, data in report.items():
            assert data["kernel_speedup"] > 1.0
            assert data["backend_latency_reduction_percent"] > 0.0


class TestSchedulerExperiment:
    def test_r2_and_gap(self):
        report = scheduler_report("car", duration=DURATION)
        for mode, data in report.items():
            assert data["training_r2"] > 0.7
            assert data["gap_to_oracle_percent"] < 15.0
            assert 0.0 <= data["offload_fraction"] <= 1.0


class TestTable3:
    def test_platform_ordering(self):
        report = platform_speedups("car", duration=DURATION)
        # The paper's own baseline (multi-core, no ROS) shows the smallest speedup.
        assert report["multi_core"]["speedup_over_platform"] <= report["multi_core_ros"]["speedup_over_platform"]
        assert report["multi_core"]["speedup_over_platform"] <= report["single_core"]["speedup_over_platform"]
        assert report["adreno_gpu"]["speedup_over_platform"] >= report["multi_core"]["speedup_over_platform"]
        assert report["multi_core"]["speedup_over_platform"] > 1.3


class TestFig3Accuracy:
    def test_scenario_preferences(self):
        report = accuracy_vs_framerate(
            frame_rates=(10.0,), duration=8.0, platform_kind="drone",
            scenarios=(ScenarioKind.INDOOR_KNOWN, ScenarioKind.OUTDOOR_UNKNOWN),
            landmark_count=200,
        )
        best = best_algorithm_per_scenario(report)
        assert best[ScenarioKind.INDOOR_KNOWN.value] in ("registration", "slam")
        assert best[ScenarioKind.OUTDOOR_UNKNOWN.value] == "vio"
        # Registration is never evaluated without a map.
        algorithms = {row["algorithm"] for row in report[ScenarioKind.OUTDOOR_UNKNOWN.value]}
        assert "registration" not in algorithms
