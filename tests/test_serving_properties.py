"""Property-based serving guarantees: mode policy, handover, autoscaler.

Three families of invariants that hold for *any* traffic, not just the
hand-picked traces in ``test_serving.py``:

* :class:`ModeSwitchPolicy` hysteresis never oscillates faster than its
  acquire/lose windows, and the mode it picks is always the Fig. 2 cell for
  the observable signals;
* a mid-segment mode switch re-anchors the incoming backend *exactly* at
  the last served estimate (state handover);
* :class:`LatencyAutoscaler` stays inside its worker bounds, respects its
  cooldown + patience hysteresis between resizes, and responds monotonically
  to saturated traffic (all-over pressure never shrinks, all-under never
  grows).
"""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.slam import SlamBackend
from repro.backend.vio import VioBackend
from repro.core.modes import BackendMode
from repro.scheduler import LatencyAutoscaler
from repro.sensors.scenarios import ScenarioKind
from repro.serving import ModeSwitchPolicy, StreamSegment, StreamSpec, run_session

# ------------------------------------------------------------ mode policy


gps_traces = st.lists(st.booleans(), min_size=1, max_size=120)
window_sizes = st.integers(min_value=1, max_value=5)


class TestModeSwitchPolicyProperties:
    @given(trace=gps_traces, acquire=window_sizes, lose=window_sizes)
    @settings(max_examples=200, deadline=None)
    def test_trust_flips_are_backed_by_full_windows(self, trace, acquire, lose):
        """Every trust transition is justified by a full streak of epochs."""
        policy = ModeSwitchPolicy(acquire_frames=acquire, lose_frames=lose)
        states = [policy.observe(has_fix) for has_fix in trace]
        for i in range(1, len(states)):
            if states[i] == states[i - 1]:
                continue
            if states[i]:  # acquired: the last `acquire` epochs all had a fix
                assert i + 1 >= acquire
                assert all(trace[i - k] for k in range(acquire))
            else:  # lost: the last `lose` epochs were all missing
                assert i + 1 >= lose
                assert all(not trace[i - k] for k in range(lose))

    @given(trace=gps_traces, acquire=window_sizes, lose=window_sizes)
    @settings(max_examples=200, deadline=None)
    def test_never_oscillates_faster_than_windows(self, trace, acquire, lose):
        """Consecutive flips are separated by at least the relevant window."""
        policy = ModeSwitchPolicy(acquire_frames=acquire, lose_frames=lose)
        states = [policy.observe(has_fix) for has_fix in trace]
        flips = [i for i in range(1, len(states)) if states[i] != states[i - 1]]
        for previous, current in zip(flips, flips[1:]):
            window = acquire if states[current] else lose
            assert current - previous >= window

    @given(trace=gps_traces, has_map=st.booleans(),
           acquire=window_sizes, lose=window_sizes)
    @settings(max_examples=200, deadline=None)
    def test_mode_always_valid_for_observable_signals(self, trace, has_map,
                                                      acquire, lose):
        """decide() always lands in the Fig. 2 cell for (trust, map)."""
        policy = ModeSwitchPolicy(acquire_frames=acquire, lose_frames=lose)
        for has_fix in trace:
            frame = SimpleNamespace(has_gps=has_fix)
            mode = policy.decide(frame, has_map=has_map)
            if policy.gps_trusted:
                assert mode is BackendMode.VIO
            elif has_map:
                assert mode is BackendMode.REGISTRATION
            else:
                assert mode is BackendMode.SLAM

    @given(trace=gps_traces)
    @settings(max_examples=100, deadline=None)
    def test_warm_start_matches_first_epoch(self, trace):
        policy = ModeSwitchPolicy()
        first = policy.observe(trace[0])
        assert first == trace[0]


# --------------------------------------------------------------- handover


class TestHandoverReanchoring:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_midsegment_switch_reanchors_at_last_estimate(self, monkeypatch, seed):
        """The incoming backend is initialized bit-exactly at the last pose.

        A GPS dropout/reacquisition stream forces mid-segment switches into
        both SLAM-family backends; every re-anchor call the session makes
        must carry the exact pose of the estimate served just before the
        switch (not a copy that drifted through an extra solve).
        """
        anchors = []

        original_vio = VioBackend.initialize
        original_slam = SlamBackend.initialize

        def spy_vio(self, pose, velocity=None):
            anchors.append(pose)
            return original_vio(self, pose, velocity)

        def spy_slam(self, pose):
            anchors.append(pose)
            return original_slam(self, pose)

        monkeypatch.setattr(VioBackend, "initialize", spy_vio)
        monkeypatch.setattr(SlamBackend, "initialize", spy_slam)

        spec = StreamSpec(
            stream_id=f"handover-{seed}",
            segments=(
                StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, 2.0),
                StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, 2.0,
                              gps_outage_probability=1.0),
                StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, 2.0),
            ),
            camera_rate_hz=5.0,
            landmark_count=120,
            seed=seed,
        )
        result = run_session(spec)
        estimates = result.trajectory.estimates
        segment_starts = set(result.segment_starts)
        midsegment = [s for s in result.mode_switches
                      if s.frame_index not in segment_starts
                      and s.to_mode in ("vio", "slam")]
        assert midsegment, "the dropout stream must force a mid-segment switch"
        anchor_ids = {id(pose) for pose in anchors}
        for switch in midsegment:
            expected = estimates[switch.frame_index - 1].pose
            assert id(expected) in anchor_ids, (
                f"switch at frame {switch.frame_index} did not re-anchor at "
                f"the last served estimate")


# -------------------------------------------------------------- autoscaler


def _scaler(min_workers=1, max_workers=8, grow_patience=2, shrink_patience=3,
            cooldown=2, **kwargs):
    return LatencyAutoscaler(min_workers=min_workers, max_workers=max_workers,
                             grow_patience=grow_patience,
                             shrink_patience=shrink_patience,
                             cooldown=cooldown, **kwargs)


latency_traces = st.lists(
    st.floats(min_value=0.0, max_value=5000.0, allow_nan=False), min_size=1,
    max_size=300)


class TestAutoscalerProperties:
    @given(trace=latency_traces, seed=st.integers(0, 2**16))
    @settings(max_examples=150, deadline=None)
    def test_workers_always_within_bounds(self, trace, seed):
        rng = np.random.default_rng(seed)
        scaler = _scaler(min_workers=int(rng.integers(1, 4)),
                         max_workers=int(rng.integers(4, 12)))
        for i, latency in enumerate(trace):
            scaler.observe(latency, deadline_ms=200.0)
            if i % 4 == 0:
                scaler.decide()
        scaler.decide()
        assert scaler.min_workers <= scaler.workers <= scaler.max_workers
        for decision in scaler.decisions:
            assert scaler.min_workers <= decision.workers_after <= scaler.max_workers

    @given(trace=latency_traces,
           grow_patience=st.integers(1, 4), shrink_patience=st.integers(1, 4),
           cooldown=st.integers(0, 4))
    @settings(max_examples=150, deadline=None)
    def test_resizes_respect_cooldown_plus_patience(self, trace, grow_patience,
                                                    shrink_patience, cooldown):
        """Hysteresis: consecutive resizes are >= cooldown + patience apart.

        After a resize the scaler holds for ``cooldown`` evaluations, then
        needs a full patience streak of fresh breaches — so the decision log
        can never oscillate faster than that, whatever the traffic does.
        """
        scaler = _scaler(grow_patience=grow_patience,
                         shrink_patience=shrink_patience, cooldown=cooldown)
        for latency in trace:
            scaler.observe(latency, deadline_ms=100.0)
            scaler.decide()
        resizes = [d for d in scaler.decisions if d.resized]
        for previous, current in zip(resizes, resizes[1:]):
            patience = grow_patience if current.action == "grow" else shrink_patience
            assert current.tick - previous.tick >= cooldown + patience

    @given(trace=st.lists(st.floats(min_value=500.0, max_value=5000.0,
                                    allow_nan=False), min_size=5, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_saturated_traffic_never_shrinks(self, trace):
        scaler = _scaler()
        for latency in trace:
            scaler.observe(latency, deadline_ms=100.0)  # pressure >= 5
            scaler.decide()
        assert all(d.action != "shrink" for d in scaler.decisions)
        assert scaler.workers >= 1

    @given(trace=st.lists(st.floats(min_value=0.0, max_value=5.0,
                                    allow_nan=False), min_size=5, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_idle_traffic_never_grows(self, trace):
        scaler = _scaler(initial_workers=8)
        for latency in trace:
            scaler.observe(latency, deadline_ms=1000.0)  # pressure <= 0.005
            scaler.decide()
        assert all(d.action != "grow" for d in scaler.decisions)

    @given(latencies=st.lists(st.floats(min_value=0.0, max_value=2000.0,
                                        allow_nan=False), min_size=1, max_size=60),
           gaps=st.lists(st.integers(min_value=0, max_value=3),
                         min_size=1, max_size=60),
           best_effort_ms=st.floats(min_value=0.0, max_value=10_000.0,
                                    allow_nan=False))
    @settings(max_examples=150, deadline=None)
    def test_best_effort_interleave_does_not_dilute_pressure(self, latencies,
                                                             gaps, best_effort_ms):
        """Pressure over a deadlined subsequence is invariant under
        best-effort interleaving (as long as the deadlined samples stay
        within one observation window): a best-effort frame has no
        latency/deadline ratio, so it must contribute *nothing* to the
        signal — neither diluting it toward its own latency nor zeroing it.
        """
        pure = _scaler()
        mixed = _scaler()
        total = 0
        for latency, gap in zip(latencies, gaps):
            pure.observe(latency, deadline_ms=200.0)
            for _ in range(gap):
                mixed.observe(best_effort_ms, deadline_ms=None)
                total += 1
            mixed.observe(latency, deadline_ms=200.0)
            total += 1
        if total <= 256:  # every deadlined sample still inside the window
            assert mixed.pressure() == pure.pressure()

    def test_sparse_deadlined_traffic_is_not_zeroed_by_best_effort(self):
        """One saturated deadlined frame among fifteen idle best-effort
        frames per round must still grow the pool."""
        scaler = _scaler()
        for _ in range(12):
            for _ in range(15):
                scaler.observe(1.0, deadline_ms=None)
            scaler.observe(1000.0, deadline_ms=100.0)  # pressure 10
            scaler.decide()
        assert any(d.action == "grow" for d in scaler.decisions)
        assert scaler.workers > scaler.min_workers

    def test_sparse_live_deadlined_traffic_keeps_its_window(self):
        """While deadlined traffic continues — however sparsely interleaved
        with best-effort frames — every pressure sample is retained: expiry
        must not shrink a sparse fleet's effective window to the last
        handful of samples (a single spike would then read as sustained
        pressure)."""
        scaler = _scaler()
        for _ in range(40):
            for _ in range(100):
                scaler.observe(1.0, deadline_ms=None)
            scaler.observe(10.0, deadline_ms=100.0)  # healthy: pressure 0.1
        # One spike in otherwise-healthy sparse traffic...
        scaler.observe(500.0, deadline_ms=100.0)
        assert scaler.pressure() > 0.0
        # ...is judged against the full retained history (41 samples, even
        # though ~4000 observations passed), not the 2-3 newest — so the
        # p95 stays at the healthy level and the pool does not grow.
        assert len(scaler._pressure) == 41
        for _ in range(3):
            scaler.decide()
        assert all(d.action != "grow" for d in scaler.decisions)

    def test_stale_deadlined_evidence_expires(self):
        """A deadlined burst that *ended* must stop exerting pressure once a
        full observation window of best-effort-only traffic has passed —
        the scaler must not keep resizing on traffic that no longer exists.
        """
        scaler = _scaler(cooldown=0, grow_patience=2)
        for _ in range(4):
            scaler.observe(1000.0, deadline_ms=100.0)
        assert scaler.pressure() > scaler.grow_pressure
        # The deadlined session disconnects; best-effort traffic continues.
        for _ in range(256):
            scaler.observe(5.0, deadline_ms=None)
        assert scaler.pressure() == 0.0
        decision = scaler.decide()
        assert decision.action == "hold"
        assert decision.reason == "no deadline traffic"

    def test_no_deadline_traffic_exerts_no_pressure(self):
        scaler = _scaler()
        for _ in range(50):
            scaler.observe(10_000.0, deadline_ms=None)
            decision = scaler.decide()
        assert decision.action == "hold"
        assert scaler.workers == scaler.min_workers
        assert scaler.pressure() == 0.0

    def test_decision_log_is_complete(self):
        scaler = _scaler()
        for _ in range(10):
            scaler.observe(1000.0, deadline_ms=100.0)
            scaler.decide()
        assert len(scaler.decisions) == 10
        assert [d.tick for d in scaler.decisions] == list(range(1, 11))
        assert any(d.action == "grow" for d in scaler.decisions)

    def test_decision_log_is_bounded(self):
        """A long-running deployment must not grow the log without limit."""
        scaler = _scaler()
        limit = LatencyAutoscaler.DECISION_LOG_LIMIT
        for _ in range(limit + 64):
            scaler.decide()
        assert len(scaler.decisions) == limit
        assert scaler.decisions[-1].tick == limit + 64  # newest retained

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            LatencyAutoscaler(min_workers=0)
        with pytest.raises(ValueError):
            LatencyAutoscaler(min_workers=4, max_workers=2)
        with pytest.raises(ValueError):
            LatencyAutoscaler(grow_pressure=0.3, shrink_pressure=0.5)


class TestAutoscalerSaturation:
    """Regression: pinned-at-cap overload must surface, not loop silently.

    Before the fix, pressure above ``grow_pressure`` with the pool already
    at ``max_workers`` grew ``_over_streak`` without bound and the log
    emitted ``pressure ... (n/patience)`` holds forever — no caller could
    distinguish "warming up to grow" from "pinned and drowning".  The
    saturated signal is what the service front door sheds on.
    """

    def _saturate(self, scaler, rounds):
        for _ in range(rounds):
            scaler.observe(1000.0, deadline_ms=100.0)  # pressure 10
            scaler.decide()

    def test_pinned_overload_reports_saturated(self):
        scaler = _scaler(min_workers=1, max_workers=1, grow_patience=2)
        self._saturate(scaler, 6)
        assert scaler.saturated
        last = scaler.decisions[-1]
        assert last.action == "hold"
        assert last.saturated
        assert last.reason.startswith("saturated")

    def test_over_streak_is_clamped_at_patience(self):
        scaler = _scaler(min_workers=1, max_workers=1, grow_patience=3)
        self._saturate(scaler, 50)
        assert scaler._over_streak == scaler.grow_patience

    def test_saturation_requires_full_patience_streak(self):
        """At cap but only briefly over-pressure: not saturated yet."""
        scaler = _scaler(min_workers=1, max_workers=1, grow_patience=3)
        self._saturate(scaler, 2)
        assert not scaler.saturated
        assert not scaler.decisions[-1].saturated
        self._saturate(scaler, 1)
        assert scaler.saturated

    def test_saturation_clears_when_pressure_recedes(self):
        scaler = _scaler(min_workers=1, max_workers=1, grow_patience=2,
                         window=16)
        self._saturate(scaler, 5)
        assert scaler.saturated
        for _ in range(16):  # a full window of healthy samples
            scaler.observe(10.0, deadline_ms=100.0)  # pressure decays
        scaler.decide()
        assert not scaler.saturated
        assert not scaler.decisions[-1].saturated

    def test_growable_pool_never_saturates(self):
        """Headroom means grow, never saturate, whatever the pressure."""
        scaler = _scaler(min_workers=1, max_workers=8)
        self._saturate(scaler, 40)
        assert scaler.workers == scaler.max_workers  # it did grow to cap...
        grow_ticks = [d.tick for d in scaler.decisions if d.action == "grow"]
        saturated_ticks = [d.tick for d in scaler.decisions if d.saturated]
        assert saturated_ticks  # ...then saturated at the cap
        assert min(saturated_ticks) > max(grow_ticks)

    def test_prime_resets_saturation(self):
        scaler = _scaler(min_workers=1, max_workers=1, grow_patience=2)
        self._saturate(scaler, 5)
        assert scaler.saturated
        scaler.prime(1)
        assert not scaler.saturated

    @given(trace=latency_traces, max_workers=st.integers(1, 4))
    @settings(max_examples=150, deadline=None)
    def test_over_streak_never_exceeds_patience(self, trace, max_workers):
        """The unbounded-streak bug, as an any-traffic invariant."""
        scaler = _scaler(min_workers=1, max_workers=max_workers)
        for latency in trace:
            scaler.observe(latency, deadline_ms=100.0)
            scaler.decide()
            assert scaler._over_streak <= scaler.grow_patience
            # The flag only ever rises with the pool pinned at the cap.
            if scaler.saturated:
                assert scaler.workers == scaler.max_workers


class TestPrimeClock:
    """Regression: prime() used to log every decision at clock=0.0."""

    def test_prime_logs_the_callers_clock(self):
        scaler = _scaler()
        decision = scaler.prime(4, clock=17.5)
        assert decision.action == "prime"
        assert decision.clock == 17.5

    def test_prime_default_clock_is_zero(self):
        scaler = _scaler()
        assert scaler.prime(2).clock == 0.0

    def test_primes_across_serve_calls_stay_monotonic(self):
        """Two serve calls' worth of prime+decide at offset clocks must
        yield a log that sorts by clock — the metrics endpoint's contract."""
        scaler = _scaler(cooldown=0)
        clock = 0.0
        for base in (0.0, 40.0):  # two consecutive serve calls
            scaler.prime(2, clock=base)
            for step in range(1, 6):
                scaler.observe(500.0, deadline_ms=100.0)
                scaler.decide(base + step)
        clocks = [d.clock for d in scaler.decisions]
        assert clocks == sorted(clocks)
        ticks = [d.tick for d in scaler.decisions]
        assert ticks == sorted(ticks) and len(set(ticks)) == len(ticks)
