"""Unit and property-based tests for repro.common.geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.geometry import (
    Pose,
    euler_to_rotation,
    homogeneous,
    interpolate_pose,
    quaternion_to_rotation,
    rotation_to_euler,
    rotation_to_quaternion,
    skew,
    so3_exp,
    so3_log,
)

angles = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False)
coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)


def random_rotation(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return so3_exp(rng.uniform(-np.pi, np.pi, size=3) * 0.9)


class TestSkew:
    def test_antisymmetric(self):
        m = skew([1.0, 2.0, 3.0])
        assert np.allclose(m, -m.T)

    def test_cross_product_equivalence(self, rng):
        a = rng.normal(size=3)
        b = rng.normal(size=3)
        assert np.allclose(skew(a) @ b, np.cross(a, b))


class TestSo3:
    def test_exp_identity(self):
        assert np.allclose(so3_exp(np.zeros(3)), np.eye(3))

    def test_exp_is_rotation(self, rng):
        r = so3_exp(rng.normal(size=3))
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-9)
        assert np.isclose(np.linalg.det(r), 1.0)

    def test_log_of_identity_is_zero(self):
        assert np.allclose(so3_log(np.eye(3)), np.zeros(3))

    @given(st.tuples(angles, angles, angles))
    @settings(max_examples=40, deadline=None)
    def test_exp_log_roundtrip(self, phi_tuple):
        phi = np.array(phi_tuple)
        recovered = so3_log(so3_exp(phi))
        # The log can differ by 2*pi wrapping; compare the rotations instead.
        assert np.allclose(so3_exp(recovered), so3_exp(phi), atol=1e-6)

    def test_near_pi_rotation(self):
        phi = np.array([np.pi - 1e-4, 0.0, 0.0])
        assert np.allclose(so3_exp(so3_log(so3_exp(phi))), so3_exp(phi), atol=1e-5)


class TestQuaternion:
    def test_identity_quaternion(self):
        assert np.allclose(quaternion_to_rotation([1, 0, 0, 0]), np.eye(3))

    @given(st.tuples(angles, angles, angles))
    @settings(max_examples=40, deadline=None)
    def test_rotation_quaternion_roundtrip(self, phi_tuple):
        rotation = so3_exp(np.array(phi_tuple))
        recovered = quaternion_to_rotation(rotation_to_quaternion(rotation))
        assert np.allclose(recovered, rotation, atol=1e-8)

    def test_quaternion_normalized(self):
        q = rotation_to_quaternion(random_rotation(3))
        assert np.isclose(np.linalg.norm(q), 1.0)

    def test_positive_scalar_convention(self):
        q = rotation_to_quaternion(random_rotation(5))
        assert q[0] >= 0.0


class TestEuler:
    def test_yaw_only(self):
        rotation = euler_to_rotation(0.5, 0.0, 0.0)
        yaw, pitch, roll = rotation_to_euler(rotation)
        assert np.isclose(yaw, 0.5)
        assert np.isclose(pitch, 0.0)
        assert np.isclose(roll, 0.0)

    @given(angles, st.floats(min_value=-1.3, max_value=1.3), angles)
    @settings(max_examples=40, deadline=None)
    def test_euler_roundtrip(self, yaw, pitch, roll):
        rotation = euler_to_rotation(yaw, pitch, roll)
        recovered = euler_to_rotation(*rotation_to_euler(rotation))
        assert np.allclose(recovered, rotation, atol=1e-8)


class TestPose:
    def test_identity(self):
        pose = Pose.identity()
        assert np.allclose(pose.matrix(), np.eye(4))

    def test_compose_with_inverse_is_identity(self, rng):
        pose = Pose(random_rotation(11), rng.normal(size=3))
        identity = pose.compose(pose.inverse())
        assert np.allclose(identity.rotation, np.eye(3), atol=1e-9)
        assert np.allclose(identity.translation, np.zeros(3), atol=1e-9)

    def test_transform_point_roundtrip(self, rng):
        pose = Pose(random_rotation(13), rng.normal(size=3))
        point = rng.normal(size=3)
        world = pose.transform_point(point)
        body = pose.inverse().transform_point(world)
        assert np.allclose(body, point, atol=1e-9)

    def test_transform_points_matches_single(self, rng):
        pose = Pose(random_rotation(17), rng.normal(size=3))
        points = rng.normal(size=(5, 3))
        batch = pose.transform_points(points)
        for i in range(5):
            assert np.allclose(batch[i], pose.transform_point(points[i]))

    def test_compose_associative(self, rng):
        a = Pose(random_rotation(1), rng.normal(size=3))
        b = Pose(random_rotation(2), rng.normal(size=3))
        c = Pose(random_rotation(3), rng.normal(size=3))
        left = a.compose(b).compose(c)
        right = a.compose(b.compose(c))
        assert np.allclose(left.matrix(), right.matrix(), atol=1e-9)

    def test_relative_to(self, rng):
        a = Pose(random_rotation(4), rng.normal(size=3))
        b = Pose(random_rotation(5), rng.normal(size=3))
        relative = b.relative_to(a)
        assert np.allclose(a.compose(relative).matrix(), b.matrix(), atol=1e-9)

    def test_distance_and_rotation_angle(self):
        a = Pose.identity()
        b = Pose(euler_to_rotation(0.3, 0.0, 0.0), np.array([3.0, 4.0, 0.0]))
        assert np.isclose(a.distance_to(b), 5.0)
        assert np.isclose(a.rotation_angle_to(b), 0.3, atol=1e-8)

    def test_from_matrix_roundtrip(self, rng):
        pose = Pose(random_rotation(21), rng.normal(size=3))
        assert np.allclose(Pose.from_matrix(pose.matrix()).matrix(), pose.matrix())

    def test_perturb_small(self):
        pose = Pose.identity()
        perturbed = pose.perturb(np.array([0.0, 0.0, 1e-3]), np.array([1e-3, 0, 0]))
        assert perturbed.distance_to(pose) < 2e-3
        assert perturbed.rotation_angle_to(pose) < 2e-3

    def test_euler_constructor(self):
        pose = Pose.from_euler(0.2, 0.1, -0.1, np.zeros(3))
        yaw, pitch, roll = pose.euler()
        assert np.isclose(yaw, 0.2, atol=1e-8)
        assert np.isclose(pitch, 0.1, atol=1e-8)
        assert np.isclose(roll, -0.1, atol=1e-8)


class TestInterpolation:
    def test_endpoints(self, rng):
        a = Pose(random_rotation(31), rng.normal(size=3))
        b = Pose(random_rotation(32), rng.normal(size=3))
        assert np.allclose(interpolate_pose(a, b, 0.0).matrix(), a.matrix(), atol=1e-9)
        assert np.allclose(interpolate_pose(a, b, 1.0).matrix(), b.matrix(), atol=1e-9)

    def test_midpoint_translation(self):
        a = Pose.identity()
        b = Pose(np.eye(3), np.array([2.0, 0.0, 0.0]))
        mid = interpolate_pose(a, b, 0.5)
        assert np.allclose(mid.translation, [1.0, 0.0, 0.0])


class TestHomogeneous:
    def test_shape_and_last_column(self, rng):
        points = rng.normal(size=(7, 3))
        h = homogeneous(points)
        assert h.shape == (7, 4)
        assert np.allclose(h[:, 3], 1.0)
        assert np.allclose(h[:, :3], points)
