"""Tests for the MSCKF state, filter, and GPS fusion (VIO mode)."""

import numpy as np
import pytest

from repro.backend.fusion import GpsFusion
from repro.backend.msckf import Msckf, VioWorkload
from repro.backend.state import CLONE_ERROR_DIM, IMU_ERROR_DIM, MsckfState
from repro.backend.vio import VioBackend
from repro.common.config import BackendConfig, FusionConfig, MSCKFConfig
from repro.common.geometry import Pose
from repro.frontend.frontend import VisualFrontend
from repro.sensors.gps import GpsSample


class TestMsckfState:
    def test_initial_dimensions(self):
        state = MsckfState()
        assert state.error_dim == IMU_ERROR_DIM
        assert state.covariance.shape == (IMU_ERROR_DIM, IMU_ERROR_DIM)

    def test_augmentation_grows_state(self):
        state = MsckfState()
        state.augment(0, 0.0)
        assert state.error_dim == IMU_ERROR_DIM + CLONE_ERROR_DIM
        assert state.covariance.shape == (state.error_dim, state.error_dim)
        assert state.has_clone(0)

    def test_clone_shares_imu_pose(self):
        state = MsckfState()
        state.imu.position = np.array([1.0, 2.0, 3.0])
        state.augment(5, 1.0)
        clone = state.clone_by_frame(5)
        assert np.allclose(clone.position, [1.0, 2.0, 3.0])

    def test_pruning_restores_window(self):
        state = MsckfState(window_size=3)
        for i in range(5):
            state.augment(i, float(i))
        removed = state.prune_oldest(3)
        assert len(removed) == 2
        assert len(state.clones) == 3
        assert state.covariance.shape[0] == IMU_ERROR_DIM + 3 * CLONE_ERROR_DIM
        assert not state.has_clone(0)

    def test_missing_clone_raises(self):
        state = MsckfState()
        with pytest.raises(KeyError):
            state.clone_by_frame(99)

    def test_apply_correction_moves_states(self):
        state = MsckfState()
        state.augment(0, 0.0)
        delta = np.zeros(state.error_dim)
        delta[3:6] = [1.0, 0.0, 0.0]          # IMU position
        delta[IMU_ERROR_DIM + 3] = -1.0       # clone position x
        state.apply_correction(delta)
        assert np.allclose(state.imu.position, [1.0, 0.0, 0.0])
        assert np.allclose(state.clones[0].position, [-1.0, 0.0, 0.0])

    def test_symmetrize(self):
        state = MsckfState()
        state.covariance[0, 1] = 1.0
        state.symmetrize()
        assert np.allclose(state.covariance, state.covariance.T)


class TestMsckf:
    def _run(self, sequence, frames=20, use_gps=False):
        frontend = VisualFrontend(rig=sequence.rig, sparse=True, dropout_probability=0.0)
        backend = VioBackend(BackendConfig(), use_gps=use_gps)
        errors = []
        for frame in sequence.frames[:frames]:
            result = frontend.process(frame)
            backend_result = backend.process(result, frame)
            errors.append(backend_result.pose.distance_to(frame.ground_truth))
        return backend, errors

    def test_requires_initialization(self):
        filter_ = Msckf()
        with pytest.raises(RuntimeError):
            filter_.process_frame(None, [])

    def test_initialize_sets_pose(self):
        filter_ = Msckf()
        pose = Pose(np.eye(3), np.array([1.0, 2.0, 3.0]))
        filter_.initialize(pose, np.array([0.5, 0.0, 0.0]))
        assert filter_.initialized
        assert np.allclose(filter_.pose().translation, pose.translation)

    def test_tracks_outdoor_motion(self, outdoor_sequence):
        backend, errors = self._run(outdoor_sequence, frames=25, use_gps=False)
        # Pure VIO should stay within a metre over 2.5 s of motion.
        assert errors[-1] < 1.0
        assert np.mean(errors) < 0.6

    def test_gps_fusion_reduces_error(self, outdoor_sequence):
        _, errors_without = self._run(outdoor_sequence, frames=30, use_gps=False)
        _, errors_with = self._run(outdoor_sequence, frames=30, use_gps=True)
        assert np.mean(errors_with) <= np.mean(errors_without) + 0.2

    def test_window_is_bounded(self, outdoor_sequence):
        backend, _ = self._run(outdoor_sequence, frames=25)
        assert len(backend.filter.state.clones) <= backend.config.msckf.window_size

    def test_workload_populated(self, outdoor_sequence):
        backend, _ = self._run(outdoor_sequence, frames=15)
        workload = backend.filter.last_workload
        assert isinstance(workload, VioWorkload)
        assert workload.clone_count > 0
        assert workload.state_dim == IMU_ERROR_DIM + CLONE_ERROR_DIM * workload.clone_count
        assert workload.imu_samples > 0

    def test_kernel_timings_present(self, outdoor_sequence):
        frontend = VisualFrontend(rig=outdoor_sequence.rig, sparse=True)
        backend = VioBackend(BackendConfig())
        result = backend.process(frontend.process(outdoor_sequence.frames[0]), outdoor_sequence.frames[0])
        backend.process(frontend.process(outdoor_sequence.frames[1]), outdoor_sequence.frames[1])
        assert "imu_processing" in backend.filter.last_kernel_ms
        assert result.mode == "vio"

    def test_covariance_stays_symmetric_positive(self, outdoor_sequence):
        backend, _ = self._run(outdoor_sequence, frames=20)
        cov = backend.filter.state.covariance
        assert np.allclose(cov, cov.T, atol=1e-8)
        assert np.all(np.linalg.eigvalsh(cov) > -1e-6)

    def test_reset(self, outdoor_sequence):
        backend, _ = self._run(outdoor_sequence, frames=5)
        backend.reset()
        assert not backend.initialized


class TestGpsFusion:
    def test_offset_estimation(self):
        fusion = GpsFusion(FusionConfig())
        vio_pose = Pose(np.eye(3), np.zeros(3))
        true_offset = np.array([2.0, -1.0, 0.5])
        rng = np.random.default_rng(0)
        for i in range(20):
            gps = GpsSample(timestamp=float(i), position=true_offset + rng.normal(0, 0.05, 3))
            fusion.update(vio_pose, gps)
        assert fusion.has_converged
        assert np.allclose(fusion.offset, true_offset, atol=0.2)
        corrected = fusion.corrected_pose(vio_pose)
        assert np.allclose(corrected.translation, true_offset, atol=0.2)

    def test_invalid_fix_ignored(self):
        fusion = GpsFusion()
        gps = GpsSample(timestamp=0.0, position=np.zeros(3), valid=False)
        fusion.update(Pose.identity(), gps)
        assert fusion.fix_count == 0

    def test_multipath_glitch_gated(self):
        fusion = GpsFusion(FusionConfig(gate_threshold=9.0))
        vio_pose = Pose.identity()
        for i in range(10):
            fusion.update(vio_pose, GpsSample(float(i), np.zeros(3), covariance=np.eye(3) * 0.01))
        offset_before = fusion.offset.copy()
        fusion.update(vio_pose, GpsSample(11.0, np.array([50.0, 0.0, 0.0]), covariance=np.eye(3) * 0.01))
        assert np.allclose(fusion.offset, offset_before, atol=1e-6)

    def test_gate_reopens_after_persistent_innovation(self):
        fusion = GpsFusion(FusionConfig(gate_threshold=9.0))
        vio_pose = Pose.identity()
        for i in range(10):
            fusion.update(vio_pose, GpsSample(float(i), np.zeros(3), covariance=np.eye(3) * 0.01))
        # A persistent jump (VIO drift, not a glitch) must eventually be accepted.
        for i in range(10):
            fusion.update(vio_pose, GpsSample(20.0 + i, np.array([5.0, 0.0, 0.0]), covariance=np.eye(3) * 0.01))
        assert fusion.offset[0] > 1.0

    def test_reset(self):
        fusion = GpsFusion()
        fusion.update(Pose.identity(), GpsSample(0.0, np.ones(3)))
        fusion.reset()
        assert fusion.fix_count == 0
        assert np.allclose(fusion.offset, 0.0)
