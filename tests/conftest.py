"""Shared fixtures: small synthetic sequences and rigs used across tests."""

import numpy as np
import pytest

from repro.common.camera import PinholeCamera, StereoRig
from repro.common.config import LocalizerConfig, SensorConfig
from repro.sensors.dataset import SequenceBuilder
from repro.sensors.scenarios import ScenarioKind, scenario_catalog


@pytest.fixture(scope="session")
def small_sensor_config():
    """A light-weight sensor configuration for fast tests."""
    return SensorConfig(
        image_width=320,
        image_height=240,
        stereo_baseline=0.2,
        camera_rate_hz=10.0,
        landmark_count=150,
        seed=3,
    )


@pytest.fixture(scope="session")
def small_rig(small_sensor_config):
    camera = PinholeCamera.from_fov(
        small_sensor_config.image_width, small_sensor_config.image_height, 90.0
    )
    return StereoRig(camera=camera, baseline=small_sensor_config.stereo_baseline)


def _build(kind, config, duration=6.0, render=False):
    catalog = scenario_catalog(duration=duration, landmark_count=config.landmark_count)
    return SequenceBuilder(config, render_images=render).build(catalog[kind])


@pytest.fixture(scope="session")
def indoor_sequence(small_sensor_config):
    """An indoor (unknown environment) sequence: no GPS, no map."""
    return _build(ScenarioKind.INDOOR_UNKNOWN, small_sensor_config)


@pytest.fixture(scope="session")
def indoor_mapped_sequence(small_sensor_config):
    """An indoor sequence for which a survey map is available."""
    return _build(ScenarioKind.INDOOR_KNOWN, small_sensor_config)


@pytest.fixture(scope="session")
def outdoor_sequence(small_sensor_config):
    """An outdoor sequence with GPS."""
    return _build(ScenarioKind.OUTDOOR_UNKNOWN, small_sensor_config)


@pytest.fixture(scope="session")
def rendered_sequence():
    """A tiny sequence with rendered stereo images for dense-frontend tests."""
    config = SensorConfig(
        image_width=160,
        image_height=120,
        stereo_baseline=0.2,
        camera_rate_hz=5.0,
        landmark_count=60,
        pixel_noise_std=0.2,
        seed=7,
    )
    return _build(ScenarioKind.INDOOR_UNKNOWN, config, duration=2.0, render=True)


@pytest.fixture(scope="session")
def localizer_config():
    config = LocalizerConfig()
    config.frontend.max_features = 120
    return config


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
