"""Golden-signature regression suite for the serving layer.

``tests/data/serving_signatures.json`` pins the
:meth:`~repro.serving.session.SessionResult.signature` of a small canonical
fleet.  Every serving path — the legacy materialized multiplexer, the
arrival-time streaming event loop (plain and capacity-throttled under the
autoscaler), and the process-pool shard — must reproduce those exact
digests.  This catches *silent determinism drift*: a change that perturbs
poses or mode switches without failing any behavioral test (a reordered
reduction, an RNG stream that moved, a segment rebuilt with different
stitching) shows up here as a signature mismatch.

When a change intentionally alters the served results (new noise model,
different backend math), regenerate the pins and review the diff:

    EUDOXUS_REGEN_GOLDEN=1 python -m pytest tests/test_serving_golden.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.scheduler import LatencyAutoscaler
from repro.serving import ServingEngine, mixed_fleet

GOLDEN_PATH = Path(__file__).parent / "data" / "serving_signatures.json"
REGEN_ENV = "EUDOXUS_REGEN_GOLDEN"

FLEET_SIZE = 3
SEGMENT_DURATION = 1.0
RATE_HZ = 5.0


def canonical_fleet():
    return mixed_fleet(FLEET_SIZE, segment_duration=SEGMENT_DURATION,
                       camera_rate_hz=RATE_HZ)


def _signatures(report):
    return {stream_id: result.signature()
            for stream_id, result in sorted(report.results.items())}


@pytest.fixture(scope="module")
def golden():
    if os.environ.get(REGEN_ENV, "").strip():
        fleet = canonical_fleet()
        report = ServingEngine(store=None, max_workers=1).serve(
            fleet, parallel=False, ingestion="materialized")
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps({
            "fleet": {"size": FLEET_SIZE, "segment_duration": SEGMENT_DURATION,
                      "camera_rate_hz": RATE_HZ},
            "signatures": _signatures(report),
        }, indent=2) + "\n")
    if not GOLDEN_PATH.is_file():
        pytest.fail(f"golden file missing; regenerate with {REGEN_ENV}=1")
    return json.loads(GOLDEN_PATH.read_text())["signatures"]


@pytest.fixture(scope="module")
def fleet():
    return canonical_fleet()


def _assert_matches(report, golden, path):
    produced = _signatures(report)
    assert produced == golden, (
        f"{path} serving drifted from the pinned signatures — if the change "
        f"is intentional, regenerate with {REGEN_ENV}=1 and review the diff")


def test_materialized_path_matches_golden(fleet, golden):
    report = ServingEngine(store=None, max_workers=1).serve(
        fleet, parallel=False, ingestion="materialized")
    _assert_matches(report, golden, "materialized")


def test_streaming_path_matches_golden(fleet, golden):
    report = ServingEngine(store=None, max_workers=1).serve(
        fleet, parallel=False, ingestion="streaming")
    _assert_matches(report, golden, "streaming")


def test_throttled_streaming_path_matches_golden(fleet, golden):
    autoscaler = LatencyAutoscaler(min_workers=1, max_workers=4, window=32,
                                   grow_patience=2, shrink_patience=4, cooldown=2)
    report = ServingEngine(store=None, max_workers=1, autoscaler=autoscaler,
                           frames_per_worker_tick=1).serve(
        fleet, parallel=False, ingestion="streaming")
    _assert_matches(report, golden, "autoscaled streaming")


def test_pool_path_matches_golden(fleet, golden):
    report = ServingEngine(store=None, max_workers=2).serve(fleet, parallel=True)
    _assert_matches(report, golden, "process-pool")
