"""Golden-signature regression suite for the serving layer.

``tests/data/serving_signatures.json`` pins the
:meth:`~repro.serving.session.SessionResult.signature` of a small canonical
fleet.  Every serving path — the legacy materialized multiplexer, the
arrival-time streaming event loop (plain and capacity-throttled under the
autoscaler), and the process-pool shard — must reproduce those exact
digests.  This catches *silent determinism drift*: a change that perturbs
poses or mode switches without failing any behavioral test (a reordered
reduction, an RNG stream that moved, a segment rebuilt with different
stitching) shows up here as a signature mismatch.

When a change intentionally alters the served results (new noise model,
different backend math), regenerate the pins and review the diff:

    EUDOXUS_REGEN_GOLDEN=1 python -m pytest tests/test_serving_golden.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.maps import MapStore
from repro.scheduler import LatencyAutoscaler
from repro.serving import ServingEngine, cold_start_fleet, mixed_fleet

GOLDEN_PATH = Path(__file__).parent / "data" / "serving_signatures.json"
REGEN_ENV = "EUDOXUS_REGEN_GOLDEN"

FLEET_SIZE = 3
SEGMENT_DURATION = 1.0
RATE_HZ = 5.0

# Fleet-map canonical world: a cold wave publishes into a fresh map store, a
# warm wave acquires the merged map (and hands back MapUpdate deltas that
# refresh the canonical), and an *updated* wave acquires the refreshed
# version.  All three waves' signatures are pinned — publication,
# acquisition AND update provenance are part of the signature — as are the
# canonical versions before and after the update application.
MAP_ENVIRONMENT = "golden-atrium"
MAP_GATE = 0.05  # permissive: the 1 s segments build small but real maps
COLD_SEED = 100
WARM_SEED = 9100
UPDATED_SEED = 17100


def canonical_fleet():
    return mixed_fleet(FLEET_SIZE, segment_duration=SEGMENT_DURATION,
                       camera_rate_hz=RATE_HZ)


def cold_wave():
    return cold_start_fleet(2, environment=MAP_ENVIRONMENT, base_seed=COLD_SEED,
                            segment_duration=SEGMENT_DURATION,
                            camera_rate_hz=RATE_HZ, prefix="cold")


def warm_wave():
    return cold_start_fleet(2, environment=MAP_ENVIRONMENT, base_seed=WARM_SEED,
                            segment_duration=SEGMENT_DURATION,
                            camera_rate_hz=RATE_HZ, prefix="warm")


def updated_wave():
    return cold_start_fleet(2, environment=MAP_ENVIRONMENT, base_seed=UPDATED_SEED,
                            segment_duration=SEGMENT_DURATION,
                            camera_rate_hz=RATE_HZ, prefix="upd")


def _map_engine(store, max_workers=1):
    return ServingEngine(store=None, max_workers=max_workers, map_store=store,
                         min_map_quality=MAP_GATE)


def _seed_map_store(root):
    """Serve the cold wave into a fresh map store; returns (store, report)."""
    store = MapStore(root, max_bytes=-1, max_age_s=-1)
    report = _map_engine(store).serve(cold_wave(), parallel=False,
                                      ingestion="materialized")
    return store, report


def _lifecycle_reports(root, serve):
    """The three-wave lifecycle against one fresh store, via one path.

    cold (publish) -> warm (acquire + hand back updates; the engine folds
    them into a new canonical version post-serve) -> updated (acquire the
    refreshed version).  ``serve`` runs one engine through one execution
    path; the store is rebuilt from scratch so every path sees the exact
    same store evolution.
    """
    store = MapStore(root, max_bytes=-1, max_age_s=-1)
    cold = serve(store, cold_wave())
    warm = serve(store, warm_wave())
    updated = serve(store, updated_wave())
    return cold, warm, updated


def _serial_serve(ingestion):
    def serve(store, fleet):
        return _map_engine(store).serve(fleet, parallel=False, ingestion=ingestion)
    return serve


def _pool_serve(store, fleet):
    return _map_engine(store, max_workers=2).serve(fleet, parallel=True)


def _signatures(report):
    return {stream_id: result.signature()
            for stream_id, result in sorted(report.results.items())}


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    if os.environ.get(REGEN_ENV, "").strip():
        fleet = canonical_fleet()
        report = ServingEngine(store=None, max_workers=1).serve(
            fleet, parallel=False, ingestion="materialized")
        cold_report, warm_report, updated_report = _lifecycle_reports(
            tmp_path_factory.mktemp("golden-maps"), _serial_serve("materialized"))
        assert warm_report.map_acquisition_count > 0, (
            "golden warm wave acquired no fleet map — pins would be vacuous")
        assert warm_report.map_update_count > 0 and warm_report.maps_updated, (
            "golden warm wave produced/applied no map updates — the updated-"
            "wave pins would be vacuous")
        assert (dict(sorted(updated_report.fleet_maps.items()))
                == dict(sorted(warm_report.maps_updated.items()))), (
            "the updated wave must acquire exactly the canonical the warm "
            "wave's updates produced")
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps({
            "fleet": {"size": FLEET_SIZE, "segment_duration": SEGMENT_DURATION,
                      "camera_rate_hz": RATE_HZ},
            "signatures": _signatures(report),
            "fleet_map": {"environment": MAP_ENVIRONMENT, "gate": MAP_GATE,
                          "cold_seed": COLD_SEED, "warm_seed": WARM_SEED,
                          "updated_seed": UPDATED_SEED,
                          "versions": dict(sorted(warm_report.fleet_maps.items())),
                          "updated_versions": dict(sorted(updated_report.fleet_maps.items()))},
            "fleet_map_signatures": {"cold": _signatures(cold_report),
                                     "warm": _signatures(warm_report),
                                     "updated": _signatures(updated_report)},
        }, indent=2) + "\n")
    if not GOLDEN_PATH.is_file():
        pytest.fail(f"golden file missing; regenerate with {REGEN_ENV}=1")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def fleet():
    return canonical_fleet()


def _assert_matches(report, golden, path):
    produced = _signatures(report)
    assert produced == golden, (
        f"{path} serving drifted from the pinned signatures — if the change "
        f"is intentional, regenerate with {REGEN_ENV}=1 and review the diff")


def test_materialized_path_matches_golden(fleet, golden):
    report = ServingEngine(store=None, max_workers=1).serve(
        fleet, parallel=False, ingestion="materialized")
    _assert_matches(report, golden["signatures"], "materialized")


def test_streaming_path_matches_golden(fleet, golden):
    report = ServingEngine(store=None, max_workers=1).serve(
        fleet, parallel=False, ingestion="streaming")
    _assert_matches(report, golden["signatures"], "streaming")


def test_throttled_streaming_path_matches_golden(fleet, golden):
    autoscaler = LatencyAutoscaler(min_workers=1, max_workers=4, window=32,
                                   grow_patience=2, shrink_patience=4, cooldown=2)
    report = ServingEngine(store=None, max_workers=1, autoscaler=autoscaler,
                           frames_per_worker_tick=1).serve(
        fleet, parallel=False, ingestion="streaming")
    _assert_matches(report, golden["signatures"], "autoscaled streaming")


def test_pool_path_matches_golden(fleet, golden):
    report = ServingEngine(store=None, max_workers=2).serve(fleet, parallel=True)
    _assert_matches(report, golden["signatures"], "process-pool")


# ------------------------------------------------------ fleet-map golden pins


def test_cold_wave_publication_matches_golden(golden, tmp_path):
    """The publishing wave's signatures (which include published-map
    provenance) are pinned: a snapshot whose content drifted would change
    every downstream warm result too."""
    _, cold_report = _seed_map_store(tmp_path)
    _assert_matches(cold_report, golden["fleet_map_signatures"]["cold"],
                    "fleet-map cold wave")


@pytest.mark.parametrize("label,serve", [
    ("materialized", _serial_serve("materialized")),
    ("streaming", _serial_serve("streaming")),
    ("pool", _pool_serve),
])
def test_map_lifecycle_matches_golden_on_all_paths(golden, tmp_path, label, serve):
    """publish -> resolve -> update -> re-resolve, pinned on every path.

    Each execution path replays the full three-wave lifecycle against its
    own fresh store: the cold wave's publishes, the warm wave's
    acquisitions *and* the MapUpdate deltas it hands back, and the updated
    wave's acquisition of the refreshed canonical must all be bit-identical
    to the pins — including the canonical versions before and after the
    update application."""
    cold_report, warm_report, updated_report = _lifecycle_reports(tmp_path, serve)
    _assert_matches(cold_report, golden["fleet_map_signatures"]["cold"],
                    f"fleet-map cold {label}")
    assert warm_report.map_acquisition_count > 0, f"{label}: nothing acquired"
    assert warm_report.map_update_count > 0, f"{label}: no updates produced"
    assert (dict(sorted(warm_report.fleet_maps.items()))
            == golden["fleet_map"]["versions"]), (
        f"{label}: canonical map version drifted from the pinned one")
    _assert_matches(warm_report, golden["fleet_map_signatures"]["warm"],
                    f"fleet-map warm {label}")
    assert (dict(sorted(updated_report.fleet_maps.items()))
            == golden["fleet_map"]["updated_versions"]), (
        f"{label}: post-update canonical version drifted from the pinned one")
    _assert_matches(updated_report, golden["fleet_map_signatures"]["updated"],
                    f"fleet-map updated {label}")
