"""Property-based fleet-map guarantees: merger idempotence, quality monotonicity.

Three families of invariants that hold for *any* map, not just the
hand-built ones in ``test_maps.py``:

* **Idempotence** — merging a map with itself (any number of times, in any
  order, mixed with exact-content duplicates) is a strict no-op: same
  landmarks, same positions, same version digest.
* **Quality monotonicity** — the quality score never decreases when
  landmarks or coverage are added (more map never hurts) and never
  increases when residuals grow (a less consistent map is never better).
  At the snapshot level: a snapshot extended with extra landmarks at equal
  residuals scores at least as high as the original.
* **Quarantine boundary** — the quarantine floor is *inclusive*: a
  contribution at exactly ``quarantine_fraction`` of the best input's
  quality survives the merge, and one ulp below it is quarantined.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maps import MapMerger, MapSnapshot, quality_score

counts = st.integers(min_value=1, max_value=200)
coverages = st.floats(min_value=0.0, max_value=50.0,
                      allow_nan=False, allow_infinity=False)
residuals = st.floats(min_value=0.0, max_value=5.0,
                      allow_nan=False, allow_infinity=False)
deltas = st.floats(min_value=0.0, max_value=10.0,
                   allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _random_snapshot(seed: int, count: int, residual: float,
                     environment_id: str = "prop-env") -> MapSnapshot:
    rng = np.random.default_rng(seed)
    return MapSnapshot(
        environment_id=environment_id,
        landmark_ids=rng.choice(10_000, size=count, replace=False),
        positions=rng.normal(scale=rng.uniform(0.5, 8.0), size=(count, 3)),
        mean_residual_m=residual,
        max_residual_m=residual * 3.0,
    )


class TestMergerIdempotence:
    @given(seed=seeds, count=counts, residual=residuals,
           copies=st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_self_merge_is_strict_noop(self, seed, count, residual, copies):
        snapshot = _random_snapshot(seed, count, residual)
        merged = MapMerger().merge([snapshot] * copies)
        assert merged is snapshot
        np.testing.assert_array_equal(merged.landmark_ids, snapshot.landmark_ids)
        np.testing.assert_array_equal(merged.positions, snapshot.positions)
        assert merged.version == snapshot.version

    @given(seed=seeds, count=counts, residual=residuals)
    @settings(max_examples=60, deadline=None)
    def test_rebuilt_duplicate_folds_away(self, seed, count, residual):
        """Content-identical snapshots dedup even as distinct objects."""
        a = _random_snapshot(seed, count, residual)
        b = _random_snapshot(seed, count, residual)
        assert a is not b and a.version == b.version
        merged = MapMerger().merge([a, b, a])
        assert merged.version == a.version

    @given(seed=seeds, other_seed=seeds, count=counts, residual=residuals)
    @settings(max_examples=40, deadline=None)
    def test_merge_then_remerge_converges(self, seed, other_seed, count, residual):
        """Re-merging the canonical map with its own inputs is stable."""
        a = _random_snapshot(seed, count, residual)
        b = _random_snapshot(other_seed, count, residual)
        merger = MapMerger()
        merged = merger.merge([a, b])
        assert merger.merge([merged]) is merged


class TestQualityMonotonicity:
    @given(count=counts, extra=st.integers(min_value=0, max_value=200),
           coverage=coverages, residual=residuals)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_landmark_count(self, count, extra, coverage, residual):
        assert (quality_score(count + extra, coverage, residual)
                >= quality_score(count, coverage, residual))

    @given(count=counts, coverage=coverages, extra=deltas, residual=residuals)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_coverage(self, count, coverage, extra, residual):
        assert (quality_score(count, coverage + extra, residual)
                >= quality_score(count, coverage, residual))

    @given(count=counts, coverage=coverages, residual=residuals, extra=deltas)
    @settings(max_examples=200, deadline=None)
    def test_antitone_in_residual(self, count, coverage, residual, extra):
        assert (quality_score(count, coverage, residual + extra)
                <= quality_score(count, coverage, residual))

    @given(seed=seeds, count=st.integers(min_value=1, max_value=120),
           extra=st.integers(min_value=1, max_value=120), residual=residuals)
    @settings(max_examples=80, deadline=None)
    def test_snapshot_with_added_coverage_never_scores_lower(self, seed, count,
                                                             extra, residual):
        """Extending a snapshot (equal residuals) cannot lower its quality."""
        rng = np.random.default_rng(seed)
        ids = rng.choice(10_000, size=count + extra, replace=False)
        positions = rng.normal(scale=3.0, size=(count + extra, 3))
        base = MapSnapshot("prop-env", ids[:count], positions[:count],
                           mean_residual_m=residual)
        extended = MapSnapshot("prop-env", ids, positions,
                               mean_residual_m=residual)
        assert extended.coverage_m >= base.coverage_m
        assert extended.quality >= base.quality


class _FixedQualitySnapshot(MapSnapshot):
    """A snapshot whose quality is pinned exactly (boundary-edge tests).

    ``quality_score`` composes transcendental terms, so constructing a real
    snapshot whose quality lands on an exact float is impractical; the
    boundary contract is about the *comparison*, which this isolates.
    """

    @property
    def quality(self) -> float:
        return self._fixed_quality


def _fixed_quality_snapshot(quality, seed, count=20, environment_id="prop-env"):
    rng = np.random.default_rng(seed)
    snapshot = _FixedQualitySnapshot(
        environment_id=environment_id,
        landmark_ids=rng.choice(10_000, size=count, replace=False),
        positions=rng.normal(scale=3.0, size=(count, 3)),
        mean_residual_m=0.05,
    )
    snapshot._fixed_quality = float(quality)
    return snapshot


class TestQuarantineBoundary:
    """The inclusive quarantine floor, pinned at the exact-half edge.

    ``quarantine_fraction=0.5`` multiplies by a power of two, so
    ``0.5 * best`` is exact in binary float — the boundary case is testable
    bit-for-bit, with ``nextafter`` providing the adjacent excluded value.
    """

    best_qualities = st.floats(min_value=1e-6, max_value=1.0,
                               allow_nan=False, allow_infinity=False)

    @given(best=best_qualities)
    @settings(max_examples=200, deadline=None)
    def test_exactly_half_survives_one_ulp_below_does_not(self, best):
        merger = MapMerger(quarantine_fraction=0.5)
        boundary = 0.5 * best
        assert merger.survives_quarantine(boundary, best)
        below = np.nextafter(boundary, 0.0)
        assert not merger.survives_quarantine(below, best)

    @given(best=best_qualities, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_boundary_contribution_merges(self, best, seed):
        """End to end: a contribution at exactly half the best quality is
        folded into the canonical map (its landmarks appear in the union),
        while one ulp below it is quarantined away."""
        anchor = _fixed_quality_snapshot(best, seed)
        merger = MapMerger(quarantine_fraction=0.5)
        at_boundary = _fixed_quality_snapshot(0.5 * best, seed + 1)
        merged = merger.merge([anchor, at_boundary])
        assert merged.landmark_count == len(
            set(anchor.landmark_ids) | set(at_boundary.landmark_ids))
        below = _fixed_quality_snapshot(np.nextafter(0.5 * best, 0.0), seed + 2)
        merged = merger.merge([anchor, below])
        assert merged is anchor

    def test_equal_best_contributions_survive_full_fraction(self):
        """quarantine_fraction=1.0 keeps equal-best contributions — the
        inclusive side's most visible consequence."""
        a = _fixed_quality_snapshot(0.7, seed=1)
        b = _fixed_quality_snapshot(0.7, seed=2)
        merged = MapMerger(quarantine_fraction=1.0).merge([a, b])
        assert merged.landmark_count == len(
            set(a.landmark_ids) | set(b.landmark_ids))
