"""Observability x serving: determinism, inertness, and telemetry pins.

The contracts this file enforces, in order of importance:

1. **Inert**: serving with a tracer and a bound metrics registry yields
   byte-identical :meth:`SessionResult.signature` digests — pinned against
   the same ``tests/data/serving_signatures.json`` the golden suite uses,
   with ``EUDOXUS_TRACE=1`` forced on.
2. **Deterministic**: the virtual-clock ``session``-category span sequence
   is a pure function of the fleet — identical across the materialized,
   streaming, and process-pool ingestion paths, and across repeat runs.
3. **Complete**: exported Chrome traces carry spans from the engine, the
   session layer, the scheduler, and the map plane; ``ServingReport``
   exposes the map-service telemetry slice and a pinned ``as_dict`` shape.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.runner import RunStore
from repro.maps import MapStore
from repro.obs import MetricsRegistry, Tracer
from repro.obs.profile import (
    disable_kernel_tracing,
    enable_kernel_tracing,
    kernel_tracing_enabled,
    profile_kernel,
)
from repro.scheduler import LatencyAutoscaler
from repro.serving import ServingEngine, cold_start_fleet, mixed_fleet

GOLDEN_PATH = Path(__file__).parent / "data" / "serving_signatures.json"

FLEET_SIZE = 3
SEGMENT_DURATION = 1.0
RATE_HZ = 5.0
MAP_ENVIRONMENT = "obs-atrium"
MAP_GATE = 0.05


def canonical_fleet():
    return mixed_fleet(FLEET_SIZE, segment_duration=SEGMENT_DURATION,
                       camera_rate_hz=RATE_HZ)


def map_wave(base_seed, prefix):
    return cold_start_fleet(2, environment=MAP_ENVIRONMENT,
                            base_seed=base_seed,
                            segment_duration=SEGMENT_DURATION,
                            camera_rate_hz=RATE_HZ, prefix=prefix)


def traced_engine(**kwargs):
    kwargs.setdefault("store", None)
    kwargs.setdefault("max_workers", 1)
    return ServingEngine(tracer=Tracer(), **kwargs)


def session_span_sequence(tracer):
    """The deterministic projection: session-category virtual-clock spans."""
    return [event for event in tracer.events if event.category == "session"]


# ------------------------------------------------------------ determinism


class TestSpanDeterminism:
    def _serve(self, parallel, ingestion):
        engine = traced_engine(max_workers=2 if parallel else 1)
        engine.serve(canonical_fleet(), parallel=parallel, ingestion=ingestion)
        return session_span_sequence(engine.tracer)

    def test_session_spans_identical_across_paths(self):
        materialized = self._serve(False, "materialized")
        streaming = self._serve(False, "streaming")
        pooled = self._serve(True, None)
        assert materialized, "no session spans recorded"
        assert materialized == streaming == pooled

    def test_repeat_runs_are_identical(self):
        first = self._serve(False, "streaming")
        second = self._serve(False, "streaming")
        assert first == second

    def test_session_spans_live_on_the_virtual_clock(self):
        spans = self._serve(False, "streaming")
        assert {event.clock for event in spans} == {"virtual"}

    def test_span_sequence_covers_every_stream(self):
        spans = self._serve(False, "materialized")
        fleet = canonical_fleet()
        session_spans = [e for e in spans if e.name == "session"]
        assert sorted(e.track for e in session_spans) == sorted(
            spec.stream_id for spec in fleet)

    def test_mode_runs_partition_each_session(self):
        """Per stream, collapsed mode-run frame counts sum to the session's
        frame count — the span projection loses no frames."""
        engine = traced_engine()
        report = engine.serve(canonical_fleet(), parallel=False,
                              ingestion="materialized")
        for stream_id, result in report.results.items():
            runs = [e for e in session_span_sequence(engine.tracer)
                    if e.track == stream_id and e.name.startswith("mode.")
                    and e.phase == "X"]
            assert sum(e.args_dict()["frames"] for e in runs) == result.frame_count


class TestGoldenWithTracing:
    def test_signatures_unchanged_with_tracing_enabled(self, monkeypatch):
        """The inertness contract: EUDOXUS_TRACE=1 plus a bound metrics
        registry must not move a single signature bit."""
        if not GOLDEN_PATH.is_file():
            pytest.fail("golden file missing; run the golden suite first")
        golden = json.loads(GOLDEN_PATH.read_text())["signatures"]
        monkeypatch.setenv("EUDOXUS_TRACE", "1")
        engine = ServingEngine(store=None, max_workers=1,
                               metrics=MetricsRegistry())
        assert engine.tracer is not None, "EUDOXUS_TRACE=1 must auto-build"
        report = engine.serve(canonical_fleet(), parallel=False,
                              ingestion="streaming")
        produced = {stream_id: result.signature()
                    for stream_id, result in sorted(report.results.items())}
        assert produced == golden


# ------------------------------------------------------------- trace export


class TestTraceExport:
    def test_export_covers_engine_scheduler_session(self, tmp_path):
        autoscaler = LatencyAutoscaler(min_workers=1, max_workers=4, window=32,
                                       grow_patience=2, shrink_patience=4,
                                       cooldown=2)
        engine = traced_engine(autoscaler=autoscaler, frames_per_worker_tick=1)
        engine.serve(canonical_fleet(), parallel=False, ingestion="streaming")
        path = engine.tracer.export_chrome(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        categories = {entry.get("cat") for entry in doc["traceEvents"]}
        assert {"session", "engine", "scheduler"} <= categories

    def test_map_engine_traces_map_plane(self, tmp_path):
        store = MapStore(tmp_path / "maps", max_bytes=-1, max_age_s=-1)
        engine = traced_engine(map_store=store, min_map_quality=MAP_GATE)
        engine.serve(map_wave(100, "cold"), parallel=False,
                     ingestion="materialized")
        engine.serve(map_wave(9100, "warm"), parallel=False,
                     ingestion="materialized")
        names = {event.name for event in engine.tracer.by_category("maps")}
        assert "map.resolve" in names
        doc = json.loads(
            engine.tracer.export_chrome(tmp_path / "t.json").read_text())
        assert any(entry.get("cat") == "maps" for entry in doc["traceEvents"])

    def test_store_hits_emit_instants(self, tmp_path):
        store = RunStore(tmp_path / "runs", max_bytes=-1, max_age_s=-1)
        fleet = canonical_fleet()
        engine = traced_engine(store=store)
        engine.serve(fleet, parallel=False, ingestion="materialized")
        first = [e.name for e in engine.tracer.by_category("store")]
        assert first.count("run_store.miss") == FLEET_SIZE
        rerun = ServingEngine(store=store, max_workers=1, tracer=Tracer())
        rerun.serve(fleet, parallel=False, ingestion="materialized")
        second = [e.name for e in rerun.tracer.by_category("store")]
        assert second.count("run_store.hit") == FLEET_SIZE

    def test_untraced_engine_records_nothing(self):
        engine = ServingEngine(store=None, max_workers=1)
        assert engine.tracer is None
        engine.serve(canonical_fleet(), parallel=False, ingestion="streaming")


# ------------------------------------------------------------ kernel hooks


class TestKernelHooks:
    def teardown_method(self):
        disable_kernel_tracing()

    def test_disabled_by_default_and_null_context_is_cheap(self):
        assert not kernel_tracing_enabled()
        with profile_kernel("slam.bundle_adjustment"):
            pass  # the disabled context records nowhere

    def test_enabled_hooks_capture_backend_kernels(self):
        tracer = enable_kernel_tracing()
        ServingEngine(store=None, max_workers=1).serve(
            mixed_fleet(2, segment_duration=SEGMENT_DURATION,
                        camera_rate_hz=RATE_HZ),
            parallel=False, ingestion="materialized")
        names = {event.name for event in tracer.by_category("kernel")}
        assert {"frontend.triangulation", "msckf.update"} <= names
        assert all(event.clock == "wall"
                   for event in tracer.by_category("kernel"))

    def test_disable_stops_recording(self):
        tracer = enable_kernel_tracing()
        disable_kernel_tracing()
        with profile_kernel("msckf.update"):
            pass
        assert len(tracer) == 0


# ------------------------------------------------------- metrics integration


class TestEngineMetrics:
    def test_serve_populates_engine_families(self):
        registry = MetricsRegistry()
        autoscaler = LatencyAutoscaler(min_workers=1, max_workers=4, window=32,
                                       grow_patience=2, shrink_patience=4,
                                       cooldown=2)
        engine = ServingEngine(store=None, max_workers=1,
                               autoscaler=autoscaler,
                               frames_per_worker_tick=1, metrics=registry)
        report = engine.serve(canonical_fleet(), parallel=False,
                              ingestion="streaming")
        snapshot = registry.as_dict()
        assert snapshot["eudoxus_engine_frames_total"][""] == report.frame_count
        latency = snapshot["eudoxus_engine_serving_latency_ms"][""]
        assert latency["count"] == report.frame_count
        assert "eudoxus_autoscaler_decisions_total" in registry
        assert sum(
            snapshot["eudoxus_autoscaler_decisions_total"].values()) == len(
            autoscaler.decisions)

    def test_mode_census_matches_metric(self):
        registry = MetricsRegistry()
        engine = ServingEngine(store=None, max_workers=1, metrics=registry)
        report = engine.serve(canonical_fleet(), parallel=False,
                              ingestion="materialized")
        by_mode = registry.as_dict()["eudoxus_engine_mode_frames_total"]
        for mode, count in report.mode_census().items():
            assert by_mode[f'{{mode="{mode}"}}'] == count

    def test_rebinding_same_registry_is_safe(self):
        registry = MetricsRegistry()
        engine = ServingEngine(store=None, max_workers=1, metrics=registry)
        engine.bind_metrics(registry)  # idempotent, no ValueError
        engine.serve(canonical_fleet(), parallel=False, ingestion="streaming")


class TestMapServiceTelemetry:
    """ROADMAP item 5: resolve hit rate, merge latency, version churn."""

    def _lifecycle(self, tmp_path, registry=None):
        store = MapStore(tmp_path / "maps", max_bytes=-1, max_age_s=-1)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=MAP_GATE, metrics=registry)
        cold = engine.serve(map_wave(100, "cold"), parallel=False,
                            ingestion="materialized")
        warm = engine.serve(map_wave(9100, "warm"), parallel=False,
                            ingestion="materialized")
        return store, cold, warm

    def test_report_carries_resolve_and_merge_telemetry(self, tmp_path):
        _, cold, warm = self._lifecycle(tmp_path)
        assert cold.map_resolve_hits == 0 and cold.map_resolve_misses == 0
        total = warm.map_resolve_hits + warm.map_resolve_misses
        assert total > 0, "warm wave resolved nothing — telemetry vacuous"
        assert warm.map_resolve_misses >= 1  # first resolve recomputes
        assert 0.0 <= warm.map_resolve_hit_rate <= 1.0
        assert len(warm.map_merge_ms) == warm.map_resolve_misses
        assert all(ms >= 0.0 for ms in warm.map_merge_ms)
        assert warm.map_merge_percentile(50.0) >= 0.0

    def test_version_churn_counts_canonical_changes(self, tmp_path):
        store, cold, warm = self._lifecycle(tmp_path)
        # The warm wave materializes a canonical (first churn tick) and then
        # applies update deltas producing a new version (second tick); the
        # churn dict is keyed by the store's environment digest.
        assert warm.map_version_churn, "no churn recorded on the warm wave"
        for env_key, ticks in warm.map_version_churn.items():
            assert ticks >= 1
            assert store.version_churn[env_key] >= ticks

    def test_summary_and_prometheus_expose_hit_rate(self, tmp_path):
        registry = MetricsRegistry()
        store, _, warm = self._lifecycle(tmp_path, registry=registry)
        assert "map_resolve_hit_rate" in warm.summary()
        text = registry.render_prometheus()
        from repro.obs import parse_prometheus
        parsed = parse_prometheus(text)
        assert "eudoxus_map_store_resolve_hit_rate" in parsed
        rate = parsed["eudoxus_map_store_resolve_hit_rate"]["samples"][
            "eudoxus_map_store_resolve_hit_rate"]
        total = store.resolve_hits + store.resolve_misses
        assert rate == pytest.approx(store.resolve_hits / total)
        assert "eudoxus_map_store_merge_ms" in parsed
        assert "eudoxus_map_store_version_churn_total" in parsed


# ------------------------------------------------------------ report shape


REPORT_KEYS = {
    "computed_sessions", "deadline_misses", "failure_census", "final_workers",
    "fleet_maps",
    "frame_count", "frames_per_second", "ingestion", "map_acquisition_count",
    "map_cache_hit_rate", "map_merge_p50_ms", "map_resolve_hit_rate",
    "map_resolve_hits", "map_resolve_misses", "map_staleness_served",
    "map_update_count", "map_version_churn",
    "maps_published", "maps_updated", "mean_batch_size", "mode_census",
    "mode_switches", "p50_frame_ms", "p50_serving_ms", "p95_frame_ms",
    "p95_serving_ms", "parallel", "replayed_streams", "resizes",
    "scale_decisions", "session_count", "sessions", "sessions_per_second",
    "store_hits", "ticks", "wall_s", "workers",
}

SESSION_KEYS = {"deadline_misses", "failure_signature", "frames",
                "map_acquisitions", "map_updates", "mode_switches",
                "published_maps", "signature"}


class TestReportAsDict:
    def test_key_set_is_pinned(self):
        report = ServingEngine(store=None, max_workers=1).serve(
            canonical_fleet(), parallel=False, ingestion="streaming")
        payload = report.as_dict()
        assert set(payload) == REPORT_KEYS, (
            "ServingReport.as_dict changed shape — update the pin AND the "
            "consumers (dashboards parse this)")
        for session in payload["sessions"].values():
            assert set(session) == SESSION_KEYS

    def test_round_trips_through_json(self, tmp_path):
        store = MapStore(tmp_path / "maps", max_bytes=-1, max_age_s=-1)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=MAP_GATE)
        engine.serve(map_wave(100, "cold"), parallel=False,
                     ingestion="materialized")
        report = engine.serve(map_wave(9100, "warm"), parallel=False,
                              ingestion="materialized")
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["session_count"] == 2
        assert payload["map_resolve_hits"] == report.map_resolve_hits
        assert payload["sessions"], "per-session block missing"

    def test_signatures_survive_the_round_trip(self):
        report = ServingEngine(store=None, max_workers=1).serve(
            canonical_fleet(), parallel=False, ingestion="materialized")
        payload = report.as_dict()
        for stream_id, result in report.results.items():
            assert payload["sessions"][stream_id]["signature"] == \
                result.signature()
