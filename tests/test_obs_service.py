"""Observability at the service front door.

Drives a real :class:`LocalizationService` on an ephemeral port (same
``asyncio.run`` discipline as tests/test_service.py) and checks:

* ``GET /v1/metrics?format=prometheus`` renders the shared registry as
  parseable text exposition — including the admission shed counters and
  the map-store resolve hit rate the acceptance criteria name;
* the JSON endpoint grew a ``map_service`` section (ROADMAP item 5);
* admission verdicts and dispatch waves land in the shared tracer.

The loadgen client is JSON-only, so prometheus responses are fetched with
a tiny raw-text HTTP helper.
"""

import asyncio
import json

import pytest

from repro.maps import MapStore
from repro.obs import MetricsRegistry, Tracer, parse_prometheus
from repro.scheduler import LatencyAutoscaler
from repro.serving import ServingEngine
from repro.service import AdmissionController, LocalizationService
from repro.service.loadgen import request

SEGMENTS_WIRE = [
    {"kind": "outdoor_unknown", "duration": 1.0, "label": "approach"},
    {"kind": "indoor_unknown", "duration": 1.0, "label": "inside"},
]

# Mirrors cold_start_fleet: approach outdoors, then explore a shared indoor
# environment — the shape that publishes (cold) and acquires (warm) maps.
MAP_SEGMENTS_WIRE = [
    {"kind": "outdoor_unknown", "duration": 1.0, "label": "approach"},
    {"kind": "indoor_unknown", "duration": 1.0, "environment": "svc-atrium"},
    {"kind": "indoor_unknown", "duration": 1.0, "environment": "svc-atrium"},
]


async def raw_get(host, port, target):
    """Fetch a path without assuming a JSON body: (status, headers, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
                 f"Connection: close\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = data.decode().partition("\r\n\r\n")
    status_line, *header_lines = head.split("\r\n")
    status = int(status_line.split(" ", 2)[1])
    headers = {}
    for line in header_lines:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


def _run(coro_fn, engine=None, **service_kwargs):
    async def main():
        service = LocalizationService(
            engine if engine is not None else ServingEngine(store=None),
            port=0, **service_kwargs)
        await service.start()
        try:
            return await coro_fn(service)
        finally:
            await service.stop()
    return asyncio.run(main())


async def _serve_one(service, segments=SEGMENTS_WIRE, qos="best_effort",
                     seed=0, stream_id=""):
    payload = {"qos": qos, "segments": segments, "seed": seed}
    if stream_id:
        payload["stream_id"] = stream_id
    status, body = await request(service.host, service.port, "POST",
                                 "/v1/sessions", payload)
    assert status == 201, body
    status, body = await request(
        service.host, service.port, "GET",
        f"/v1/sessions/{body['session_id']}/result")
    assert status == 200, body
    return body


# -------------------------------------------------------------- prometheus


class TestPrometheusEndpoint:
    def test_text_exposition_parses_and_has_core_families(self):
        async def scenario(service):
            await _serve_one(service)
            status, headers, text = await raw_get(
                service.host, service.port, "/v1/metrics?format=prometheus")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            parsed = parse_prometheus(text)
            assert "eudoxus_service_shed_total" in parsed
            assert "eudoxus_engine_frames_total" in parsed
            assert parsed["eudoxus_engine_frames_total"]["samples"][
                "eudoxus_engine_frames_total"] > 0
            admitted = parsed["eudoxus_service_admission_total"]["samples"]
            assert admitted[
                'eudoxus_service_admission_total'
                '{verdict="admitted",qos="best_effort"}'] == 1.0
            assert parsed["eudoxus_service_inflight"]["samples"][
                "eudoxus_service_inflight"] == 0.0
        _run(scenario)

    def test_map_engine_exposes_resolve_hit_rate(self, tmp_path):
        store = MapStore(tmp_path / "maps", max_bytes=-1, max_age_s=-1)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=0.05)

        async def scenario(service):
            # Two waves against one environment: publish, then acquire.
            await _serve_one(service, MAP_SEGMENTS_WIRE, seed=100,
                             stream_id="cold-0")
            await _serve_one(service, MAP_SEGMENTS_WIRE, seed=9100,
                             stream_id="warm-0")
            _, _, text = await raw_get(
                service.host, service.port, "/v1/metrics?format=prometheus")
            parsed = parse_prometheus(text)
            assert "eudoxus_map_store_resolve_hit_rate" in parsed
            assert "eudoxus_map_store_resolve_total" in parsed
            resolves = parsed["eudoxus_map_store_resolve_total"]["samples"]
            assert sum(resolves.values()) > 0, "no resolves recorded"
        _run(scenario, engine=engine)

    def test_shed_counter_increments_on_refusal(self):
        admission = AdmissionController(policy="inflight", max_inflight=1)
        engine = ServingEngine(store=None)

        async def scenario(service):
            status, body = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"qos": "best_effort"})  # stays open: occupies inflight
            assert status == 201
            status, body = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"qos": "best_effort"})
            assert status == 503
            _, _, text = await raw_get(
                service.host, service.port, "/v1/metrics?format=prometheus")
            parsed = parse_prometheus(text)
            shed = parsed["eudoxus_service_shed_total"]["samples"]
            assert shed['eudoxus_service_shed_total'
                        '{reason="max_inflight"}'] == 1.0
        _run(scenario, engine=engine, admission=admission)

    def test_unknown_format_is_a_400(self):
        async def scenario(service):
            status, _, body = await raw_get(
                service.host, service.port, "/v1/metrics?format=xml")
            assert status == 400
            assert "unknown metrics format" in body
        _run(scenario)

    def test_plain_json_endpoint_still_works_with_query(self):
        async def scenario(service):
            status, body = await request(service.host, service.port, "GET",
                                         "/v1/metrics?format=json")
            assert status == 200
            assert "sessions" in body
        _run(scenario)


# ------------------------------------------------------------- json metrics


class TestMapServiceSection:
    def test_absent_without_a_map_store(self):
        async def scenario(service):
            _, metrics = await request(service.host, service.port, "GET",
                                       "/v1/metrics")
            assert metrics["map_service"] is None
        _run(scenario)

    def test_live_counters_with_a_map_store(self, tmp_path):
        store = MapStore(tmp_path / "maps", max_bytes=-1, max_age_s=-1)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=0.05)

        async def scenario(service):
            await _serve_one(service, MAP_SEGMENTS_WIRE, seed=100,
                             stream_id="cold-0")
            await _serve_one(service, MAP_SEGMENTS_WIRE, seed=9100,
                             stream_id="warm-0")
            _, metrics = await request(service.host, service.port, "GET",
                                       "/v1/metrics")
            section = metrics["map_service"]
            assert section is not None
            assert section["published"] >= 1
            total = section["resolve_hits"] + section["resolve_misses"]
            assert total >= 1
            assert 0.0 <= section["resolve_hit_rate"] <= 1.0
            assert section["merge_count"] == len(store.merge_ms)
            json.dumps(metrics)  # the endpoint payload stays serialisable
        _run(scenario, engine=engine)


# ------------------------------------------------------------ front-door spans


class TestFrontDoorTracing:
    def test_admission_and_wave_spans_recorded(self):
        tracer = Tracer()
        engine = ServingEngine(store=None)

        async def scenario(service):
            await _serve_one(service)
            service_events = service.tracer.by_category("service")
            names = [event.name for event in service_events]
            assert "admission.admit" in names
            assert "service.wave" in names
            assert all(event.clock == "wall" for event in service_events)
            # The shared tracer carries engine + front-door spans together.
            assert service.tracer.by_category("session")
        _run(scenario, engine=engine, tracer=tracer)

    def test_shed_verdict_traced(self):
        tracer = Tracer()
        admission = AdmissionController(policy="inflight", max_inflight=1)
        engine = ServingEngine(store=None)

        async def scenario(service):
            await request(service.host, service.port, "POST", "/v1/sessions",
                          {"qos": "best_effort"})
            status, _ = await request(
                service.host, service.port, "POST", "/v1/sessions",
                {"qos": "best_effort"})
            assert status == 503
            sheds = [event for event in service.tracer.by_category("service")
                     if event.name == "admission.shed"]
            assert len(sheds) == 1
            assert sheds[0].args_dict()["reason"] == "max_inflight"
        _run(scenario, engine=engine, admission=admission, tracer=tracer)

    def test_untraced_service_stays_untraced(self):
        async def scenario(service):
            assert service.tracer is None
            await _serve_one(service)
        _run(scenario)


class TestRegistrySharing:
    def test_external_registry_is_used_verbatim(self):
        registry = MetricsRegistry()
        engine = ServingEngine(store=None)

        async def scenario(service):
            assert service.registry is registry
            await _serve_one(service)
            assert registry.counter(
                "eudoxus_service_admission_total",
                "Admission verdicts by outcome and QoS class.",
                ("verdict", "qos")).value(
                verdict="admitted", qos="best_effort") == 1.0
        _run(scenario, engine=engine, metrics=registry)

    def test_signature_identical_through_instrumented_front_door(self):
        """The wire-level determinism contract survives full observability:
        the served signature equals the library-call signature."""
        engine = ServingEngine(store=None, metrics=MetricsRegistry(),
                               tracer=Tracer())

        async def scenario(service):
            return await _serve_one(service, seed=7, stream_id="wire")
        body = _run(scenario, engine=engine)

        from repro.sensors.scenarios import ScenarioKind
        from repro.serving import StreamSegment, StreamSpec
        from repro.serving.engine import run_session
        from repro.service import DEFAULT_QOS_CLASSES, apply_qos
        spec = apply_qos(StreamSpec(
            stream_id="wire",
            segments=(
                StreamSegment(ScenarioKind.OUTDOOR_UNKNOWN, 1.0,
                              label="approach"),
                StreamSegment(ScenarioKind.INDOOR_UNKNOWN, 1.0,
                              label="inside"),
            ),
            camera_rate_hz=5.0, seed=7,
        ), DEFAULT_QOS_CLASSES["best_effort"])
        assert body["signature"] == run_session(spec).signature()


# ----------------------------------------------------------------- healthz


class TestHealthzShardRows:
    def test_one_saturated_shard_surfaces_in_its_row_only(self):
        """Per-shard health is per-shard: saturating one shard's scaler
        flips that row's ``saturated`` flag while the sibling stays clear,
        the cluster-wide headline stays False (the rebalancer can still
        move load), and every row carries its SLO fast-burn flag."""
        from repro.cluster import ShardedServingEngine
        engine = ShardedServingEngine(
            2,
            autoscaler_factory=lambda shard: LatencyAutoscaler(
                min_workers=1, max_workers=1, grow_patience=1),
            shard_parallel=False,
        )
        scaler = engine.autoscalers[1]
        scaler.observe(1000.0, deadline_ms=100.0)
        scaler.decide()
        assert scaler.saturated

        async def scenario(service):
            status, health = await request(service.host, service.port,
                                           "GET", "/healthz")
            assert status == 200
            return health
        health = _run(scenario, engine=engine)

        rows = health["shards"]
        assert [row["shard"] for row in rows] == [0, 1]
        assert [row["saturated"] for row in rows] == [False, True]
        assert all(row["slo_fast_burn"] is False for row in rows)
        assert health["saturated"] is False
        assert health["slo_fast_burn"] == []
