"""Fig. 16: backend kernel latency vs the size of the matrices it operates on.

Paper reference: projection latency grows linearly with the number of map
points; Kalman-gain and marginalization latencies grow super-linearly with
the number of feature points — the relationship the runtime scheduler's
regression models exploit.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.fig16_scaling import (
    fit_quality,
    kernel_scaling_curves,
    measured_kalman_gain_curve,
)


def test_fig16_kernel_latency_scaling(benchmark):
    curves = benchmark.pedantic(kernel_scaling_curves, rounds=1, iterations=1)

    print_banner("Fig. 16 — Backend kernel latency vs matrix size (CPU cost model)")
    for kernel, rows in curves.items():
        print(format_table(["size", "latency_ms"],
                           [[row["size"], row["latency_ms"]] for row in rows],
                           title=f"\n{kernel}"))

    measured = measured_kalman_gain_curve(feature_points=(10, 20, 40), repeats=1)
    print(format_table(["feature_points", "latency_ms"],
                       [[row["size"], row["latency_ms"]] for row in measured],
                       title="\nKalman gain (measured Python implementation)"))

    # Shape assertions: linear projection, quadratic Kalman gain / marginalization.
    assert fit_quality(curves["projection"], degree=1) > 0.99
    assert fit_quality(curves["kalman_gain"], degree=2) > 0.95
    assert fit_quality(curves["marginalization"], degree=2) > 0.95
    for rows in curves.values():
        latencies = [row["latency_ms"] for row in rows]
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))
    assert measured[-1]["latency_ms"] > measured[0]["latency_ms"]
