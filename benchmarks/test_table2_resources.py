"""Table II: FPGA resource consumption of EDX-CAR and EDX-DRONE.

Paper reference values (used / utilization / no-sharing):
EDX-CAR  — LUT 350671 (80.9 %), FF 239347 (27.6 %), DSP 1284 (35.6 %),
           BRAM 5.0 MB (87.5 %); N.S. 795604 / 628346 / 3628 / 13.2.
EDX-DRONE — LUT 231547 (84.5 %), FF 171314 (31.2 %), DSP 1072 (42.5 %),
           BRAM 3.67 MB (92.3 %); N.S. 659485 / 459485 / 3064 / 10.6.
Sharing the frontend and the backend building blocks is what makes the
design fit: without sharing both devices overflow.
"""

import pytest
from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.table2_resources import both_platform_reports

PAPER_SHARED_LUT = {"car": 350671, "drone": 231547}


def test_table2_fpga_resources(benchmark):
    reports = benchmark.pedantic(both_platform_reports, rounds=1, iterations=1)

    print_banner("Table II — FPGA resource consumption (shared vs no-sharing)")
    for kind, report in reports.items():
        rows = []
        for resource in ("lut", "flip_flop", "dsp", "bram_mb"):
            rows.append([
                resource,
                report["shared"][resource],
                report["utilization_percent"][resource],
                report["no_sharing"][resource],
            ])
        print(format_table(
            ["resource", "used", "utilization_%", "no_sharing"], rows,
            title=f"\n{report['platform']} on {report['device']}",
        ))
        print(f"  shared design fits: {report['shared_fits']}   "
              f"no-sharing fits: {report['no_sharing_fits']}")
        memory = report["memory_plan_mb"]
        print(f"  on-chip memory: SPM {memory['scratchpad_mb']:.2f} MB, "
              f"SB {memory['stencil_buffer_mb']:.2f} MB "
              f"(would be {memory['stencil_buffer_unoptimized_mb']:.2f} MB without replication)")

    for kind, report in reports.items():
        assert report["shared"]["lut"] == pytest.approx(PAPER_SHARED_LUT[kind], rel=0.05)
        assert report["shared_fits"]
        assert not report["no_sharing_fits"]
        assert report["no_sharing"]["lut"] > 1.8 * report["shared"]["lut"]
        assert report["frontend_share_of_lut"] > 0.5
