"""Sec. V-C / Fig. 14 / Sec. VII-D: stencil-buffer sizing ablation.

Paper reference: with the pixel-replication optimization the stencil buffers
consume about 0.4 MB on EDX-CAR while the scratchpads use ~3.6 MB; without
the optimization the stencil buffers would grow by roughly 9 MB because a
pixel consumed by disparity refinement lives millions of cycles after
filtering/detection consumed it — far beyond the FPGA's BRAM capacity.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.table2_resources import resource_report
from repro.hardware.memory import replication_beneficial
from repro.hardware.platform import EDX_CAR


def _memory_summaries():
    return {kind: resource_report(kind)["memory_plan_mb"] for kind in ("car", "drone")}


def test_fig14_stencil_buffer_optimization(benchmark):
    summaries = benchmark.pedantic(_memory_summaries, rounds=1, iterations=1)

    print_banner("Fig. 14 / Sec. VII-D — On-chip memory with and without SB replication")
    rows = []
    for kind, summary in summaries.items():
        rows.append([
            kind, summary["scratchpad_mb"], summary["stencil_buffer_mb"],
            summary["stencil_buffer_unoptimized_mb"],
            summary["stencil_buffer_unoptimized_mb"] - summary["stencil_buffer_mb"],
        ])
    print(format_table(
        ["platform", "SPM_MB", "SB_MB (optimized)", "SB_MB (unoptimized)", "extra_MB"], rows,
    ))
    print("\nPaper (car): SPM ~3.6 MB, SB ~0.4 MB; without replication the SB grows by ~9 MB.")

    car = summaries["car"]
    # SPM dominates; the optimized SB is below 1 MB; the unoptimized SB
    # overflows the device's BRAM budget.
    assert car["scratchpad_mb"] > car["stencil_buffer_mb"]
    assert car["stencil_buffer_mb"] < 1.0
    extra = car["stencil_buffer_unoptimized_mb"] - car["stencil_buffer_mb"]
    assert extra > 1.0
    assert car["stencil_buffer_unoptimized_mb"] > EDX_CAR.device.bram_mb

    # The Fig. 14 criterion itself: replication wins when the second consumer
    # reads long after the first.
    assert replication_beneficial([0, 900_000], [100, 1_000_000])
    assert not replication_beneficial([0, 0], [100, 150])
