"""Fig. 17: overall latency and latency variation, baseline vs Eudoxus.

Paper reference (EDX-CAR): end-to-end speedups of 2.5x / 2.1x / 2.0x in the
registration / VIO / SLAM modes (2.1x overall) and a 58.4 % reduction in the
latency standard deviation.  EDX-DRONE achieves 2.0x / 1.9x / 1.8x (1.9x
overall) and a 42.7 % SD reduction.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.fig17_21_acceleration import acceleration_report


def test_fig17_overall_latency_and_variation(benchmark, duration, accel_seeds):
    report = benchmark.pedantic(acceleration_report, args=("car", duration, accel_seeds),
                                rounds=1, iterations=1)

    print_banner("Fig. 17a — EDX-CAR: latency and SD, baseline vs Eudoxus")
    rows = []
    for mode in ("registration", "vio", "slam", "overall"):
        data = report[mode]
        speedup = f"{data['speedup']:.3f}"
        if "speedup_sd" in data:
            speedup += f" ± {data['speedup_sd']:.3f}"
        rows.append([
            mode, data["baseline_latency_ms"], data["eudoxus_latency_ms"], speedup,
            data["baseline_sd_ms"], data["eudoxus_sd_ms"], data["sd_reduction_percent"],
        ])
    print(format_table(
        ["mode", "base_ms", "edx_ms", "speedup", "base_sd", "edx_sd", "sd_red_%"], rows,
    ))
    print(f"\nSeeds swept: {list(accel_seeds)} (speedup shown as mean ± sd across seeds)")
    print("Paper: speedups 2.5/2.1/2.0 (overall 2.1), SD reduction 58.4% on EDX-CAR.")

    for mode in ("registration", "vio", "slam"):
        assert report[mode]["speedup"] > 1.4
        assert report[mode]["sd_reduction_percent"] > 10.0
    assert 1.6 < report["overall"]["speedup"] < 3.2


def test_fig17b_drone_overall(benchmark):
    report = benchmark.pedantic(acceleration_report, args=("drone", 10.0), rounds=1, iterations=1)
    print_banner("Fig. 17b — EDX-DRONE: latency and SD, baseline vs Eudoxus")
    rows = [[mode, report[mode]["baseline_latency_ms"], report[mode]["eudoxus_latency_ms"],
             report[mode]["speedup"], report[mode]["sd_reduction_percent"]]
            for mode in ("registration", "vio", "slam", "overall")]
    print(format_table(["mode", "base_ms", "edx_ms", "speedup", "sd_red_%"], rows))
    print("\nPaper: speedups 2.0/1.9/1.8 (overall 1.9), SD reduction 42.7% on EDX-DRONE.")

    for mode in ("registration", "vio", "slam"):
        assert report[mode]["speedup"] > 1.2
    assert report["overall"]["speedup"] > 1.4
