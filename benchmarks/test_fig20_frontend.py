"""Fig. 20: frontend acceleration results.

Paper reference (EDX-CAR): the frontend latency drops from 92.4 ms to
42.7 ms (2.2x); stereo matching dominates the accelerated frontend; FE/SM
pipelining lifts the frontend throughput to 44 FPS (26.1 FPS without), which
moves the system bottleneck from the frontend to the backend.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.fig17_21_acceleration import frontend_report


def test_fig20_frontend_acceleration(benchmark, duration):
    car = benchmark.pedantic(frontend_report, args=("car", duration), rounds=1, iterations=1)
    drone = frontend_report("drone", 10.0)

    print_banner("Fig. 20 — Frontend latency and throughput")
    rows = []
    for name, report in (("car", car), ("drone", drone)):
        rows.append([
            name, report["baseline_frontend_ms"], report["eudoxus_frontend_ms"],
            report["feature_extraction_ms"], report["stereo_matching_ms"],
            report["frontend_speedup"],
        ])
    print(format_table(
        ["platform", "baseline_ms", "edx_ms", "FE_ms", "SM_ms", "speedup"], rows,
    ))
    fps_rows = [
        [name, report["baseline_frontend_fps"], report["eudoxus_frontend_fps_no_pipelining"],
         report["eudoxus_frontend_fps_pipelined"]]
        for name, report in (("car", car), ("drone", drone))
    ]
    print(format_table(["platform", "baseline_fps", "no_pipelining_fps", "pipelined_fps"], fps_rows,
                       title="\nFrontend throughput (Fig. 20b)"))
    print("\nPaper: car frontend 92.4 -> 42.7 ms (2.2x); 26.1 -> 44.0 FPS with FE/SM pipelining.")

    for report in (car, drone):
        assert 1.5 < report["frontend_speedup"] < 4.0
        # Stereo matching dominates the accelerated frontend (motivates the
        # FE time-multiplexing decision).
        assert report["stereo_matching_ms"] > report["feature_extraction_ms"]
        assert report["eudoxus_frontend_fps_pipelined"] > report["eudoxus_frontend_fps_no_pipelining"]
