"""Fig. 19: energy per frame, baseline vs Eudoxus.

Paper reference: EDX-CAR reduces the energy per frame from 1.9 J to 0.5 J
(73.7 % reduction); EDX-DRONE from 0.8 J to 0.4 J (47.4 %), with the smaller
saving explained by the FPGA static power standing out once dynamic power
shrinks.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.fig17_21_acceleration import acceleration_report


def test_fig19_energy_per_frame(benchmark, duration):
    car = benchmark.pedantic(acceleration_report, args=("car", duration), rounds=1, iterations=1)
    drone = acceleration_report("drone", 10.0)

    print_banner("Fig. 19 — Energy per frame (J), baseline vs Eudoxus")
    rows = []
    for name, report in (("car", car), ("drone", drone)):
        overall = report["overall"]
        rows.append([
            name, overall["baseline_energy_j"], overall["eudoxus_energy_j"],
            overall["energy_reduction_percent"],
        ])
    print(format_table(["platform", "baseline_J", "eudoxus_J", "reduction_%"], rows))
    print("\nPaper: car 1.9 J -> 0.5 J (73.7%); drone 0.8 J -> 0.4 J (47.4%).")

    assert car["overall"]["energy_reduction_percent"] > 40.0
    assert drone["overall"]["energy_reduction_percent"] > 25.0
    # The car baseline burns more energy per frame than the drone baseline.
    assert car["overall"]["baseline_energy_j"] > drone["overall"]["baseline_energy_j"]
    # The drone's relative saving is smaller (static FPGA power stands out).
    assert car["overall"]["energy_reduction_percent"] > drone["overall"]["energy_reduction_percent"] - 5.0
