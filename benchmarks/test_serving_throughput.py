"""Serving throughput: a 16-session mixed-deployment fleet.

The serving engine multiplexes concurrent localization sessions — each a
time-varying deployment with indoor/outdoor transitions, GPS dropouts and
map entry/exit — over the shared worker pool.  This benchmark serves the
fleet twice, once through the serial multiplexing event loop and once
sharded across worker processes, verifies the two are bit-identical
(deterministic per-session seeds, the same guarantee the experiment runner
makes for cells), and reports the headline serving metrics: sessions/sec,
frames/sec, and p50/p95 per-frame latency.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.runner import resolve_max_workers
from repro.serving import ServingEngine, mixed_fleet

FLEET_SIZE = 16


def test_serving_throughput(benchmark, serving_settings):
    fleet = mixed_fleet(
        FLEET_SIZE,
        segment_duration=serving_settings["segment_duration"],
        camera_rate_hz=5.0,
    )

    serial = ServingEngine(store=None, max_workers=1).serve(fleet, parallel=False)
    parallel_engine = ServingEngine(store=None, max_workers=max(2, resolve_max_workers()))
    report = benchmark.pedantic(
        lambda: parallel_engine.serve(fleet, parallel=True), rounds=1, iterations=1
    )

    identical = all(
        report.results[stream_id].signature() == result.signature()
        for stream_id, result in serial.results.items()
    )

    print_banner("Serving — 16 concurrent mixed-deployment sessions")
    rows = []
    for label, r in (("serial", serial), ("parallel", report)):
        summary = r.summary()
        rows.append([
            label, summary["sessions"], summary["frames"], round(summary["wall_s"], 2),
            round(summary["sessions_per_second"], 2), round(summary["frames_per_second"], 1),
            round(summary["p50_frame_ms"], 2), round(summary["p95_frame_ms"], 2),
            summary["mode_switches"], summary["workers"],
        ])
    print(format_table(
        ["path", "sessions", "frames", "wall_s", "sessions/s", "frames/s",
         "p50_ms", "p95_ms", "switches", "workers"], rows,
    ))
    print(f"\nsessions/sec (parallel): {report.sessions_per_second:.2f}")
    print(f"p95 frame latency (parallel): {report.latency_percentile(95.0):.2f} ms")
    print(f"mean event-loop batch width (serial): {serial.mean_batch_size:.1f}")
    print(f"parallel bit-identical to serial: {identical}")

    assert report.session_count >= 16
    assert report.parallel, "no process pool spawned — the comparison would be vacuous"
    assert identical, "parallel serving diverged from serial"
    assert report.mode_switch_count > 0
    assert report.latency_percentile(95.0) > 0.0
    assert serial.mean_batch_size > 1.0
