"""Serving throughput: a 16-session mixed-deployment fleet.

The serving engine multiplexes concurrent localization sessions — each a
time-varying deployment with indoor/outdoor transitions, GPS dropouts and
map entry/exit — over the shared worker pool.  This benchmark serves the
fleet twice, once through the serial multiplexing event loop and once
sharded across worker processes, verifies the two are bit-identical
(deterministic per-session seeds, the same guarantee the experiment runner
makes for cells), and reports the headline serving metrics: sessions/sec,
frames/sec, and p50/p95 per-frame latency.

The streaming case serves the same fleet through the arrival-time
ingestion event loop under a latency-aware autoscaler: frames are admitted
as they arrive on the virtual clock, an under-provisioned pool builds a
backlog whose serving latency breaches the per-session deadline, the
autoscaler grows the pool until the fleet keeps up, and shrinks it again
once the backlog drains — while the served results stay bit-identical to
the materialized path.
"""

import numpy as np
from conftest import append_bench_row, print_banner

from repro.characterization.report import format_table
from repro.experiments.common import accelerator_for
from repro.experiments.runner import resolve_max_workers
from repro.scheduler import LatencyAutoscaler
from repro.serving import ServingEngine, mixed_fleet

FLEET_SIZE = 16
# Streaming-case QoS: two frame intervals at 5 Hz between a frame's arrival
# and its served estimate.
DEADLINE_MS = 400.0


def test_serving_throughput(benchmark, serving_settings):
    fleet = mixed_fleet(
        FLEET_SIZE,
        segment_duration=serving_settings["segment_duration"],
        camera_rate_hz=5.0,
    )

    serial = ServingEngine(store=None, max_workers=1).serve(fleet, parallel=False)
    parallel_engine = ServingEngine(store=None, max_workers=max(2, resolve_max_workers()))
    report = benchmark.pedantic(
        lambda: parallel_engine.serve(fleet, parallel=True), rounds=1, iterations=1
    )

    identical = all(
        report.results[stream_id].signature() == result.signature()
        for stream_id, result in serial.results.items()
    )

    print_banner("Serving — 16 concurrent mixed-deployment sessions")
    rows = []
    for label, r in (("serial", serial), ("parallel", report)):
        summary = r.summary()
        rows.append([
            label, summary["sessions"], summary["frames"], round(summary["wall_s"], 2),
            round(summary["sessions_per_second"], 2), round(summary["frames_per_second"], 1),
            round(summary["p50_frame_ms"], 2), round(summary["p95_frame_ms"], 2),
            summary["mode_switches"], summary["workers"],
        ])
    print(format_table(
        ["path", "sessions", "frames", "wall_s", "sessions/s", "frames/s",
         "p50_ms", "p95_ms", "switches", "workers"], rows,
    ))
    print(f"\nsessions/sec (parallel): {report.sessions_per_second:.2f}")
    print(f"p95 frame latency (parallel): {report.latency_percentile(95.0):.2f} ms")
    print(f"mean event-loop batch width (serial): {serial.mean_batch_size:.1f}")
    print(f"parallel bit-identical to serial: {identical}")

    append_bench_row(
        "serving_throughput",
        sessions_per_second=report.sessions_per_second,
        frames_per_second=report.summary()["frames_per_second"],
        p95_frame_ms=report.latency_percentile(95.0),
    )

    assert report.session_count >= 16
    assert report.parallel, "no process pool spawned — the comparison would be vacuous"
    assert identical, "parallel serving diverged from serial"
    assert report.mode_switch_count > 0
    assert report.latency_percentile(95.0) > 0.0
    assert serial.mean_batch_size > 1.0


def test_serving_streaming_autoscale(benchmark, serving_settings):
    """Streaming ingestion under load: autoscaled capacity, identical bits."""
    fleet = mixed_fleet(
        FLEET_SIZE,
        segment_duration=serving_settings["segment_duration"],
        camera_rate_hz=5.0,
        deadline_ms=DEADLINE_MS,
    )

    materialized = ServingEngine(store=None, max_workers=1).serve(
        fleet, parallel=False, ingestion="materialized")

    accelerator = accelerator_for("drone")

    def serve_streaming():
        # A fresh autoscaler per round: it starts under-provisioned (one
        # worker against sixteen sessions) and must discover the right size.
        autoscaler = LatencyAutoscaler(min_workers=1, max_workers=8, window=48,
                                       grow_patience=2, shrink_patience=4,
                                       cooldown=2)
        engine = ServingEngine(store=None, max_workers=1, autoscaler=autoscaler,
                               accelerator=accelerator)
        return engine.serve(fleet, parallel=False, ingestion="streaming")

    report = benchmark.pedantic(serve_streaming, rounds=1, iterations=1)

    identical = all(
        report.results[stream_id].signature() == result.signature()
        for stream_id, result in materialized.results.items()
    )
    grows = [d for d in report.scale_decisions if d.action == "grow"]
    shrinks = [d for d in report.scale_decisions if d.action == "shrink"]
    # Steady state: the second half of the run, after the scaler converged.
    steady = report.virtual_latency_ms[len(report.virtual_latency_ms) // 2:]
    steady_p95 = float(np.percentile(steady, 95.0)) if steady else 0.0

    print_banner("Serving — streaming ingestion + latency-aware autoscaling")
    rows = [[d.tick, d.action, d.workers_before, d.workers_after,
             round(d.p95_ms, 1), round(d.pressure, 2)]
            for d in report.scale_decisions if d.resized]
    print(format_table(
        ["tick", "action", "workers", "->", "p95_ms", "pressure"], rows))
    print(f"\nframes served: {report.frame_count} over {report.ticks} virtual ticks")
    print(f"serving latency: p50 {report.virtual_latency_percentile(50.0):.1f} ms, "
          f"p95 {report.virtual_latency_percentile(95.0):.1f} ms "
          f"(steady-state p95 {steady_p95:.1f} ms vs {DEADLINE_MS:.0f} ms deadline)")
    print(f"deadline misses while converging: {report.deadline_misses}")
    print(f"pool: {report.scale_decisions[0].workers_before if report.scale_decisions else 1} "
          f"-> {report.final_workers} workers "
          f"({len(grows)} grow / {len(shrinks)} shrink decisions)")
    print(f"streaming bit-identical to materialized: {identical}")
    trained = {m: accelerator.scheduler.observation_count(m)
               for m in ("vio", "slam", "registration")}
    print(f"online offload-scheduler observations: {trained}")

    append_bench_row(
        "serving_streaming_autoscale",
        sessions_per_second=report.sessions_per_second,
        p95_serving_ms=report.virtual_latency_percentile(95.0),
        steady_p95_ms=steady_p95,
        deadline_misses=report.deadline_misses,
        final_workers=report.final_workers,
    )

    assert identical, "streaming ingestion diverged from the materialized path"
    assert grows, "an under-provisioned pool must grow under backlog pressure"
    assert shrinks, "the pool must shrink once the backlog drains"
    assert steady_p95 < DEADLINE_MS, (
        "converged serving latency must meet the per-session deadline")
    assert sum(trained.values()) == report.frame_count
