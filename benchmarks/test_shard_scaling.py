"""Shard scaling: the same fleet served through 1..N coordinated engines.

The sharded engine partitions a multi-environment fleet across N full
serving engines by consistent-hashing ``stream_id``, runs the shards as
separate processes when the host has the cores, and merges the per-shard
reports.  This benchmark serves one fleet through a plain single engine
and through clusters of increasing width, then verifies the two halves of
the scale-out story:

* **determinism** — every topology produces bit-identical sessions, and
  the merged report's signature equals the plain engine's (the 1-shard
  case is the pinned acceptance bound, but the signature is in fact
  topology-invariant);
* **throughput** — sessions/sec grows near-linearly with shard count.
  The scaling assertions are gated on the host's usable cores (a 1-core
  box runs every shard inline, so there is nothing to measure): with >= 4
  cores the 4-shard cluster must reach 3x the single shard, with >= 2
  cores the 2-shard cluster must reach 1.4x.

Walls are best-of-N to absorb process-pool warm-up jitter; the identity
assertions run on every round regardless.
"""

from conftest import append_bench_row, print_banner

from repro.characterization.report import format_table
from repro.cluster import ShardedServingEngine
from repro.experiments.runner import resolve_max_workers
from repro.scheduler import LatencyAutoscaler
from repro.serving import ServingEngine, multi_environment_fleet

FLEET_SIZE = 16
DEADLINE_MS = 400.0
#: Best-of-N walls per topology — one warm-up, one measured, keep the min.
ROUNDS = 2


def _cluster(shards: int) -> ShardedServingEngine:
    return ShardedServingEngine(
        shards,
        autoscaler_factory=lambda shard: LatencyAutoscaler(
            min_workers=1, max_workers=4),
        max_workers_per_shard=1,
    )


def _signatures(report):
    return {stream_id: result.signature()
            for stream_id, result in report.results.items()}


def test_shard_scaling(benchmark, shard_settings, serving_settings):
    fleet = multi_environment_fleet(
        FLEET_SIZE,
        segment_duration=serving_settings["segment_duration"],
        camera_rate_hz=5.0,
        deadline_ms=DEADLINE_MS,
    )
    baseline = ServingEngine(store=None, max_workers=1).serve(
        fleet, parallel=False)
    expected = _signatures(baseline)

    cores = resolve_max_workers()
    shard_counts = shard_settings["shard_counts"]
    best = {}
    for shards in shard_counts:
        for round_index in range(ROUNDS):
            if shards == shard_counts[-1] and round_index == 0:
                report = benchmark.pedantic(
                    lambda: _cluster(shards).serve(fleet),
                    rounds=1, iterations=1)
            else:
                report = _cluster(shards).serve(fleet)
            assert _signatures(report) == expected, (
                f"{shards}-shard serving diverged from the plain engine")
            assert report.signature() == baseline.signature()
            if shards not in best or report.wall_s < best[shards].wall_s:
                best[shards] = report

    speedup = {
        shards: (best[shards].sessions_per_second /
                 best[1].sessions_per_second)
        for shards in shard_counts
    }

    print_banner(
        f"Serving — horizontal shard scaling ({cores} usable cores)")
    rows = []
    for shards in shard_counts:
        summary = best[shards].summary()
        rows.append([
            shards, "processes" if best[shards].parallel else "inline",
            summary["sessions"], summary["frames"],
            round(summary["wall_s"], 2),
            round(summary["sessions_per_second"], 2),
            round(summary["frames_per_second"], 1),
            round(speedup[shards], 2),
        ])
    print(format_table(
        ["shards", "execution", "sessions", "frames", "wall_s",
         "sessions/s", "frames/s", "speedup"], rows))
    print(f"\nall topologies bit-identical to the plain engine: True")
    print(f"report signature (topology-invariant): "
          f"{baseline.signature()[:16]}…")

    for shards in shard_counts:
        append_bench_row(
            f"shard_scaling_x{shards}",
            sessions_per_second=best[shards].sessions_per_second,
            speedup=speedup[shards],
            parallel=best[shards].parallel,
        )

    # The acceptance pin: a 1-shard cluster is the plain engine, bit for
    # bit, merged report included.
    assert best[1].signature() == baseline.signature()
    assert best[1].session_count == FLEET_SIZE

    if cores >= 4 and 4 in best:
        assert best[4].parallel, "4 cores available but no pool spawned"
        assert speedup[4] >= 3.0, (
            f"4-shard speedup {speedup[4]:.2f}x below the 3.0x bound")
    elif cores >= 2 and 2 in best:
        assert best[2].parallel, "2 cores available but no pool spawned"
        assert speedup[2] >= 1.4, (
            f"2-shard speedup {speedup[2]:.2f}x below the 1.4x bound")
    else:
        # Single usable core: every shard ran inline on one CPU, so wall
        # ratios measure overhead, not scaling.  The identity assertions
        # above still carry the benchmark's correctness weight.
        print("single-core host: scaling bound skipped, identity enforced")
