"""Table I: the backend kernels decompose into five matrix building blocks.

Paper reference: projection uses multiplication only; Kalman gain uses
multiplication, decomposition, transpose and substitution; marginalization
uses all five (adding the matrix inverse).
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.table1_blocks import building_block_matrix, expected_matrix, matches_paper
from repro.linalg.primitives import BuildingBlock


def test_table1_building_blocks(benchmark):
    measured = benchmark.pedantic(building_block_matrix, rounds=1, iterations=1)
    expected = expected_matrix()

    print_banner("Table I — Kernel decomposition into matrix building blocks")
    headers = ["building block", "projection", "kalman_gain", "marginalization"]
    rows = []
    for block in BuildingBlock:
        rows.append([
            block.value,
            "X" if measured["projection"][block.value] else "",
            "X" if measured["kalman_gain"][block.value] else "",
            "X" if measured["marginalization"][block.value] else "",
        ])
    print(format_table(headers, rows))
    print("\nMatches the paper's Table I:", matches_paper())

    assert all(matches_paper().values())
    # The inverse building block is exclusive to marginalization in the paper.
    assert not expected["projection"][BuildingBlock.INVERSE.value]
    assert not expected["kalman_gain"][BuildingBlock.INVERSE.value]
    assert expected["marginalization"][BuildingBlock.INVERSE.value]
