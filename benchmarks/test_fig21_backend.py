"""Fig. 21: backend acceleration results.

Paper reference (EDX-CAR): the registration backend latency drops by 49.4 %
(projection kernel accelerated by 95.3 %), the Kalman-gain kernel by 2.0x
(16.3 % backend reduction) and marginalization by 2.4x (30.2 % backend
reduction); backend SDs shrink substantially in all three modes.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.fig17_21_acceleration import backend_report


def test_fig21_backend_acceleration(benchmark, duration, accel_seeds):
    car = benchmark.pedantic(backend_report, args=("car", duration, accel_seeds),
                             rounds=1, iterations=1)
    drone = backend_report("drone", 10.0)

    print_banner("Fig. 21 — Backend latency and variation, baseline vs Eudoxus")
    for name, report in (("car", car), ("drone", drone)):
        rows = []
        for mode, data in report.items():
            kernel_speedup = f"{data['kernel_speedup']:.2f}"
            if "kernel_speedup_sd" in data:
                kernel_speedup += f" ± {data['kernel_speedup_sd']:.2f}"
            rows.append([
                mode, data["baseline_backend_ms"], data["eudoxus_backend_ms"],
                data["backend_latency_reduction_percent"],
                data["baseline_backend_sd_ms"], data["eudoxus_backend_sd_ms"],
                data["sd_reduction_percent"], data["accelerated_kernel"], kernel_speedup,
            ])
        print(format_table(
            ["mode", "base_ms", "edx_ms", "lat_red_%", "base_sd", "edx_sd", "sd_red_%",
             "kernel", "kernel_speedup"],
            rows, title=f"\nEDX-{name.upper()} (seeds {list(accel_seeds) if name == 'car' else [0]})",
        ))
    print("\nPaper (car): projection -95.3%, Kalman gain 2.0x, marginalization 2.4x.")

    for report in (car, drone):
        for mode, data in report.items():
            assert data["kernel_speedup"] > 1.2
            assert data["backend_latency_reduction_percent"] > 5.0
            assert data["sd_reduction_percent"] > 0.0
    # The projection kernel benefits the most (it is a single big matmul).
    assert car["registration"]["kernel_speedup"] > car["vio"]["kernel_speedup"]
