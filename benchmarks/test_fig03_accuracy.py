"""Fig. 3: localization error vs frame rate in the four operating scenarios.

Paper reference points (Fig. 3a-d): SLAM is the most accurate indoors without
a map (0.19 m vs 0.27 m for VIO); registration wins indoors with a map
(0.15 m); VIO+GPS wins outdoors (0.10 m) while SLAM degrades badly outdoors.
Our absolute errors differ (synthetic sensors), but the per-scenario winner
matches.  The full tier sweeps the seeds axis and reports mean +- SD error
bars per (algorithm, frame rate) point.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.fig03_accuracy import accuracy_vs_framerate, best_algorithm_per_scenario
from repro.sensors.scenarios import ScenarioKind

PAPER_BEST = {
    ScenarioKind.INDOOR_UNKNOWN.value: "slam",
    ScenarioKind.INDOOR_KNOWN.value: "registration",
    ScenarioKind.OUTDOOR_UNKNOWN.value: "vio",
    ScenarioKind.OUTDOOR_KNOWN.value: "vio",
}


def test_fig03_accuracy_vs_framerate(benchmark, fig03_settings):
    def _compute():
        return accuracy_vs_framerate(
            frame_rates=fig03_settings["frame_rates"],
            duration=fig03_settings["duration"],
            platform_kind="drone", landmark_count=250,
            seeds=fig03_settings["seeds"],
        )

    report = benchmark.pedantic(_compute, rounds=1, iterations=1)
    print_banner("Fig. 3 — Localization error vs frame rate (RMSE, metres)")
    for scenario, rows in report.items():
        table_rows = [
            [row["algorithm"], row["frame_rate_fps"],
             f"{row['rmse_m']:.4f} ± {row['rmse_sd_m']:.4f}",
             f"{row['relative_error_percent']:.3f} ± {row['relative_error_sd_percent']:.3f}",
             row["seed_count"]]
            for row in rows
        ]
        print(format_table(
            ["algorithm", "fps", "rmse_m (mean ± sd)", "rel_err_% (mean ± sd)", "seeds"],
            table_rows,
            title=f"\nScenario: {scenario} (paper winner: {PAPER_BEST[scenario]})",
        ))

    best = best_algorithm_per_scenario(report)
    print("\nBest algorithm per scenario (measured):", best)

    # Shape checks against the paper's qualitative result.
    assert best[ScenarioKind.INDOOR_UNKNOWN.value] == "slam"
    assert best[ScenarioKind.OUTDOOR_UNKNOWN.value] == "vio"
    assert best[ScenarioKind.OUTDOOR_KNOWN.value] == "vio"
    assert best[ScenarioKind.INDOOR_KNOWN.value] in ("registration", "slam")
    # Registration must not appear in map-less scenarios.
    for scenario in (ScenarioKind.INDOOR_UNKNOWN.value, ScenarioKind.OUTDOOR_UNKNOWN.value):
        assert all(row["algorithm"] != "registration" for row in report[scenario])
