"""Service overload: a flash crowd against a pinned two-worker front door.

The open-loop load generator replays a flash-crowd arrival profile — a
quiet baseline with a mid-run burst at more than 10x the rate — against a
deliberately tiny service: a two-worker virtual pool that the crowd pins
at ``max_workers`` within a few scheduler ticks.  What the harness then
measures is the front door's honesty under overload:

* the autoscaler reports ``saturated`` instead of looping on hopeful
  ``grow``-patience holds (the PR's load-bearing bugfix);
* admission control sheds on that signal — the reported shed rate is
  nonzero and ``saturated`` dominates the shed reasons;
* protected (``gold``) sessions keep being admitted while saturated — up
  to the pinned pool's capacity — and still get served under the QoS
  deadline, because shedding keeps each steady wave inside that capacity;
* goodput stays above a floor — shedding degrades throughput gracefully
  instead of collapsing it.

A closed-loop client could not show any of this: it would slow down with
the service and the overload would vanish from the measurements.
"""

import asyncio

from conftest import print_banner

from repro.characterization.report import format_table
from repro.scheduler import LatencyAutoscaler
from repro.serving import ServingEngine
from repro.service import (
    AdmissionController,
    ArrivalProfile,
    LoadGenerator,
    LocalizationService,
)

RATE_HZ = 5.0
# The tightest class in play (gold, the protected tier): two frame
# intervals between arrival and served estimate.
DEADLINE_MS = 200.0
SEGMENTS = [{"kind": "outdoor_unknown", "duration": 2.0, "label": "cruise"}]
# Baseline 2 sessions/s with a 25 sessions/s crowd in the middle half.
PROFILE = ArrivalProfile(kind="flash", rate=2.0, peak_rate=25.0,
                         duration_s=4.0, flash_fraction=0.5, seed=11)
# One protected tenant among two sheddable ones: the crowd is mostly
# silver (shed on saturation), with a gold stream that must keep flowing.
QOS_CYCLE = ("gold", "silver", "silver")


def _build_service():
    # Two virtual workers at one frame per tick: pinned capacity of two
    # concurrent 5 Hz sessions.  The oversized pressure window keeps the
    # saturation signal latched across the whole flash (it would take a
    # full window of healthy samples to decay), so exactly one discovery
    # transient precedes the shedding regime.
    autoscaler = LatencyAutoscaler(min_workers=1, max_workers=2,
                                   grow_patience=1, shrink_patience=50,
                                   cooldown=0, window=512)
    engine = ServingEngine(store=None, autoscaler=autoscaler,
                           frames_per_worker_tick=1)
    admission = AdmissionController(
        policy="saturation", max_inflight=64,
        saturated_inflight=autoscaler.max_workers * engine.frames_per_worker_tick,
        saturated_fn=lambda: autoscaler.saturated)
    return LocalizationService(engine, admission=admission, port=0)


async def _flash_crowd():
    service = _build_service()
    await service.start()
    try:
        generator = LoadGenerator(
            service.host, service.port,
            session_body={"segments": SEGMENTS, "camera_rate_hz": RATE_HZ},
            qos_cycle=QOS_CYCLE)
        report = await generator.run(PROFILE)
    finally:
        await service.stop()
    return service, report


def test_service_overload_shedding(benchmark):
    service, report = benchmark.pedantic(
        lambda: asyncio.run(_flash_crowd()), rounds=1, iterations=1)

    waves = service.waves
    saturated_waves = [i for i, wave in enumerate(waves) if wave["saturated"]]
    first_saturated = saturated_waves[0] if saturated_waves else len(waves)
    # The discovery transient spans the saturating wave itself plus the
    # in-flight admissions that landed behind it before the flag rose;
    # everything after is the shedding regime the harness judges.
    steady = waves[first_saturated + 2:]

    print_banner("Service front door — flash crowd at pinned max_workers")
    summary = report.summary()
    print(format_table(
        ["offered", "admitted", "shed", "completed", "shed_rate",
         "goodput/s", "p95_turnaround_ms"],
        [[summary["offered"], summary["admitted"], summary["shed"],
          summary["completed"], round(summary["shed_rate"], 3),
          round(summary["goodput_per_s"], 2),
          round(summary["p95_turnaround_ms"], 1)]],
    ))
    rows = [[i, int(w["sessions"]), round(w["wall_s"], 3),
             round(w["p95_serving_ms"], 1), int(w["deadline_misses"]),
             int(w["final_workers"]), bool(w["saturated"])]
            for i, w in enumerate(waves)]
    print(format_table(
        ["wave", "sessions", "wall_s", "p95_serving_ms", "misses",
         "workers", "saturated"], rows))
    print(f"\nshed reasons: {report.shed_reasons}")
    print(f"first saturated wave: {first_saturated} of {len(waves)}")

    # The crowd actually overloaded the service, and the front door shed.
    assert report.shed > 0, "flash crowd never triggered shedding"
    assert report.shed_rate > 0.05
    assert report.shed_reasons.get("saturated", 0) > 0, (
        "shedding must be keyed on the autoscaler's saturated signal")
    assert saturated_waves, "no serving wave ever reported saturation"
    # Every admitted session completed with a result — shedding happens at
    # the door, never after admission.
    assert report.errors == 0
    assert report.completed == report.admitted
    # Goodput floor: overload degraded throughput, it did not collapse it.
    assert report.completed >= 5
    assert report.goodput > 0.5
    # The protected tenant kept flowing while the door was shedding.
    assert any(d.admitted and d.saturated
               for d in service.admission.decisions), (
        "no protected session was admitted under saturation")
    # Past the discovery transient, shedding keeps each wave inside the
    # pinned pool's capacity, so admitted sessions meet the QoS deadline.
    assert steady, "the run ended inside the discovery transient"
    for wave in steady:
        assert wave["p95_serving_ms"] <= DEADLINE_MS, (
            f"post-saturation wave exceeded the deadline: {wave}")
