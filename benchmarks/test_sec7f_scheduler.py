"""Sec. VII-F: effectiveness of the runtime backend scheduler.

Paper reference: the regression models reach R^2 of 0.83 / 0.82 / 0.98 for
registration / VIO / SLAM; the runtime scheduler matches the oracle to
within 0.001 %; almost all registration and VIO frames are offloaded while
only 76.4 % of SLAM frames are; always offloading SLAM frames would increase
latency by 8.3 %.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.sec7f_scheduler import scheduler_report


def test_sec7f_runtime_scheduler(benchmark, duration):
    report = benchmark.pedantic(scheduler_report, args=("car", duration), rounds=1, iterations=1)

    print_banner("Sec. VII-F — Runtime scheduler effectiveness (EDX-CAR)")
    rows = []
    for mode, data in report.items():
        rows.append([
            mode, data["kernel"], data["training_r2"], data["offload_fraction"],
            data["scheduler_mean_ms"], data["oracle_mean_ms"], data["gap_to_oracle_percent"],
            data["always_offload_penalty_percent"],
        ])
    print(format_table(
        ["mode", "kernel", "train_R2", "offload_frac", "sched_ms", "oracle_ms",
         "gap_%", "always_penalty_%"],
        rows,
    ))
    print("\nPaper: R^2 0.83/0.82/0.98; ~0% gap to oracle; SLAM offloads 76.4% of frames;"
          " always offloading SLAM costs +8.3% latency.")

    for mode, data in report.items():
        assert data["training_r2"] > 0.6
        assert data["gap_to_oracle_percent"] < 10.0
    # Registration and VIO kernels are (almost) always worth offloading.
    assert report["registration"]["offload_fraction"] > 0.9
    assert report["vio"]["offload_fraction"] > 0.9
    # SLAM marginalization is sometimes too small to offload.
    assert report["slam"]["offload_fraction"] < 1.0
    assert report["slam"]["always_offload_penalty_percent"] > 0.0
