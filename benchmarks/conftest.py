"""Benchmark harness configuration.

Each benchmark module reproduces one of the paper's tables or figures: it
computes the figure's data via the experiment drivers (sharing cached
characterization runs across modules), prints the rows/series the paper
reports, and registers a representative computation with pytest-benchmark so
``pytest benchmarks/ --benchmark-only`` also reports stable timing numbers.
"""

import pytest

from repro.experiments import common

# One characterization length shared by every benchmark module.  Longer runs
# sharpen the statistics but grow the (pure Python) run time roughly linearly.
CHARACTERIZATION_DURATION = 15.0


@pytest.fixture(scope="session")
def duration():
    return CHARACTERIZATION_DURATION


@pytest.fixture(scope="session", autouse=True)
def warm_runs():
    """Build the three per-mode characterization runs once for the whole session."""
    common.all_mode_runs("car", duration=CHARACTERIZATION_DURATION)
    yield


def print_banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
