"""Benchmark harness configuration.

Each benchmark module reproduces one of the paper's tables or figures: it
computes the figure's data via the experiment drivers (sharing cached
characterization runs across modules), prints the rows/series the paper
reports, and registers a representative computation with pytest-benchmark so
``pytest benchmarks/ --benchmark-only`` also reports stable timing numbers.

Two tiers are provided:

* the full tier (default): the standard characterization length;
* the smoke tier (``pytest benchmarks -m smoke``): every figure at a short
  characterization length and a single frame rate, for a sub-minute sanity
  pass (used by CI on every push).

Runs are resolved through :mod:`repro.experiments.runner`, so both tiers
reuse the persistent on-disk run store across sessions.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import common

#: Where the serving-shaped benchmarks append their headline rows so CI can
#: archive them and the trend checker can diff consecutive runs.
BENCH_TREND_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

# One characterization length shared by every benchmark module.  Longer runs
# sharpen the statistics but grow the (pure Python) run time roughly linearly.
CHARACTERIZATION_DURATION = 15.0
# The smoke tier's length: long enough that every qualitative assertion in
# the suite still holds (the unit tests pin the same facts at 6 s), short
# enough for a sub-minute pass.
SMOKE_DURATION = 6.0


def _smoke_selected(config) -> bool:
    markexpr = getattr(config.option, "markexpr", "") or ""
    return "smoke" in markexpr and "not smoke" not in markexpr


def _duration_for(config) -> float:
    return SMOKE_DURATION if _smoke_selected(config) else CHARACTERIZATION_DURATION


def _seeds_for(config) -> tuple:
    """Seed tier shared by the sweeps and the warm-up prefetch: the smoke
    tier runs a single seed, the full tier sweeps two for error bars."""
    return (0,) if _smoke_selected(config) else (0, 1)


def pytest_collection_modifyitems(config, items):
    """Every benchmark test participates in the smoke tier (at smoke durations)."""
    benchmarks_dir = Path(__file__).parent
    for item in items:
        if Path(str(getattr(item, "fspath", ""))).parent == benchmarks_dir:
            item.add_marker(pytest.mark.smoke)


@pytest.fixture(scope="session")
def duration(request):
    return _duration_for(request.config)


@pytest.fixture(scope="session")
def fig03_settings(request):
    """Frame rates, sequence length and seeds for the Fig. 3 accuracy sweep."""
    if _smoke_selected(request.config):
        return {"frame_rates": (10.0,), "duration": SMOKE_DURATION,
                "seeds": _seeds_for(request.config)}
    return {"frame_rates": (5.0, 10.0), "duration": 12.0,
            "seeds": _seeds_for(request.config)}


@pytest.fixture(scope="session")
def accel_seeds(request):
    """Seeds for the Fig. 17/21 acceleration sweeps (error bars in full tier)."""
    return _seeds_for(request.config)


@pytest.fixture(scope="session")
def serving_settings(request):
    """Fleet shape for the serving throughput benchmark."""
    if _smoke_selected(request.config):
        return {"segment_duration": 1.6}
    return {"segment_duration": 2.4}


@pytest.fixture(scope="session")
def shard_settings(request):
    """Shard ladder for the horizontal-scaling benchmark."""
    if _smoke_selected(request.config):
        return {"shard_counts": (1, 2)}
    return {"shard_counts": (1, 2, 4)}


@pytest.fixture(scope="session", autouse=True)
def warm_runs(request):
    """Build the per-mode characterization runs once for the whole session.

    All (mode, seed) cells are requested as one batch so cold runs fan out
    across the worker pool together.  Skipped when only serving-shaped
    benchmarks were collected (they build their own fleets and read none of
    the characterization runs), so the dedicated serving CI job stays lean.
    """
    serving_benchmarks = {"test_serving_throughput.py", "test_map_reuse.py",
                          "test_obs_overhead.py", "test_shard_scaling.py",
                          "test_map_tiering.py"}
    benchmarks_dir = Path(__file__).parent
    paths = [Path(str(getattr(item, "fspath", "")))
             for item in getattr(request.session, "items", [])]
    characterization_selected = any(
        path.parent == benchmarks_dir and path.name not in serving_benchmarks
        for path in paths
    )
    if characterization_selected:
        common.prefetch_mode_runs("car", duration=_duration_for(request.config),
                                  seeds=_seeds_for(request.config))
    yield


def print_banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def append_bench_row(bench: str, **fields: float) -> None:
    """Append one summary row to ``BENCH_serving.json`` at the repo root.

    The file is a trend log: ``{"rows": [{"bench": ..., **fields}, ...]}``,
    one row per benchmark per run, newest last.  CI uploads it as an
    artifact and ``scripts/check_bench_trend.py`` flags >20 % regressions
    against each benchmark's previous row.  Corrupt or missing files start
    a fresh log rather than failing the benchmark.
    """
    try:
        payload = json.loads(BENCH_TREND_PATH.read_text())
        rows = payload.get("rows", [])
        if not isinstance(rows, list):
            rows = []
    except (OSError, ValueError):
        rows = []
    rows.append({"bench": bench,
                 **{name: (value if isinstance(value, (int, str, bool))
                           else float(value))
                    for name, value in fields.items()}})
    BENCH_TREND_PATH.write_text(
        json.dumps({"rows": rows}, indent=1, sort_keys=True) + "\n")
