"""Benchmark harness configuration.

Each benchmark module reproduces one of the paper's tables or figures: it
computes the figure's data via the experiment drivers (sharing cached
characterization runs across modules), prints the rows/series the paper
reports, and registers a representative computation with pytest-benchmark so
``pytest benchmarks/ --benchmark-only`` also reports stable timing numbers.

Two tiers are provided:

* the full tier (default): the standard characterization length;
* the smoke tier (``pytest benchmarks -m smoke``): every figure at a short
  characterization length and a single frame rate, for a sub-minute sanity
  pass (used by CI on every push).

Runs are resolved through :mod:`repro.experiments.runner`, so both tiers
reuse the persistent on-disk run store across sessions.
"""

from pathlib import Path

import pytest

from repro.experiments import common

# One characterization length shared by every benchmark module.  Longer runs
# sharpen the statistics but grow the (pure Python) run time roughly linearly.
CHARACTERIZATION_DURATION = 15.0
# The smoke tier's length: long enough that every qualitative assertion in
# the suite still holds (the unit tests pin the same facts at 6 s), short
# enough for a sub-minute pass.
SMOKE_DURATION = 6.0


def _smoke_selected(config) -> bool:
    markexpr = getattr(config.option, "markexpr", "") or ""
    return "smoke" in markexpr and "not smoke" not in markexpr


def _duration_for(config) -> float:
    return SMOKE_DURATION if _smoke_selected(config) else CHARACTERIZATION_DURATION


def pytest_collection_modifyitems(config, items):
    """Every benchmark test participates in the smoke tier (at smoke durations)."""
    benchmarks_dir = Path(__file__).parent
    for item in items:
        if Path(str(getattr(item, "fspath", ""))).parent == benchmarks_dir:
            item.add_marker(pytest.mark.smoke)


@pytest.fixture(scope="session")
def duration(request):
    return _duration_for(request.config)


@pytest.fixture(scope="session")
def fig03_settings(request):
    """Frame rates and sequence length for the Fig. 3 accuracy sweep."""
    if _smoke_selected(request.config):
        return {"frame_rates": (10.0,), "duration": SMOKE_DURATION}
    return {"frame_rates": (5.0, 10.0), "duration": 12.0}


@pytest.fixture(scope="session", autouse=True)
def warm_runs(request):
    """Build the three per-mode characterization runs once for the whole session."""
    common.all_mode_runs("car", duration=_duration_for(request.config))
    yield


def print_banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
