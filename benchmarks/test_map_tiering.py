"""Map tiering: Tier-1 cache economics + Tier-2 delta sync, bit-identical.

The tiered map plane must pay for itself without buying any of it with
correctness.  This benchmark serves one warm fleet through clusters of
increasing width with the full tier plane active (coordinator snapshot
cache, ``{version, inputs}`` shard sync) and pins both halves:

* **determinism** — every topology's report signature equals a plain
  engine's on an identically warmed store (content addressing makes
  separately warmed roots byte-identical), with the cache and the
  reference protocol in the path;
* **economics** — a warm re-serve validates by version stamp alone
  (Tier-1 hit rate >= 0.5 — in practice 1.0: no unpickle, no re-merge),
  and a drifting-world update wave ships strictly fewer sync bytes as
  references than the full-snapshot protocol would have.
"""

from conftest import append_bench_row, print_banner

from repro.characterization.report import format_table
from repro.cluster import ShardedServingEngine
from repro.maps import MapStore
from repro.serving import ServingEngine, drifting_environment_fleet

RATE = 5.0
#: Small test fleets build small maps; the permissive gate keeps the focus
#: on the tier plane (the unit tests pin the gate behavior itself).
GATE = 0.05
FLEET_SIZE = 6
ENVIRONMENT = "depot"


def _store(root) -> MapStore:
    return MapStore(root, max_bytes=-1, max_age_s=-1)


def _warm_root(root, duration) -> None:
    """Seed one store root with a deterministic cold wave's publishes."""
    cold = drifting_environment_fleet(
        2, environment=ENVIRONMENT, prefix="cold",
        segment_duration=duration, camera_rate_hz=RATE)
    ServingEngine(store=None, max_workers=1, map_store=_store(root),
                  min_map_quality=GATE).serve(
        cold, parallel=False, ingestion="streaming")


def _fleet(duration, base_seed, prefix, **drift):
    return drifting_environment_fleet(
        FLEET_SIZE, environment=ENVIRONMENT, base_seed=base_seed,
        prefix=prefix, segment_duration=duration, camera_rate_hz=RATE,
        **drift)


def test_map_tiering(benchmark, tmp_path, shard_settings, serving_settings):
    duration = serving_settings["segment_duration"]
    warm_wave = _fleet(duration, 5000, "warm")
    rewarm_wave = _fleet(duration, 6000, "rewarm")
    shard_counts = shard_settings["shard_counts"]

    # The oracle: a plain engine on its own identically warmed root, store
    # frozen so the canonical cannot move between the arms' waves.
    plain_root = tmp_path / "maps-plain"
    _warm_root(plain_root, duration)
    plain = ServingEngine(store=None, max_workers=1,
                          map_store=_store(plain_root),
                          min_map_quality=GATE, map_updates=False).serve(
        warm_wave, parallel=False, ingestion="streaming")

    rows = []
    for shards in shard_counts:
        root = tmp_path / f"maps-x{shards}"
        _warm_root(root, duration)
        cluster = ShardedServingEngine(
            shards, map_store=_store(root), min_map_quality=GATE,
            map_updates=False, shard_parallel=True)
        first = cluster.serve(warm_wave, parallel=True)
        # Strict mode, cache + delta sync active: bit-identical to the
        # plain engine at every width.
        assert first.signature() == plain.signature(), (
            f"{shards}-shard tiered serving diverged from the plain engine")
        assert first.map_cache_misses >= 1  # the cold lookup is honest
        if shards == shard_counts[-1]:
            second = benchmark.pedantic(
                lambda: cluster.serve(rewarm_wave, parallel=True),
                rounds=1, iterations=1)
        else:
            second = cluster.serve(rewarm_wave, parallel=True)
        # The acceptance pin: a warm re-serve revalidates by stamp alone.
        assert second.map_cache_hit_rate >= 0.5, (
            f"warm-wave Tier-1 hit rate {second.map_cache_hit_rate:.2f} "
            f"below 0.5 at {shards} shard(s)")
        assert second.map_staleness_served == 0  # strict mode serves head
        rows.append([shards,
                     "processes" if second.parallel else "inline",
                     second.session_count,
                     round(second.map_cache_hit_rate, 2),
                     cluster.map_cache.hits, cluster.map_cache.misses,
                     round(second.sessions_per_second, 2)])
        append_bench_row(
            f"map_tiering_x{shards}",
            warm_hit_rate=second.map_cache_hit_rate,
            sessions_per_second=second.sessions_per_second,
        )

    # Tier-2 on a drifting-world update wave: >= 2 loaded shards, payload
    # dispatch, updates applied — and the references must undercut the
    # full-snapshot protocol.
    sync_root = tmp_path / "maps-sync"
    _warm_root(sync_root, duration)
    sync_cluster = ShardedServingEngine(
        max(shard_counts), map_store=_store(sync_root), min_map_quality=GATE,
        shard_parallel=True)
    update_wave = sync_cluster.serve(
        _fleet(duration, 20000, "drift",
               drift_m=2.0, drift_fraction=0.4, drift_seed=7),
        parallel=True)
    sync = sync_cluster.sync_accounting
    if max(shard_counts) >= 2:
        assert len(set(update_wave.shard_of.values())) >= 2, (
            "update wave loaded a single shard — sync path unexercised")
        assert update_wave.maps_updated, "drifted wave repaired nothing"
        assert sync.waves >= 1 and sync.fallbacks == 0
        assert 0 < sync.delta_bytes < sync.full_bytes, (
            f"references ({sync.delta_bytes} B) did not undercut full "
            f"snapshots ({sync.full_bytes} B)")
    append_bench_row(
        "map_tiering_sync",
        savings_fraction=sync.savings_fraction,
        delta_bytes=sync.delta_bytes,
        full_bytes=sync.full_bytes,
    )

    print_banner("Serving — tiered map distribution")
    print(format_table(
        ["shards", "execution", "sessions", "warm_hit_rate",
         "cache_hits", "cache_misses", "sessions/s"], rows))
    print(f"\nall widths bit-identical to the plain engine: True")
    print(f"update-wave sync: {sync.delta_bytes} B shipped as references "
          f"vs {sync.full_bytes} B full snapshots "
          f"({100.0 * sync.savings_fraction:.1f}% saved, "
          f"{sync.fallbacks} fallbacks)")
