"""Figs. 9-11: per-frame latency variation in registration, VIO and SLAM.

Paper reference: the worst-case latency is over 4x the best case in SLAM
mode and over 2x in registration mode; the backend's relative standard
deviation exceeds the frontend's; one kernel dominates the variation in each
mode (projection, Kalman gain, marginalization).
"""

import numpy as np
from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.fig09_11_variation import dominant_variation_kernel, variation_by_mode


def test_fig09_10_11_latency_variation(benchmark, duration):
    report = benchmark.pedantic(variation_by_mode, args=("car", duration), rounds=1, iterations=1)
    print_banner("Figs. 9-11 — Per-frame latency variation (baseline CPU)")
    rows = []
    for mode, data in report.items():
        total = np.array(data["frontend_series_ms"]) + np.array(data["backend_series_ms"])
        rows.append([
            mode, float(total.min()), float(total.max()), data["worst_to_best_ratio"],
            data["frontend_rsd_percent"], data["backend_rsd_percent"],
        ])
    print(format_table(
        ["mode", "best_ms", "worst_ms", "worst/best", "front_RSD%", "back_RSD%"], rows,
    ))

    print("\nPer-kernel latency standard deviation (ms):")
    for mode, data in report.items():
        kernel_rows = sorted(data["kernel_std_ms"].items(), key=lambda kv: kv[1], reverse=True)
        print(format_table(["kernel", "std_ms"], kernel_rows, title=f"\n{mode}"))

    dominant = dominant_variation_kernel("car", duration)
    print("\nDominant variation kernels:", dominant)

    for mode, data in report.items():
        assert data["worst_to_best_ratio"] > 1.3
        assert data["backend_rsd_percent"] >= data["frontend_rsd_percent"]
    assert dominant["vio"] == "kalman_gain"
    assert dominant["slam"] in ("marginalization", "solver")
