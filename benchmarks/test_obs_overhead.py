"""Observability overhead: tracing must be ~free when off, cheap when on.

The inertness contract has a performance half: the ``tracer is None`` /
``metrics is None`` guards threaded through the serving stack must cost
nothing measurable when observability is off, and a fully instrumented
serve (tracer + bound metrics registry + kernel profiling hooks + SLO
tracker + flight recorder) must stay within a few percent of the plain
one on the 16-session streaming benchmark fleet.

Both configurations serve the identical fleet through the identical
streaming event loop; the run also re-verifies the bit-identity contract
under full instrumentation — overhead is only worth measuring if the
answers did not move.

Wall-clock ratios on shared CI runners are noisy, so the hard assertion is
deliberately generous (instrumented <= 1.35x best-of-N disabled) while the
measured percentage is printed for the humans reading the benchmark log.
The paired unit suite (tests/test_obs_serving.py) pins the functional
half of the contract.
"""

import time

from conftest import append_bench_row, print_banner

from repro.obs import FlightRecorder, MetricsRegistry, SLOTracker, Tracer
from repro.obs.profile import disable_kernel_tracing, enable_kernel_tracing
from repro.serving import ServingEngine, mixed_fleet

FLEET_SIZE = 16
ROUNDS = 2  # best-of-N: the minimum is the least-noisy wall-clock estimator
MAX_OVERHEAD_RATIO = 1.35


def _best_of(rounds, serve):
    best_s, report = float("inf"), None
    for _ in range(rounds):
        started = time.perf_counter()
        candidate = serve()
        elapsed = time.perf_counter() - started
        if elapsed < best_s:
            best_s, report = elapsed, candidate
    return best_s, report


def test_obs_overhead(benchmark, serving_settings, tmp_path):
    fleet = mixed_fleet(
        FLEET_SIZE,
        segment_duration=serving_settings["segment_duration"],
        camera_rate_hz=5.0,
    )

    def serve_disabled():
        return ServingEngine(store=None, max_workers=1).serve(
            fleet, parallel=False, ingestion="streaming")

    def serve_instrumented():
        tracer = Tracer()
        enable_kernel_tracing(tracer)
        try:
            engine = ServingEngine(store=None, max_workers=1, tracer=tracer,
                                   metrics=MetricsRegistry(),
                                   slo=SLOTracker(domain="virtual"),
                                   recorder=FlightRecorder(root=tmp_path))
            report = engine.serve(fleet, parallel=False, ingestion="streaming")
        finally:
            disable_kernel_tracing()
        return report, tracer

    disabled_s, baseline = _best_of(ROUNDS, serve_disabled)
    # One instrumented round runs under pytest-benchmark (so the suite's
    # timing report includes it); the rest are plain timed rounds.
    report, tracer = benchmark.pedantic(serve_instrumented,
                                        rounds=1, iterations=1)
    instrumented_s = float(benchmark.stats.stats.min)
    if ROUNDS > 1:
        extra_s, extra = _best_of(ROUNDS - 1, serve_instrumented)
        if extra_s < instrumented_s:
            instrumented_s, (report, tracer) = extra_s, extra

    ratio = instrumented_s / disabled_s
    identical = all(
        report.results[stream_id].signature() == result.signature()
        for stream_id, result in baseline.results.items()
    )
    categories = sorted({event.name.split(".")[0]
                         for event in tracer.by_category("kernel")})

    print_banner("Observability — tracing/metrics overhead, 16-session fleet")
    print(f"disabled (best of {ROUNDS}):     {disabled_s:8.3f} s")
    print(f"instrumented (best of {ROUNDS}): {instrumented_s:8.3f} s")
    print(f"overhead: {100.0 * (ratio - 1.0):+.1f}% "
          f"(assert ceiling {100.0 * (MAX_OVERHEAD_RATIO - 1.0):.0f}%)")
    print(f"spans recorded: {len(tracer)} (+{tracer.dropped} dropped), "
          f"kernel hook families: {categories}")
    print(f"instrumented bit-identical to plain: {identical}")

    append_bench_row(
        "obs_overhead",
        overhead_pct=100.0 * (ratio - 1.0),
        disabled_s=disabled_s,
        instrumented_s=instrumented_s,
        spans=len(tracer),
    )

    assert identical, "instrumentation moved the served signatures"
    assert len(tracer) > 0, "full instrumentation recorded no spans"
    assert tracer.by_category("kernel"), "kernel hooks recorded nothing"
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"full observability cost {100.0 * (ratio - 1.0):.1f}% on the "
        f"streaming benchmark — over the {MAX_OVERHEAD_RATIO:.2f}x ceiling")
