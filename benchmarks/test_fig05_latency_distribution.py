"""Fig. 5: frontend/backend latency distribution and RSD in the three modes.

Paper reference: the frontend accounts for 55 % (SLAM) to 83 % (VIO) of the
end-to-end latency, and the backend's relative standard deviation exceeds the
frontend's (most prominently in VIO: 47.3 % vs 81.1 %).
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.fig05_08_characterization import frontend_backend_by_mode


def test_fig05_frontend_backend_distribution(benchmark, duration):
    report = benchmark.pedantic(frontend_backend_by_mode, args=("car", duration), rounds=1, iterations=1)
    print_banner("Fig. 5 — Frontend/backend latency share and RSD (baseline CPU)")
    rows = []
    for mode, shares in report.items():
        rows.append([
            mode,
            shares["frontend"]["mean_ms"], shares["backend"]["mean_ms"],
            shares["frontend"]["share_percent"], shares["backend"]["share_percent"],
            shares["frontend"]["rsd_percent"], shares["backend"]["rsd_percent"],
        ])
    print(format_table(
        ["mode", "frontend_ms", "backend_ms", "front_%", "back_%", "front_RSD%", "back_RSD%"],
        rows,
    ))
    print("\nPaper: frontend share 55% (SLAM) – 83% (VIO); backend RSD > frontend RSD.")

    for mode, shares in report.items():
        assert shares["frontend"]["share_percent"] > 50.0
        assert shares["backend"]["rsd_percent"] >= shares["frontend"]["rsd_percent"]
    # SLAM has the heaviest backend, so its frontend share is the smallest.
    assert report["slam"]["frontend"]["share_percent"] == min(
        shares["frontend"]["share_percent"] for shares in report.values()
    )
