"""Table III: EDX-CAR speedup over CPU/GPU/DSP baselines.

Paper reference: 3.5x over single-core with ROS, 3.3x without ROS, 2.2x over
multi-core with ROS, 2.1x over the paper's own multi-core baseline, 4.4x over
an Adreno 530 GPU offload, 2.5x over a Hexagon 680 DSP and 2.5x over a
Maxwell mobile GPU.  The ordering (own baseline strongest, mobile GPU
weakest) is the reproduction target.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.table3_platforms import platform_speedups

PAPER_SPEEDUPS = {
    "single_core_ros": 3.5,
    "single_core": 3.3,
    "multi_core_ros": 2.2,
    "multi_core": 2.1,
    "adreno_gpu": 4.4,
    "hexagon_dsp": 2.5,
    "maxwell_gpu": 2.5,
}


def test_table3_platform_speedups(benchmark, duration):
    report = benchmark.pedantic(platform_speedups, args=("car", duration), rounds=1, iterations=1)

    print_banner("Table III — EDX-CAR speedup over CPU/GPU/DSP baselines")
    rows = []
    for key, paper_value in PAPER_SPEEDUPS.items():
        data = report[key]
        rows.append([data["platform"], data["mean_latency_ms"],
                     data["speedup_over_platform"], paper_value])
    rows.append(["EDX-CAR (this work)", report["eudoxus"]["mean_latency_ms"], 1.0, 1.0])
    print(format_table(["baseline", "latency_ms", "speedup (measured)", "speedup (paper)"], rows))

    measured = {key: report[key]["speedup_over_platform"] for key in PAPER_SPEEDUPS}
    # Ordering checks from the paper.
    assert measured["multi_core"] == min(measured["multi_core"], measured["multi_core_ros"],
                                         measured["single_core"], measured["single_core_ros"])
    assert measured["single_core_ros"] > measured["multi_core_ros"]
    assert measured["adreno_gpu"] == max(measured.values())
    assert 1.5 < measured["multi_core"] < 3.0
