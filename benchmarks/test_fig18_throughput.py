"""Fig. 18: throughput (FPS) with and without frontend/backend pipelining.

Paper reference (EDX-CAR): the baseline runs at 8.6 FPS, Eudoxus reaches
17.2 FPS without pipelining the frontend with the backend and 31.9 FPS with
pipelining.  EDX-DRONE improves from 7.0 to 22.4 FPS.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.fig17_21_acceleration import acceleration_report


def test_fig18_throughput(benchmark, duration):
    car = benchmark.pedantic(acceleration_report, args=("car", duration), rounds=1, iterations=1)
    drone = acceleration_report("drone", 10.0)

    print_banner("Fig. 18 — Throughput (FPS): baseline vs Eudoxus, with/without pipelining")
    rows = []
    for name, report in (("car", car), ("drone", drone)):
        overall = report["overall"]
        rows.append([
            name, overall["baseline_fps"], overall["eudoxus_fps_no_pipelining"],
            overall["eudoxus_fps_pipelined"],
        ])
    print(format_table(["platform", "baseline_fps", "edx_fps_no_pipe", "edx_fps_pipelined"], rows))
    print("\nPaper: car 8.6 -> 17.2 -> 31.9 FPS; drone 7.0 -> 22.4 FPS.")

    for report in (car, drone):
        overall = report["overall"]
        assert overall["eudoxus_fps_no_pipelining"] > overall["baseline_fps"]
        assert overall["eudoxus_fps_pipelined"] > overall["eudoxus_fps_no_pipelining"]
    # Pipelined car throughput should approach real-time (30 FPS in the paper).
    assert car["overall"]["eudoxus_fps_pipelined"] > 15.0
