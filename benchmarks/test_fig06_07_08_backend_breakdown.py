"""Figs. 6-8: latency breakdown inside each backend mode.

Paper reference: the biggest contributors are camera-model projection in
registration, the Kalman gain in VIO (~33 % of the VIO backend) and
marginalization/the solver in SLAM.
"""

from conftest import print_banner

from repro.characterization.report import format_table
from repro.experiments.fig05_08_characterization import (
    backend_breakdown_by_mode,
    dominant_backend_kernel,
)


def test_fig06_07_08_backend_kernel_breakdown(benchmark, duration):
    report = benchmark.pedantic(backend_breakdown_by_mode, args=("car", duration), rounds=1, iterations=1)
    print_banner("Figs. 6-8 — Backend kernel latency breakdown (percent of backend time)")
    figure_numbers = {"registration": 6, "vio": 7, "slam": 8}
    for mode, kernels in report.items():
        rows = sorted(kernels.items(), key=lambda kv: kv[1], reverse=True)
        print(format_table(["kernel", "share_%"], rows,
                           title=f"\n{mode} backend (Fig. {figure_numbers[mode]})"))

    dominant = dominant_backend_kernel("car", duration)
    print("\nDominant kernels (paper: projection / kalman_gain / marginalization+solver):", dominant)

    assert dominant["registration"] == "projection"
    assert dominant["vio"] == "kalman_gain"
    assert dominant["slam"] in ("solver", "marginalization")
    # The Kalman gain should be a large fraction of the VIO backend (paper ~33%).
    assert report["vio"]["kalman_gain"] > 25.0
