"""Fleet map reuse: cold-start fleet vs warm-map fleet on the same world.

The paper's Fig. 2 economics in one benchmark: full SLAM (sliding-window
bundle adjustment + marginalization per keyframe) is the expensive mode a
session runs only because it has no map; registration against a prior map
is far cheaper.  The fleet map service converts that gap into serving
throughput: a *cold* wave explores a shared environment with SLAM and
publishes map snapshots; the merged canonical map then lets a *warm* wave
of the same shape serve the identical segments through registration.

Both waves run storeless through the serial streaming loop, so the
sessions/sec comparison is pure compute: the warm fleet must be strictly
faster, its mode log must show registration displacing SLAM in the shared
segments, and its accuracy must stay in the same band as the cold wave's.
"""

import numpy as np
from conftest import append_bench_row, print_banner

from repro.characterization.report import format_table
from repro.maps import MapStore
from repro.scheduler import LatencyAutoscaler
from repro.serving import ServingEngine, cold_start_fleet, drifting_environment_fleet

FLEET_SIZE = 6
RATE_HZ = 5.0
# Short segments build small maps; the permissive gate keeps the benchmark
# about throughput (gate behavior itself is pinned in tests/test_maps*.py).
MAP_GATE = 0.05
# Drifting-world wave: the displacement burst between waves, and the QoS
# deadline the map-aware autoscaler sizes against.
DRIFT_KWARGS = dict(drift_m=2.0, drift_fraction=0.4, drift_seed=7)
DEADLINE_MS = 400.0


def _wave(prefix, base_seed, serving_settings):
    return cold_start_fleet(
        FLEET_SIZE,
        environment="benchmark-atrium",
        base_seed=base_seed,
        segment_duration=serving_settings["segment_duration"],
        camera_rate_hz=RATE_HZ,
        explore_segments=2,
        prefix=prefix,
    )


def _mode_census(report):
    return report.mode_census()


def test_map_reuse_throughput(benchmark, serving_settings, tmp_path):
    store = MapStore(tmp_path / "maps", max_bytes=-1, max_age_s=-1)
    engine = ServingEngine(store=None, max_workers=1, map_store=store,
                           min_map_quality=MAP_GATE)

    cold_fleet = _wave("cold", 0, serving_settings)
    cold = engine.serve(cold_fleet, parallel=False, ingestion="streaming")
    assert cold.maps_published > 0, "the cold wave published no maps"

    warm_fleet = _wave("warm", 9000, serving_settings)
    warm = benchmark.pedantic(
        lambda: engine.serve(warm_fleet, parallel=False, ingestion="streaming"),
        rounds=1, iterations=1,
    )

    cold_modes = _mode_census(cold)
    warm_modes = _mode_census(warm)
    cold_rmse = float(np.mean([r.trajectory.rmse_error()
                               for r in cold.results.values()]))
    warm_rmse = float(np.mean([r.trajectory.rmse_error()
                               for r in warm.results.values()]))

    print_banner("Fleet map reuse — cold SLAM wave vs warm registration wave")
    rows = []
    for label, report, rmse in (("cold", cold, cold_rmse), ("warm", warm, warm_rmse)):
        summary = report.summary()
        rows.append([
            label, summary["sessions"], summary["frames"],
            round(summary["wall_s"], 2), round(summary["sessions_per_second"], 2),
            round(summary["frames_per_second"], 1),
            summary["maps_published"], summary["map_acquisitions"],
            round(rmse, 3),
        ])
    print(format_table(
        ["wave", "sessions", "frames", "wall_s", "sessions/s", "frames/s",
         "published", "acquired", "rmse_m"], rows))
    print(f"\nmode census cold: {cold_modes}")
    print(f"mode census warm: {warm_modes}")
    speedup = warm.sessions_per_second / max(cold.sessions_per_second, 1e-9)
    print(f"warm-map speedup: {speedup:.2f}x sessions/sec "
          f"(fleet map: {list(warm.fleet_maps.values())})")

    append_bench_row(
        "map_reuse",
        cold_sessions_per_second=cold.sessions_per_second,
        warm_sessions_per_second=warm.sessions_per_second,
        warm_speedup=speedup,
    )

    # The headline claim: a warm fleet serves strictly faster than the cold
    # fleet that had to build the map.
    assert warm.sessions_per_second > cold.sessions_per_second

    # And the mechanism is visible in the mode logs: the cold wave's SLAM
    # traffic is displaced by registration in the warm wave.
    assert cold_modes.get("slam", 0) > 0
    assert warm_modes.get("registration", 0) > 0
    assert warm_modes.get("slam", 0) < cold_modes["slam"]
    assert warm.map_acquisition_count == FLEET_SIZE * 2  # both shared segments
    for result in warm.results.values():
        reasons = {switch.to_mode for switch in result.mode_switches}
        assert "registration" in reasons

    # Reuse must not cost meaningful accuracy: the fleet-built map serves
    # within the same error band as exploring from scratch.
    assert warm_rmse < max(2.0, 3.0 * cold_rmse)


def _drift_wave(prefix, base_seed, serving_settings, fleet_size=4, drift=False,
                deadline_ms=None, explore_segments=3):
    # Three shared segments: the control arm re-demotes in each of them, so
    # the SLAM-vs-registration wall gap between the arms stays well clear
    # of wall-clock noise (the approach segment is identical in both).
    return drifting_environment_fleet(
        fleet_size,
        environment="benchmark-shifting-yard",
        base_seed=base_seed,
        segment_duration=serving_settings["segment_duration"],
        camera_rate_hz=RATE_HZ,
        explore_segments=explore_segments,
        prefix=prefix,
        deadline_ms=deadline_ms,
        **(DRIFT_KWARGS if drift else {}),
    )


def test_drifting_world_updates(benchmark, serving_settings, tmp_path):
    """Staleness -> update -> recovery, vs a publish-only control.

    Both arms serve the identical three waves: a cold wave that maps the
    shared world, a post-drift wave that discovers the published map went
    stale (residuals spike on the displaced landmarks, sessions demote to
    SLAM and hand back MapUpdate deltas), and a recovery wave on the same
    drifted world.  The *updates* arm applies the deltas — pruning and
    relocating the moved landmarks into a refreshed canonical — so its
    recovery wave registers throughout; the *control* arm (PR-4
    publish-only) keeps dragging the stale history into every merge, so its
    recovery wave demotes again and pays for SLAM.  The throughput gap is
    the updates' worth.
    """
    def arm(label, map_updates):
        store = MapStore(tmp_path / label, max_bytes=-1, max_age_s=-1)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=MAP_GATE, map_updates=map_updates)
        cold = engine.serve(_drift_wave("cold", 0, serving_settings),
                            parallel=False, ingestion="streaming")
        assert cold.maps_published > 0
        stale = engine.serve(_drift_wave("stale", 20000, serving_settings,
                                         drift=True),
                             parallel=False, ingestion="streaming")
        return engine, stale

    updates_engine, updates_stale = arm("updates", map_updates=True)
    control_engine, control_stale = arm("control", map_updates=False)
    # Both arms hit the same wall after the drift: stale demotions, SLAM.
    for stale in (updates_stale, control_stale):
        reasons = [s.reason for r in stale.results.values()
                   for s in r.mode_switches]
        assert "map_stale" in reasons
        assert _mode_census(stale).get("slam", 0) > 0
    assert updates_stale.maps_updated and not control_stale.maps_updated

    recovery_fleet = _drift_wave("recov", 30000, serving_settings, drift=True)
    recovered = benchmark.pedantic(
        lambda: updates_engine.serve(recovery_fleet, parallel=False,
                                     ingestion="streaming"),
        rounds=1, iterations=1)
    control = control_engine.serve(recovery_fleet, parallel=False,
                                   ingestion="streaming")
    # Wall-noise hardening: per arm, take the faster of two attempts — the
    # mode mix (the thing being measured) is deterministic, so a one-off
    # scheduler stall in either arm must not flip the throughput verdict.
    recovered_rate = max(
        recovered.sessions_per_second,
        updates_engine.serve(recovery_fleet, parallel=False,
                             ingestion="streaming").sessions_per_second)
    control_rate = max(
        control.sessions_per_second,
        control_engine.serve(recovery_fleet, parallel=False,
                             ingestion="streaming").sessions_per_second)

    recovered_modes = _mode_census(recovered)
    control_modes = _mode_census(control)
    print_banner("Drifting world — incremental updates vs publish-only control")
    rows = []
    for label, report, modes in (("updates", recovered, recovered_modes),
                                 ("control", control, control_modes)):
        summary = report.summary()
        rows.append([
            label, summary["sessions"], round(summary["wall_s"], 2),
            round(summary["sessions_per_second"], 2),
            modes.get("registration", 0), modes.get("slam", 0),
            summary["map_updates"], summary["maps_updated"],
        ])
    print(format_table(
        ["arm", "sessions", "wall_s", "sessions/s", "reg_frames",
         "slam_frames", "updates", "applied"], rows))
    speedup = recovered_rate / max(control_rate, 1e-9)
    print(f"update-repair speedup on the drifted world: {speedup:.2f}x sessions/sec")

    # The headline: with updates, registration keeps displacing SLAM after
    # the drift, and the recovery wave serves strictly faster than the
    # publish-only control.
    assert recovered_modes.get("registration", 0) > 0
    assert recovered_modes.get("slam", 0) < control_modes.get("slam", 1)
    assert recovered_rate > control_rate


def test_map_aware_autoscaler_sizing(benchmark, serving_settings, tmp_path):
    """Warm registration-heavy fleets converge to strictly fewer workers.

    The same deadline, the same autoscaler shape, the same fleet size —
    served once against an empty map store (SLAM-heavy: the sizing prior
    and the cost-aware capacity land high) and once against the warm store
    that wave built (registration-dominant: the prior lands low and the
    pool stays small), with the warm wave's steady-state serving latency
    still inside the deadline.
    """
    store = MapStore(tmp_path, max_bytes=-1, max_age_s=-1)

    def serve(prefix, base_seed):
        autoscaler = LatencyAutoscaler(min_workers=1, max_workers=8, window=48,
                                       grow_patience=2, shrink_patience=4,
                                       cooldown=2)
        engine = ServingEngine(store=None, max_workers=1, map_store=store,
                               min_map_quality=MAP_GATE, autoscaler=autoscaler,
                               frames_per_worker_tick=2)
        return engine.serve(
            _drift_wave(prefix, base_seed, serving_settings,
                        fleet_size=FLEET_SIZE, deadline_ms=DEADLINE_MS),
            parallel=False, ingestion="streaming")

    cold = serve("cold", 0)
    warm = benchmark.pedantic(lambda: serve("warm", 9000), rounds=1, iterations=1)
    assert warm.map_acquisition_count > 0, "warm wave acquired no fleet map"

    steady = warm.virtual_latency_ms[len(warm.virtual_latency_ms) // 2:]
    steady_p95 = float(np.percentile(steady, 95.0)) if steady else 0.0
    print_banner("Map-aware autoscaling — cold SLAM fleet vs warm registration fleet")
    for label, report in (("cold", cold), ("warm", warm)):
        log = [(d.tick, d.action, d.workers_before, d.workers_after)
               for d in report.scale_decisions if d.action != "hold"]
        print(f"{label}: prime->final workers "
              f"{report.scale_decisions[0].workers_after}->{report.final_workers}, "
              f"decisions {log}")
    print(f"warm steady-state serving p95: {steady_p95:.1f} ms "
          f"(deadline {DEADLINE_MS:.0f} ms)")

    cold_prime, warm_prime = cold.scale_decisions[0], warm.scale_decisions[0]
    assert cold_prime.action == warm_prime.action == "prime"
    # The mode-mix prior sizes the warm fleet strictly smaller up front...
    assert warm_prime.workers_after < cold_prime.workers_after
    # ...and the decision log converges to strictly fewer workers than the
    # cold wave needed, while steady-state p95 still meets the deadline.
    assert warm.final_workers < cold.final_workers
    assert steady_p95 <= DEADLINE_MS
