"""Fleet map reuse: cold-start fleet vs warm-map fleet on the same world.

The paper's Fig. 2 economics in one benchmark: full SLAM (sliding-window
bundle adjustment + marginalization per keyframe) is the expensive mode a
session runs only because it has no map; registration against a prior map
is far cheaper.  The fleet map service converts that gap into serving
throughput: a *cold* wave explores a shared environment with SLAM and
publishes map snapshots; the merged canonical map then lets a *warm* wave
of the same shape serve the identical segments through registration.

Both waves run storeless through the serial streaming loop, so the
sessions/sec comparison is pure compute: the warm fleet must be strictly
faster, its mode log must show registration displacing SLAM in the shared
segments, and its accuracy must stay in the same band as the cold wave's.
"""

import numpy as np
from conftest import print_banner

from repro.characterization.report import format_table
from repro.maps import MapStore
from repro.serving import ServingEngine, cold_start_fleet

FLEET_SIZE = 6
RATE_HZ = 5.0
# Short segments build small maps; the permissive gate keeps the benchmark
# about throughput (gate behavior itself is pinned in tests/test_maps*.py).
MAP_GATE = 0.05


def _wave(prefix, base_seed, serving_settings):
    return cold_start_fleet(
        FLEET_SIZE,
        environment="benchmark-atrium",
        base_seed=base_seed,
        segment_duration=serving_settings["segment_duration"],
        camera_rate_hz=RATE_HZ,
        explore_segments=2,
        prefix=prefix,
    )


def _mode_census(report):
    census = {}
    for result in report.results.values():
        for estimate in result.trajectory.estimates:
            census[estimate.mode] = census.get(estimate.mode, 0) + 1
    return census


def test_map_reuse_throughput(benchmark, serving_settings, tmp_path):
    store = MapStore(tmp_path / "maps", max_bytes=-1, max_age_s=-1)
    engine = ServingEngine(store=None, max_workers=1, map_store=store,
                           min_map_quality=MAP_GATE)

    cold_fleet = _wave("cold", 0, serving_settings)
    cold = engine.serve(cold_fleet, parallel=False, ingestion="streaming")
    assert cold.maps_published > 0, "the cold wave published no maps"

    warm_fleet = _wave("warm", 9000, serving_settings)
    warm = benchmark.pedantic(
        lambda: engine.serve(warm_fleet, parallel=False, ingestion="streaming"),
        rounds=1, iterations=1,
    )

    cold_modes = _mode_census(cold)
    warm_modes = _mode_census(warm)
    cold_rmse = float(np.mean([r.trajectory.rmse_error()
                               for r in cold.results.values()]))
    warm_rmse = float(np.mean([r.trajectory.rmse_error()
                               for r in warm.results.values()]))

    print_banner("Fleet map reuse — cold SLAM wave vs warm registration wave")
    rows = []
    for label, report, rmse in (("cold", cold, cold_rmse), ("warm", warm, warm_rmse)):
        summary = report.summary()
        rows.append([
            label, summary["sessions"], summary["frames"],
            round(summary["wall_s"], 2), round(summary["sessions_per_second"], 2),
            round(summary["frames_per_second"], 1),
            summary["maps_published"], summary["map_acquisitions"],
            round(rmse, 3),
        ])
    print(format_table(
        ["wave", "sessions", "frames", "wall_s", "sessions/s", "frames/s",
         "published", "acquired", "rmse_m"], rows))
    print(f"\nmode census cold: {cold_modes}")
    print(f"mode census warm: {warm_modes}")
    speedup = warm.sessions_per_second / max(cold.sessions_per_second, 1e-9)
    print(f"warm-map speedup: {speedup:.2f}x sessions/sec "
          f"(fleet map: {list(warm.fleet_maps.values())})")

    # The headline claim: a warm fleet serves strictly faster than the cold
    # fleet that had to build the map.
    assert warm.sessions_per_second > cold.sessions_per_second

    # And the mechanism is visible in the mode logs: the cold wave's SLAM
    # traffic is displaced by registration in the warm wave.
    assert cold_modes.get("slam", 0) > 0
    assert warm_modes.get("registration", 0) > 0
    assert warm_modes.get("slam", 0) < cold_modes["slam"]
    assert warm.map_acquisition_count == FLEET_SIZE * 2  # both shared segments
    for result in warm.results.values():
        reasons = {switch.to_mode for switch in result.mode_switches}
        assert "registration" in reasons

    # Reuse must not cost meaningful accuracy: the fleet-built map serves
    # within the same error band as exploring from scratch.
    assert warm_rmse < max(2.0, 3.0 * cold_rmse)
