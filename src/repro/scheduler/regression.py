"""Least-squares polynomial regression used by the runtime scheduler.

The paper fits the projection time with a linear model and the Kalman-gain /
marginalization times with quadratic models of the kernel's input size
(Fig. 16), reporting R^2 values of 0.83-0.98.  This module provides the
small normal-equations solver those fits need, with no external dependencies
beyond NumPy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def r_squared(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination of a fit."""
    actual = np.asarray(list(actual), dtype=float)
    predicted = np.asarray(list(predicted), dtype=float)
    if actual.size == 0:
        return 0.0
    residual = float(np.sum((actual - predicted) ** 2))
    total = float(np.sum((actual - np.mean(actual)) ** 2))
    if total <= 1e-12:
        return 1.0 if residual <= 1e-12 else 0.0
    return 1.0 - residual / total


class PolynomialRegression:
    """Least-squares fit of ``y = c0 + c1 x + ... + c_d x^d``."""

    def __init__(self, degree: int = 1) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = int(degree)
        self.coefficients = np.zeros(self.degree + 1)
        self._fitted = False

    @property
    def fitted(self) -> bool:
        return self._fitted

    def _design(self, x: np.ndarray) -> np.ndarray:
        return np.vander(x, self.degree + 1, increasing=True)

    def fit(self, x: Sequence[float], y: Sequence[float]) -> "PolynomialRegression":
        x = np.asarray(list(x), dtype=float)
        y = np.asarray(list(y), dtype=float)
        if x.size != y.size:
            raise ValueError("x and y must have the same length")
        if x.size < self.degree + 1:
            raise ValueError("not enough samples to fit the requested degree")
        design = self._design(x)
        # Normal equations with a tiny ridge term for numerical robustness.
        gram = design.T @ design + np.eye(self.degree + 1) * 1e-9
        self.coefficients = np.linalg.solve(gram, design.T @ y)
        self._fitted = True
        return self

    def predict(self, x) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("fit() must be called before predict()")
        x = np.atleast_1d(np.asarray(x, dtype=float))
        return self._design(x) @ self.coefficients

    def predict_scalar(self, x: float) -> float:
        return float(self.predict([x])[0])

    def score(self, x: Sequence[float], y: Sequence[float]) -> float:
        return r_squared(y, self.predict(x))
