"""The runtime offload scheduler (Sec. VI-B).

For each frame the scheduler decides whether the mode's
variation-contributing kernel should run on the CPU or be offloaded to the
backend accelerator.  It predicts the CPU time from the kernel's input size
using regression models trained offline on 25 % of the frames (linear for
projection, quadratic for Kalman gain and marginalization), estimates the
accelerator time from the cycle model plus DMA transfers, and offloads only
when the CPU prediction is larger.  An oracle scheduler (which knows both
times exactly) provides the upper bound the paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.scheduler.regression import PolynomialRegression, r_squared

if TYPE_CHECKING:  # import only for annotations: repro.hardware imports this
    # module back (accelerator wiring), so a runtime import would be a cycle.
    from repro.hardware.backend_accel import BackendAcceleratorModel

# The workload feature that predicts each kernel's CPU latency (Fig. 16):
# the projected (visible) map subset for projection, the measurement
# (Jacobian) height for the Kalman gain, and the departing keyframe's feature
# count for marginalization.
KERNEL_SIZE_ATTRIBUTE: Dict[str, str] = {
    "registration": "projection_points",
    "vio": "kalman_gain_dim",
    "slam": "feature_points",
}

KERNEL_MODEL_DEGREE: Dict[str, int] = {
    "registration": 1,  # projection time is linear in the map size
    "vio": 2,           # Kalman gain is quadratic in the feature count
    "slam": 2,          # marginalization is quadratic in the feature count
}


def kernel_size(mode: str, workload) -> float:
    """Extract the scheduler's size feature from a backend workload."""
    return float(getattr(workload, KERNEL_SIZE_ATTRIBUTE[mode]))


@dataclass
class ScheduleDecision:
    """The scheduler's decision for one frame."""

    offload: bool
    predicted_cpu_ms: float
    accelerator_ms: float
    actual_cpu_ms: float


@dataclass
class SchedulerEvaluation:
    """Aggregate quality metrics of a scheduler over a set of frames."""

    offload_fraction: float
    mean_latency_ms: float
    oracle_mean_latency_ms: float
    always_offload_mean_latency_ms: float
    never_offload_mean_latency_ms: float
    r2: float

    @property
    def gap_to_oracle_percent(self) -> float:
        if self.oracle_mean_latency_ms <= 0:
            return 0.0
        return 100.0 * (self.mean_latency_ms - self.oracle_mean_latency_ms) / self.oracle_mean_latency_ms

    @property
    def always_offload_penalty_percent(self) -> float:
        """Latency increase of always offloading relative to the scheduler."""
        if self.mean_latency_ms <= 0:
            return 0.0
        return 100.0 * (self.always_offload_mean_latency_ms - self.mean_latency_ms) / self.mean_latency_ms


class RuntimeScheduler:
    """Regression-based offload scheduler."""

    def __init__(self, accelerator: BackendAcceleratorModel) -> None:
        self.accelerator = accelerator
        self.models: Dict[str, PolynomialRegression] = {}
        self.training_r2: Dict[str, float] = {}
        self._observations: Dict[str, Tuple[List[float], List[float]]] = {}
        self._observation_counts: Dict[str, int] = {}

    # ------------------------------------------------------------- training

    # Sliding-window length for live observations: long enough for a stable
    # quadratic fit, short enough that memory and refit cost stay constant
    # in a long-running serving process.
    OBSERVATION_WINDOW = 512

    def observe(self, mode: str, workload, cpu_ms: float,
                refit_every: int = 32) -> Optional[float]:
        """Fold one live observation into the mode's CPU-latency model.

        The incremental alternative to :meth:`train` for long-running
        deployments (batch fitting from fleet telemetry lives in
        :func:`repro.serving.engine.train_offload_scheduler`): observations
        accumulate per mode (bounded by :data:`OBSERVATION_WINDOW`, oldest
        dropped first) and the regression is refit every ``refit_every``
        samples, so the predictor tracks the traffic it actually serves.
        Returns the new training R^2 when a refit happened, else None.
        """
        sizes, times = self._observations.setdefault(mode, ([], []))
        sizes.append(kernel_size(mode, workload))
        times.append(float(cpu_ms))
        if len(sizes) > self.OBSERVATION_WINDOW:
            del sizes[: -self.OBSERVATION_WINDOW]
            del times[: -self.OBSERVATION_WINDOW]
        self._observation_counts[mode] = self._observation_counts.get(mode, 0) + 1
        if self._observation_counts[mode] % max(1, int(refit_every)) == 0:
            return self.train(mode, sizes, times)
        return None

    def train(self, mode: str, sizes: Sequence[float], cpu_ms: Sequence[float]) -> float:
        """Fit the CPU-latency model for one mode; returns the training R^2."""
        degree = KERNEL_MODEL_DEGREE[mode]
        model = PolynomialRegression(degree=degree).fit(sizes, cpu_ms)
        self.models[mode] = model
        self.training_r2[mode] = model.score(sizes, cpu_ms)
        return self.training_r2[mode]

    def train_from_frames(self, mode: str, workloads: Sequence, cpu_ms: Sequence[float]) -> float:
        sizes = [kernel_size(mode, w) for w in workloads]
        return self.train(mode, sizes, cpu_ms)

    def is_trained(self, mode: str) -> bool:
        return mode in self.models

    def observation_count(self, mode: str) -> int:
        """Lifetime count of live observations folded in via :meth:`observe`."""
        return self._observation_counts.get(mode, 0)

    # ------------------------------------------------------------- decision

    def decide(self, mode: str, workload, actual_cpu_ms: float) -> ScheduleDecision:
        """Decide whether to offload the kernel of ``mode`` for this frame."""
        accelerator_ms = self.accelerator.kernel_ms(mode, workload, include_dma=True)
        if mode not in self.models:
            # Without a model, offload conservatively (the paper trains offline
            # before deployment, so this path only covers cold starts).
            predicted = actual_cpu_ms
        else:
            predicted = max(self.models[mode].predict_scalar(kernel_size(mode, workload)), 0.0)
        return ScheduleDecision(
            offload=predicted > accelerator_ms,
            predicted_cpu_ms=predicted,
            accelerator_ms=accelerator_ms,
            actual_cpu_ms=actual_cpu_ms,
        )

    # ----------------------------------------------------------- evaluation

    def evaluate(self, mode: str, workloads: Sequence, cpu_ms: Sequence[float]) -> SchedulerEvaluation:
        """Compare the scheduler against oracle / always / never offloading."""
        decisions = [self.decide(mode, w, c) for w, c in zip(workloads, cpu_ms)]
        scheduled = [d.accelerator_ms if d.offload else d.actual_cpu_ms for d in decisions]
        oracle = [min(d.accelerator_ms, d.actual_cpu_ms) for d in decisions]
        always = [d.accelerator_ms for d in decisions]
        never = [d.actual_cpu_ms for d in decisions]
        predictions = [d.predicted_cpu_ms for d in decisions]
        return SchedulerEvaluation(
            offload_fraction=float(np.mean([d.offload for d in decisions])) if decisions else 0.0,
            mean_latency_ms=float(np.mean(scheduled)) if scheduled else 0.0,
            oracle_mean_latency_ms=float(np.mean(oracle)) if oracle else 0.0,
            always_offload_mean_latency_ms=float(np.mean(always)) if always else 0.0,
            never_offload_mean_latency_ms=float(np.mean(never)) if never else 0.0,
            r2=r_squared(cpu_ms, predictions),
        )


class OracleScheduler:
    """Always makes the optimal offload decision (upper bound, Sec. VII-F)."""

    def __init__(self, accelerator: BackendAcceleratorModel) -> None:
        self.accelerator = accelerator

    def decide(self, mode: str, workload, actual_cpu_ms: float) -> ScheduleDecision:
        accelerator_ms = self.accelerator.kernel_ms(mode, workload, include_dma=True)
        return ScheduleDecision(
            offload=actual_cpu_ms > accelerator_ms,
            predicted_cpu_ms=actual_cpu_ms,
            accelerator_ms=accelerator_ms,
            actual_cpu_ms=actual_cpu_ms,
        )


def train_test_split(items: Sequence, train_fraction: float = 0.25,
                     seed: int = 0) -> Tuple[List, List]:
    """Deterministic split used for scheduler training (25 % train, 75 % test)."""
    items = list(items)
    rng = np.random.default_rng(seed)
    indices = rng.permutation(len(items))
    cut = max(1, int(round(len(items) * train_fraction)))
    train_idx = set(indices[:cut].tolist())
    train = [items[i] for i in range(len(items)) if i in train_idx]
    test = [items[i] for i in range(len(items)) if i not in train_idx]
    return train, test
