"""Latency-aware worker-pool autoscaling for the serving layer.

The serving engine multiplexes a fleet of localization sessions over a
shared worker pool.  Traffic is bursty — sessions connect in waves, GPS
dropouts shift work onto heavier backends — so a fixed pool is either
over-provisioned (wasted workers) or under-provisioned (frames queue and
blow their deadlines).  :class:`LatencyAutoscaler` closes that loop: it
watches rolling p50/p95 frame latency against each session's serving
deadline (:attr:`~repro.serving.streams.StreamSpec.deadline_ms`) and
resizes the pool with hysteresis.

The control signal is *deadline pressure*: the p95 of ``latency/deadline``
over a sliding window.  Pressure above ``grow_pressure`` for
``grow_patience`` consecutive evaluations doubles the pool (bounded by
``max_workers``); pressure below ``shrink_pressure`` for
``shrink_patience`` evaluations releases one worker at a time (bounded by
``min_workers``).  When a full grow-patience streak finds the pool already
pinned at ``max_workers``, the controller is out of actuator: it reports
**saturated** (:attr:`LatencyAutoscaler.saturated`, and an explicit
``saturated: ...`` decision reason with the streak clamped rather than a
forever-incrementing "(n/patience)" count) — the overload signal the
service front door keys admission control on.  Asymmetric patience plus a
post-resize cooldown — during
which the observation window is discarded so decisions never act on
pre-resize traffic — is what keeps the controller from oscillating: growing
is cheap to undo, missing deadlines is not, so the scaler grows eagerly and
shrinks reluctantly.

Mixed fleets interleave *best-effort* sessions (``deadline_ms=None``) with
deadlined traffic.  Best-effort frames contribute to the latency
percentiles but never to pressure, so they can neither dilute the signal
(their latency/deadline ratio is undefined, not zero) nor zero it (the
pressure percentile runs over deadlined frames only, however few).  The
complementary hazard — a burst of deadlined traffic that *ended* keeping
its pressure samples alive indefinitely while best-effort frames flow — is
closed by expiring the pressure window once no deadlined frame has been
seen for a full window of observations: the scaler then honestly reports
"no deadline traffic" instead of resizing on stale evidence (while
deadlined traffic continues, however sparse, every sample is retained).

The serving engine can also install a *sizing prior* (:meth:`LatencyAutoscaler.prime`)
before any traffic: the expected per-frame cost of the fleet's mode mix —
known pre-dispatch once fleet maps are resolved (map available =>
registration-dominant => cheap) — converts into a starting width, so a
warm-map fleet starts small and stays small instead of growing on
cold-start backlog and shrinking later.

Every evaluation is appended to :attr:`LatencyAutoscaler.decisions`, the
decision log the serving report exposes and the benchmarks assert on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Deque, Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class ScaleDecision:
    """One autoscaler evaluation (held, grew or shrank) or sizing prime."""

    tick: int
    clock: float
    action: str  # "grow" | "shrink" | "hold" | "prime"
    workers_before: int
    workers_after: int
    p50_ms: float
    p95_ms: float
    pressure: float  # p95 of latency/deadline over the window
    reason: str
    # Overload, not headroom: sustained over-pressure with the pool already
    # pinned at max_workers.  The service front door keys admission control
    # on this — it is the "stop admitting, start shedding" signal.
    saturated: bool = False

    @property
    def resized(self) -> bool:
        """Whether the *controller* changed the width.

        A width-changing ``prime`` is excluded: the sizing prior is where
        the pool started, not a reaction to observed traffic — counting it
        would report phantom resizes for every map-aware serve call.
        """
        return self.action != "prime" and self.workers_after != self.workers_before


class LatencyAutoscaler:
    """Deadline-pressure pool sizing with hysteresis and cooldown."""

    # Decision-log retention: every evaluation is logged, but a long-running
    # deployment evaluates once per tick forever, so the log is a bounded
    # deque (like the observation windows) rather than an unbounded list.
    DECISION_LOG_LIMIT = 4096

    def __init__(self, min_workers: int = 1, max_workers: int = 8,
                 initial_workers: Optional[int] = None, window: int = 256,
                 grow_pressure: float = 0.9, shrink_pressure: float = 0.3,
                 grow_patience: int = 2, shrink_patience: int = 6,
                 cooldown: int = 3, grow_factor: float = 2.0,
                 default_deadline_ms: Optional[float] = None) -> None:
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if max_workers < min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if shrink_pressure >= grow_pressure:
            raise ValueError("shrink_pressure must be below grow_pressure")
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.grow_pressure = float(grow_pressure)
        self.shrink_pressure = float(shrink_pressure)
        self.grow_patience = max(1, int(grow_patience))
        self.shrink_patience = max(1, int(shrink_patience))
        self.cooldown = max(0, int(cooldown))
        self.grow_factor = max(1.0, float(grow_factor))
        self.default_deadline_ms = default_deadline_ms
        self.workers = self._clamp(initial_workers if initial_workers is not None
                                   else min_workers)
        self.decisions: Deque[ScaleDecision] = deque(maxlen=self.DECISION_LOG_LIMIT)
        self._window = max(1, int(window))
        self._latency: Deque[float] = deque(maxlen=self._window)
        # Pressure samples carry the observation index they were taken at so
        # that stale deadlined evidence can expire by *observation count*:
        # in a mixed fleet, best-effort frames keep the clock of
        # observations running even when no deadlined frame arrives.
        self._pressure: Deque[tuple] = deque(maxlen=self._window)
        self._observed = 0
        self._over_streak = 0
        self._under_streak = 0
        self._cooldown_left = 0
        self._tick = 0
        self._saturated = False
        # Observability (repro.obs): unbound until bind_metrics; every
        # recording site is guarded by a None check.
        self.metrics = None
        self._m_decisions = None
        self._m_workers = None

    def bind_metrics(self, registry) -> None:
        """Register the scaler's families with a
        :class:`repro.obs.MetricsRegistry` (idempotent): decisions by
        action, the current pool width, and the saturation flag."""
        self.metrics = registry
        self._m_decisions = registry.counter(
            "eudoxus_autoscaler_decisions_total",
            "Scaling evaluations by action (prime, grow, shrink, hold).",
            ("action",))
        self._m_workers = registry.gauge(
            "eudoxus_autoscaler_workers",
            "Pool width after the most recent scaling decision.")
        self._m_saturated = registry.gauge(
            "eudoxus_autoscaler_saturated",
            "1 while the pool is pinned at max_workers under sustained "
            "over-pressure (the front door's shed signal), else 0.")

    def _record_decision(self, decision: "ScaleDecision") -> None:
        if self._m_decisions is None:
            return
        self._m_decisions.inc(action=decision.action)
        self._m_workers.set(decision.workers_after)
        self._m_saturated.set(1.0 if decision.saturated else 0.0)

    def decision_tail(self, limit: int = 64) -> List[Dict[str, object]]:
        """The last ``limit`` decisions as JSON-able dicts (newest last).

        The shared tail shape consumed by the service metrics endpoint and
        the flight recorder's forensic bundles — one serializer, so the
        two views of the decision log can never drift apart.
        """
        return [asdict(decision)
                for decision in list(self.decisions)[-max(0, int(limit)):]]

    @property
    def saturated(self) -> bool:
        """Whether the last evaluation found the pool pinned under overload.

        True exactly when pressure has stayed above ``grow_pressure`` for a
        full grow-patience streak with the pool already at ``max_workers`` —
        the point where the controller has no actuator left and more load
        can only become latency.  The service front door sheds on this
        signal instead of admitting sessions the pool cannot serve on time.
        The flag clears as soon as an evaluation finds pressure back in
        band (or the deadlined traffic expires), and on :meth:`prime`.
        """
        return self._saturated

    def sync(self, workers: int, saturated: bool = False) -> None:
        """Adopt externally observed controller state.

        A sharded serving coordinator running shards in worker *processes*
        reconstructs a copy of this scaler in each subprocess; the copy's
        final width and saturation flag come back in the shard's report,
        and the coordinator folds them into the resident scaler here — so
        the next wave starts where the last one ended and the front door's
        admission probe reads live overload, exactly as in the
        single-process case.  No decision is logged: the decisions were
        made (and logged) by the copy; this only carries the state across
        the process boundary.
        """
        self.workers = self._clamp(workers)
        self._saturated = bool(saturated)

    # ------------------------------------------------------------ observing

    def observe(self, latency_ms: float, deadline_ms: Optional[float] = None) -> None:
        """Fold one served frame's latency (and its deadline) into the window.

        Frames without a deadline (``None``, and no ``default_deadline_ms``)
        contribute to the latency percentiles but exert no pressure — a
        best-effort session can never force the pool to grow.  They do
        advance the observation clock, so deadlined samples buried under a
        full window of best-effort traffic expire (see :meth:`pressure`).
        """
        self._observed += 1
        self._latency.append(float(latency_ms))
        deadline = deadline_ms if deadline_ms is not None else self.default_deadline_ms
        if deadline is not None and deadline > 0:
            self._pressure.append((self._observed, float(latency_ms) / float(deadline)))

    def latency_percentile(self, percent: float) -> float:
        if not self._latency:
            return 0.0
        return float(np.percentile(list(self._latency), percent))

    def _expire_stale_pressure(self) -> None:
        """Expire the pressure window once deadlined traffic *stopped*.

        The whole window is dropped when the newest deadlined sample has had
        no successor for a full window of observations — a deadlined session
        that disconnected must not keep growing the pool (or refusing to
        shrink it) on evidence from traffic that no longer exists.  While
        deadlined traffic continues, however sparsely it is interleaved with
        best-effort frames, every sample is retained (bounded by the deque):
        expiring by per-sample age would shrink sparse fleets' effective
        window to a handful of samples and make the p95 spike-dominated —
        the instability this mechanism exists to prevent.
        """
        if self._pressure and self._pressure[-1][0] <= self._observed - self._window:
            self._pressure.clear()

    def pressure(self) -> float:
        """p95 of latency/deadline over the window (0 with no deadlines).

        Computed over deadlined frames only — however sparsely they are
        interleaved with best-effort traffic, they are neither diluted by it
        nor zeroed out — but once the *newest* deadlined sample goes a full
        observation window without a successor, the whole window is expired
        as stale.
        """
        self._expire_stale_pressure()
        if not self._pressure:
            return 0.0
        return float(np.percentile([value for _, value in self._pressure], 95.0))

    # ------------------------------------------------------------- deciding

    def prime(self, workers: int, reason: str = "sizing prior",
              clock: float = 0.0) -> ScaleDecision:
        """Install a sizing prior as the starting width.

        Called by the serving engine before any traffic of a serve call: the
        expected per-frame cost of the fleet's mode mix (resolved fleet maps
        => registration-dominant => cheap) converts into an expected
        steady-state width, so the pool *starts* near where the controller
        would converge — a warm fleet never has to grow through a
        cold-start backlog only to shrink back.  The prior is a starting
        point, not a clamp: observed pressure still grows and shrinks the
        pool from here, under the usual hysteresis.  The installation is
        logged as an ``action="prime"`` decision so the decision log shows
        where the width came from.

        ``clock`` is the serve call's clock at the moment of priming (the
        engine passes its continuity-offset virtual clock, not a hardcoded
        0.0), and the prime consumes a tick like any other evaluation — so
        a decision log that spans several serve calls stays monotone in
        both ``tick`` and ``clock`` and the service's metrics endpoint can
        order it without guessing.
        """
        self._tick += 1
        before = self.workers
        self.workers = self._clamp(workers)
        # A prime starts a fresh serve call: drop every trace of the
        # previous call's traffic (window, streaks, cooldown, saturation) so
        # the primed width is never immediately resized on evidence from
        # sessions that no longer exist — the same window reset decide()
        # performs on a resize.
        self._over_streak = 0
        self._under_streak = 0
        self._cooldown_left = 0
        self._latency.clear()
        self._pressure.clear()
        self._saturated = False
        decision = ScaleDecision(
            tick=self._tick,
            clock=float(clock),
            action="prime",
            workers_before=before,
            workers_after=self.workers,
            p50_ms=0.0,
            p95_ms=0.0,
            pressure=0.0,
            reason=reason,
        )
        self.decisions.append(decision)
        self._record_decision(decision)
        return decision

    def decide(self, clock: float = 0.0) -> ScaleDecision:
        """Evaluate the window once; resize ``workers`` when warranted."""
        self._tick += 1
        before = self.workers
        p50 = self.latency_percentile(50.0)
        p95 = self.latency_percentile(95.0)
        pressure = self.pressure()
        action = "hold"
        reason = "within band"

        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            reason = "cooldown"
        elif not self._pressure:
            # No live deadlined traffic (none ever, or all samples expired):
            # hold, and drop any partial streaks so later deadlined traffic
            # starts its patience count from scratch.  Overload cannot
            # outlive its evidence: saturation clears with the window.
            self._over_streak = 0
            self._under_streak = 0
            self._saturated = False
            reason = "no deadline traffic"
        else:
            if pressure > self.grow_pressure:
                self._over_streak += 1
                self._under_streak = 0
                if (self.workers >= self.max_workers
                        and self._over_streak >= self.grow_patience):
                    # Pinned at the cap under sustained over-pressure: there
                    # is no grow left to wait for, so the streak clamps at
                    # the patience it has already proven (it must not wind
                    # up unboundedly) and the log says *saturated* instead
                    # of counting "(n/patience)" toward a resize that can
                    # never come.  This is the front door's shed signal.
                    self._over_streak = self.grow_patience
                    self._saturated = True
                    reason = (f"saturated: pressure {pressure:.2f} > "
                              f"{self.grow_pressure:.2f} with pool pinned at "
                              f"max_workers {self.max_workers}")
                else:
                    reason = (f"pressure {pressure:.2f} > {self.grow_pressure:.2f} "
                              f"({self._over_streak}/{self.grow_patience})")
            elif pressure < self.shrink_pressure:
                self._under_streak += 1
                self._over_streak = 0
                self._saturated = False
                reason = (f"pressure {pressure:.2f} < {self.shrink_pressure:.2f} "
                          f"({self._under_streak}/{self.shrink_patience})")
            else:
                self._over_streak = 0
                self._under_streak = 0
                self._saturated = False
            if self._over_streak >= self.grow_patience and self.workers < self.max_workers:
                action = "grow"
                self.workers = self._clamp(max(
                    self.workers + 1, int(np.ceil(self.workers * self.grow_factor))))
            elif self._under_streak >= self.shrink_patience and self.workers > self.min_workers:
                action = "shrink"
                self.workers = self._clamp(self.workers - 1)
            if action != "hold":
                # Hysteresis: start a cooldown and drop the window so the
                # next decision only ever sees post-resize traffic.
                self._over_streak = 0
                self._under_streak = 0
                self._cooldown_left = self.cooldown
                self._latency.clear()
                self._pressure.clear()

        decision = ScaleDecision(
            tick=self._tick,
            clock=float(clock),
            action=action,
            workers_before=before,
            workers_after=self.workers,
            p50_ms=p50,
            p95_ms=p95,
            pressure=pressure,
            reason=reason,
            saturated=self._saturated,
        )
        self.decisions.append(decision)
        self._record_decision(decision)
        return decision

    # ------------------------------------------------------------ internals

    def _clamp(self, workers: int) -> int:
        return max(self.min_workers, min(self.max_workers, int(workers)))
