"""Runtime scheduling of backend kernel offloads (Sec. VI-B).

Offloading a backend kernel is only worthwhile when its CPU time would
exceed the accelerator time (compute plus DMA).  The scheduler predicts the
CPU time from the kernel's workload size with simple regression models fit
offline — linear for projection, quadratic for Kalman gain and
marginalization — and triggers the accelerator only when the prediction
exceeds the accelerator estimate.
"""

from repro.scheduler.regression import PolynomialRegression, r_squared
from repro.scheduler.scheduler import OracleScheduler, RuntimeScheduler, SchedulerEvaluation

__all__ = [
    "PolynomialRegression",
    "r_squared",
    "RuntimeScheduler",
    "OracleScheduler",
    "SchedulerEvaluation",
]
