"""Runtime scheduling of backend kernel offloads (Sec. VI-B).

Offloading a backend kernel is only worthwhile when its CPU time would
exceed the accelerator time (compute plus DMA).  The scheduler predicts the
CPU time from the kernel's workload size with simple regression models fit
offline — linear for projection, quadratic for Kalman gain and
marginalization — and triggers the accelerator only when the prediction
exceeds the accelerator estimate.

The models can also be fit from live traffic: the serving layer
(:mod:`repro.serving.engine`) converts fleet telemetry into training
samples (``train_offload_scheduler``), and
:meth:`RuntimeScheduler.observe` offers an incremental per-frame path
(bounded sliding window, periodic refit) for long-running deployments.

The package also hosts the serving layer's resource control loop:
:class:`LatencyAutoscaler` (:mod:`repro.scheduler.autoscaler`) sizes the
shared worker pool from rolling p50/p95 frame latency against per-session
deadlines, with grow/shrink hysteresis and a decision log.
"""

from repro.scheduler.autoscaler import LatencyAutoscaler, ScaleDecision
from repro.scheduler.regression import PolynomialRegression, r_squared
from repro.scheduler.scheduler import OracleScheduler, RuntimeScheduler, SchedulerEvaluation

__all__ = [
    "LatencyAutoscaler",
    "PolynomialRegression",
    "r_squared",
    "RuntimeScheduler",
    "OracleScheduler",
    "ScaleDecision",
    "SchedulerEvaluation",
]
