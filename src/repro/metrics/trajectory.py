"""Localization accuracy metrics.

The paper reports root-mean-square error in metres (Fig. 3) and relative
trajectory error in percent of distance travelled (Sec. IV-A, VII-G).  Both
are provided here, together with the Umeyama similarity alignment that is
standard when comparing a drift-prone relative trajectory (VIO/SLAM without
GPS) against ground truth.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.geometry import Pose


def rmse(errors: Sequence[float]) -> float:
    """Root-mean-square of a sequence of scalar errors."""
    errors = np.asarray(list(errors), dtype=float)
    if errors.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(errors**2)))


def umeyama_alignment(estimated: np.ndarray, reference: np.ndarray,
                      with_scale: bool = False) -> Tuple[np.ndarray, np.ndarray, float]:
    """Least-squares similarity transform aligning ``estimated`` to ``reference``.

    Returns ``(rotation, translation, scale)`` such that
    ``reference ~= scale * rotation @ estimated + translation``.
    """
    estimated = np.asarray(estimated, dtype=float).reshape(-1, 3)
    reference = np.asarray(reference, dtype=float).reshape(-1, 3)
    if estimated.shape != reference.shape or estimated.shape[0] < 3:
        raise ValueError("need at least 3 matched positions of equal length")

    mu_est = estimated.mean(axis=0)
    mu_ref = reference.mean(axis=0)
    est_centered = estimated - mu_est
    ref_centered = reference - mu_ref
    covariance = ref_centered.T @ est_centered / estimated.shape[0]
    u, singular, vt = np.linalg.svd(covariance)
    s = np.eye(3)
    if np.linalg.det(u) * np.linalg.det(vt) < 0:
        s[2, 2] = -1.0
    rotation = u @ s @ vt
    if with_scale:
        variance = np.mean(np.sum(est_centered**2, axis=1))
        scale = float(np.trace(np.diag(singular) @ s) / max(variance, 1e-12))
    else:
        scale = 1.0
    translation = mu_ref - scale * rotation @ mu_est
    return rotation, translation, scale


def absolute_trajectory_error(estimated: Sequence[Pose], reference: Sequence[Pose],
                              align: bool = False) -> float:
    """RMSE of translational error between two pose sequences (metres).

    With ``align=True`` the estimated trajectory is first rigidly aligned to
    the reference (appropriate for map-free relative methods); with
    ``align=False`` the raw error is used (appropriate for absolute methods
    such as registration or GPS-aided VIO).
    """
    est = np.array([p.translation for p in estimated])
    ref = np.array([p.translation for p in reference])
    if est.shape != ref.shape:
        raise ValueError("trajectories must have the same length")
    if est.shape[0] == 0:
        return 0.0
    if align and est.shape[0] >= 3:
        rotation, translation, scale = umeyama_alignment(est, ref)
        est = (scale * (rotation @ est.T)).T + translation
    errors = np.linalg.norm(est - ref, axis=1)
    return rmse(errors)


def trajectory_length(reference: Sequence[Pose]) -> float:
    """Total distance travelled along a pose sequence (metres)."""
    positions = np.array([p.translation for p in reference])
    if positions.shape[0] < 2:
        return 0.0
    return float(np.linalg.norm(np.diff(positions, axis=0), axis=1).sum())


def relative_trajectory_error_percent(estimated: Sequence[Pose], reference: Sequence[Pose],
                                      segment_frames: int = 10) -> float:
    """Relative trajectory error as a percentage of distance travelled.

    For every segment of ``segment_frames`` frames, the drift of the relative
    motion is divided by the segment length; the mean over segments is
    reported in percent, following the convention the paper quotes
    (0.1 %-2 % for competitive algorithms).
    """
    est = list(estimated)
    ref = list(reference)
    if len(est) != len(ref):
        raise ValueError("trajectories must have the same length")
    if len(est) <= segment_frames:
        length = trajectory_length(ref)
        if length <= 0:
            return 0.0
        return 100.0 * absolute_trajectory_error(est, ref, align=True) / length

    ratios: List[float] = []
    for start in range(0, len(est) - segment_frames, segment_frames):
        end = start + segment_frames
        est_rel = est[start].inverse().compose(est[end])
        ref_rel = ref[start].inverse().compose(ref[end])
        segment_length = trajectory_length(ref[start : end + 1])
        if segment_length < 1e-6:
            continue
        drift = float(np.linalg.norm(est_rel.translation - ref_rel.translation))
        ratios.append(100.0 * drift / segment_length)
    return float(np.mean(ratios)) if ratios else 0.0
