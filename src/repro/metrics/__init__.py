"""Trajectory accuracy metrics (RMSE ATE, relative trajectory error)."""

from repro.metrics.trajectory import (
    absolute_trajectory_error,
    relative_trajectory_error_percent,
    rmse,
    umeyama_alignment,
)

__all__ = [
    "absolute_trajectory_error",
    "relative_trajectory_error_percent",
    "rmse",
    "umeyama_alignment",
]
