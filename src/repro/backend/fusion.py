"""GPS fusion (the Fusion block, VIO mode only).

The fusion block corrects the cumulative drift of the filtering block by
integrating GPS position fixes through a loosely-coupled EKF (Sec. IV-A):
the filter's pose estimate is treated as the propagated state and the GPS
fix as a direct position observation.  The correction is expressed as a
world-frame offset (position bias) applied on top of the VIO estimate so the
filter itself is not destabilised — the standard loosely-coupled design.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.config import FusionConfig
from repro.common.geometry import Pose
from repro.sensors.gps import GpsSample


class GpsFusion:
    """Loosely-coupled EKF fusing VIO poses with GPS position fixes."""

    def __init__(self, config: Optional[FusionConfig] = None) -> None:
        self.config = config or FusionConfig()
        # State: 3-D offset between the VIO frame and the GPS/world frame.
        self.offset = np.zeros(3)
        self.covariance = np.eye(3) * 1.0
        self.fix_count = 0
        self._consecutive_rejects = 0

    def reset(self) -> None:
        self.offset = np.zeros(3)
        self.covariance = np.eye(3) * 1.0
        self.fix_count = 0
        self._consecutive_rejects = 0

    def predict(self) -> None:
        """Random-walk prediction: drift between VIO and world grows slowly."""
        self.covariance = self.covariance + np.eye(3) * self.config.process_noise**2

    def update(self, vio_pose: Pose, gps: GpsSample) -> None:
        """Fuse one GPS fix against the current VIO position estimate."""
        if not gps.valid:
            return
        self.predict()
        measurement = gps.position - vio_pose.translation
        innovation = measurement - self.offset
        noise = gps.covariance if gps.covariance is not None else np.eye(3) * self.config.gps_position_noise**2
        innovation_cov = self.covariance + noise

        # Gate out multipath glitches using the Mahalanobis distance.  A burst
        # of consecutive rejections means the VIO drift itself is moving the
        # innovation (not a glitch), so the gate re-opens after a few epochs.
        try:
            mahalanobis = float(innovation @ np.linalg.solve(innovation_cov, innovation))
        except np.linalg.LinAlgError:
            return
        if mahalanobis > self.config.gate_threshold and self.fix_count > 3 and self._consecutive_rejects < 5:
            self._consecutive_rejects += 1
            return
        self._consecutive_rejects = 0

        gain = self.covariance @ np.linalg.inv(innovation_cov)
        self.offset = self.offset + gain @ innovation
        self.covariance = (np.eye(3) - gain) @ self.covariance
        self.fix_count += 1

    def corrected_pose(self, vio_pose: Pose) -> Pose:
        """The VIO pose with the estimated world offset applied."""
        return Pose(vio_pose.rotation.copy(), vio_pose.translation + self.offset)

    @property
    def has_converged(self) -> bool:
        return self.fix_count >= 3
