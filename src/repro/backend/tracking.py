"""Tracking block: pose estimation against a map (registration and SLAM).

Given the current frame's stereo features and a map of 3-D points, the
tracking block estimates the absolute pose.  Its pipeline follows the
registration-mode breakdown of Fig. 6:

* **Projection** — project every map point through the camera model at the
  pose prior (the ``C @ X`` matrix multiplication whose latency scales with
  the number of map points, Fig. 16a).
* **Match** — associate current observations with projected map points
  (by persistent identity in sparse mode, by descriptor otherwise), with the
  bag-of-words database used for relocalization when the prior is unreliable.
* **Pose optimization** — closed-form absolute orientation (Horn/SVD) on the
  3-D/3-D correspondences followed by robust re-weighted refinement.
* **Update** — refresh map statistics and the keyframe database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend.bow import BinaryVocabulary, KeyframeDatabase
from repro.common.camera import PinholeCamera
from repro.common.config import TrackingConfig
from repro.common.geometry import Pose, homogeneous
from repro.common.timing import StopwatchCollector
from repro.frontend.frontend import FrontendResult, synthetic_descriptors_for_tracks
from repro.frontend.orb import descriptor_from_seed, hamming_distance_matrix
from repro.linalg.ops import matmul
from repro.sensors.world import LandmarkWorld, camera_frame_from_body


@dataclass
class RegistrationWorkload:
    """Problem sizes the registration-mode kernels operated on this frame."""

    map_points: int = 0
    # Visible (frustum-culled) subset actually pushed through projection.
    # None means "not measured" (synthetic workloads), distinct from a
    # legitimate zero-visibility frame.
    projected_points: Optional[int] = None
    matches: int = 0
    inliers: int = 0
    pose_iterations: int = 0

    @property
    def projection_points(self) -> int:
        """The Fig. 16a x-axis: number of points pushed through projection.

        With frustum culling this is the per-frame visible subset of the map
        (the source of the registration mode's latency variation); synthetic
        workloads that only populate ``map_points`` fall back to the full map.
        """
        return self.map_points if self.projected_points is None else self.projected_points


@dataclass
class MapPoint:
    """One point of a localization map."""

    point_id: int
    position: np.ndarray
    descriptor: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float).reshape(3)


class LocalizationMap:
    """A map of 3-D points plus a keyframe database for place recognition."""

    def __init__(self, points: Optional[List[MapPoint]] = None,
                 vocabulary: Optional[BinaryVocabulary] = None) -> None:
        self.points: Dict[int, MapPoint] = {p.point_id: p for p in (points or [])}
        self.vocabulary = vocabulary
        self.database = KeyframeDatabase()
        self.keyframe_poses: Dict[int, Pose] = {}

    def __len__(self) -> int:
        return len(self.points)

    @property
    def positions(self) -> np.ndarray:
        if not self.points:
            return np.zeros((0, 3))
        return np.array([p.position for p in self.points.values()])

    @property
    def point_ids(self) -> List[int]:
        return list(self.points.keys())

    def descriptors(self) -> np.ndarray:
        items = [p.descriptor for p in self.points.values() if p.descriptor is not None]
        if not items:
            return np.zeros((0, 32), dtype=np.uint8)
        return np.stack(items)

    def add_point(self, point: MapPoint) -> None:
        self.points[point.point_id] = point

    def update_point(self, point_id: int, position: np.ndarray) -> None:
        if point_id in self.points:
            self.points[point_id].position = np.asarray(position, dtype=float).reshape(3)
        else:
            self.add_point(MapPoint(point_id, position))

    def add_keyframe(self, keyframe_id: int, pose: Pose, descriptors: np.ndarray) -> None:
        self.keyframe_poses[keyframe_id] = pose.copy()
        if self.vocabulary is not None and self.vocabulary.trained and descriptors.shape[0] > 0:
            self.database.add(keyframe_id, self.vocabulary.transform(descriptors))

    @classmethod
    def from_world(cls, world: LandmarkWorld, position_noise: float = 0.05,
                   position_bias_std: float = 0.0,
                   vocabulary_words: int = 64, seed: int = 0) -> "LocalizationMap":
        """Build a pre-constructed map from a simulated landmark world.

        This models the paper's "known environment": the environment has been
        mapped on a previous traversal, so the map is accurate up to a small
        survey noise.  ``position_bias_std`` additionally draws one common
        offset applied to every point — the datum error of a georeferenced
        outdoor survey, which per-point averaging in the pose solver cannot
        remove.
        """
        rng = np.random.default_rng(seed)
        bias = rng.normal(0.0, position_bias_std, size=3) if position_bias_std > 0.0 else np.zeros(3)
        points = []
        descriptors = []
        for landmark in world.landmarks:
            noisy = landmark.position + bias + rng.normal(0.0, position_noise, size=3)
            descriptor = descriptor_from_seed(landmark.landmark_id * 2654435761 % (2**31))
            points.append(MapPoint(landmark.landmark_id, noisy, descriptor))
            descriptors.append(descriptor)
        vocabulary = BinaryVocabulary(num_words=min(vocabulary_words, max(2, len(points) // 2)), seed=seed)
        if len(descriptors) >= vocabulary.num_words:
            vocabulary.train(np.stack(descriptors))
        return cls(points, vocabulary)

    @classmethod
    def from_landmark_positions(cls, positions: Dict[int, np.ndarray]) -> "LocalizationMap":
        """Build a map from the SLAM mapper's current landmark estimates."""
        return cls([MapPoint(pid, pos) for pid, pos in positions.items()])


class MapTracker:
    """Estimates the pose of each frame against a :class:`LocalizationMap`."""

    def __init__(self, config: Optional[TrackingConfig] = None,
                 camera: Optional[PinholeCamera] = None) -> None:
        self.config = config or TrackingConfig()
        self.camera = camera
        self.last_workload = RegistrationWorkload()
        self.last_kernel_ms: Dict[str, float] = {}
        # Basis of the last tracked frame's per-landmark evidence; the
        # triples themselves are computed lazily in last_map_observations —
        # only registration sessions with an active fleet map ever read
        # them, and every other MapTracker frame must not pay for them.
        self._observation_basis: Optional[Tuple[Pose, List]] = None
        self._map_observations: Optional[List[Tuple[int, np.ndarray, float]]] = None

    def track(self, frontend: FrontendResult, localization_map: LocalizationMap,
              prior_pose: Optional[Pose] = None) -> Tuple[Optional[Pose], RegistrationWorkload]:
        """Estimate the frame pose; returns (pose, workload)."""
        stopwatch = StopwatchCollector()
        workload = RegistrationWorkload(map_points=len(localization_map))
        prior = prior_pose or Pose.identity()

        with stopwatch.measure("projection"):
            projected = self._project_map(localization_map, prior)
            workload.projected_points = projected.shape[1] if projected.size else 0

        with stopwatch.measure("match"):
            correspondences = self._match(frontend, localization_map)
            workload.matches = len(correspondences)

        pose: Optional[Pose] = None
        with stopwatch.measure("pose_optimization"):
            if len(correspondences) >= self.config.min_inliers:
                pose, inliers, iterations = self._estimate_pose(correspondences)
                workload.inliers = inliers
                workload.pose_iterations = iterations

        # Stash the basis for the fleet map-update lifecycle's per-landmark
        # evidence; the triples are derived lazily (see
        # last_map_observations) so frames nobody asks about cost nothing.
        self._observation_basis = ((pose, correspondences)
                                   if pose is not None and correspondences else None)
        self._map_observations = None

        with stopwatch.measure("update"):
            if pose is not None and localization_map.vocabulary is not None and localization_map.vocabulary.trained:
                descriptors = synthetic_descriptors_for_tracks(frontend.observations)
                if descriptors.shape[0] > 0:
                    localization_map.add_keyframe(frontend.frame_index, pose, descriptors)

        self.last_workload = workload
        self.last_kernel_ms = stopwatch.as_dict()
        return pose, workload

    @property
    def last_map_observations(self) -> List[Tuple[int, np.ndarray, float]]:
        """Per-landmark evidence of the last tracked frame, computed lazily.

        ``(map point id, observed world position — the body point through
        the solved pose — residual against the map)`` triples; empty when
        tracking failed.  The serving layer's map-update lifecycle is the
        only consumer, so the array work happens on first access per frame
        (cached until the next :meth:`track`), not on every tracked frame
        of every experiment.
        """
        if self._map_observations is None:
            basis = self._observation_basis
            if basis is None:
                self._map_observations = []
            else:
                pose, correspondences = basis
                body = np.array([c[1] for c in correspondences])
                world = np.array([c[2] for c in correspondences])
                observed = pose.transform_points(body)
                residuals = np.linalg.norm(observed - world, axis=1)
                self._map_observations = [
                    (int(c[0]), observed[i], float(residuals[i]))
                    for i, c in enumerate(correspondences)
                ]
        return self._map_observations

    # ------------------------------------------------------------ internals

    def _project_map(self, localization_map: LocalizationMap, prior: Pose) -> np.ndarray:
        """Project all map points through the camera model at the prior pose.

        This is the registration-mode Projection kernel: a 3x4 camera matrix
        multiplied with a 4xM homogeneous point matrix (Sec. VI-A).
        """
        positions = localization_map.positions
        if positions.shape[0] == 0:
            return np.zeros((3, 0))
        camera = self.camera or PinholeCamera.from_fov(640, 480, 90.0)
        points_body = (positions - prior.translation) @ prior.rotation
        points_camera = camera_frame_from_body(points_body)
        # Coarse frustum culling (local-map tracking): only points plausibly
        # visible from the prior pose are pushed through the projection
        # kernel.  The visible subset changes as the platform moves, which is
        # the source of the projection kernel's per-frame latency variation.
        # The lateral cone follows the camera's actual half-FOV (plus a
        # margin for prior-pose error), so narrow-FOV rigs cull tighter.
        depth = points_camera[:, 2]
        slope_x = self.config.cull_fov_margin * camera.width / (2.0 * camera.fx)
        slope_y = self.config.cull_fov_margin * camera.height / (2.0 * camera.fy)
        visible = (
            (depth > self.config.cull_near_m)
            & (depth < self.config.cull_far_m)
            & (np.abs(points_camera[:, 0]) < slope_x * depth + 1.0)
            & (np.abs(points_camera[:, 1]) < slope_y * depth + 1.0)
        )
        points_camera = points_camera[visible]
        if points_camera.shape[0] == 0:
            return np.zeros((3, 0))
        homogeneous_points = homogeneous(points_camera).T  # 4 x M
        return matmul(camera.projection_matrix, homogeneous_points)

    def _match(self, frontend: FrontendResult,
               localization_map: LocalizationMap) -> List[Tuple[int, np.ndarray, np.ndarray, float]]:
        """Associate observations to map points.

        Returns (map point id, body point, map point, noise std) tuples,
        where the noise std summarises the stereo triangulation uncertainty
        of the body point.
        """
        correspondences: List[Tuple[int, np.ndarray, np.ndarray, float]] = []
        matched_by_id = 0
        for obs in frontend.observations:
            map_point = localization_map.points.get(obs.track_id)
            if map_point is not None:
                correspondences.append(
                    (map_point.point_id, obs.point_body, map_point.position, obs.depth_std))
                matched_by_id += 1
        if matched_by_id >= self.config.min_inliers:
            return correspondences

        # Fall back to descriptor matching (needed when track identities do not
        # align with map identities, e.g. dense-frontend relocalization).
        descriptors = synthetic_descriptors_for_tracks(frontend.observations)
        map_descriptors = localization_map.descriptors()
        if descriptors.shape[0] == 0 or map_descriptors.shape[0] == 0:
            return correspondences
        distances = hamming_distance_matrix(descriptors, map_descriptors)
        map_ids = [p.point_id for p in localization_map.points.values()]
        for i, obs in enumerate(frontend.observations):
            j = int(np.argmin(distances[i]))
            if distances[i, j] <= 64:
                correspondences.append(
                    (map_ids[j], obs.point_body,
                     localization_map.points[map_ids[j]].position, obs.depth_std)
                )
        return correspondences

    def _estimate_pose(self, correspondences: List[Tuple[int, np.ndarray, np.ndarray, float]]) -> Tuple[Pose, int, int]:
        """Robust absolute-orientation estimation from 3-D/3-D matches."""
        body = np.array([c[1] for c in correspondences])
        world = np.array([c[2] for c in correspondences])
        sigma = np.maximum(np.array([c[3] for c in correspondences]), 1e-3)
        base_weights = 1.0 / sigma**2
        weights = base_weights.copy()
        pose = Pose.identity()
        iterations = 0
        inliers = len(correspondences)
        for iteration in range(self.config.pnp_iterations):
            iterations += 1
            pose = _weighted_horn(body, world, weights)
            predicted = pose.transform_points(body)
            errors = np.linalg.norm(predicted - world, axis=1)
            threshold = self.config.pnp_inlier_threshold * np.maximum(sigma, 0.05)
            inlier_mask = errors <= threshold
            inliers = int(inlier_mask.sum())
            new_weights = base_weights * inlier_mask.astype(float)
            if inliers < self.config.min_inliers:
                new_weights = base_weights
                inliers = len(correspondences)
            if np.allclose(new_weights, weights):
                break
            weights = new_weights
        return pose, inliers, iterations


def _weighted_horn(body: np.ndarray, world: np.ndarray, weights: np.ndarray) -> Pose:
    """Weighted Horn's method: find R, t with ``world ~= R @ body + t``."""
    weights = np.asarray(weights, dtype=float)
    total = max(weights.sum(), 1e-9)
    body_centroid = (weights[:, None] * body).sum(axis=0) / total
    world_centroid = (weights[:, None] * world).sum(axis=0) / total
    body_centered = body - body_centroid
    world_centered = world - world_centroid
    covariance = (weights[:, None] * body_centered).T @ world_centered
    u, _, vt = np.linalg.svd(covariance)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    correction = np.diag([1.0, 1.0, d])
    rotation = vt.T @ correction @ u.T
    translation = world_centroid - rotation @ body_centroid
    return Pose(rotation, translation)
