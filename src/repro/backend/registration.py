"""Registration backend mode: localize against a pre-constructed map.

Registration calculates the 6-DoF pose against a given map (Sec. III): the
tracking block matches the current frame's features to map points and solves
for the transform that minimizes the 3-D error.  It is the preferred mode for
known indoor environments (Fig. 2) where GPS is unavailable but a survey map
exists.
"""

from __future__ import annotations

from typing import Optional

from repro.backend.base import BackendResult
from repro.backend.tracking import LocalizationMap, MapTracker, RegistrationWorkload
from repro.common.config import TrackingConfig
from repro.common.geometry import Pose
from repro.frontend.frontend import FrontendResult
from repro.sensors.dataset import Frame
from repro.sensors.world import LandmarkWorld


class RegistrationBackend:
    """Per-frame registration against a fixed map."""

    def __init__(self, localization_map: LocalizationMap,
                 config: Optional[TrackingConfig] = None, camera=None) -> None:
        self.map = localization_map
        self.tracker = MapTracker(config=config, camera=camera)
        self._last_pose: Optional[Pose] = None

    @classmethod
    def from_world(cls, world: LandmarkWorld, config: Optional[TrackingConfig] = None,
                   map_noise: float = 0.05, map_bias_std: float = 0.0,
                   camera=None, seed: int = 0) -> "RegistrationBackend":
        """Build the backend with a survey map derived from the true world."""
        localization_map = LocalizationMap.from_world(
            world, position_noise=map_noise, position_bias_std=map_bias_std, seed=seed
        )
        return cls(localization_map, config=config, camera=camera)

    @classmethod
    def from_snapshot(cls, snapshot, config: Optional[TrackingConfig] = None,
                      camera=None) -> "RegistrationBackend":
        """Build the backend from a fleet-built map snapshot.

        ``snapshot`` is a :class:`~repro.maps.MapSnapshot` (duck-typed to
        avoid a package cycle): the map one or more SLAM sessions published
        for a shared environment, acquired by this session at serve time.
        """
        return cls(snapshot.to_localization_map(), config=config, camera=camera)

    def reset(self) -> None:
        self._last_pose = None

    @property
    def map_observations(self):
        """Per-landmark evidence of the last tracked frame.

        ``(map point id, observed world position, residual)`` triples from
        :attr:`~repro.backend.tracking.MapTracker.last_map_observations` —
        the raw material of the fleet map-update lifecycle: a registration
        session re-observes the same landmarks every frame, and these
        observations are what it accumulates into a
        :class:`~repro.maps.update.MapUpdate` at map exit.  Empty when the
        last frame's tracking failed.
        """
        return self.tracker.last_map_observations

    def initialize(self, pose: Pose) -> None:
        """Seed the tracking prior (state handover from another backend).

        Registration estimates every frame independently, so only the prior
        used for map projection/culling carries over — but seeding it keeps
        the first tracked frame's visible-map workload consistent with the
        client's actual viewpoint after a mid-stream switch.
        """
        self._last_pose = pose.copy()

    def process(self, frontend: FrontendResult, frame: Frame) -> BackendResult:
        """Estimate the pose of one frame against the map."""
        prior = self._last_pose
        pose, workload = self.tracker.track(frontend, self.map, prior_pose=prior)
        valid = pose is not None
        if pose is None:
            # Hold the previous estimate when tracking fails (standard practice).
            pose = self._last_pose.copy() if self._last_pose is not None else Pose.identity()
        self._last_pose = pose.copy()
        return BackendResult(
            frame_index=frame.index,
            timestamp=frame.timestamp,
            pose=pose,
            mode="registration",
            workload=workload,
            kernel_ms=dict(self.tracker.last_kernel_ms),
            diagnostics={"matches": workload.matches, "inliers": workload.inliers},
            valid=valid,
        )
