"""VIO backend mode: MSCKF filtering plus loosely-coupled GPS fusion.

VIO computes the relative pose from visual feature tracks and IMU samples via
the filtering block, and — when GPS is available — corrects the accumulated
drift through the fusion block (Sec. IV-A).  It is the preferred mode
outdoors (Fig. 2/3) where GPS provides absolute positioning.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend.base import BackendResult
from repro.backend.fusion import GpsFusion
from repro.backend.msckf import Msckf
from repro.common.config import BackendConfig
from repro.common.geometry import Pose
from repro.common.timing import StopwatchCollector
from repro.frontend.frontend import FrontendResult
from repro.sensors.dataset import Frame


class VioBackend:
    """Filtering + Fusion pipeline."""

    def __init__(self, config: Optional[BackendConfig] = None, use_gps: bool = True) -> None:
        self.config = config or BackendConfig()
        self.filter = Msckf(self.config.msckf)
        self.fusion = GpsFusion(self.config.fusion)
        self.use_gps = bool(use_gps)

    def reset(self) -> None:
        self.filter = Msckf(self.config.msckf)
        self.fusion = GpsFusion(self.config.fusion)

    @property
    def initialized(self) -> bool:
        return self.filter.initialized

    def initialize(self, pose: Pose, velocity: Optional[np.ndarray] = None) -> None:
        self.filter.initialize(pose, velocity)
        self.fusion.reset()

    def process(self, frontend: FrontendResult, frame: Frame) -> BackendResult:
        """Run one VIO step: propagate, update, and fuse GPS if present."""
        if not self.filter.initialized:
            self.initialize(frame.ground_truth, frame.ground_truth_velocity)

        vio_pose = self.filter.process_frame(frontend, frame.imu_samples)
        kernel_ms = dict(self.filter.last_kernel_ms)

        stopwatch = StopwatchCollector()
        with stopwatch.measure("fusion"):
            if self.use_gps and frame.has_gps:
                self.fusion.update(vio_pose, frame.gps)
            pose = self.fusion.corrected_pose(vio_pose) if self.fusion.has_converged else vio_pose
        kernel_ms.update(stopwatch.as_dict())

        workload = self.filter.last_workload
        return BackendResult(
            frame_index=frame.index,
            timestamp=frame.timestamp,
            pose=pose,
            mode="vio",
            workload=workload,
            kernel_ms=kernel_ms,
            diagnostics={
                "clones": workload.clone_count,
                "features_used": workload.features_used,
                "gps_fused": bool(self.use_gps and frame.has_gps),
            },
        )
