"""Marginalization via the Schur complement (SLAM mode's variation kernel).

When the sliding-window bundle adjustment drops an old keyframe, the
information it carried about the remaining states must be preserved as a
prior.  This is done with the Schur complement of the Hessian:

    H = [[A_mm, A_mr],
         [A_rm, A_rr]]            (m = marginalized, r = remaining)

    H_prior = A_rr - A_rm  A_mm^-1  A_mr
    b_prior = b_r  - A_rm  A_mm^-1  b_m

which composes all five matrix building blocks of Table I: multiplication,
decomposition, inverse, transpose and substitution.  The ``A_mm`` block has
the structure the paper exploits in hardware — a diagonal landmark block plus
a dense 6x6 pose block — and :func:`marginalize_structured` uses exactly that
specialization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.linalg.ops import matmul, transpose
from repro.linalg.solvers import block_diag_plus_dense_inverse, symmetric_inverse


@dataclass
class MarginalizationResult:
    """Prior produced by marginalizing part of the state."""

    hessian: np.ndarray
    gradient: np.ndarray
    marginalized_dim: int
    remaining_dim: int


def marginalize_schur(hessian: np.ndarray, gradient: np.ndarray,
                      marginalize_indices: Sequence[int]) -> MarginalizationResult:
    """Marginalize the given state indices out of (H, b) with a Schur complement."""
    hessian = np.asarray(hessian, dtype=float)
    gradient = np.asarray(gradient, dtype=float).reshape(-1)
    n = hessian.shape[0]
    if hessian.shape != (n, n) or gradient.shape[0] != n:
        raise ValueError("hessian/gradient dimensions are inconsistent")
    marg = np.asarray(sorted(set(int(i) for i in marginalize_indices)), dtype=int)
    if marg.size and (marg.min() < 0 or marg.max() >= n):
        raise ValueError("marginalize_indices out of range")
    keep = np.asarray([i for i in range(n) if i not in set(marg.tolist())], dtype=int)

    if marg.size == 0:
        return MarginalizationResult(hessian.copy(), gradient.copy(), 0, n)
    if keep.size == 0:
        return MarginalizationResult(np.zeros((0, 0)), np.zeros(0), n, 0)

    a_mm = hessian[np.ix_(marg, marg)]
    a_mr = hessian[np.ix_(marg, keep)]
    # The Hessian is symmetric, so A_rm is the transpose of A_mr — computed
    # through the transpose building block exactly as the accelerator does.
    a_rm = transpose(a_mr)
    a_rr = hessian[np.ix_(keep, keep)]
    b_m = gradient[marg]
    b_r = gradient[keep]

    # Regularize A_mm slightly: repeated marginalization can make it singular.
    a_mm = a_mm + np.eye(a_mm.shape[0]) * 1e-9
    a_mm_inv = symmetric_inverse(a_mm)
    a_rm_a_mm_inv = matmul(a_rm, a_mm_inv)

    prior_hessian = a_rr - matmul(a_rm_a_mm_inv, a_mr)
    prior_gradient = b_r - a_rm_a_mm_inv @ b_m
    prior_hessian = 0.5 * (prior_hessian + prior_hessian.T)
    return MarginalizationResult(prior_hessian, prior_gradient, int(marg.size), int(keep.size))


def marginalize_structured(landmark_diagonal: np.ndarray, pose_block: np.ndarray,
                           landmark_pose_coupling: np.ndarray, a_mr: np.ndarray,
                           a_rr: np.ndarray, b_m: np.ndarray,
                           b_r: np.ndarray) -> MarginalizationResult:
    """Marginalization exploiting the paper's ``A_mm`` structure.

    ``A_mm = [[diag(landmark_diagonal), landmark_pose_coupling],
              [landmark_pose_coupling^T, pose_block]]`` where ``pose_block``
    is the departing keyframe's 6x6 block.  The inverse uses the specialized
    diagonal-plus-6x6 routine the accelerator implements in hardware.
    """
    landmark_diagonal = np.asarray(landmark_diagonal, dtype=float).reshape(-1)
    pose_block = np.asarray(pose_block, dtype=float)
    landmark_pose_coupling = np.asarray(landmark_pose_coupling, dtype=float)
    a_mr = np.asarray(a_mr, dtype=float)
    a_rr = np.asarray(a_rr, dtype=float)
    b_m = np.asarray(b_m, dtype=float).reshape(-1)
    b_r = np.asarray(b_r, dtype=float).reshape(-1)

    a_mm_inv = block_diag_plus_dense_inverse(
        landmark_diagonal + 1e-9, pose_block + np.eye(pose_block.shape[0]) * 1e-9,
        landmark_pose_coupling,
    )
    a_rm = transpose(a_mr)
    a_rm_a_mm_inv = matmul(a_rm, a_mm_inv)
    prior_hessian = a_rr - matmul(a_rm_a_mm_inv, a_mr)
    prior_gradient = b_r - a_rm_a_mm_inv @ b_m
    prior_hessian = 0.5 * (prior_hessian + prior_hessian.T)
    return MarginalizationResult(
        prior_hessian, prior_gradient,
        marginalized_dim=landmark_diagonal.size + pose_block.shape[0],
        remaining_dim=a_rr.shape[0],
    )
