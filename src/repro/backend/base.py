"""Common result type returned by every backend mode."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.common.geometry import Pose


@dataclass
class BackendResult:
    """Per-frame output of a backend mode.

    Attributes
    ----------
    frame_index, timestamp:
        Which camera epoch this estimate belongs to.
    pose:
        The estimated 6-DoF pose of the body in the world frame.
    mode:
        Which backend mode produced the estimate ("registration", "vio",
        "slam").
    workload:
        A mode-specific workload record (matrix sizes, iteration counts) used
        by the latency models.
    kernel_ms:
        Wall-clock milliseconds measured for each backend kernel while
        executing the Python implementation.
    diagnostics:
        Free-form extra data (inlier counts, convergence flags, ...).
    """

    frame_index: int
    timestamp: float
    pose: Pose
    mode: str
    workload: Any = None
    kernel_ms: Dict[str, float] = field(default_factory=dict)
    diagnostics: Dict[str, Any] = field(default_factory=dict)
    valid: bool = True

    @property
    def total_measured_ms(self) -> float:
        return float(sum(self.kernel_ms.values()))
