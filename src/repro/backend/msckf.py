"""Multi-State Constraint Kalman Filter (the Filtering block of VIO mode).

The MSCKF keeps a sliding window of past camera poses (clones) rather than
just the most recent state (Sec. IV-A).  IMU samples drive the propagation;
stereo feature tracks that finish (or grow too long) drive the update.  The
measurement model uses the stereo-triangulated 3-D point of each observation
expressed in the body frame of the observing clone, which matches the stereo
MSCKF the paper builds on.

The Kalman-gain computation — the VIO mode's dominant latency-variation
kernel (Fig. 7/10) — is implemented exactly as the accelerator executes it:
form ``S = H P H^T + R`` exploiting symmetry, Cholesky-decompose ``S`` and
forward/backward-substitute to solve ``S K^T = H P`` (Equ. 1a/1b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend.state import CLONE_ERROR_DIM, IMU_ERROR_DIM, MsckfState
from repro.common.config import MSCKFConfig
from repro.common.geometry import Pose, skew, skew_batch, so3_exp
from repro.common.timing import StopwatchCollector
from repro.frontend.frontend import FrontendResult, TrackObservation
from repro.linalg.decompositions import qr_reduced
from repro.linalg.ops import matmul, quadratic_form, transpose
from repro.linalg.solvers import solve_cholesky
from repro.obs.profile import profile_kernel
from repro.sensors.imu import GRAVITY, ImuSample


@dataclass
class VioWorkload:
    """Matrix sizes the VIO backend kernels operated on this frame."""

    imu_samples: int = 0
    clone_count: int = 0
    state_dim: int = IMU_ERROR_DIM
    features_used: int = 0
    jacobian_rows: int = 0
    kalman_gain_dim: int = 0
    qr_rows: int = 0

    @property
    def feature_points(self) -> int:
        """Number of feature points driving the update (Fig. 16b x-axis)."""
        return self.features_used


@dataclass
class _TrackRecord:
    """Accumulated body-frame observations of one track across clones."""

    track_id: int
    observations: List[Tuple[int, np.ndarray, np.ndarray]] = field(default_factory=list)

    def add(self, frame_index: int, point_body: np.ndarray, noise_std: np.ndarray) -> None:
        self.observations.append(
            (
                frame_index,
                np.asarray(point_body, dtype=float).reshape(3),
                np.asarray(noise_std, dtype=float).reshape(3),
            )
        )

    @property
    def length(self) -> int:
        return len(self.observations)


class Msckf:
    """Stereo MSCKF with body-frame point measurements."""

    def __init__(self, config: Optional[MSCKFConfig] = None) -> None:
        self.config = config or MSCKFConfig()
        self.state = MsckfState(window_size=self.config.window_size)
        self._tracks: Dict[int, _TrackRecord] = {}
        self._initialized = False
        self.last_workload = VioWorkload()
        self.last_kernel_ms: Dict[str, float] = {}

    # ------------------------------------------------------------ lifecycle

    def initialize(self, pose: Pose, velocity: Optional[np.ndarray] = None) -> None:
        """Initialize the filter at a known pose (first frame of a segment)."""
        self.state = MsckfState(window_size=self.config.window_size)
        self.state.imu.rotation = pose.rotation.copy()
        self.state.imu.position = pose.translation.copy()
        self.state.imu.velocity = (
            np.asarray(velocity, dtype=float).reshape(3) if velocity is not None else np.zeros(3)
        )
        self._tracks = {}
        self._initialized = True

    @property
    def initialized(self) -> bool:
        return self._initialized

    def pose(self) -> Pose:
        return self.state.imu.pose()

    # ----------------------------------------------------------- processing

    def process_frame(self, frontend: FrontendResult, imu_samples: List[ImuSample]) -> Pose:
        """Propagate with the IMU batch, then update with finished tracks."""
        if not self._initialized:
            raise RuntimeError("Msckf.initialize must be called before process_frame")
        stopwatch = StopwatchCollector()
        workload = VioWorkload()

        with stopwatch.measure("imu_processing"):
            self._propagate(imu_samples)
            workload.imu_samples = len(imu_samples)

        with stopwatch.measure("covariance"):
            self.state.augment(frontend.frame_index, frontend.timestamp)
            self.state.prune_oldest(self.config.window_size)
            workload.clone_count = len(self.state.clones)
            workload.state_dim = self.state.error_dim

        self._record_observations(frontend)
        finished = self._select_update_tracks(frontend)
        if finished:
            with profile_kernel("msckf.update", tracks=len(finished)):
                self._update(finished, stopwatch, workload)

        self.last_workload = workload
        self.last_kernel_ms = stopwatch.as_dict()
        return self.pose()

    # ---------------------------------------------------------- propagation

    def _propagate(self, imu_samples: List[ImuSample]) -> None:
        if len(imu_samples) < 2:
            return
        imu = self.state.imu
        cfg = self.config
        for i in range(len(imu_samples) - 1):
            dt = imu_samples[i + 1].timestamp - imu_samples[i].timestamp
            if dt <= 0:
                continue
            gyro = imu_samples[i].angular_velocity - imu.gyro_bias
            accel = imu_samples[i].linear_acceleration - imu.accel_bias

            rotation = imu.rotation
            accel_world = rotation @ accel + GRAVITY

            # Error-state transition (world-frame rotation error convention).
            state_dim = self.state.error_dim
            phi_imu = np.eye(IMU_ERROR_DIM)
            phi_imu[0:3, 9:12] = -rotation * dt
            phi_imu[3:6, 6:9] = np.eye(3) * dt
            phi_imu[6:9, 0:3] = -skew(rotation @ accel) * dt
            phi_imu[6:9, 12:15] = -rotation * dt

            noise = np.zeros((IMU_ERROR_DIM, IMU_ERROR_DIM))
            noise[0:3, 0:3] = np.eye(3) * cfg.imu_gyro_noise**2 * dt
            noise[6:9, 6:9] = np.eye(3) * cfg.imu_accel_noise**2 * dt
            noise[9:12, 9:12] = np.eye(3) * cfg.imu_gyro_bias_noise**2 * dt
            noise[12:15, 12:15] = np.eye(3) * cfg.imu_accel_bias_noise**2 * dt

            cov = self.state.covariance
            cov[:IMU_ERROR_DIM, :IMU_ERROR_DIM] = (
                phi_imu @ cov[:IMU_ERROR_DIM, :IMU_ERROR_DIM] @ phi_imu.T + noise
            )
            if state_dim > IMU_ERROR_DIM:
                cov[:IMU_ERROR_DIM, IMU_ERROR_DIM:] = phi_imu @ cov[:IMU_ERROR_DIM, IMU_ERROR_DIM:]
                cov[IMU_ERROR_DIM:, :IMU_ERROR_DIM] = cov[:IMU_ERROR_DIM, IMU_ERROR_DIM:].T

            # Nominal state integration.
            imu.rotation = rotation @ so3_exp(gyro * dt)
            imu.position = imu.position + imu.velocity * dt + 0.5 * accel_world * dt * dt
            imu.velocity = imu.velocity + accel_world * dt
        self.state.symmetrize()

    # -------------------------------------------------------------- updates

    def _record_observations(self, frontend: FrontendResult) -> None:
        for obs in frontend.observations:
            record = self._tracks.setdefault(obs.track_id, _TrackRecord(obs.track_id))
            record.add(frontend.frame_index, obs.point_body, obs.noise_std)

    def _select_update_tracks(self, frontend: FrontendResult) -> List[_TrackRecord]:
        """Tracks that are lost this frame or have spanned the full window."""
        current_ids = set(frontend.track_ids)
        clone_frames = {clone.frame_index for clone in self.state.clones}
        finished: List[_TrackRecord] = []
        for track_id in list(self._tracks.keys()):
            record = self._tracks[track_id]
            # Keep only observations that still have a clone in the window.
            record.observations = [
                (frame, point, noise) for frame, point, noise in record.observations
                if frame in clone_frames
            ]
            if not record.observations:
                del self._tracks[track_id]
                continue
            lost = track_id not in current_ids
            saturated = record.length >= self.config.window_size
            if (lost or saturated) and record.length >= self.config.min_track_for_update:
                finished.append(record)
                del self._tracks[track_id]
        finished.sort(key=lambda r: r.length, reverse=True)
        return finished[: self.config.max_features_per_update]

    def _clone_observation_arrays(self, record: _TrackRecord) -> Optional[Tuple[np.ndarray, ...]]:
        """Gather a track's observations that still have a clone in the window.

        Returns ``(clone_indices, points_body, noise_std)`` as arrays, or None
        when no observation matches a clone.
        """
        index_by_frame = {clone.frame_index: i for i, clone in enumerate(self.state.clones)}
        rows = [
            (index_by_frame[frame_index], point_body, noise_std)
            for frame_index, point_body, noise_std in record.observations
            if frame_index in index_by_frame
        ]
        if not rows:
            return None
        clone_idx = np.array([row[0] for row in rows])
        points = np.array([row[1] for row in rows])
        noise = np.array([row[2] for row in rows])
        return clone_idx, points, noise

    @staticmethod
    def _weighted_triangulation(points: np.ndarray, noise: np.ndarray,
                                rotations: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """World-frame feature estimate from gathered clone observations.

        Observations are combined with inverse-variance weights so close-range
        (accurate) stereo points dominate over distant (noisy) ones.
        """
        world = np.einsum("nij,nj->ni", rotations, points) + positions
        weights = (1.0 / noise[:, 0] ** 2).reshape(-1, 1)
        return (world * weights).sum(axis=0) / weights.sum()

    def _triangulate_track(self, record: _TrackRecord) -> Optional[np.ndarray]:
        """Estimate the world-frame feature position from clone observations."""
        gathered = self._clone_observation_arrays(record)
        if gathered is None:
            return None
        clone_idx, points, noise = gathered
        rotations = np.stack([self.state.clones[i].rotation for i in clone_idx])
        positions = np.stack([self.state.clones[i].position for i in clone_idx])
        return self._weighted_triangulation(points, noise, rotations, positions)

    def _update(self, tracks: List[_TrackRecord], stopwatch: StopwatchCollector,
                workload: VioWorkload) -> None:
        state_dim = self.state.error_dim

        with stopwatch.measure("jacobian"):
            rows: List[np.ndarray] = []
            residuals: List[np.ndarray] = []
            for record in tracks:
                block = self._feature_jacobian(record)
                if block is None:
                    continue
                h_block, r_block = block
                rows.append(h_block)
                residuals.append(r_block)
            if not rows:
                return
            h_stack = np.vstack(rows)
            r_stack = np.concatenate(residuals)
            workload.features_used = len(rows)

        with stopwatch.measure("qr"):
            # Compress the stacked Jacobian when it is taller than the state.
            workload.qr_rows = h_stack.shape[0]
            if h_stack.shape[0] > state_dim:
                q, r_upper = qr_reduced(h_stack)
                h_stack = r_upper
                r_stack = q.T @ r_stack
            workload.jacobian_rows = h_stack.shape[0]

        with stopwatch.measure("kalman_gain"):
            noise = np.eye(h_stack.shape[0]) * self.config.observation_noise**2
            covariance = self.state.covariance
            s_matrix = quadratic_form(h_stack, covariance) + noise
            ph_t = matmul(covariance, transpose(h_stack))
            # Solve S K^T = H P  =>  K = (S^-1 H P)^T, via Cholesky + substitution.
            k_transposed = solve_cholesky(s_matrix, transpose(ph_t))
            kalman_gain = k_transposed.T
            workload.kalman_gain_dim = s_matrix.shape[0]

        with stopwatch.measure("covariance"):
            correction = kalman_gain @ r_stack
            identity = np.eye(state_dim)
            ikh = identity - kalman_gain @ h_stack
            self.state.covariance = (
                ikh @ self.state.covariance @ ikh.T + kalman_gain @ noise @ kalman_gain.T
            )
            self.state.symmetrize()
            self.state.apply_correction(correction)

    def _feature_jacobian(self, record: _TrackRecord) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Build the nullspace-projected Jacobian and residual for one track."""
        state_dim = self.state.error_dim

        gathered = self._clone_observation_arrays(record)
        if gathered is None or gathered[0].size < 2:
            return None
        clone_idx, points_body, noise_std = gathered
        count = clone_idx.size
        rotations = np.stack([self.state.clones[i].rotation for i in clone_idx])
        positions = np.stack([self.state.clones[i].position for i in clone_idx])
        feature_world = self._weighted_triangulation(points_body, noise_std, rotations, positions)

        deltas = feature_world - positions                       # (n, 3)
        predicted = np.einsum("nji,nj->ni", rotations, deltas)   # R^T (f - p)
        residuals = points_body - predicted

        # Per-observation blocks: dh/d(rot) = R^T [f - p]_x, dh/d(pos) = -R^T,
        # dh/d(feature) = R^T; whitened by the per-axis stereo noise so the
        # update can use an identity measurement covariance (scaled by
        # observation_noise).
        rotation_t = np.transpose(rotations, (0, 2, 1))
        whitening = (1.0 / noise_std)[:, :, None]                # (n, 3, 1)
        h_rot = whitening * np.einsum("nji,njk->nik", rotations, skew_batch(deltas))
        h_pos = -whitening * rotation_t
        h_f = whitening * rotation_t
        residuals = residuals / noise_std

        # Scatter each 3x6 clone block into the sparse full-state Jacobian.
        h_x = np.zeros((count, 3, state_dim))
        offsets = np.array([self.state.clone_offset(i) for i in clone_idx])
        columns = offsets[:, None] + np.arange(CLONE_ERROR_DIM)[None, :]      # (n, 6)
        blocks = np.concatenate([h_rot, h_pos], axis=2)                       # (n, 3, 6)
        h_x[np.arange(count)[:, None, None], np.arange(3)[None, :, None],
            columns[:, None, :]] = blocks

        h_x_stack = h_x.reshape(3 * count, state_dim)
        h_f_stack = h_f.reshape(3 * count, 3)
        residual_stack = residuals.reshape(-1)

        # Project onto the left nullspace of H_f to remove the feature error.
        q_full, _ = np.linalg.qr(h_f_stack, mode="complete")
        nullspace = q_full[:, 3:]
        projected_h = nullspace.T @ h_x_stack
        projected_r = nullspace.T @ residual_stack

        # Chi-square style gating on the residual magnitude.
        if np.linalg.norm(projected_r) > 10.0 * self.config.observation_noise * np.sqrt(len(projected_r)):
            return None
        return projected_h, projected_r
