"""SLAM backend mode: mapping and tracking running side by side.

SLAM simultaneously constructs a map and localizes within it (Sec. III).
The mapping block runs sliding-window bundle adjustment over keyframes and
landmarks; the tracking block estimates every frame's pose against the
latest map the mapper produced (Sec. IV-A).  A frame-to-frame visual
odometry step provides the motion prior so mapping continues even through
viewpoints the current map does not cover, and landmark re-observation when
a place is revisited acts as the loop closure that bounds drift.  The
generated map can be persisted and later used by the registration mode.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.backend.base import BackendResult
from repro.backend.mapping import KeyframeMapper, SlamWorkload
from repro.backend.tracking import LocalizationMap, MapTracker, _weighted_horn
from repro.common.config import BackendConfig
from repro.common.geometry import Pose
from repro.common.timing import StopwatchCollector
from repro.frontend.frontend import FrontendResult
from repro.sensors.dataset import Frame


class SlamBackend:
    """Mapping + Tracking pipeline with keyframe-based bundle adjustment."""

    def __init__(self, config: Optional[BackendConfig] = None, camera=None) -> None:
        self.config = config or BackendConfig()
        self.mapper = KeyframeMapper(self.config.mapping)
        self.tracker = MapTracker(self.config.tracking, camera=camera)
        self.map = LocalizationMap()
        self._last_pose: Optional[Pose] = None
        self._last_relative: Optional[Pose] = None
        self._previous_points: Dict[int, np.ndarray] = {}
        self._previous_sigmas: Dict[int, float] = {}
        self._initialized = False

    def reset(self) -> None:
        self.mapper = KeyframeMapper(self.config.mapping)
        self.map = LocalizationMap()
        self._last_pose = None
        self._last_relative = None
        self._previous_points = {}
        self._previous_sigmas = {}
        self._initialized = False

    @property
    def initialized(self) -> bool:
        return self._initialized

    def initialize(self, pose: Pose) -> None:
        self._last_pose = pose.copy()
        self._initialized = True

    def persist_map(self) -> LocalizationMap:
        """Export the current map (the optional "persist map" path of Fig. 4)."""
        return LocalizationMap.from_landmark_positions(self.mapper.landmark_positions())

    def process(self, frontend: FrontendResult, frame: Frame) -> BackendResult:
        """Track against the latest map, inserting keyframes as needed."""
        if not self._initialized:
            self.initialize(frame.ground_truth)

        stopwatch = StopwatchCollector()
        kernel_ms: Dict[str, float] = {}
        workload = SlamWorkload()

        with stopwatch.measure("others"):
            self._sync_map_from_mapper()
            predicted = self._visual_odometry_prediction(frontend)

            pose: Optional[Pose] = None
            coverage = self._map_coverage(frontend)
            if len(self.map) >= self.config.tracking.min_inliers and coverage > 0.2:
                pose, _tracking_workload = self.tracker.track(frontend, self.map, prior_pose=predicted)
            if pose is None or pose.distance_to(predicted) > 2.0:
                # Reject tracking results far from the motion model (standard
                # gating against bad data association) and fall back to VO.
                pose = predicted

        # Mapping: insert a keyframe when the platform moved enough or the
        # current view is poorly covered by the existing map.
        if self.mapper.should_insert_keyframe(pose) or coverage < 0.5:
            workload = self.mapper.insert_keyframe(frontend, pose)
            kernel_ms.update(self.mapper.last_kernel_ms)
            latest = self.mapper.latest_pose()
            if latest is not None:
                pose = latest

        kernel_ms.update(stopwatch.as_dict())
        # Ensure the canonical kernel names always appear in the breakdown.
        kernel_ms.setdefault("solver", 0.0)
        kernel_ms.setdefault("marginalization", 0.0)
        kernel_ms.setdefault("init", 0.0)

        self._last_pose = pose.copy()
        self._previous_points = {obs.track_id: obs.point_body.copy() for obs in frontend.observations}
        self._previous_sigmas = {obs.track_id: float(np.mean(obs.noise_std)) for obs in frontend.observations}
        workload.keyframes = len(self.mapper.keyframes)
        workload.landmarks = self.mapper.map_size
        return BackendResult(
            frame_index=frame.index,
            timestamp=frame.timestamp,
            pose=pose,
            mode="slam",
            workload=workload,
            kernel_ms=kernel_ms,
            diagnostics={
                "keyframes": len(self.mapper.keyframes),
                "map_size": self.mapper.map_size,
                "map_coverage": coverage,
            },
        )

    # ------------------------------------------------------------ internals

    def _sync_map_from_mapper(self) -> None:
        """Refresh the tracking map with the mapper's latest landmark estimates."""
        for track_id, position in self.mapper.landmarks.items():
            self.map.update_point(track_id, position)

    def _map_coverage(self, frontend: FrontendResult) -> float:
        """Fraction of the current observations already present in the map."""
        if not frontend.observations:
            return 0.0
        known = sum(1 for obs in frontend.observations if obs.track_id in self.mapper.landmarks)
        return known / len(frontend.observations)

    def _visual_odometry_prediction(self, frontend: FrontendResult) -> Pose:
        """Predict the pose from frame-to-frame motion of common tracks.

        When the view is feature-poor (fewer than a handful of common tracks)
        the frame-to-frame estimate is unreliable, so a constant-velocity
        model (replaying the previous relative motion) bridges the gap.
        """
        if self._last_pose is None:
            return Pose.identity()
        if not self._previous_points:
            return self._last_pose.copy()
        current, previous, weights = [], [], []
        for obs in frontend.observations:
            if obs.track_id in self._previous_points:
                current.append(obs.point_body)
                previous.append(self._previous_points[obs.track_id])
                sigma = max(self._previous_sigmas.get(obs.track_id, 0.1), float(np.mean(obs.noise_std)), 1e-3)
                weights.append(1.0 / sigma**2)
        if len(current) < 8:
            if self._last_relative is not None:
                return self._last_pose.compose(self._last_relative)
            return self._last_pose.copy()
        # Relative motion: previous-body-frame point = R_rel @ current + t_rel.
        relative = _weighted_horn(np.asarray(current), np.asarray(previous), np.asarray(weights))
        self._last_relative = relative
        return self._last_pose.compose(relative)
