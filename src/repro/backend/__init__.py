"""Optimization backends: filtering (VIO), mapping/tracking (SLAM), registration.

The backend calculates the 6-DoF pose from the visual correspondences
produced by the frontend (Sec. IV-A).  It operates in one of three modes,
each activating a different set of blocks:

* **VIO mode** — Filtering (MSCKF) + Fusion (loosely-coupled GPS EKF).
* **SLAM mode** — Mapping (bundle adjustment with marginalization) running
  alongside Tracking against the continuously updated map.
* **Registration mode** — Tracking against a pre-constructed map using
  bag-of-words place recognition and camera-model projection.

Each per-frame result carries a workload record describing the matrix sizes
the mode's variation-contributing kernel operated on (projection, Kalman
gain, marginalization), which drives both the CPU baseline latency model and
the backend accelerator model.
"""

from repro.backend.state import ImuState, CloneState, MsckfState
from repro.backend.msckf import Msckf, VioWorkload
from repro.backend.fusion import GpsFusion
from repro.backend.mapping import KeyframeMapper, SlamWorkload
from repro.backend.marginalization import marginalize_schur
from repro.backend.bow import BinaryVocabulary, KeyframeDatabase
from repro.backend.tracking import MapTracker, RegistrationWorkload, LocalizationMap, MapPoint
from repro.backend.registration import RegistrationBackend
from repro.backend.vio import VioBackend
from repro.backend.slam import SlamBackend
from repro.backend.base import BackendResult

__all__ = [
    "ImuState",
    "CloneState",
    "MsckfState",
    "Msckf",
    "VioWorkload",
    "GpsFusion",
    "KeyframeMapper",
    "SlamWorkload",
    "marginalize_schur",
    "BinaryVocabulary",
    "KeyframeDatabase",
    "MapTracker",
    "RegistrationWorkload",
    "LocalizationMap",
    "MapPoint",
    "RegistrationBackend",
    "VioBackend",
    "SlamBackend",
    "BackendResult",
]
