"""Mapping block: sliding-window bundle adjustment (SLAM mode).

The mapping block solves a non-linear least-squares problem over a window of
keyframe poses and the landmarks they observe, minimizing the discrepancy
between the stereo-measured body-frame points and the map (Sec. IV-A).  The
problem is solved with Levenberg-Marquardt, mirroring the Ceres LM solver the
paper targets, and uses the Schur complement over landmarks so the reduced
system only involves keyframe poses.  When the window overflows, the oldest
keyframe and its exclusive landmarks are marginalized into a prior — the
SLAM mode's dominant latency-variation kernel (Fig. 8/11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend.marginalization import MarginalizationResult, marginalize_schur
from repro.common.config import MappingConfig
from repro.common.geometry import Pose, skew_batch, so3_exp
from repro.common.timing import StopwatchCollector
from repro.frontend.frontend import FrontendResult
from repro.linalg.ops import matmul, transpose
from repro.linalg.solvers import batched_symmetric_inverse, solve_cholesky
from repro.obs.profile import profile_kernel


@dataclass
class SlamWorkload:
    """Problem sizes the SLAM backend kernels operated on this frame."""

    keyframes: int = 0
    landmarks: int = 0
    observations: int = 0
    solver_iterations: int = 0
    hessian_dim: int = 0
    marginalized_dim: int = 0
    feature_points: int = 0


@dataclass
class Keyframe:
    """One keyframe in the optimization window."""

    frame_index: int
    timestamp: float
    pose: Pose
    observations: Dict[int, np.ndarray] = field(default_factory=dict)  # track -> body point
    observation_sigma: Dict[int, float] = field(default_factory=dict)  # track -> noise std

    def sigma(self, track_id: int) -> float:
        return self.observation_sigma.get(track_id, 0.1)


class KeyframeMapper:
    """Sliding-window bundle adjustment with Schur-complement marginalization."""

    def __init__(self, config: Optional[MappingConfig] = None) -> None:
        self.config = config or MappingConfig()
        self.keyframes: List[Keyframe] = []
        self.landmarks: Dict[int, np.ndarray] = {}
        # Marginalization prior over the keyframe poses currently in the window.
        self._prior_hessian: Optional[np.ndarray] = None
        self._prior_gradient: Optional[np.ndarray] = None
        self._prior_frames: List[int] = []
        self.last_workload = SlamWorkload()
        self.last_kernel_ms: Dict[str, float] = {}

    # ------------------------------------------------------------ interface

    @property
    def map_size(self) -> int:
        return len(self.landmarks)

    def landmark_positions(self) -> Dict[int, np.ndarray]:
        return {track_id: position.copy() for track_id, position in self.landmarks.items()}

    def latest_pose(self) -> Optional[Pose]:
        if not self.keyframes:
            return None
        return self.keyframes[-1].pose.copy()

    def residual_stats(self) -> Tuple[float, float, int]:
        """Window self-consistency: (mean, max, count) of observation residuals.

        The residual of one observation is the distance between the
        keyframe-observed body point transformed into the world and the
        current landmark estimate — the quantity the bundle adjustment
        minimizes.  This is the observable map-quality statistic a fleet
        can compute without ground truth; the map service records it in
        every published snapshot.
        """
        residuals: List[float] = []
        for keyframe in self.keyframes:
            for track_id, point_body in keyframe.observations.items():
                landmark = self.landmarks.get(track_id)
                if landmark is None:
                    continue
                predicted = keyframe.pose.transform_point(point_body)
                residuals.append(float(np.linalg.norm(predicted - landmark)))
        if not residuals:
            return 0.0, 0.0, 0
        return float(np.mean(residuals)), float(np.max(residuals)), len(residuals)

    def should_insert_keyframe(self, pose: Pose) -> bool:
        """Insert a keyframe when the pose moved enough since the last one."""
        if not self.keyframes:
            return True
        last = self.keyframes[-1].pose
        translation = float(np.linalg.norm(pose.translation - last.translation))
        rotation = pose.rotation_angle_to(last)
        return translation > self.config.keyframe_translation or rotation > self.config.keyframe_rotation

    def insert_keyframe(self, frontend: FrontendResult, pose_guess: Pose) -> SlamWorkload:
        """Add a keyframe, run the solver, and marginalize if needed."""
        stopwatch = StopwatchCollector()
        workload = SlamWorkload()

        with stopwatch.measure("init"):
            keyframe = Keyframe(
                frame_index=frontend.frame_index,
                timestamp=frontend.timestamp,
                pose=pose_guess.copy(),
                observations={obs.track_id: obs.point_body.copy() for obs in frontend.observations},
                observation_sigma={obs.track_id: max(float(np.mean(obs.noise_std)), 1e-3)
                                   for obs in frontend.observations},
            )
            self.keyframes.append(keyframe)
            self._initialize_landmarks(keyframe)

        with stopwatch.measure("solver"):
            with profile_kernel("slam.bundle_adjustment",
                                keyframes=len(self.keyframes)):
                iterations = self._optimize(workload)
            workload.solver_iterations = iterations

        with stopwatch.measure("marginalization"):
            if len(self.keyframes) > self.config.window_size:
                with profile_kernel("slam.marginalization"):
                    self._marginalize_oldest(workload)

        workload.keyframes = len(self.keyframes)
        workload.landmarks = len(self.landmarks)
        workload.observations = sum(len(kf.observations) for kf in self.keyframes)
        self.last_workload = workload
        self.last_kernel_ms = stopwatch.as_dict()
        return workload

    # ------------------------------------------------------------ internals

    def _initialize_landmarks(self, keyframe: Keyframe) -> None:
        for track_id, point_body in keyframe.observations.items():
            if track_id not in self.landmarks:
                self.landmarks[track_id] = keyframe.pose.transform_point(point_body)

    def _window_landmark_ids(self) -> List[int]:
        """Landmarks observed by at least two keyframes in the window."""
        counts: Dict[int, int] = {}
        for keyframe in self.keyframes:
            for track_id in keyframe.observations:
                counts[track_id] = counts.get(track_id, 0) + 1
        return sorted(track_id for track_id, count in counts.items() if count >= 2 and track_id in self.landmarks)

    def _optimize(self, workload: SlamWorkload) -> int:
        """Levenberg-Marquardt over window poses and landmarks (Schur trick)."""
        landmark_ids = self._window_landmark_ids()
        if len(self.keyframes) < 2 or not landmark_ids:
            return 0
        gathered = self._gather_window(landmark_ids)
        if gathered is None:
            return 0
        damping = self.config.initial_damping
        previous_cost = self._total_cost(landmark_ids, gathered)
        iterations = 0
        for _ in range(self.config.max_iterations):
            iterations += 1
            step = self._solve_normal_equations(landmark_ids, damping, workload, gathered)
            if step is None:
                break
            pose_deltas, landmark_deltas = step
            backup = self._snapshot()
            self._apply_step(landmark_ids, pose_deltas, landmark_deltas)
            cost = self._total_cost(landmark_ids, gathered)
            if cost < previous_cost:
                damping = max(damping * self.config.damping_down, 1e-9)
                if previous_cost - cost < self.config.convergence_tolerance * max(previous_cost, 1.0):
                    previous_cost = cost
                    break
                previous_cost = cost
            else:
                self._restore(backup)
                damping *= self.config.damping_up
        return iterations

    def _snapshot(self):
        return (
            [(kf.pose.rotation.copy(), kf.pose.translation.copy()) for kf in self.keyframes],
            {k: v.copy() for k, v in self.landmarks.items()},
        )

    def _restore(self, backup) -> None:
        poses, landmarks = backup
        for keyframe, (rotation, translation) in zip(self.keyframes, poses):
            keyframe.pose = Pose(rotation, translation)
        self.landmarks = landmarks

    def _gather_window(self, landmark_ids: List[int]) -> Optional[Tuple[np.ndarray, ...]]:
        """Flatten the window's (keyframe, landmark) observations into index arrays.

        The observation structure is fixed while the solver iterates (only the
        pose and landmark values move), so the gather runs once per solve and
        every residual/Jacobian evaluation afterwards is a batched array op.
        """
        index_of = {track_id: i for i, track_id in enumerate(landmark_ids)}
        kf_idx: List[int] = []
        lm_idx: List[int] = []
        meas: List[np.ndarray] = []
        sigma: List[float] = []
        for k, keyframe in enumerate(self.keyframes):
            for track_id, measurement in keyframe.observations.items():
                j = index_of.get(track_id)
                if j is None:
                    continue
                kf_idx.append(k)
                lm_idx.append(j)
                meas.append(measurement)
                sigma.append(keyframe.sigma(track_id))
        if not kf_idx:
            return None
        return (
            np.asarray(kf_idx),
            np.asarray(lm_idx),
            np.asarray(meas, dtype=float),
            np.maximum(np.asarray(sigma, dtype=float), 1e-3),
        )

    def _batched_residuals(self, gathered: Tuple[np.ndarray, ...],
                           landmark_ids: List[int]) -> Tuple[np.ndarray, ...]:
        """Residuals and Huber weights for every gathered observation at once."""
        kf_idx, lm_idx, meas, sigma = gathered
        rotations = np.stack([kf.pose.rotation for kf in self.keyframes])
        translations = np.stack([kf.pose.translation for kf in self.keyframes])
        landmarks = np.stack([self.landmarks[track_id] for track_id in landmark_ids])
        rot = rotations[kf_idx]                                   # (n, 3, 3)
        delta = landmarks[lm_idx] - translations[kf_idx]          # (n, 3)
        predicted = np.einsum("nji,nj->ni", rot, delta)           # R^T (l - t)
        residual = meas - predicted
        base = 1.0 / sigma**2
        norm = np.linalg.norm(residual, axis=1) / sigma
        weight = np.where(
            norm <= self.config.huber_delta,
            base,
            base * self.config.huber_delta / np.maximum(norm, 1e-12),
        )
        return rot, delta, residual, weight

    @staticmethod
    def _batched_jacobians(rot: np.ndarray, delta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Pose and landmark Jacobian blocks for a batch of observations.

        ``j_pose`` is the (n, 3, 6) stack of ``[-R^T [l - t]_x | R^T]`` blocks
        and ``j_landmark`` the (n, 3, 3) stack of ``-R^T`` blocks.
        """
        rotation_t = np.transpose(rot, (0, 2, 1))
        j_rotation = -np.einsum("nji,njk->nik", rot, skew_batch(delta))
        j_pose = np.concatenate([j_rotation, rotation_t], axis=2)
        return j_pose, -rotation_t

    def _assemble_normal_blocks(self, gathered: Tuple[np.ndarray, ...],
                                landmark_ids: List[int]) -> Tuple[np.ndarray, ...]:
        """Accumulate the weighted Gauss-Newton blocks for all observations.

        Returns ``(pose_blocks, cross_blocks, landmark_blocks, b_pose,
        b_landmark)``: per-keyframe 6x6 diagonal blocks, per-(keyframe,
        landmark) 6x3 cross blocks, per-landmark 3x3 diagonal blocks, and the
        negated gradient halves.  Shared by the solver and marginalization so
        the two linearizations can never drift apart.
        """
        kf_idx, lm_idx, _, _ = gathered
        pose_count = len(self.keyframes)
        landmark_count = len(landmark_ids)
        rot, delta, residual, weight = self._batched_residuals(gathered, landmark_ids)
        j_pose, j_landmark = self._batched_jacobians(rot, delta)
        w = weight[:, None, None]

        pose_blocks = np.zeros((pose_count, 6, 6))
        cross_blocks = np.zeros((pose_count, landmark_count, 6, 3))
        landmark_blocks = np.zeros((landmark_count, 3, 3))
        b_pose = np.zeros((pose_count, 6))
        b_landmark = np.zeros((landmark_count, 3))
        np.add.at(pose_blocks, kf_idx, w * np.einsum("nki,nkj->nij", j_pose, j_pose))
        np.add.at(cross_blocks, (kf_idx, lm_idx),
                  w * np.einsum("nki,nkj->nij", j_pose, j_landmark))
        np.add.at(landmark_blocks, lm_idx,
                  w * np.einsum("nki,nkj->nij", j_landmark, j_landmark))
        np.add.at(b_pose, kf_idx,
                  -weight[:, None] * np.einsum("nki,nk->ni", j_pose, residual))
        np.add.at(b_landmark, lm_idx,
                  -weight[:, None] * np.einsum("nki,nk->ni", j_landmark, residual))
        return pose_blocks, cross_blocks, landmark_blocks, b_pose, b_landmark

    @staticmethod
    def _block_diagonal(blocks: np.ndarray) -> np.ndarray:
        """Dense block-diagonal matrix from an ``(n, d, d)`` stack."""
        n, d = blocks.shape[0], blocks.shape[1]
        out = np.zeros((n * d, n * d))
        out.reshape(n, d, n, d)[np.arange(n), :, np.arange(n), :] = blocks
        return out

    def _total_cost(self, landmark_ids: List[int],
                    gathered: Optional[Tuple[np.ndarray, ...]] = None) -> float:
        if gathered is None:
            gathered = self._gather_window(landmark_ids)
        if gathered is None:
            return 0.0
        _, _, residual, weight = self._batched_residuals(gathered, landmark_ids)
        return float(np.sum(weight * np.einsum("ni,ni->n", residual, residual)))

    def _solve_normal_equations(self, landmark_ids: List[int], damping: float,
                                workload: SlamWorkload,
                                gathered: Optional[Tuple[np.ndarray, ...]] = None,
                                ) -> Optional[Tuple[np.ndarray, Dict[int, np.ndarray]]]:
        """Build and solve the damped normal equations with a Schur complement."""
        pose_count = len(self.keyframes)
        pose_dim = 6 * pose_count
        landmark_count = len(landmark_ids)
        landmark_dim = 3 * landmark_count
        landmark_index = {track_id: i for i, track_id in enumerate(landmark_ids)}

        if gathered is None:
            gathered = self._gather_window(landmark_ids)
        if gathered is not None:
            pose_blocks, cross_blocks, landmark_blocks, b_pose, b_landmark = (
                self._assemble_normal_blocks(gathered, landmark_ids)
            )
        else:
            pose_blocks = np.zeros((pose_count, 6, 6))
            cross_blocks = np.zeros((pose_count, landmark_count, 6, 3))
            landmark_blocks = np.zeros((landmark_count, 3, 3))
            b_pose = np.zeros((pose_count, 6))
            b_landmark = np.zeros((landmark_count, 3))

        h_pp = self._block_diagonal(pose_blocks)
        h_pl = cross_blocks.transpose(0, 2, 1, 3).reshape(pose_dim, landmark_dim)
        b_p = b_pose.reshape(-1)
        b_l = b_landmark.reshape(-1)

        # Gauge fixing: anchor the first keyframe with a strong prior.
        h_pp[:6, :6] += np.eye(6) * 1e8
        # Marginalization prior from previously removed keyframes.
        self._apply_prior(h_pp, b_p)

        h_pp += np.eye(pose_dim) * damping
        landmark_blocks += np.eye(3) * damping

        workload.hessian_dim = max(workload.hessian_dim, pose_dim + landmark_dim)

        try:
            # Schur complement over landmarks: H_ll is block diagonal (3x3), so
            # its inverse is one batched 3x3 inversion.
            h_ll_inv = self._block_diagonal(batched_symmetric_inverse(landmark_blocks))
            h_pl_h_ll_inv = matmul(h_pl, h_ll_inv)
            reduced_h = h_pp - matmul(h_pl_h_ll_inv, transpose(h_pl))
            reduced_b = b_p - h_pl_h_ll_inv @ b_l
            pose_delta = solve_cholesky(reduced_h + np.eye(pose_dim) * 1e-9, reduced_b)
            landmark_delta_vec = h_ll_inv @ (b_l - h_pl.T @ pose_delta)
        except np.linalg.LinAlgError:
            return None

        landmark_deltas = {
            track_id: landmark_delta_vec[3 * i : 3 * i + 3] for track_id, i in landmark_index.items()
        }
        return pose_delta, landmark_deltas

    def _apply_step(self, landmark_ids: List[int], pose_delta: np.ndarray,
                    landmark_deltas: Dict[int, np.ndarray]) -> None:
        for k_index, keyframe in enumerate(self.keyframes):
            delta = pose_delta[6 * k_index : 6 * k_index + 6]
            keyframe.pose = Pose(
                so3_exp(delta[:3]) @ keyframe.pose.rotation,
                keyframe.pose.translation + delta[3:],
            )
        for track_id in landmark_ids:
            self.landmarks[track_id] = self.landmarks[track_id] + landmark_deltas[track_id]

    def _apply_prior(self, h_pp: np.ndarray, b_p: np.ndarray) -> None:
        """Add the marginalization prior over the keyframes it references."""
        if self._prior_hessian is None:
            return
        frame_to_slot = {kf.frame_index: i for i, kf in enumerate(self.keyframes)}
        slots = [frame_to_slot.get(frame) for frame in self._prior_frames]
        for a, slot_a in enumerate(slots):
            if slot_a is None:
                continue
            b_p[6 * slot_a : 6 * slot_a + 6] += self._prior_gradient[6 * a : 6 * a + 6]
            for b, slot_b in enumerate(slots):
                if slot_b is None:
                    continue
                h_pp[6 * slot_a : 6 * slot_a + 6, 6 * slot_b : 6 * slot_b + 6] += self._prior_hessian[
                    6 * a : 6 * a + 6, 6 * b : 6 * b + 6
                ]

    def _marginalize_oldest(self, workload: SlamWorkload) -> None:
        """Marginalize the oldest keyframe and its exclusive landmarks."""
        departing = self.keyframes[0]
        remaining_frames = [kf.frame_index for kf in self.keyframes[1:]]

        # Landmarks observed only by the departing keyframe are simply dropped
        # (they carry no information about the remaining states); landmarks it
        # shares with the window are marginalized through the Schur complement.
        shared_landmarks = [
            track_id for track_id in departing.observations
            if track_id in self.landmarks
            and any(track_id in kf.observations for kf in self.keyframes[1:])
        ]
        exclusive = [
            track_id for track_id in departing.observations
            if track_id in self.landmarks and track_id not in shared_landmarks
        ]
        workload.feature_points = len(departing.observations)

        # Build a small linearized system over (departing pose, shared landmarks,
        # remaining poses) and marginalize the first two groups.
        pose_count = len(self.keyframes)
        landmark_count = len(shared_landmarks)
        pose_dim = 6 * pose_count
        landmark_dim = 3 * landmark_count
        total_dim = pose_dim + landmark_dim
        hessian = np.zeros((total_dim, total_dim))
        gradient = np.zeros(total_dim)

        gathered = self._gather_window(shared_landmarks) if shared_landmarks else None
        if gathered is not None:
            pose_blocks, cross_blocks, landmark_blocks, b_pose, b_landmark = (
                self._assemble_normal_blocks(gathered, shared_landmarks)
            )
            cross = cross_blocks.transpose(0, 2, 1, 3).reshape(pose_dim, landmark_dim)
            hessian[:pose_dim, :pose_dim] = self._block_diagonal(pose_blocks)
            hessian[:pose_dim, pose_dim:] = cross
            hessian[pose_dim:, :pose_dim] = cross.T
            hessian[pose_dim:, pose_dim:] = self._block_diagonal(landmark_blocks)
            gradient[:pose_dim] = b_pose.reshape(-1)
            gradient[pose_dim:] = b_landmark.reshape(-1)

        marginalize_indices = list(range(0, 6)) + list(range(pose_dim, total_dim))
        result: MarginalizationResult = marginalize_schur(hessian, gradient, marginalize_indices)
        workload.marginalized_dim = result.marginalized_dim

        self._prior_hessian = result.hessian
        self._prior_gradient = result.gradient
        self._prior_frames = remaining_frames

        for track_id in exclusive:
            # Exclusive landmarks leave the active map but stay available to
            # the tracking block as part of the persisted map.
            pass
        self.keyframes.pop(0)
