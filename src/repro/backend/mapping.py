"""Mapping block: sliding-window bundle adjustment (SLAM mode).

The mapping block solves a non-linear least-squares problem over a window of
keyframe poses and the landmarks they observe, minimizing the discrepancy
between the stereo-measured body-frame points and the map (Sec. IV-A).  The
problem is solved with Levenberg-Marquardt, mirroring the Ceres LM solver the
paper targets, and uses the Schur complement over landmarks so the reduced
system only involves keyframe poses.  When the window overflows, the oldest
keyframe and its exclusive landmarks are marginalized into a prior — the
SLAM mode's dominant latency-variation kernel (Fig. 8/11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend.marginalization import MarginalizationResult, marginalize_schur
from repro.common.config import MappingConfig
from repro.common.geometry import Pose, skew, so3_exp
from repro.common.timing import StopwatchCollector
from repro.frontend.frontend import FrontendResult
from repro.linalg.ops import matmul, transpose
from repro.linalg.solvers import solve_cholesky, symmetric_inverse


@dataclass
class SlamWorkload:
    """Problem sizes the SLAM backend kernels operated on this frame."""

    keyframes: int = 0
    landmarks: int = 0
    observations: int = 0
    solver_iterations: int = 0
    hessian_dim: int = 0
    marginalized_dim: int = 0
    feature_points: int = 0


@dataclass
class Keyframe:
    """One keyframe in the optimization window."""

    frame_index: int
    timestamp: float
    pose: Pose
    observations: Dict[int, np.ndarray] = field(default_factory=dict)  # track -> body point
    observation_sigma: Dict[int, float] = field(default_factory=dict)  # track -> noise std

    def sigma(self, track_id: int) -> float:
        return self.observation_sigma.get(track_id, 0.1)


class KeyframeMapper:
    """Sliding-window bundle adjustment with Schur-complement marginalization."""

    def __init__(self, config: Optional[MappingConfig] = None) -> None:
        self.config = config or MappingConfig()
        self.keyframes: List[Keyframe] = []
        self.landmarks: Dict[int, np.ndarray] = {}
        # Marginalization prior over the keyframe poses currently in the window.
        self._prior_hessian: Optional[np.ndarray] = None
        self._prior_gradient: Optional[np.ndarray] = None
        self._prior_frames: List[int] = []
        self.last_workload = SlamWorkload()
        self.last_kernel_ms: Dict[str, float] = {}

    # ------------------------------------------------------------ interface

    @property
    def map_size(self) -> int:
        return len(self.landmarks)

    def landmark_positions(self) -> Dict[int, np.ndarray]:
        return {track_id: position.copy() for track_id, position in self.landmarks.items()}

    def latest_pose(self) -> Optional[Pose]:
        if not self.keyframes:
            return None
        return self.keyframes[-1].pose.copy()

    def should_insert_keyframe(self, pose: Pose) -> bool:
        """Insert a keyframe when the pose moved enough since the last one."""
        if not self.keyframes:
            return True
        last = self.keyframes[-1].pose
        translation = float(np.linalg.norm(pose.translation - last.translation))
        rotation = pose.rotation_angle_to(last)
        return translation > self.config.keyframe_translation or rotation > self.config.keyframe_rotation

    def insert_keyframe(self, frontend: FrontendResult, pose_guess: Pose) -> SlamWorkload:
        """Add a keyframe, run the solver, and marginalize if needed."""
        stopwatch = StopwatchCollector()
        workload = SlamWorkload()

        with stopwatch.measure("init"):
            keyframe = Keyframe(
                frame_index=frontend.frame_index,
                timestamp=frontend.timestamp,
                pose=pose_guess.copy(),
                observations={obs.track_id: obs.point_body.copy() for obs in frontend.observations},
                observation_sigma={obs.track_id: max(float(np.mean(obs.noise_std)), 1e-3)
                                   for obs in frontend.observations},
            )
            self.keyframes.append(keyframe)
            self._initialize_landmarks(keyframe)

        with stopwatch.measure("solver"):
            iterations = self._optimize(workload)
            workload.solver_iterations = iterations

        with stopwatch.measure("marginalization"):
            if len(self.keyframes) > self.config.window_size:
                self._marginalize_oldest(workload)

        workload.keyframes = len(self.keyframes)
        workload.landmarks = len(self.landmarks)
        workload.observations = sum(len(kf.observations) for kf in self.keyframes)
        self.last_workload = workload
        self.last_kernel_ms = stopwatch.as_dict()
        return workload

    # ------------------------------------------------------------ internals

    def _initialize_landmarks(self, keyframe: Keyframe) -> None:
        for track_id, point_body in keyframe.observations.items():
            if track_id not in self.landmarks:
                self.landmarks[track_id] = keyframe.pose.transform_point(point_body)

    def _window_landmark_ids(self) -> List[int]:
        """Landmarks observed by at least two keyframes in the window."""
        counts: Dict[int, int] = {}
        for keyframe in self.keyframes:
            for track_id in keyframe.observations:
                counts[track_id] = counts.get(track_id, 0) + 1
        return sorted(track_id for track_id, count in counts.items() if count >= 2 and track_id in self.landmarks)

    def _optimize(self, workload: SlamWorkload) -> int:
        """Levenberg-Marquardt over window poses and landmarks (Schur trick)."""
        landmark_ids = self._window_landmark_ids()
        if len(self.keyframes) < 2 or not landmark_ids:
            return 0
        damping = self.config.initial_damping
        previous_cost = self._total_cost(landmark_ids)
        iterations = 0
        for _ in range(self.config.max_iterations):
            iterations += 1
            step = self._solve_normal_equations(landmark_ids, damping, workload)
            if step is None:
                break
            pose_deltas, landmark_deltas = step
            backup = self._snapshot()
            self._apply_step(landmark_ids, pose_deltas, landmark_deltas)
            cost = self._total_cost(landmark_ids)
            if cost < previous_cost:
                damping = max(damping * self.config.damping_down, 1e-9)
                if previous_cost - cost < self.config.convergence_tolerance * max(previous_cost, 1.0):
                    previous_cost = cost
                    break
                previous_cost = cost
            else:
                self._restore(backup)
                damping *= self.config.damping_up
        return iterations

    def _snapshot(self):
        return (
            [(kf.pose.rotation.copy(), kf.pose.translation.copy()) for kf in self.keyframes],
            {k: v.copy() for k, v in self.landmarks.items()},
        )

    def _restore(self, backup) -> None:
        poses, landmarks = backup
        for keyframe, (rotation, translation) in zip(self.keyframes, poses):
            keyframe.pose = Pose(rotation, translation)
        self.landmarks = landmarks

    def _residual(self, keyframe: Keyframe, landmark: np.ndarray, measurement: np.ndarray) -> np.ndarray:
        predicted = keyframe.pose.rotation.T @ (landmark - keyframe.pose.translation)
        return measurement - predicted

    def _huber_weight(self, residual: np.ndarray, sigma: float = 0.1) -> float:
        """Inverse-variance weight with a Huber robustifier on the whitened norm."""
        sigma = max(sigma, 1e-3)
        base = 1.0 / sigma**2
        norm = float(np.linalg.norm(residual)) / sigma
        if norm <= self.config.huber_delta:
            return base
        return base * self.config.huber_delta / norm

    def _total_cost(self, landmark_ids: List[int]) -> float:
        cost = 0.0
        landmark_set = set(landmark_ids)
        for keyframe in self.keyframes:
            for track_id, measurement in keyframe.observations.items():
                if track_id not in landmark_set:
                    continue
                residual = self._residual(keyframe, self.landmarks[track_id], measurement)
                weight = self._huber_weight(residual, keyframe.sigma(track_id))
                cost += weight * float(residual @ residual)
        return cost

    def _solve_normal_equations(self, landmark_ids: List[int], damping: float,
                                workload: SlamWorkload) -> Optional[Tuple[np.ndarray, Dict[int, np.ndarray]]]:
        """Build and solve the damped normal equations with a Schur complement."""
        pose_count = len(self.keyframes)
        pose_dim = 6 * pose_count
        landmark_index = {track_id: i for i, track_id in enumerate(landmark_ids)}
        landmark_dim = 3 * len(landmark_ids)

        h_pp = np.zeros((pose_dim, pose_dim))
        h_pl = np.zeros((pose_dim, landmark_dim))
        h_ll = np.zeros((landmark_dim, landmark_dim))
        b_p = np.zeros(pose_dim)
        b_l = np.zeros(landmark_dim)

        landmark_set = set(landmark_ids)
        for k_index, keyframe in enumerate(self.keyframes):
            rotation_t = keyframe.pose.rotation.T
            for track_id, measurement in keyframe.observations.items():
                if track_id not in landmark_set:
                    continue
                landmark = self.landmarks[track_id]
                residual = self._residual(keyframe, landmark, measurement)
                weight = self._huber_weight(residual, keyframe.sigma(track_id))

                # Jacobians of the residual w.r.t. pose error (rotation, translation)
                # and w.r.t. the landmark position.
                j_rotation = -rotation_t @ skew(landmark - keyframe.pose.translation)
                j_translation = rotation_t
                j_landmark = -rotation_t
                j_pose = np.hstack([j_rotation, j_translation])  # 3 x 6

                p0 = 6 * k_index
                l0 = 3 * landmark_index[track_id]
                h_pp[p0 : p0 + 6, p0 : p0 + 6] += weight * j_pose.T @ j_pose
                h_pl[p0 : p0 + 6, l0 : l0 + 3] += weight * j_pose.T @ j_landmark
                h_ll[l0 : l0 + 3, l0 : l0 + 3] += weight * j_landmark.T @ j_landmark
                b_p[p0 : p0 + 6] += -weight * j_pose.T @ residual
                b_l[l0 : l0 + 3] += -weight * j_landmark.T @ residual

        # Gauge fixing: anchor the first keyframe with a strong prior.
        h_pp[:6, :6] += np.eye(6) * 1e8
        # Marginalization prior from previously removed keyframes.
        self._apply_prior(h_pp, b_p)

        h_pp += np.eye(pose_dim) * damping
        h_ll += np.eye(landmark_dim) * damping

        workload.hessian_dim = max(workload.hessian_dim, pose_dim + landmark_dim)

        try:
            # Schur complement over landmarks: H_ll is block diagonal (3x3).
            h_ll_inv = np.zeros_like(h_ll)
            for i in range(len(landmark_ids)):
                block = h_ll[3 * i : 3 * i + 3, 3 * i : 3 * i + 3]
                h_ll_inv[3 * i : 3 * i + 3, 3 * i : 3 * i + 3] = symmetric_inverse(block)
            h_pl_h_ll_inv = matmul(h_pl, h_ll_inv)
            reduced_h = h_pp - matmul(h_pl_h_ll_inv, transpose(h_pl))
            reduced_b = b_p - h_pl_h_ll_inv @ b_l
            pose_delta = solve_cholesky(reduced_h + np.eye(pose_dim) * 1e-9, reduced_b)
            landmark_delta_vec = h_ll_inv @ (b_l - h_pl.T @ pose_delta)
        except np.linalg.LinAlgError:
            return None

        landmark_deltas = {
            track_id: landmark_delta_vec[3 * i : 3 * i + 3] for track_id, i in landmark_index.items()
        }
        return pose_delta, landmark_deltas

    def _apply_step(self, landmark_ids: List[int], pose_delta: np.ndarray,
                    landmark_deltas: Dict[int, np.ndarray]) -> None:
        for k_index, keyframe in enumerate(self.keyframes):
            delta = pose_delta[6 * k_index : 6 * k_index + 6]
            keyframe.pose = Pose(
                so3_exp(delta[:3]) @ keyframe.pose.rotation,
                keyframe.pose.translation + delta[3:],
            )
        for track_id in landmark_ids:
            self.landmarks[track_id] = self.landmarks[track_id] + landmark_deltas[track_id]

    def _apply_prior(self, h_pp: np.ndarray, b_p: np.ndarray) -> None:
        """Add the marginalization prior over the keyframes it references."""
        if self._prior_hessian is None:
            return
        frame_to_slot = {kf.frame_index: i for i, kf in enumerate(self.keyframes)}
        slots = [frame_to_slot.get(frame) for frame in self._prior_frames]
        for a, slot_a in enumerate(slots):
            if slot_a is None:
                continue
            b_p[6 * slot_a : 6 * slot_a + 6] += self._prior_gradient[6 * a : 6 * a + 6]
            for b, slot_b in enumerate(slots):
                if slot_b is None:
                    continue
                h_pp[6 * slot_a : 6 * slot_a + 6, 6 * slot_b : 6 * slot_b + 6] += self._prior_hessian[
                    6 * a : 6 * a + 6, 6 * b : 6 * b + 6
                ]

    def _marginalize_oldest(self, workload: SlamWorkload) -> None:
        """Marginalize the oldest keyframe and its exclusive landmarks."""
        departing = self.keyframes[0]
        remaining_frames = [kf.frame_index for kf in self.keyframes[1:]]

        # Landmarks observed only by the departing keyframe are simply dropped
        # (they carry no information about the remaining states); landmarks it
        # shares with the window are marginalized through the Schur complement.
        shared_landmarks = [
            track_id for track_id in departing.observations
            if track_id in self.landmarks
            and any(track_id in kf.observations for kf in self.keyframes[1:])
        ]
        exclusive = [
            track_id for track_id in departing.observations
            if track_id in self.landmarks and track_id not in shared_landmarks
        ]
        workload.feature_points = len(departing.observations)

        # Build a small linearized system over (departing pose, shared landmarks,
        # remaining poses) and marginalize the first two groups.
        pose_dim = 6 * len(self.keyframes)
        landmark_dim = 3 * len(shared_landmarks)
        total_dim = pose_dim + landmark_dim
        hessian = np.zeros((total_dim, total_dim))
        gradient = np.zeros(total_dim)
        landmark_offset = {track_id: pose_dim + 3 * i for i, track_id in enumerate(shared_landmarks)}

        for k_index, keyframe in enumerate(self.keyframes):
            rotation_t = keyframe.pose.rotation.T
            for track_id in shared_landmarks:
                if track_id not in keyframe.observations:
                    continue
                measurement = keyframe.observations[track_id]
                landmark = self.landmarks[track_id]
                residual = self._residual(keyframe, landmark, measurement)
                weight = self._huber_weight(residual, keyframe.sigma(track_id))
                j_pose = np.hstack([-rotation_t @ skew(landmark - keyframe.pose.translation), rotation_t])
                j_landmark = -rotation_t
                p0 = 6 * k_index
                l0 = landmark_offset[track_id]
                hessian[p0 : p0 + 6, p0 : p0 + 6] += weight * j_pose.T @ j_pose
                hessian[p0 : p0 + 6, l0 : l0 + 3] += weight * j_pose.T @ j_landmark
                hessian[l0 : l0 + 3, p0 : p0 + 6] += weight * j_landmark.T @ j_pose
                hessian[l0 : l0 + 3, l0 : l0 + 3] += weight * j_landmark.T @ j_landmark
                gradient[p0 : p0 + 6] += -weight * j_pose.T @ residual
                gradient[l0 : l0 + 3] += -weight * j_landmark.T @ residual

        marginalize_indices = list(range(0, 6)) + list(range(pose_dim, total_dim))
        result: MarginalizationResult = marginalize_schur(hessian, gradient, marginalize_indices)
        workload.marginalized_dim = result.marginalized_dim

        self._prior_hessian = result.hessian
        self._prior_gradient = result.gradient
        self._prior_frames = remaining_frames

        for track_id in exclusive:
            # Exclusive landmarks leave the active map but stay available to
            # the tracking block as part of the persisted map.
            pass
        self.keyframes.pop(0)
