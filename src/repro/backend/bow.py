"""Bag-of-binary-words place recognition (Tracking block substrate).

The tracking block uses the bag-of-words method to recognize the place the
current frame observes within a map (Sec. IV-A).  This module implements a
compact DBoW-style pipeline: a binary vocabulary trained with k-majority
clustering over ORB descriptors, TF-IDF weighted bag-of-words vectors, and a
keyframe database queried by L1 similarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.frontend.orb import hamming_distance_matrix


class BinaryVocabulary:
    """A flat vocabulary of binary visual words trained by k-majority."""

    def __init__(self, num_words: int = 64, iterations: int = 8, seed: int = 0) -> None:
        if num_words < 2:
            raise ValueError("num_words must be >= 2")
        self.num_words = int(num_words)
        self.iterations = int(iterations)
        self._seed = int(seed)
        self.words: Optional[np.ndarray] = None  # (num_words, bytes)
        self.idf: Optional[np.ndarray] = None

    @property
    def trained(self) -> bool:
        return self.words is not None

    def train(self, descriptors: np.ndarray) -> None:
        """Cluster descriptors into binary words (bitwise majority centroids)."""
        descriptors = np.asarray(descriptors, dtype=np.uint8)
        if descriptors.ndim != 2 or descriptors.shape[0] < self.num_words:
            raise ValueError("need at least num_words descriptors to train the vocabulary")
        rng = np.random.default_rng(self._seed)
        initial = rng.choice(descriptors.shape[0], size=self.num_words, replace=False)
        centroids = descriptors[initial].copy()

        bits = np.unpackbits(descriptors, axis=1)
        for _ in range(self.iterations):
            distances = hamming_distance_matrix(descriptors, centroids)
            assignment = np.argmin(distances, axis=1)
            new_centroids = centroids.copy()
            for word in range(self.num_words):
                members = bits[assignment == word]
                if members.shape[0] == 0:
                    continue
                majority = (members.mean(axis=0) >= 0.5).astype(np.uint8)
                new_centroids[word] = np.packbits(majority)
            if np.array_equal(new_centroids, centroids):
                break
            centroids = new_centroids
        self.words = centroids

        # Inverse document frequency from the training assignment.
        distances = hamming_distance_matrix(descriptors, centroids)
        assignment = np.argmin(distances, axis=1)
        counts = np.bincount(assignment, minlength=self.num_words).astype(float)
        self.idf = np.log((descriptors.shape[0] + 1.0) / (counts + 1.0))

    def quantize(self, descriptors: np.ndarray) -> np.ndarray:
        """Assign each descriptor to its nearest word; returns word indices."""
        if not self.trained:
            raise RuntimeError("vocabulary must be trained before quantization")
        descriptors = np.asarray(descriptors, dtype=np.uint8)
        if descriptors.shape[0] == 0:
            return np.zeros(0, dtype=int)
        distances = hamming_distance_matrix(descriptors, self.words)
        return np.argmin(distances, axis=1)

    def transform(self, descriptors: np.ndarray) -> np.ndarray:
        """TF-IDF weighted, L1-normalized bag-of-words vector."""
        if not self.trained:
            raise RuntimeError("vocabulary must be trained before transform")
        vector = np.zeros(self.num_words)
        assignment = self.quantize(descriptors)
        for word in assignment:
            vector[word] += 1.0
        if vector.sum() > 0:
            vector = vector / vector.sum()
        vector = vector * self.idf
        norm = np.abs(vector).sum()
        return vector / norm if norm > 0 else vector


@dataclass
class KeyframeEntry:
    """A database entry: keyframe identity and its bag-of-words vector."""

    keyframe_id: int
    bow_vector: np.ndarray
    metadata: Dict = field(default_factory=dict)


class KeyframeDatabase:
    """Stores keyframe bag-of-words vectors and answers similarity queries."""

    def __init__(self) -> None:
        self.entries: List[KeyframeEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, keyframe_id: int, bow_vector: np.ndarray, metadata: Optional[Dict] = None) -> None:
        self.entries.append(
            KeyframeEntry(keyframe_id=int(keyframe_id), bow_vector=np.asarray(bow_vector, dtype=float),
                          metadata=metadata or {})
        )

    def query(self, bow_vector: np.ndarray, top_k: int = 3) -> List[Tuple[int, float]]:
        """Return the ``top_k`` most similar keyframes as (id, score) pairs.

        Similarity is the standard L1 score used by DBoW:
        ``1 - 0.5 * |v1 - v2|_1`` for L1-normalized vectors.
        """
        bow_vector = np.asarray(bow_vector, dtype=float)
        scored: List[Tuple[int, float]] = []
        for entry in self.entries:
            score = 1.0 - 0.5 * float(np.abs(bow_vector - entry.bow_vector).sum())
            scored.append((entry.keyframe_id, score))
        scored.sort(key=lambda item: item[1], reverse=True)
        return scored[: max(1, top_k)]

    def best_match(self, bow_vector: np.ndarray, min_score: float = 0.0) -> Optional[Tuple[int, float]]:
        results = self.query(bow_vector, top_k=1)
        if results and results[0][1] >= min_score:
            return results[0]
        return None
