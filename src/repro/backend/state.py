"""State representation for the MSCKF filtering block.

The filter state consists of the current IMU state (orientation, position,
velocity, gyro bias, accelerometer bias) plus a sliding window of historical
camera poses ("clones"), following the multi-state constraint Kalman filter
formulation.  The error state is minimal: 3 rotation + 3 position + 3
velocity + 3 gyro bias + 3 accel bias for the IMU (15), and 3 rotation + 3
position per clone (6 each).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.common.geometry import Pose, so3_exp

IMU_ERROR_DIM = 15
CLONE_ERROR_DIM = 6


@dataclass
class ImuState:
    """The evolving IMU state."""

    rotation: np.ndarray = field(default_factory=lambda: np.eye(3))
    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))
    gyro_bias: np.ndarray = field(default_factory=lambda: np.zeros(3))
    accel_bias: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def pose(self) -> Pose:
        return Pose(self.rotation.copy(), self.position.copy())

    def copy(self) -> "ImuState":
        return ImuState(
            rotation=self.rotation.copy(),
            position=self.position.copy(),
            velocity=self.velocity.copy(),
            gyro_bias=self.gyro_bias.copy(),
            accel_bias=self.accel_bias.copy(),
        )

    def apply_correction(self, delta: np.ndarray) -> None:
        """Apply a 15-dimensional error-state correction."""
        delta = np.asarray(delta, dtype=float).reshape(IMU_ERROR_DIM)
        self.rotation = so3_exp(delta[0:3]) @ self.rotation
        self.position = self.position + delta[3:6]
        self.velocity = self.velocity + delta[6:9]
        self.gyro_bias = self.gyro_bias + delta[9:12]
        self.accel_bias = self.accel_bias + delta[12:15]


@dataclass
class CloneState:
    """A historical camera pose kept in the sliding window."""

    frame_index: int
    timestamp: float
    rotation: np.ndarray
    position: np.ndarray

    def pose(self) -> Pose:
        return Pose(self.rotation.copy(), self.position.copy())

    def apply_correction(self, delta: np.ndarray) -> None:
        delta = np.asarray(delta, dtype=float).reshape(CLONE_ERROR_DIM)
        self.rotation = so3_exp(delta[0:3]) @ self.rotation
        self.position = self.position + delta[3:6]


class MsckfState:
    """Full filter state: IMU state, clone window and error covariance."""

    def __init__(self, window_size: int = 30) -> None:
        self.window_size = int(window_size)
        self.imu = ImuState()
        self.clones: List[CloneState] = []
        self.covariance = np.eye(IMU_ERROR_DIM) * 1e-4

    @property
    def error_dim(self) -> int:
        return IMU_ERROR_DIM + CLONE_ERROR_DIM * len(self.clones)

    def clone_offset(self, clone_index: int) -> int:
        """Column offset of clone ``clone_index`` in the error state."""
        return IMU_ERROR_DIM + CLONE_ERROR_DIM * clone_index

    def clone_by_frame(self, frame_index: int) -> CloneState:
        for clone in self.clones:
            if clone.frame_index == frame_index:
                return clone
        raise KeyError(f"no clone for frame {frame_index}")

    def has_clone(self, frame_index: int) -> bool:
        return any(clone.frame_index == frame_index for clone in self.clones)

    def augment(self, frame_index: int, timestamp: float) -> None:
        """Add a clone of the current IMU pose to the window.

        The covariance is augmented with the Jacobian of the clone pose with
        respect to the current state (identity blocks for rotation/position).
        """
        clone = CloneState(
            frame_index=frame_index,
            timestamp=timestamp,
            rotation=self.imu.rotation.copy(),
            position=self.imu.position.copy(),
        )
        old_dim = self.error_dim
        jacobian = np.zeros((CLONE_ERROR_DIM, old_dim))
        jacobian[0:3, 0:3] = np.eye(3)
        jacobian[3:6, 3:6] = np.eye(3)

        new_dim = old_dim + CLONE_ERROR_DIM
        new_cov = np.zeros((new_dim, new_dim))
        new_cov[:old_dim, :old_dim] = self.covariance
        cross = jacobian @ self.covariance
        new_cov[old_dim:, :old_dim] = cross
        new_cov[:old_dim, old_dim:] = cross.T
        new_cov[old_dim:, old_dim:] = jacobian @ self.covariance @ jacobian.T
        self.covariance = new_cov
        self.clones.append(clone)

    def prune_oldest(self, keep: int) -> List[CloneState]:
        """Drop the oldest clones so at most ``keep`` remain.

        Returns the removed clones.  For the MSCKF the dropped clones have
        already absorbed their feature information through updates, so the
        corresponding covariance rows/columns are simply removed.
        """
        removed: List[CloneState] = []
        while len(self.clones) > keep:
            removed.append(self.clones[0])
            offset = self.clone_offset(0)
            keep_indices = [i for i in range(self.error_dim) if not offset <= i < offset + CLONE_ERROR_DIM]
            self.covariance = self.covariance[np.ix_(keep_indices, keep_indices)]
            self.clones.pop(0)
        return removed

    def apply_correction(self, delta: np.ndarray) -> None:
        """Apply a full error-state correction to IMU and clone states."""
        delta = np.asarray(delta, dtype=float).reshape(self.error_dim)
        self.imu.apply_correction(delta[:IMU_ERROR_DIM])
        for i, clone in enumerate(self.clones):
            offset = self.clone_offset(i)
            clone.apply_correction(delta[offset : offset + CLONE_ERROR_DIM])

    def symmetrize(self) -> None:
        """Restore exact symmetry of the covariance after an update."""
        self.covariance = 0.5 * (self.covariance + self.covariance.T)
