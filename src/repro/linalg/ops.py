"""Traced wrappers over dense matrix operations.

Backend kernels route their matrix work through these helpers so every
invocation is recorded as one of the Table I building blocks (via
:func:`repro.linalg.primitives.record_primitive`) while still executing at
NumPy speed.  The explicitly blocked variants in :mod:`repro.linalg.blocked`
are used where the blocking structure itself matters (accelerator modelling
and its tests).
"""

from __future__ import annotations

import numpy as np

from repro.linalg.primitives import BuildingBlock, record_primitive


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product recorded as a MULTIPLICATION building block."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    shape_a = a.shape if a.ndim > 1 else (1, a.shape[0])
    shape_b = b.shape if b.ndim > 1 else (b.shape[0], 1)
    if shape_a[-1] != shape_b[0]:
        raise ValueError(f"incompatible shapes for matmul: {a.shape} x {b.shape}")
    record_primitive(BuildingBlock.MULTIPLICATION, shape_a, shape_b)
    return a @ b


def transpose(a: np.ndarray) -> np.ndarray:
    """Matrix transpose recorded as a TRANSPOSE building block."""
    a = np.asarray(a, dtype=float)
    record_primitive(BuildingBlock.TRANSPOSE, a.shape if a.ndim > 1 else (1, a.shape[0]))
    return a.T


def quadratic_form(h: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Compute ``H P H^T`` with the symmetry optimization of Sec. VI-A.

    The product is symmetric, so only the upper triangle is computed and then
    mirrored — the same "compute and store half of S" trick the accelerator
    applies.  Both multiplications and the transpose are recorded.
    """
    h = np.asarray(h, dtype=float)
    p = np.asarray(p, dtype=float)
    ph_t = matmul(p, transpose(h))
    s = matmul(h, ph_t)
    return 0.5 * (s + s.T)
