"""Matrix decompositions implemented from scratch.

Kalman-gain computation solves ``S K = P H^T`` by decomposing ``S`` and
substituting; marginalization decomposes and inverts blocks of the Hessian
(Sec. VI-A).  These routines provide the decomposition building block used by
both, with the symmetric structure of ``S`` exploited exactly as the
accelerator does (the paper halves the compute/storage of ``S``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.linalg.primitives import BuildingBlock, record_primitive


def cholesky(matrix: np.ndarray, jitter: float = 1e-10) -> np.ndarray:
    """Cholesky factorization ``A = L L^T`` for a symmetric positive matrix.

    A small diagonal jitter is added automatically when the matrix is
    numerically semi-definite, which happens routinely for covariance
    matrices that have been marginalized many times.
    """
    a = np.asarray(matrix, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"cholesky requires a square matrix, got {a.shape}")
    record_primitive(BuildingBlock.DECOMPOSITION, a.shape)

    n = a.shape[0]
    lower = np.zeros((n, n))
    for j in range(n):
        diag = a[j, j] - np.dot(lower[j, :j], lower[j, :j])
        if diag <= 0.0:
            diag += jitter * max(1.0, abs(a[j, j]))
            if diag <= 0.0:
                raise np.linalg.LinAlgError("matrix is not positive definite")
        lower[j, j] = np.sqrt(diag)
        if j + 1 < n:
            lower[j + 1 :, j] = (a[j + 1 :, j] - lower[j + 1 :, :j] @ lower[j, :j]) / lower[j, j]
    return lower


def qr_reduced(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Thin QR through LAPACK, recorded as a DECOMPOSITION building block.

    Returns the same reduced factorization as :func:`qr_decompose` (``Q`` is
    ``(m, min(m, n))``, ``R`` is ``(min(m, n), n)``, ``Q R = A``; individual
    columns may differ by sign) but as one library call instead of a Python
    Householder loop over columns.  Hot paths (the MSCKF Jacobian
    compression) use this variant; :func:`qr_decompose` remains the
    from-scratch reference the accelerator model is validated against.
    """
    a = np.asarray(matrix, dtype=float)
    if a.ndim != 2:
        raise ValueError("qr_reduced requires a 2-D matrix")
    record_primitive(BuildingBlock.DECOMPOSITION, a.shape)
    return np.linalg.qr(a, mode="reduced")


def lu_decompose(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """LU decomposition with partial pivoting: ``P A = L U``.

    Returns ``(permutation, lower, upper)`` where ``permutation`` is returned
    as an index vector (row ``i`` of ``PA`` is row ``permutation[i]`` of A).
    """
    a = np.asarray(matrix, dtype=float).copy()
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"lu_decompose requires a square matrix, got {a.shape}")
    record_primitive(BuildingBlock.DECOMPOSITION, a.shape)

    n = a.shape[0]
    permutation = np.arange(n)
    lower = np.eye(n)
    for k in range(n - 1):
        pivot = int(np.argmax(np.abs(a[k:, k]))) + k
        if abs(a[pivot, k]) < 1e-14:
            continue
        if pivot != k:
            a[[k, pivot], :] = a[[pivot, k], :]
            permutation[[k, pivot]] = permutation[[pivot, k]]
            lower[[k, pivot], :k] = lower[[pivot, k], :k]
        factors = a[k + 1 :, k] / a[k, k]
        lower[k + 1 :, k] = factors
        a[k + 1 :, k:] -= np.outer(factors, a[k, k:])
    upper = np.triu(a)
    return permutation, lower, upper


def qr_decompose(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Thin QR decomposition via Householder reflections.

    The MSCKF uses QR to compress the stacked measurement Jacobian before the
    Kalman update (the "QR" slice in Fig. 7's VIO breakdown).
    """
    a = np.asarray(matrix, dtype=float).copy()
    if a.ndim != 2:
        raise ValueError("qr_decompose requires a 2-D matrix")
    record_primitive(BuildingBlock.DECOMPOSITION, a.shape)

    m, n = a.shape
    q = np.eye(m)
    r = a.copy()
    for k in range(min(m - 1, n)):
        x = r[k:, k]
        norm_x = np.linalg.norm(x)
        if norm_x < 1e-14:
            continue
        v = x.copy()
        v[0] += np.sign(x[0]) * norm_x if x[0] != 0 else norm_x
        v = v / np.linalg.norm(v)
        r[k:, :] -= 2.0 * np.outer(v, v @ r[k:, :])
        q[:, k:] -= 2.0 * np.outer(q[:, k:] @ v, v)
    k = min(m, n)
    return q[:, :k], r[:k, :]
