"""Triangular solves, linear solves and symmetric inversion.

Forward/backward substitution is the fifth building block of Table I.  The
solvers here are the software counterparts of the accelerator's F/B
substitution unit and of the specialized 6x6-plus-diagonal inverse unit used
for the marginalization ``A_mm`` block (Sec. VI-A, "Optimization").
"""

from __future__ import annotations

import numpy as np

from repro.linalg.decompositions import cholesky, lu_decompose
from repro.linalg.primitives import BuildingBlock, record_primitive, tracing_active


def forward_substitution(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L``."""
    lower = np.asarray(lower, dtype=float)
    b = np.asarray(rhs, dtype=float)
    squeeze = b.ndim == 1
    if squeeze:
        b = b.reshape(-1, 1)
    n = lower.shape[0]
    if lower.shape != (n, n) or b.shape[0] != n:
        raise ValueError(f"shape mismatch: L {lower.shape}, b {b.shape}")
    record_primitive(BuildingBlock.SUBSTITUTION, lower.shape, b.shape)

    x = np.zeros_like(b)
    for i in range(n):
        pivot = lower[i, i]
        if abs(pivot) < 1e-14:
            raise np.linalg.LinAlgError("singular triangular matrix")
        x[i] = (b[i] - lower[i, :i] @ x[:i]) / pivot
    return x.reshape(-1) if squeeze else x


def backward_substitution(upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``U x = b`` for upper-triangular ``U``."""
    upper = np.asarray(upper, dtype=float)
    b = np.asarray(rhs, dtype=float)
    squeeze = b.ndim == 1
    if squeeze:
        b = b.reshape(-1, 1)
    n = upper.shape[0]
    if upper.shape != (n, n) or b.shape[0] != n:
        raise ValueError(f"shape mismatch: U {upper.shape}, b {b.shape}")
    record_primitive(BuildingBlock.SUBSTITUTION, upper.shape, b.shape)

    x = np.zeros_like(b)
    for i in range(n - 1, -1, -1):
        pivot = upper[i, i]
        if abs(pivot) < 1e-14:
            raise np.linalg.LinAlgError("singular triangular matrix")
        x[i] = (b[i] - upper[i, i + 1 :] @ x[i + 1 :]) / pivot
    return x.reshape(-1) if squeeze else x


def solve_cholesky(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` for symmetric positive-definite ``A``.

    This is exactly how the accelerator computes the Kalman gain: decompose
    ``S``, then forward- and backward-substitute (Equ. 1b).
    """
    lower = cholesky(matrix)
    y = forward_substitution(lower, rhs)
    return backward_substitution(lower.T, y)


def solve_linear(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a general square system via LU with partial pivoting."""
    a = np.asarray(matrix, dtype=float)
    b = np.asarray(rhs, dtype=float)
    permutation, lower, upper = lu_decompose(a)
    permuted = b[permutation] if b.ndim == 1 else b[permutation, :]
    y = forward_substitution(lower, permuted)
    return backward_substitution(upper, y)


def symmetric_inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a symmetric positive-definite matrix via Cholesky."""
    a = np.asarray(matrix, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"symmetric_inverse requires a square matrix, got {a.shape}")
    record_primitive(BuildingBlock.INVERSE, a.shape)
    lower = cholesky(a)
    identity = np.eye(a.shape[0])
    y = forward_substitution(lower, identity)
    return backward_substitution(lower.T, y)


def batched_symmetric_inverse(blocks: np.ndarray) -> np.ndarray:
    """Invert a stack of small symmetric positive-definite matrices at once.

    Equivalent to applying :func:`symmetric_inverse` to every ``blocks[i]``
    (each inversion is recorded as an INVERSE building block when a trace is
    active) but executed as one batched LAPACK call — the software counterpart
    of the accelerator streaming many independent small blocks through the
    inverse unit.
    """
    a = np.asarray(blocks, dtype=float)
    if a.ndim != 3 or a.shape[1] != a.shape[2]:
        raise ValueError(f"batched_symmetric_inverse requires (n, d, d) blocks, got {a.shape}")
    if tracing_active():
        for _ in range(a.shape[0]):
            record_primitive(BuildingBlock.INVERSE, a.shape[1:])
    return np.linalg.inv(a)


def block_diag_plus_dense_inverse(diagonal: np.ndarray, dense: np.ndarray,
                                  off_diagonal: np.ndarray) -> np.ndarray:
    """Invert a symmetric matrix with the paper's ``A_mm`` structure.

    ``A_mm = [[A, B], [B^T, D]]`` where ``A`` is diagonal and ``D`` is a small
    6x6 pose block.  The inversion uses the block-matrix inverse formula so the
    heavy lifting reduces to reciprocals of the diagonal plus a 6x6 inverse —
    the same specialization the backend accelerator hardware makes.

    Parameters
    ----------
    diagonal:
        The diagonal entries of ``A`` (length ``m``).
    dense:
        The dense ``D`` block (``d x d``; 6x6 in the paper).
    off_diagonal:
        The ``B`` block (``m x d``).
    """
    diag = np.asarray(diagonal, dtype=float).reshape(-1)
    d_block = np.asarray(dense, dtype=float)
    b_block = np.asarray(off_diagonal, dtype=float)
    m = diag.size
    d = d_block.shape[0]
    if d_block.shape != (d, d) or b_block.shape != (m, d):
        raise ValueError("inconsistent block shapes for structured inverse")
    record_primitive(BuildingBlock.INVERSE, (m + d, m + d))

    inv_diag = 1.0 / np.where(np.abs(diag) < 1e-14, 1e-14, diag)
    # Schur complement of A: D - B^T A^-1 B  (d x d, cheap to invert).
    schur = d_block - b_block.T @ (inv_diag[:, None] * b_block)
    schur_inv = symmetric_inverse(schur)

    top_left = np.diag(inv_diag) + (inv_diag[:, None] * b_block) @ schur_inv @ (b_block.T * inv_diag[None, :])
    top_right = -(inv_diag[:, None] * b_block) @ schur_inv
    out = np.zeros((m + d, m + d))
    out[:m, :m] = top_left
    out[:m, m:] = top_right
    out[m:, :m] = top_right.T
    out[m:, m:] = schur_inv
    return out
