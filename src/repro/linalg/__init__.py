"""Matrix building blocks (Table I of the paper).

The three latency-variation kernels of the backend — camera-model projection,
Kalman-gain computation and marginalization — decompose into five matrix
primitives: multiplication, decomposition, inverse, transpose and
forward/backward substitution.  This subpackage implements those primitives
from scratch (with blocked variants mirroring the accelerator's blocking
strategy) and provides an operation-count tracker used to validate the
Table I decomposition and to drive the backend accelerator cycle model.
"""

from repro.linalg.primitives import BuildingBlock, OperationTrace, traced
from repro.linalg.blocked import blocked_matmul, blocked_transpose
from repro.linalg.ops import matmul, transpose, quadratic_form
from repro.linalg.decompositions import cholesky, lu_decompose, qr_decompose
from repro.linalg.solvers import (
    backward_substitution,
    forward_substitution,
    solve_cholesky,
    solve_linear,
    symmetric_inverse,
)

__all__ = [
    "BuildingBlock",
    "OperationTrace",
    "traced",
    "blocked_matmul",
    "blocked_transpose",
    "matmul",
    "transpose",
    "quadratic_form",
    "cholesky",
    "lu_decompose",
    "qr_decompose",
    "forward_substitution",
    "backward_substitution",
    "solve_cholesky",
    "solve_linear",
    "symmetric_inverse",
]
