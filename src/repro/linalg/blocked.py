"""Blocked matrix multiplication and transpose.

The backend accelerator accommodates arbitrary matrix sizes "by exploiting
the inherent blocking nature of matrix operations" (Sec. VI-A): the compute
units operate on fixed-size blocks while the scratchpads hold the full
operands.  These software implementations mirror that structure so the
hardware model and the algorithms agree on how work decomposes into blocks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.linalg.primitives import BuildingBlock, record_primitive


def blocked_matmul(a: np.ndarray, b: np.ndarray, block_size: int = 16) -> np.ndarray:
    """Multiply ``a @ b`` by iterating over square blocks.

    Dimension checks raise ``ValueError`` so shape bugs in backend kernels
    surface immediately rather than as silent broadcasting.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim == 1:
        a = a.reshape(1, -1)
    if b.ndim == 1:
        b = b.reshape(-1, 1)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes for matmul: {a.shape} x {b.shape}")
    if block_size <= 0:
        raise ValueError("block_size must be positive")

    record_primitive(BuildingBlock.MULTIPLICATION, a.shape, b.shape)

    m, k = a.shape
    n = b.shape[1]
    out = np.zeros((m, n))
    for i0 in range(0, m, block_size):
        i1 = min(i0 + block_size, m)
        for j0 in range(0, n, block_size):
            j1 = min(j0 + block_size, n)
            acc = np.zeros((i1 - i0, j1 - j0))
            for k0 in range(0, k, block_size):
                k1 = min(k0 + block_size, k)
                acc += a[i0:i1, k0:k1] @ b[k0:k1, j0:j1]
            out[i0:i1, j0:j1] = acc
    return out


def blocked_transpose(a: np.ndarray, block_size: int = 16) -> np.ndarray:
    """Transpose ``a`` block by block."""
    a = np.asarray(a, dtype=float)
    if a.ndim == 1:
        a = a.reshape(1, -1)
    record_primitive(BuildingBlock.TRANSPOSE, a.shape)

    m, n = a.shape
    out = np.zeros((n, m))
    for i0 in range(0, m, block_size):
        i1 = min(i0 + block_size, m)
        for j0 in range(0, n, block_size):
            j1 = min(j0 + block_size, n)
            out[j0:j1, i0:i1] = a[i0:i1, j0:j1].T
    return out


def block_count(shape: Tuple[int, int], block_size: int) -> int:
    """Number of blocks needed to tile a matrix of ``shape``."""
    rows = -(-shape[0] // block_size)
    cols = -(-shape[1] // block_size)
    return rows * cols


def matmul_block_iterations(m: int, k: int, n: int, block_size: int) -> int:
    """Number of block-level multiply-accumulate steps for an (m,k)x(k,n) product."""
    mb = -(-m // block_size)
    kb = -(-k // block_size)
    nb = -(-n // block_size)
    return mb * kb * nb
