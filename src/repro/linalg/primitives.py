"""Matrix-primitive taxonomy and operation tracing.

Table I of the paper decomposes the three backend kernels into five matrix
building blocks.  :class:`BuildingBlock` names those blocks;
:class:`OperationTrace` records every primitive invocation (with operand
shapes) so tests can verify the decomposition and the hardware model can
translate a kernel execution into accelerator cycles.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple


class BuildingBlock(str, Enum):
    """The five matrix primitives of Table I."""

    MULTIPLICATION = "matrix_multiplication"
    DECOMPOSITION = "matrix_decomposition"
    INVERSE = "matrix_inverse"
    TRANSPOSE = "matrix_transpose"
    SUBSTITUTION = "fwd_bwd_substitution"


@dataclass
class PrimitiveCall:
    """A single invocation of a building block on operands of a given shape."""

    block: BuildingBlock
    shape_a: Tuple[int, ...]
    shape_b: Optional[Tuple[int, ...]] = None

    @property
    def flops(self) -> float:
        """Rough floating-point operation count for the call."""
        if self.block is BuildingBlock.MULTIPLICATION and self.shape_b is not None:
            m, k = self.shape_a[0], self.shape_a[-1]
            n = self.shape_b[-1] if len(self.shape_b) > 1 else 1
            return 2.0 * m * k * n
        if self.block is BuildingBlock.DECOMPOSITION:
            n = self.shape_a[0]
            return (2.0 / 3.0) * n**3
        if self.block is BuildingBlock.INVERSE:
            n = self.shape_a[0]
            return 2.0 * n**3
        if self.block is BuildingBlock.TRANSPOSE:
            rows = self.shape_a[0]
            cols = self.shape_a[1] if len(self.shape_a) > 1 else 1
            return float(rows * cols)
        if self.block is BuildingBlock.SUBSTITUTION:
            n = self.shape_a[0]
            rhs = self.shape_b[-1] if self.shape_b is not None and len(self.shape_b) > 1 else 1
            return float(n * n * rhs)
        return 0.0


class OperationTrace:
    """Accumulates primitive calls issued while the trace is active."""

    def __init__(self) -> None:
        self.calls: List[PrimitiveCall] = []

    def record(self, block: BuildingBlock, shape_a: Tuple[int, ...],
               shape_b: Optional[Tuple[int, ...]] = None) -> None:
        self.calls.append(PrimitiveCall(block, tuple(shape_a), tuple(shape_b) if shape_b else None))

    def blocks_used(self) -> Dict[BuildingBlock, int]:
        counts: Dict[BuildingBlock, int] = {}
        for call in self.calls:
            counts[call.block] = counts.get(call.block, 0) + 1
        return counts

    def total_flops(self) -> float:
        return float(sum(call.flops for call in self.calls))

    def calls_for(self, block: BuildingBlock) -> List[PrimitiveCall]:
        return [call for call in self.calls if call.block is block]

    def clear(self) -> None:
        self.calls = []


_local = threading.local()


def _active_traces() -> List[OperationTrace]:
    if not hasattr(_local, "traces"):
        _local.traces = []
    return _local.traces


@contextmanager
def traced(trace: Optional[OperationTrace] = None):
    """Context manager that records matrix-primitive calls into ``trace``.

    Usage::

        trace = OperationTrace()
        with traced(trace):
            kalman_gain(...)
        assert BuildingBlock.DECOMPOSITION in trace.blocks_used()
    """
    trace = trace or OperationTrace()
    stack = _active_traces()
    stack.append(trace)
    try:
        yield trace
    finally:
        stack.pop()


def record_primitive(block: BuildingBlock, shape_a: Tuple[int, ...],
                     shape_b: Optional[Tuple[int, ...]] = None) -> None:
    """Record a primitive invocation into every active trace."""
    for trace in _active_traces():
        trace.record(block, shape_a, shape_b)


def tracing_active() -> bool:
    """True when at least one :func:`traced` context is currently open.

    Batched kernels use this to skip per-block bookkeeping on the hot path
    while still reporting every logical primitive invocation under a trace.
    """
    return bool(_active_traces())


# Static decomposition of the variation-contributing kernels (Table I).
TABLE_I_DECOMPOSITION: Dict[str, List[BuildingBlock]] = {
    "projection": [
        BuildingBlock.MULTIPLICATION,
    ],
    "kalman_gain": [
        BuildingBlock.MULTIPLICATION,
        BuildingBlock.DECOMPOSITION,
        BuildingBlock.TRANSPOSE,
        BuildingBlock.SUBSTITUTION,
    ],
    "marginalization": [
        BuildingBlock.MULTIPLICATION,
        BuildingBlock.DECOMPOSITION,
        BuildingBlock.INVERSE,
        BuildingBlock.TRANSPOSE,
        BuildingBlock.SUBSTITUTION,
    ],
}
