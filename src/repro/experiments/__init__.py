"""Experiment drivers: one module per paper table/figure.

Every driver returns plain Python data structures (dicts/lists) so the same
code backs the benchmark harness, the examples and the tests.  Expensive
localization runs are cached per process (see :mod:`repro.experiments.common`)
so a full benchmark session re-uses each characterization run across figures.
"""

from repro.experiments import common
from repro.experiments.fig03_accuracy import accuracy_vs_framerate
from repro.experiments.fig05_08_characterization import (
    backend_breakdown_by_mode,
    frontend_backend_by_mode,
)
from repro.experiments.fig09_11_variation import variation_by_mode
from repro.experiments.fig16_scaling import kernel_scaling_curves
from repro.experiments.fig17_21_acceleration import acceleration_report
from repro.experiments.sec7f_scheduler import scheduler_report
from repro.experiments.table1_blocks import building_block_matrix
from repro.experiments.table2_resources import resource_report
from repro.experiments.table3_platforms import platform_speedups

__all__ = [
    "common",
    "accuracy_vs_framerate",
    "frontend_backend_by_mode",
    "backend_breakdown_by_mode",
    "variation_by_mode",
    "kernel_scaling_curves",
    "acceleration_report",
    "scheduler_report",
    "building_block_matrix",
    "resource_report",
    "platform_speedups",
]
