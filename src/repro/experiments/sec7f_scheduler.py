"""Sec. VII-F: effectiveness of the runtime backend scheduler.

The experiment trains the scheduler's regression models on 25 % of the
frames and evaluates on the remaining 75 %, reporting the fit quality (R^2),
the gap to an oracle scheduler, the offload fraction per mode, and the
latency penalty of always offloading (the paper reports an 8.3 % increase
for SLAM when always offloading).
"""

from __future__ import annotations

from typing import Dict

from repro.core.modes import BackendMode
from repro.experiments.common import accelerator_for, all_mode_runs
from repro.scheduler.scheduler import train_test_split


def scheduler_report(platform_kind: str = "car", duration: float = 20.0,
                     train_fraction: float = 0.25, seed: int = 0) -> Dict[str, Dict]:
    """Per-mode scheduler evaluation."""
    runs = all_mode_runs(platform_kind, duration)
    accelerator = accelerator_for(platform_kind)
    report: Dict[str, Dict] = {}
    for mode, result in runs.items():
        samples = []
        kernel = accelerator.backend_model.accelerated_kernel_name(mode.value)
        for frontend_result, backend_result in zip(result.frontend_results, result.backend_results):
            record = accelerator.cpu_model.frame_record(
                frontend_result.frame_index, backend_result.mode,
                frontend_result.workload, backend_result.workload,
            )
            samples.append((backend_result.workload, record.backend.get(kernel, 0.0)))

        train, test = train_test_split(samples, train_fraction=train_fraction, seed=seed)
        if len(train) < 4 or len(test) < 4:
            train, test = samples, samples
        accelerator.scheduler.train_from_frames(
            mode.value, [s[0] for s in train], [s[1] for s in train]
        )
        evaluation = accelerator.scheduler.evaluate(
            mode.value, [s[0] for s in test], [s[1] for s in test]
        )
        report[mode.value] = {
            "kernel": kernel,
            "training_r2": accelerator.scheduler.training_r2[mode.value],
            "test_r2": evaluation.r2,
            "offload_fraction": evaluation.offload_fraction,
            "scheduler_mean_ms": evaluation.mean_latency_ms,
            "oracle_mean_ms": evaluation.oracle_mean_latency_ms,
            "gap_to_oracle_percent": evaluation.gap_to_oracle_percent,
            "always_offload_mean_ms": evaluation.always_offload_mean_latency_ms,
            "never_offload_mean_ms": evaluation.never_offload_mean_latency_ms,
            "always_offload_penalty_percent": evaluation.always_offload_penalty_percent,
        }
    return report
