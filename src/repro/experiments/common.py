"""Shared experiment infrastructure: datasets, cached runs and models.

The characterization and acceleration experiments all start from the same
kind of run: the unified framework pinned to one backend mode, processing a
synthetic sequence representative of the scenario that prefers that mode
(Fig. 2).  Execution is delegated to :mod:`repro.experiments.runner`: runs
are memoized per process (so the many figures sharing a characterization
only pay for it once), persisted to a content-hash-keyed on-disk store (so
repeated benchmark sessions skip recomputation entirely), and fanned out
across worker processes when several cold cells are requested at once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.cpu import CpuLatencyModel
from repro.common.timing import LatencyRecord
from repro.core.modes import BackendMode
from repro.core.result import TrajectoryResult
from repro.experiments.runner import (
    DEFAULT_DURATION_S,
    DEFAULT_LANDMARKS,
    ExperimentCell,
    ExperimentRunner,
    RunStore,
    _SEQUENCE_CACHE,
    build_sequence,
    localizer_config_for,
    platform_for,
    sensor_config_for,
)
from repro.hardware.accelerator import EudoxusAccelerator
from repro.sensors.scenarios import ScenarioKind

# The scenario each backend mode is characterized on (its preferred
# environment from Fig. 2).
MODE_SCENARIO: Dict[BackendMode, ScenarioKind] = {
    BackendMode.REGISTRATION: ScenarioKind.INDOOR_KNOWN,
    BackendMode.VIO: ScenarioKind.OUTDOOR_UNKNOWN,
    BackendMode.SLAM: ScenarioKind.INDOOR_UNKNOWN,
}

# The process-wide default runner every experiment driver shares.  Tests can
# swap it (or its store) via :func:`set_default_runner`.
_default_runner: Optional[ExperimentRunner] = None


def default_runner() -> ExperimentRunner:
    """The shared :class:`ExperimentRunner` (created on first use)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner(store=RunStore())
    return _default_runner


def set_default_runner(runner: Optional[ExperimentRunner]) -> None:
    """Replace the shared runner (pass None to recreate on next use)."""
    global _default_runner
    _default_runner = runner


def characterization_cell(mode: Optional[BackendMode], platform_kind: str = "car",
                          duration: float = DEFAULT_DURATION_S, camera_rate_hz: float = 10.0,
                          landmark_count: int = DEFAULT_LANDMARKS, seed: int = 0,
                          scenario_kind: Optional[ScenarioKind] = None) -> ExperimentCell:
    """The experiment cell describing one characterization run."""
    if scenario_kind is None:
        if mode is None:
            raise ValueError("either a mode or an explicit scenario is required")
        scenario_kind = MODE_SCENARIO[mode]
    return ExperimentCell(
        scenario=scenario_kind,
        mode=mode,
        platform_kind=platform_kind,
        duration=duration,
        camera_rate_hz=camera_rate_hz,
        landmark_count=landmark_count,
        seed=seed,
    )


def characterization_run(mode: BackendMode, platform_kind: str = "car",
                         duration: float = DEFAULT_DURATION_S, camera_rate_hz: float = 10.0,
                         landmark_count: int = DEFAULT_LANDMARKS, seed: int = 0,
                         scenario_kind: Optional[ScenarioKind] = None) -> TrajectoryResult:
    """Run (and cache) the framework pinned to one mode on its preferred scenario."""
    cell = characterization_cell(mode, platform_kind, duration, camera_rate_hz,
                                 landmark_count, seed, scenario_kind)
    return default_runner().run_cell(cell)


def all_mode_runs(platform_kind: str = "car", duration: float = DEFAULT_DURATION_S,
                  camera_rate_hz: float = 10.0, seed: int = 0) -> Dict[BackendMode, TrajectoryResult]:
    """Characterization runs for all three modes on one platform.

    The three cells are requested as one batch so cold runs can fan out
    across worker processes.
    """
    modes = (BackendMode.REGISTRATION, BackendMode.VIO, BackendMode.SLAM)
    cells = {mode: characterization_cell(mode, platform_kind, duration, camera_rate_hz, seed=seed)
             for mode in modes}
    results = default_runner().run_cells(list(cells.values()))
    return {mode: results[cell] for mode, cell in cells.items()}


def prefetch_mode_runs(platform_kind: str = "car", duration: float = DEFAULT_DURATION_S,
                       seeds: Sequence[int] = (0,), camera_rate_hz: float = 10.0) -> None:
    """Request every (mode, seed) characterization cell as one batch.

    Multi-seed sweeps call this first so all cold cells fan out across the
    worker pool together instead of seed by seed.
    """
    cells = [characterization_cell(mode, platform_kind, duration, camera_rate_hz, seed=seed)
             for seed in seeds
             for mode in (BackendMode.REGISTRATION, BackendMode.VIO, BackendMode.SLAM)]
    default_runner().run_cells(cells)


def baseline_records(result: TrajectoryResult, platform_kind: str = "car") -> List[LatencyRecord]:
    """Baseline (CPU) platform latency records for a characterized run."""
    platform = platform_for(platform_kind)
    model = CpuLatencyModel(platform=platform.host)
    return model.records_from_results(result)


def accelerator_for(platform_kind: str = "car") -> EudoxusAccelerator:
    platform = platform_for(platform_kind)
    return EudoxusAccelerator(platform)


def clear_caches(disk: bool = False) -> None:
    """Drop all cached sequences and runs (used by tests).

    The on-disk run store is preserved unless ``disk=True``.
    """
    _SEQUENCE_CACHE.clear()
    runner = default_runner()
    runner.clear_memory()
    if disk and runner.store is not None:
        runner.store.clear()
