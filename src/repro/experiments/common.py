"""Shared experiment infrastructure: datasets, cached runs and models.

The characterization and acceleration experiments all start from the same
kind of run: the unified framework pinned to one backend mode, processing a
synthetic sequence representative of the scenario that prefers that mode
(Fig. 2).  Runs are cached per process so that the many figures sharing a
characterization only pay for it once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.cpu import CpuLatencyModel
from repro.common.config import LocalizerConfig, SensorConfig
from repro.common.timing import LatencyRecord
from repro.core.framework import EudoxusLocalizer
from repro.core.modes import BackendMode
from repro.core.result import TrajectoryResult
from repro.hardware.accelerator import EudoxusAccelerator
from repro.hardware.platform import EDX_CAR, EDX_DRONE, EudoxusPlatform
from repro.sensors.dataset import SequenceBuilder, SyntheticSequence
from repro.sensors.scenarios import OperatingScenario, ScenarioKind, scenario_catalog

# Default characterization length.  The paper profiles 1,800 frames; we use a
# shorter sequence by default so the whole benchmark suite stays tractable in
# pure Python, and expose the length as a parameter for longer runs.
DEFAULT_DURATION_S = 20.0
DEFAULT_LANDMARKS = 300

# The scenario each backend mode is characterized on (its preferred
# environment from Fig. 2).
MODE_SCENARIO: Dict[BackendMode, ScenarioKind] = {
    BackendMode.REGISTRATION: ScenarioKind.INDOOR_KNOWN,
    BackendMode.VIO: ScenarioKind.OUTDOOR_UNKNOWN,
    BackendMode.SLAM: ScenarioKind.INDOOR_UNKNOWN,
}

_SEQUENCE_CACHE: Dict[Tuple, SyntheticSequence] = {}
_RUN_CACHE: Dict[Tuple, TrajectoryResult] = {}


def platform_for(kind: str) -> EudoxusPlatform:
    """Look up a platform by short name ("car" or "drone")."""
    if kind == "car":
        return EDX_CAR
    if kind == "drone":
        return EDX_DRONE
    raise ValueError(f"unknown platform kind: {kind}")


def sensor_config_for(platform_kind: str, camera_rate_hz: float = 10.0,
                      seed: int = 0) -> SensorConfig:
    """Sensor configuration matching one of the two deployments."""
    platform = platform_for(platform_kind)
    return SensorConfig(
        image_width=platform.image_width,
        image_height=platform.image_height,
        stereo_baseline=0.4 if platform_kind == "car" else 0.2,
        camera_rate_hz=camera_rate_hz,
        seed=seed,
    )


def build_sequence(scenario_kind: ScenarioKind, platform_kind: str = "car",
                   duration: float = DEFAULT_DURATION_S, camera_rate_hz: float = 10.0,
                   landmark_count: int = DEFAULT_LANDMARKS, seed: int = 0) -> SyntheticSequence:
    """Build (and cache) a synthetic sequence for a scenario."""
    key = (scenario_kind, platform_kind, round(duration, 3), round(camera_rate_hz, 3), landmark_count, seed)
    if key not in _SEQUENCE_CACHE:
        catalog = scenario_catalog(duration=duration, landmark_count=landmark_count)
        builder = SequenceBuilder(sensor_config_for(platform_kind, camera_rate_hz, seed))
        _SEQUENCE_CACHE[key] = builder.build(catalog[scenario_kind])
    return _SEQUENCE_CACHE[key]


def localizer_config_for(platform_kind: str) -> LocalizerConfig:
    return LocalizerConfig.car_default() if platform_kind == "car" else LocalizerConfig.drone_default()


def characterization_run(mode: BackendMode, platform_kind: str = "car",
                         duration: float = DEFAULT_DURATION_S, camera_rate_hz: float = 10.0,
                         landmark_count: int = DEFAULT_LANDMARKS, seed: int = 0,
                         scenario_kind: Optional[ScenarioKind] = None) -> TrajectoryResult:
    """Run (and cache) the framework pinned to one mode on its preferred scenario."""
    scenario_kind = scenario_kind or MODE_SCENARIO[mode]
    key = (mode, scenario_kind, platform_kind, round(duration, 3), round(camera_rate_hz, 3), landmark_count, seed)
    if key not in _RUN_CACHE:
        sequence = build_sequence(scenario_kind, platform_kind, duration, camera_rate_hz, landmark_count, seed)
        localizer = EudoxusLocalizer(localizer_config_for(platform_kind), mode_override=mode)
        _RUN_CACHE[key] = localizer.process_sequence(sequence)
    return _RUN_CACHE[key]


def all_mode_runs(platform_kind: str = "car", duration: float = DEFAULT_DURATION_S,
                  camera_rate_hz: float = 10.0) -> Dict[BackendMode, TrajectoryResult]:
    """Characterization runs for all three modes on one platform."""
    return {
        mode: characterization_run(mode, platform_kind, duration, camera_rate_hz)
        for mode in (BackendMode.REGISTRATION, BackendMode.VIO, BackendMode.SLAM)
    }


def baseline_records(result: TrajectoryResult, platform_kind: str = "car") -> List[LatencyRecord]:
    """Baseline (CPU) platform latency records for a characterized run."""
    platform = platform_for(platform_kind)
    model = CpuLatencyModel(platform=platform.host)
    return model.records_from_results(result)


def accelerator_for(platform_kind: str = "car") -> EudoxusAccelerator:
    platform = platform_for(platform_kind)
    return EudoxusAccelerator(platform)


def clear_caches() -> None:
    """Drop all cached sequences and runs (used by tests)."""
    _SEQUENCE_CACHE.clear()
    _RUN_CACHE.clear()
