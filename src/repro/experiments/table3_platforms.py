"""Table III: EDX-CAR speedup over CPU/GPU/DSP baselines.

The end-to-end frame latency of each platform variant is obtained by
applying that platform's cost model (speed factor plus fixed per-frame
overhead) to the characterized workloads; the speedup is measured against
the accelerated EDX-CAR latency.  The reproduction target is the ordering —
the paper's own multi-core no-ROS baseline is the strongest (smallest
speedup), the mobile GPU with its launch overhead is the weakest.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.cpu import CpuLatencyModel
from repro.baselines.platforms import TABLE_III_PLATFORMS
from repro.experiments.common import accelerator_for, all_mode_runs


def platform_speedups(platform_kind: str = "car", duration: float = 20.0) -> Dict[str, Dict[str, float]]:
    """Speedup of Eudoxus over each Table III baseline platform."""
    runs = all_mode_runs(platform_kind, duration)
    accelerator = accelerator_for(platform_kind)

    # Eudoxus latency: accelerate every mode and pool the frames.
    eudoxus_ms: list = []
    for result in runs.values():
        summary = accelerator.accelerate(result)
        eudoxus_ms.extend(f.accelerated_record.total for f in summary.frames)
    eudoxus_mean = float(np.mean(eudoxus_ms))

    report: Dict[str, Dict[str, float]] = {}
    for key, platform in TABLE_III_PLATFORMS.items():
        model = CpuLatencyModel(platform=platform)
        totals: list = []
        for result in runs.values():
            for record in model.records_from_results(result):
                totals.append(record.total)
        mean_ms = float(np.mean(totals))
        report[key] = {
            "platform": platform.name,
            "mean_latency_ms": mean_ms,
            "speedup_over_platform": mean_ms / max(eudoxus_mean, 1e-9),
        }
    report["eudoxus"] = {"platform": "EDX-" + platform_kind.upper(), "mean_latency_ms": eudoxus_mean,
                         "speedup_over_platform": 1.0}
    return report
