"""Figs. 5-8: latency distribution of the unified framework on the baseline CPU.

Fig. 5 reports the frontend/backend latency shares and relative standard
deviations in the three modes; Figs. 6-8 report the kernel breakdown inside
each backend.  Both are computed from the baseline CPU latency model applied
to the characterized per-frame workloads.

The three per-mode characterization cells are resolved through the shared
:class:`~repro.experiments.runner.ExperimentRunner` (via
:func:`~repro.experiments.common.all_mode_runs`): cold cells fan out across
worker processes and warm ones come from the in-process memo or the
persistent on-disk run store.
"""

from __future__ import annotations

from typing import Dict

from repro.characterization.stats import backend_kernel_breakdown, frontend_backend_shares
from repro.core.modes import BackendMode
from repro.experiments.common import all_mode_runs, baseline_records


def frontend_backend_by_mode(platform_kind: str = "car", duration: float = 20.0) -> Dict[str, Dict]:
    """Fig. 5: frontend/backend share and RSD per mode."""
    runs = all_mode_runs(platform_kind, duration)
    report: Dict[str, Dict] = {}
    for mode, result in runs.items():
        records = baseline_records(result, platform_kind)
        report[mode.value] = frontend_backend_shares(records)
    return report


def backend_breakdown_by_mode(platform_kind: str = "car", duration: float = 20.0) -> Dict[str, Dict[str, float]]:
    """Figs. 6-8: percentage breakdown of backend kernels per mode."""
    runs = all_mode_runs(platform_kind, duration)
    report: Dict[str, Dict[str, float]] = {}
    for mode, result in runs.items():
        records = baseline_records(result, platform_kind)
        report[mode.value] = backend_kernel_breakdown(records)
    return report


def dominant_backend_kernel(platform_kind: str = "car", duration: float = 20.0) -> Dict[str, str]:
    """The largest backend contributor per mode (projection / Kalman gain /
    marginalization in the paper)."""
    breakdown = backend_breakdown_by_mode(platform_kind, duration)
    out: Dict[str, str] = {}
    for mode, kernels in breakdown.items():
        interesting = {k: v for k, v in kernels.items() if k != "platform_overhead"}
        out[mode] = max(interesting, key=interesting.get) if interesting else ""
    return out
