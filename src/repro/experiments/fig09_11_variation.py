"""Figs. 9-11: per-frame latency variation in the three modes.

Each figure shows the per-frame latency split between frontend and backend
(sorted by total latency) and the per-frame latency of the backend kernels.
The reproduction targets are the qualitative facts the paper reports: the
worst-case total latency is several times the best case, the backend has a
higher relative standard deviation than the frontend, and one kernel
dominates the variation in each mode.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.characterization.stats import (
    frontend_backend_shares,
    kernel_series,
    latency_series,
    worst_to_best_ratio,
)
from repro.core.modes import BackendMode
from repro.experiments.common import all_mode_runs, baseline_records

# The per-mode kernels plotted in Figs. 9b, 10b and 11b.
MODE_KERNELS: Dict[str, List[str]] = {
    "registration": ["update", "projection", "match", "pose_optimization"],
    "vio": ["covariance", "kalman_gain", "qr", "jacobian", "imu_processing", "fusion"],
    "slam": ["solver", "marginalization", "others"],
}


def variation_by_mode(platform_kind: str = "car", duration: float = 20.0) -> Dict[str, Dict]:
    """Per-mode variation report backing Figs. 9-11."""
    runs = all_mode_runs(platform_kind, duration)
    report: Dict[str, Dict] = {}
    for mode, result in runs.items():
        records = baseline_records(result, platform_kind)
        frontend, backend = latency_series(records)
        shares = frontend_backend_shares(records)
        kernels = kernel_series(records, MODE_KERNELS[mode.value])
        report[mode.value] = {
            "frontend_series_ms": frontend.tolist(),
            "backend_series_ms": backend.tolist(),
            "worst_to_best_ratio": worst_to_best_ratio(records),
            "frontend_rsd_percent": shares["frontend"]["rsd_percent"],
            "backend_rsd_percent": shares["backend"]["rsd_percent"],
            "kernel_peak_ms": {name: float(np.max(series)) if series.size else 0.0
                               for name, series in kernels.items()},
            "kernel_std_ms": {name: float(np.std(series)) if series.size else 0.0
                              for name, series in kernels.items()},
        }
    return report


def dominant_variation_kernel(platform_kind: str = "car", duration: float = 20.0) -> Dict[str, str]:
    """The kernel with the highest latency standard deviation per mode."""
    report = variation_by_mode(platform_kind, duration)
    out: Dict[str, str] = {}
    for mode, data in report.items():
        stds = data["kernel_std_ms"]
        out[mode] = max(stds, key=stds.get) if stds else ""
    return out
