"""Fig. 16: backend kernel latency as a function of the matrix sizes.

The figure motivates the runtime scheduler: projection latency grows
linearly with the number of map points, while Kalman-gain and
marginalization latencies grow (roughly quadratically) with the number of
feature points.  The curves are produced by sweeping the workload sizes
through the baseline CPU cost model and, for the measured variant, through
the actual Python kernels.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from repro.backend.mapping import SlamWorkload
from repro.backend.msckf import VioWorkload
from repro.backend.tracking import RegistrationWorkload
from repro.baselines.cpu import BackendCostModel
from repro.linalg.ops import matmul, quadratic_form, transpose
from repro.linalg.solvers import solve_cholesky
from repro.scheduler.regression import PolynomialRegression


def kernel_scaling_curves(
    projection_points: Sequence[int] = (200, 500, 1000, 2000, 4000, 8000),
    feature_points: Sequence[int] = (20, 40, 80, 120, 160, 200),
) -> Dict[str, List[Dict]]:
    """Model-predicted latency of each kernel across workload sizes."""
    model = BackendCostModel()
    projection_rows = []
    for points in projection_points:
        workload = RegistrationWorkload(map_points=points, matches=min(points, 150), pose_iterations=5)
        projection_rows.append({"size": points, "latency_ms": model.registration_ms(workload)["projection"]})

    kalman_rows = []
    for features in feature_points:
        workload = VioWorkload(
            features_used=features, jacobian_rows=min(3 * features, 195),
            kalman_gain_dim=min(3 * features, 195), state_dim=195, qr_rows=3 * features,
            imu_samples=10,
        )
        kalman_rows.append({"size": features, "latency_ms": model.vio_ms(workload)["kalman_gain"]})

    marginalization_rows = []
    for features in feature_points:
        workload = SlamWorkload(
            feature_points=features, marginalized_dim=3 * features // 2 + 6,
            keyframes=8, observations=8 * features, solver_iterations=5,
        )
        marginalization_rows.append(
            {"size": features, "latency_ms": model.slam_ms(workload)["marginalization"]}
        )

    return {
        "projection": projection_rows,
        "kalman_gain": kalman_rows,
        "marginalization": marginalization_rows,
    }


def measured_kalman_gain_curve(feature_points: Sequence[int] = (10, 20, 40, 60),
                               state_dim: int = 105, repeats: int = 2,
                               seed: int = 0) -> List[Dict]:
    """Wall-clock latency of the reference Kalman-gain implementation."""
    rng = np.random.default_rng(seed)
    rows: List[Dict] = []
    for features in feature_points:
        measurement_rows = min(3 * features, state_dim)
        h = rng.normal(size=(measurement_rows, state_dim))
        p = rng.normal(size=(state_dim, state_dim))
        p = p @ p.T + np.eye(state_dim)
        start = time.perf_counter()
        for _ in range(repeats):
            s = quadratic_form(h, p) + np.eye(measurement_rows)
            solve_cholesky(s, transpose(matmul(p, transpose(h))))
        elapsed_ms = (time.perf_counter() - start) * 1000.0 / repeats
        rows.append({"size": features, "latency_ms": elapsed_ms})
    return rows


def fit_quality(rows: List[Dict], degree: int) -> float:
    """R^2 of a polynomial fit to a latency curve (supports Sec. VII-F)."""
    sizes = [row["size"] for row in rows]
    latencies = [row["latency_ms"] for row in rows]
    model = PolynomialRegression(degree=degree).fit(sizes, latencies)
    return model.score(sizes, latencies)
