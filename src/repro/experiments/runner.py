"""Parallel experiment engine with a persistent on-disk run cache.

Every figure and table in the paper is derived from the same kind of unit of
work: run the unified framework, pinned to one backend mode, over one
synthetic sequence — a *cell* of the experiment grid
(scenario x mode x frame rate x platform x seed).  This module makes that
unit explicit and gives it three execution layers:

1. an in-process memo (the same object is returned for repeated requests
   within one session, which the figure drivers rely on),
2. a content-hash-keyed on-disk :class:`RunStore`, so repeated benchmark
   sessions skip recomputation entirely, and
3. a ``ProcessPoolExecutor`` fan-out for grids with many cold cells, with
   deterministic per-cell seeds so serial and parallel execution produce
   identical results.

Cache keys cover every cell parameter *and* a fingerprint of the full
localizer/sensor configuration, so editing any config default invalidates
exactly the affected entries.  Corrupted or unreadable entries are dropped
and recomputed transparently.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import LocalizerConfig, SensorConfig
from repro.core.framework import EudoxusLocalizer
from repro.core.modes import BackendMode
from repro.core.result import TrajectoryResult
from repro.hardware.platform import EDX_CAR, EDX_DRONE, EudoxusPlatform
from repro.sensors.dataset import SequenceBuilder, SyntheticSequence
from repro.sensors.scenarios import ScenarioKind, scenario_catalog

# Default characterization length.  The paper profiles 1,800 frames; we use a
# shorter sequence by default so the whole benchmark suite stays tractable in
# pure Python, and expose the length as a parameter for longer runs.
DEFAULT_DURATION_S = 20.0
DEFAULT_LANDMARKS = 300

# Bump when the result schema or the meaning of a cell changes; every key
# embeds this so stale stores from older code are never reused.
CACHE_SCHEMA_VERSION = 1

RUN_CACHE_ENV = "EUDOXUS_RUN_CACHE"
MAX_WORKERS_ENV = "EUDOXUS_MAX_WORKERS"
# Store eviction bounds (satellite of the serving PR): the store is LRU-bounded
# by total size and entry age so keys rotated by code changes don't grow it
# without bound.  A value <= 0 disables the corresponding bound.
STORE_MAX_MB_ENV = "EUDOXUS_RUN_CACHE_MAX_MB"
STORE_MAX_AGE_DAYS_ENV = "EUDOXUS_RUN_CACHE_MAX_AGE_DAYS"
DEFAULT_STORE_MAX_MB = 512.0
DEFAULT_STORE_MAX_AGE_DAYS = 30.0

_SEQUENCE_CACHE: Dict[Tuple, SyntheticSequence] = {}


def resolve_max_workers(max_workers: Optional[int] = None) -> int:
    """Worker-pool width: explicit value, else ``EUDOXUS_MAX_WORKERS``, else CPUs."""
    if max_workers is None:
        env = os.environ.get(MAX_WORKERS_ENV, "").strip()
        try:
            max_workers = int(env) if env else (os.cpu_count() or 1)
        except ValueError:
            # A malformed override should not take the whole session down.
            max_workers = os.cpu_count() or 1
    return max(1, int(max_workers))


class WorkerPool:
    """A shared, resizable process pool.

    ``ProcessPoolExecutor`` cannot change width in place, so :meth:`resize`
    retires the current executor (waiting for in-flight work) and lazily
    spawns a replacement at the new width on next use.  This is the pool the
    serving layer's latency-aware autoscaler grows and shrinks between
    dispatch waves; the executor itself is reused across :func:`fan_out`
    calls, which also amortizes worker start-up over many small batches.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._width = resolve_max_workers(max_workers)
        self._executor: Optional[ProcessPoolExecutor] = None
        self.resizes = 0

    @property
    def width(self) -> int:
        return self._width

    def resize(self, width: int) -> bool:
        """Change the pool width; returns True when the width changed."""
        width = max(1, int(width))
        if width == self._width:
            return False
        self._width = width
        self.discard()
        self.resizes += 1
        return True

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, spawned on first use after init/resize/discard."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._width)
        return self._executor

    def discard(self) -> None:
        """Retire the current executor (a broken pool respawns on next use).

        Queued-but-unstarted futures are cancelled: a caller discards the
        pool precisely when it intends to redo the outstanding work
        elsewhere, so letting the old pool finish it first would compute
        every result twice.
        """
        if self._executor is not None:
            executor, self._executor = self._executor, None
            try:
                executor.shutdown(wait=True, cancel_futures=True)
            except Exception:
                # A broken pool may refuse a clean shutdown; it is being
                # discarded either way.
                pass

    def shutdown(self) -> None:
        self.discard()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def fan_out(fn, payloads: Sequence[Dict], max_workers: int, on_pool=None,
            pool: Optional[WorkerPool] = None):
    """Yield ``(index, result)`` for each payload as it completes.

    ``fn`` must be a module-level function of one picklable payload so it can
    cross the process boundary.  Results are yielded in completion order, so
    callers can persist each one immediately; when no usable process pool is
    available (restricted sandbox, missing semaphores, OOM-killed worker...)
    the unfinished payloads are computed in-process instead.  ``on_pool`` is
    called once when a pool actually spawned, so callers can keep honest
    parallelism statistics.  Both the experiment runner and the serving
    engine shard their cold work through this single helper.

    With a :class:`WorkerPool` the batch runs on that shared executor at the
    pool's current width (``max_workers`` is ignored) and the executor stays
    alive for the next batch; without one, a private executor is spawned and
    torn down around the batch.
    """
    indices = list(range(len(payloads)))
    width = pool.width if pool is not None else max_workers
    if width > 1 and len(payloads) > 1:
        remaining = list(indices)
        try:
            if pool is not None:
                executor = pool.executor()
                owns_executor = False
            else:
                executor = ProcessPoolExecutor(max_workers=min(width, len(payloads)))
                owns_executor = True
            try:
                index_of = {executor.submit(fn, payloads[i]): i for i in indices}
                for future in as_completed(index_of):
                    index = index_of[future]
                    result = future.result()
                    if on_pool is not None:
                        # Only after the first result actually came back
                        # from a worker: under the spawn start method the
                        # pool's failure surfaces here, not at submit, and
                        # a run that falls back serially must not be
                        # counted as parallel execution.
                        on_pool()
                        on_pool = None
                    remaining.remove(index)
                    yield index, result
            finally:
                if owns_executor:
                    executor.shutdown(wait=True)
            return
        except (OSError, RuntimeError):
            indices = remaining
            if pool is not None:
                pool.discard()
    for index in indices:
        yield index, fn(payloads[index])


# --------------------------------------------------------------- primitives


def platform_for(kind: str) -> EudoxusPlatform:
    """Look up a platform by short name ("car" or "drone")."""
    if kind == "car":
        return EDX_CAR
    if kind == "drone":
        return EDX_DRONE
    raise ValueError(f"unknown platform kind: {kind}")


def sensor_config_for(platform_kind: str, camera_rate_hz: float = 10.0,
                      seed: int = 0) -> SensorConfig:
    """Sensor configuration matching one of the two deployments."""
    platform = platform_for(platform_kind)
    return SensorConfig(
        image_width=platform.image_width,
        image_height=platform.image_height,
        stereo_baseline=0.4 if platform_kind == "car" else 0.2,
        camera_rate_hz=camera_rate_hz,
        seed=seed,
    )


def localizer_config_for(platform_kind: str) -> LocalizerConfig:
    return LocalizerConfig.car_default() if platform_kind == "car" else LocalizerConfig.drone_default()


def build_sequence(scenario_kind: ScenarioKind, platform_kind: str = "car",
                   duration: float = DEFAULT_DURATION_S, camera_rate_hz: float = 10.0,
                   landmark_count: int = DEFAULT_LANDMARKS, seed: int = 0) -> SyntheticSequence:
    """Build (and cache in-process) a synthetic sequence for a scenario."""
    key = (scenario_kind, platform_kind, round(duration, 3), round(camera_rate_hz, 3), landmark_count, seed)
    if key not in _SEQUENCE_CACHE:
        catalog = scenario_catalog(duration=duration, landmark_count=landmark_count)
        builder = SequenceBuilder(sensor_config_for(platform_kind, camera_rate_hz, seed))
        _SEQUENCE_CACHE[key] = builder.build(catalog[scenario_kind])
    return _SEQUENCE_CACHE[key]


# --------------------------------------------------------------------- cells


@dataclass(frozen=True)
class ExperimentCell:
    """One unit of experimental work: a (scenario, mode, workload) point.

    ``mode`` of ``None`` lets the framework's mode selector pick the backend
    per frame (the mixed-deployment configuration); a concrete
    :class:`BackendMode` pins the backend, as the characterization runs do.
    """

    scenario: ScenarioKind
    mode: Optional[BackendMode] = None
    platform_kind: str = "car"
    duration: float = DEFAULT_DURATION_S
    camera_rate_hz: float = 10.0
    landmark_count: int = DEFAULT_LANDMARKS
    seed: int = 0

    def payload(self) -> Dict:
        """JSON-serializable description of the cell (used for hashing/IPC)."""
        return {
            "scenario": self.scenario.value,
            "mode": self.mode.value if self.mode is not None else None,
            "platform_kind": self.platform_kind,
            "duration": round(float(self.duration), 6),
            "camera_rate_hz": round(float(self.camera_rate_hz), 6),
            "landmark_count": int(self.landmark_count),
            "seed": int(self.seed),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "ExperimentCell":
        return cls(
            scenario=ScenarioKind(payload["scenario"]),
            mode=BackendMode(payload["mode"]) if payload["mode"] is not None else None,
            platform_kind=payload["platform_kind"],
            duration=payload["duration"],
            camera_rate_hz=payload["camera_rate_hz"],
            landmark_count=payload["landmark_count"],
            seed=payload["seed"],
        )


@dataclass
class ExperimentGrid:
    """A cartesian experiment grid that expands into :class:`ExperimentCell`s.

    ``modes`` may contain ``None`` (auto mode selection).  When
    ``skip_inapplicable`` is set, registration cells are dropped for
    scenarios without a map — matching the paper's note that registration
    does not apply there.
    """

    scenarios: Sequence[ScenarioKind] = tuple(ScenarioKind)
    modes: Sequence[Optional[BackendMode]] = (None,)
    platform_kinds: Sequence[str] = ("car",)
    frame_rates: Sequence[float] = (10.0,)
    duration: float = DEFAULT_DURATION_S
    landmark_count: int = DEFAULT_LANDMARKS
    seeds: Sequence[int] = (0,)
    skip_inapplicable: bool = True

    def expand(self) -> List[ExperimentCell]:
        """All cells of the grid, in deterministic iteration order."""
        cells: List[ExperimentCell] = []
        for platform_kind in self.platform_kinds:
            for scenario in self.scenarios:
                for mode in self.modes:
                    if (self.skip_inapplicable and mode is BackendMode.REGISTRATION
                            and not scenario.has_map):
                        continue
                    for rate in self.frame_rates:
                        for seed in self.seeds:
                            cells.append(ExperimentCell(
                                scenario=scenario,
                                mode=mode,
                                platform_kind=platform_kind,
                                duration=self.duration,
                                camera_rate_hz=rate,
                                landmark_count=self.landmark_count,
                                seed=seed,
                            ))
        return cells


def execute_cell(cell: ExperimentCell) -> TrajectoryResult:
    """Run one cell from scratch (no caching).

    This is a pure function of the cell parameters: the sequence, the
    localizer configuration and every random stream are derived
    deterministically from them, which is what makes serial and parallel
    execution bit-identical.
    """
    sequence = build_sequence(
        cell.scenario, cell.platform_kind, cell.duration,
        cell.camera_rate_hz, cell.landmark_count, cell.seed,
    )
    localizer = EudoxusLocalizer(localizer_config_for(cell.platform_kind), mode_override=cell.mode)
    return localizer.process_sequence(sequence)


def _execute_payload(payload: Dict) -> TrajectoryResult:
    """Process-pool entry point (payload dicts pickle smaller than cells)."""
    return execute_cell(ExperimentCell.from_payload(payload))


# --------------------------------------------------------------- disk store


_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of the whole ``repro`` package source, computed once per process.

    Embedding this in every cache key means any code change — not just a
    config change — invalidates the persistent store, so cached results can
    never mask a behavioral difference between two versions of the pipeline.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def config_fingerprint(platform_kind: str, camera_rate_hz: float, seed: int) -> str:
    """Stable hash of the full configuration a cell runs under.

    Any change to a configuration default — sensor noise models, filter
    windows, solver settings — changes the fingerprint and therefore
    invalidates exactly the cache entries that depended on it.
    """
    payload = {
        "localizer": asdict(localizer_config_for(platform_kind)),
        "sensors": asdict(sensor_config_for(platform_kind, camera_rate_hz, seed)),
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def default_store_root() -> Path:
    override = os.environ.get(RUN_CACHE_ENV, "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "eudoxus-repro" / "runs"


def _bound_from_env(env_name: str, default: float, scale: float) -> Optional[float]:
    """Parse a store bound from the environment; <= 0 disables the bound."""
    raw = os.environ.get(env_name, "").strip()
    try:
        value = float(raw) if raw else float(default)
    except ValueError:
        value = float(default)
    if value <= 0:
        return None
    return value * scale


class RunStore:
    """Content-addressed on-disk store of pickled results.

    Cell-level entries hold :class:`TrajectoryResult` objects; the serving
    layer stores whole session results through the generic
    :meth:`load_key` / :meth:`save_key` interface under its own keys.
    Entries are written atomically (temp file + rename) so a crashed or
    interrupted run never leaves a half-written entry behind, and unreadable
    entries are treated as misses and deleted.

    The store is a bounded LRU: every hit refreshes the entry's mtime, and
    entries beyond ``max_bytes`` of total size (oldest first) or older than
    ``max_age_s`` are evicted on construction and on :meth:`evict`.  Bounds
    default to ``EUDOXUS_RUN_CACHE_MAX_MB`` / ``EUDOXUS_RUN_CACHE_MAX_AGE_DAYS``
    (512 MB / 30 days); pass or set a value <= 0 to disable a bound.  This
    keeps keys rotated by code or config changes from growing the store
    without bound.

    Subclasses that persist other artifact families (the fleet map store in
    :mod:`repro.maps`) override the class attributes below to get their own
    root, environment overrides and default bounds while sharing the
    atomic-write / corruption-recovery / LRU machinery.
    """

    MAX_MB_ENV = STORE_MAX_MB_ENV
    MAX_AGE_DAYS_ENV = STORE_MAX_AGE_DAYS_ENV
    DEFAULT_MAX_MB = DEFAULT_STORE_MAX_MB
    DEFAULT_MAX_AGE_DAYS = DEFAULT_STORE_MAX_AGE_DAYS
    # Metric-name prefix for bind_metrics: subclasses persisting other
    # artifact families (the fleet map store) override this so their
    # hit/miss/eviction counters land in their own Prometheus families.
    METRICS_PREFIX = "eudoxus_run_store"

    @classmethod
    def default_root(cls) -> Path:
        return default_store_root()

    def __init__(self, root: Optional[os.PathLike] = None,
                 max_bytes: Optional[float] = None,
                 max_age_s: Optional[float] = None) -> None:
        self.root = Path(root) if root is not None else self.default_root()
        self.max_bytes = (_bound_from_env(self.MAX_MB_ENV, self.DEFAULT_MAX_MB, 1024.0 * 1024.0)
                          if max_bytes is None else (max_bytes if max_bytes > 0 else None))
        self.max_age_s = (_bound_from_env(self.MAX_AGE_DAYS_ENV, self.DEFAULT_MAX_AGE_DAYS, 86400.0)
                          if max_age_s is None else (max_age_s if max_age_s > 0 else None))
        self.hits = 0
        self.misses = 0
        self.dropped = 0  # corrupted entries removed
        self.evicted = 0  # entries removed by the LRU bounds
        # Observability (repro.obs): unbound until bind_metrics — every
        # instrumentation site is guarded by a None check.
        self.metrics = None
        self._m_lookups = None
        self._m_evicted = None
        self._sweep_stale_tmp()
        self.evict()

    def bind_metrics(self, registry) -> None:
        """Register this store's lookup/eviction counters with a
        :class:`repro.obs.MetricsRegistry` (idempotent)."""
        prefix = self.METRICS_PREFIX
        self.metrics = registry
        self._m_lookups = registry.counter(
            f"{prefix}_lookups_total",
            "Store lookups by outcome (hit, miss, dropped = corrupt entry).",
            ("outcome",))
        self._m_evicted = registry.counter(
            f"{prefix}_evicted_total",
            "Entries removed by the LRU size/age bounds.")

    def _sweep_stale_tmp(self, max_age_s: float = 3600.0) -> None:
        """Remove temp files left behind by writers that died mid-save.

        Only files older than ``max_age_s`` are removed, so a sweep never
        races a live writer in another process that is between writing its
        temp file and renaming it into place.
        """
        if not self.root.is_dir():
            return
        now = time.time()
        for stale in self.root.glob("*.tmp.*"):
            try:
                if now - stale.stat().st_mtime > max_age_s:
                    stale.unlink()
            except OSError:
                pass

    def key_for(self, cell: ExperimentCell) -> str:
        payload = cell.payload()
        payload["schema"] = CACHE_SCHEMA_VERSION
        payload["code"] = code_fingerprint()
        payload["config"] = config_fingerprint(cell.platform_kind, cell.camera_rate_hz, cell.seed)
        return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()

    def path_for(self, cell_or_key) -> Path:
        key = cell_or_key if isinstance(cell_or_key, str) else self.key_for(cell_or_key)
        return self.root / f"{key}.pkl"

    def load(self, cell: ExperimentCell) -> Optional[TrajectoryResult]:
        return self.load_key(self.key_for(cell), expect=TrajectoryResult)

    def save(self, cell: ExperimentCell, result: TrajectoryResult) -> Optional[Path]:
        return self.save_key(self.key_for(cell), result)

    def load_key(self, key: str, expect: type = object):
        """Load any stored object by key (None on miss or corruption)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
            if not isinstance(result, expect):
                raise TypeError(f"unexpected cache payload: {type(result)!r}")
        except FileNotFoundError:
            self.misses += 1
            if self._m_lookups is not None:
                self._m_lookups.inc(outcome="miss")
            return None
        except Exception:
            # Corrupted, truncated or written by an incompatible version:
            # drop the entry and recompute.
            self.dropped += 1
            self.misses += 1
            if self._m_lookups is not None:
                self._m_lookups.inc(outcome="dropped")
                self._m_lookups.inc(outcome="miss")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        if self._m_lookups is not None:
            self._m_lookups.inc(outcome="hit")
        try:
            # Refresh recency so the LRU eviction keeps hot entries alive.
            os.utime(path)
        except OSError:
            pass
        return result

    def save_key(self, key: str, result) -> Optional[Path]:
        path = self.path_for(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with open(tmp, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # The store is a cache: an unwritable root (read-only disk, bad
            # EUDOXUS_RUN_CACHE path) must never lose a computed result.
            return None
        return path

    def evict(self, max_bytes: Optional[float] = None,
              max_age_s: Optional[float] = None) -> int:
        """Apply the age and size bounds; returns the number of removed entries.

        Entries are ranked by mtime (refreshed on every hit), so this is an
        LRU: age-expired entries go first, then the least-recently-used until
        the total size fits under ``max_bytes``.
        """
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        max_age_s = self.max_age_s if max_age_s is None else max_age_s
        if not self.root.is_dir() or (max_bytes is None and max_age_s is None):
            return 0
        entries = []
        for path in self.root.glob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first
        now = time.time()
        removed = 0
        survivors = []
        for mtime, size, path in entries:
            if max_age_s is not None and now - mtime > max_age_s:
                removed += self._try_unlink(path)
            else:
                survivors.append((mtime, size, path))
        if max_bytes is not None:
            total = sum(size for _, size, _ in survivors)
            for _, size, path in survivors:
                if total <= max_bytes:
                    break
                removed += self._try_unlink(path)
                total -= size
        self.evicted += removed
        # getattr: the construction-time evict() runs before the metric
        # attributes exist on subclasses mid-__init__.
        evicted_metric = getattr(self, "_m_evicted", None)
        if removed and evicted_metric is not None:
            evicted_metric.inc(removed)
        return removed

    @staticmethod
    def _try_unlink(path: Path) -> int:
        try:
            path.unlink()
            return 1
        except OSError:
            return 0

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def clear(self) -> None:
        if not self.root.is_dir():
            return
        for path in self.root.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
        self._sweep_stale_tmp(max_age_s=-1.0)


# -------------------------------------------------------------------- runner


@dataclass
class RunnerStats:
    """Where each requested cell came from during this runner's lifetime."""

    memory_hits: int = 0
    disk_hits: int = 0
    computed: int = 0
    parallel_batches: int = 0


class ExperimentRunner:
    """Executes experiment cells through memo -> disk store -> computation.

    ``max_workers`` caps the process-pool fan-out; with one worker (or one
    cold cell) everything runs serially in-process, which is also the
    fallback whenever a pool cannot be spawned.  Results are identical
    either way.
    """

    def __init__(self, store: Optional[RunStore] = None, max_workers: Optional[int] = None) -> None:
        self.store = store
        self.max_workers = resolve_max_workers(max_workers)
        self.stats = RunnerStats()
        self._memory: Dict[str, TrajectoryResult] = {}

    # ------------------------------------------------------------- execution

    def _memo_key(self, cell: ExperimentCell) -> str:
        # The config fingerprint is part of the key (as on disk) so an
        # in-session config change can never resurface a stale memo entry.
        payload = cell.payload()
        payload["config"] = config_fingerprint(cell.platform_kind, cell.camera_rate_hz, cell.seed)
        return json.dumps(payload, sort_keys=True)

    def run_cell(self, cell: ExperimentCell) -> TrajectoryResult:
        return self.run_cells([cell])[cell]

    def run_cells(self, cells: Sequence[ExperimentCell]) -> Dict[ExperimentCell, TrajectoryResult]:
        """Resolve every cell, computing cold ones (in parallel when it pays)."""
        results: Dict[ExperimentCell, TrajectoryResult] = {}
        cold: List[ExperimentCell] = []
        queued = set()
        for cell in cells:
            if cell in results or cell in queued:
                continue
            memo_key = self._memo_key(cell)
            cached = self._memory.get(memo_key)
            if cached is not None:
                self.stats.memory_hits += 1
                results[cell] = cached
                continue
            if self.store is not None:
                stored = self.store.load(cell)
                if stored is not None:
                    self.stats.disk_hits += 1
                    self._memory[memo_key] = stored
                    results[cell] = stored
                    continue
            cold.append(cell)
            queued.add(cell)

        for cell, result in self._execute_cold(cold):
            self.stats.computed += 1
            self._memory[self._memo_key(cell)] = result
            if self.store is not None:
                self.store.save(cell, result)
            results[cell] = result
        return results

    def run_grid(self, grid: ExperimentGrid) -> Dict[ExperimentCell, TrajectoryResult]:
        return self.run_cells(grid.expand())

    def clear_memory(self) -> None:
        """Drop the in-process memo (the disk store is left untouched)."""
        self._memory.clear()

    # ------------------------------------------------------------- internals

    def _execute_cold(self, cells: List[ExperimentCell]):
        """Yield ``(cell, result)`` as each cold cell finishes.

        Completed results reach the caller (and therefore the disk store)
        one by one, so a crash or pool failure late in a batch cannot throw
        away earlier work; when the pool dies mid-batch only the cells that
        have not been yielded yet are recomputed serially.
        """
        def _count_batch() -> None:
            self.stats.parallel_batches += 1

        # Completion order, so every finished result is persisted immediately
        # even while slower cells are still running; fan_out falls back to
        # in-process execution when no pool can be spawned (such batches are
        # not counted as parallel).
        for index, result in fan_out(_execute_payload, [cell.payload() for cell in cells],
                                     self.max_workers, on_pool=_count_batch):
            yield cells[index], result
