"""Table II: FPGA resource consumption of EDX-CAR and EDX-DRONE.

Reports, for each platform, the resource usage of the shared Eudoxus design,
its utilization of the target FPGA, and the hypothetical usage without
sharing the frontend and the backend building blocks ("N.S."), which exceeds
both devices.  Also reports the on-chip memory plan, including the stencil
buffer sizes with and without the pixel-replication optimization
(Sec. V-C / VII-D).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import platform_for


def resource_report(platform_kind: str = "car") -> Dict[str, Dict]:
    """Full Table II style report for one platform."""
    platform = platform_for(platform_kind)
    model = platform.resource_model()
    usage = model.total()
    no_sharing = model.total_no_sharing()
    memory = platform.memory_plan()
    return {
        "platform": platform.name,
        "device": platform.device.name,
        "shared": usage.as_dict(),
        "utilization_percent": platform.device.utilization(usage),
        "no_sharing": no_sharing.as_dict(),
        "no_sharing_fits": platform.device.fits(no_sharing),
        "shared_fits": platform.device.fits(usage),
        "frontend_share_of_lut": model.frontend().lut / usage.lut,
        "feature_extraction_share_of_frontend": model.feature_extraction().lut / model.frontend().lut,
        "memory_plan_mb": memory.summary(),
    }


def both_platform_reports() -> Dict[str, Dict]:
    return {kind: resource_report(kind) for kind in ("car", "drone")}
