"""Figs. 17-21: end-to-end acceleration results.

These drivers apply the accelerator model (frontend pipeline plus scheduled
backend kernel offload) to the characterized runs and report:

* Fig. 17 — overall latency and standard deviation, baseline vs Eudoxus,
  per mode and overall, for both platforms.
* Fig. 18 — throughput (FPS) of the baseline and of Eudoxus with and without
  frontend/backend pipelining.
* Fig. 19 — energy per frame.
* Fig. 20 — frontend latency breakdown (feature extraction vs stereo
  matching) and frontend throughput with/without FE-SM pipelining.
* Fig. 21 — backend latency and standard deviation per mode.

Characterization runs are resolved through the shared
:class:`~repro.experiments.runner.ExperimentRunner` (via
:func:`~repro.experiments.common.all_mode_runs`), so the acceleration models
below never pay for a run the characterization figures already produced —
in this process or in a previous session (persistent run store).

:func:`acceleration_report` and :func:`backend_report` optionally sweep the
``seeds`` axis: each metric then becomes a mean over per-seed reports with a
``<metric>_sd`` sibling carrying the sample standard deviation (error bars).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.common.timing import TimingStats
from repro.core.modes import BackendMode
from repro.experiments.common import accelerator_for, all_mode_runs, prefetch_mode_runs
from repro.hardware.accelerator import AccelerationSummary


def _accelerate_all(platform_kind: str, duration: float,
                    seed: int = 0) -> Dict[str, AccelerationSummary]:
    """Accelerated summaries per mode plus the pooled 'overall' summary."""
    runs = all_mode_runs(platform_kind, duration, seed=seed)
    accelerator = accelerator_for(platform_kind)
    summaries: Dict[str, AccelerationSummary] = {}
    overall = AccelerationSummary()
    for mode, result in runs.items():
        summary = accelerator.accelerate(result)
        summaries[mode.value] = summary
        overall.frames.extend(summary.frames)
    summaries["overall"] = overall
    return summaries


def _merge_seed_reports(per_seed: List[Dict[str, Dict]]) -> Dict[str, Dict]:
    """Mean every numeric metric over seeds; add ``<metric>_sd`` error bars.

    With a single seed the report is returned as-is (no ``_sd`` keys), so
    single-seed callers see the historical schema unchanged.
    """
    if len(per_seed) == 1:
        return per_seed[0]
    merged: Dict[str, Dict] = {}
    for name in per_seed[0]:
        rows = [report[name] for report in per_seed]
        out: Dict = {}
        for key, value in rows[0].items():
            if isinstance(value, (int, float)):
                values = [float(row[key]) for row in rows]
                out[key] = float(np.mean(values))
                out[f"{key}_sd"] = float(np.std(values, ddof=1))
            else:
                out[key] = value
        merged[name] = out
    return merged


def acceleration_report(platform_kind: str = "car", duration: float = 20.0,
                        seeds: Sequence[int] = (0,)) -> Dict[str, Dict]:
    """Fig. 17/18/19 quantities for one platform.

    With several seeds, every metric is the mean over per-seed reports and
    carries a ``<metric>_sd`` sibling (sample SD over seeds) — the error
    bars of the Fig. 17 sweep.
    """
    prefetch_mode_runs(platform_kind, duration, seeds)
    per_seed: List[Dict[str, Dict]] = []
    for seed in seeds:
        summaries = _accelerate_all(platform_kind, duration, seed)
        report: Dict[str, Dict] = {}
        for name, summary in summaries.items():
            base = summary.baseline_stats()
            accel = summary.accelerated_stats()
            report[name] = {
                "baseline_latency_ms": base.mean,
                "eudoxus_latency_ms": accel.mean,
                "speedup": summary.speedup(),
                "baseline_sd_ms": base.std,
                "eudoxus_sd_ms": accel.std,
                "sd_reduction_percent": summary.sd_reduction_percent(),
                "baseline_fps": summary.baseline_fps(),
                "eudoxus_fps_no_pipelining": summary.accelerated_fps(pipelined=False),
                "eudoxus_fps_pipelined": summary.accelerated_fps(pipelined=True),
                "baseline_energy_j": summary.mean_baseline_energy_j(),
                "eudoxus_energy_j": summary.mean_accelerated_energy_j(),
                "energy_reduction_percent": summary.energy_reduction_percent(),
                "offload_fraction": summary.offload_fraction(),
            }
        per_seed.append(report)
    return _merge_seed_reports(per_seed)


def frontend_report(platform_kind: str = "car", duration: float = 20.0) -> Dict[str, float]:
    """Fig. 20 quantities: frontend latency breakdown and throughput."""
    runs = all_mode_runs(platform_kind, duration)
    accelerator = accelerator_for(platform_kind)
    frontend_model = accelerator.frontend_model
    cpu_model = accelerator.cpu_model

    fe_ms: List[float] = []
    sm_ms: List[float] = []
    tm_ms: List[float] = []
    baseline_ms: List[float] = []
    for result in runs.values():
        for frontend_result in result.frontend_results:
            latency = frontend_model.frame_latency(frontend_result.workload)
            fe_ms.append(latency.feature_extraction_ms)
            sm_ms.append(latency.stereo_matching_ms)
            tm_ms.append(latency.temporal_matching_ms)
            baseline_ms.append(cpu_model.frontend.total_ms(frontend_result.workload)
                               * cpu_model.platform.speed_factor)

    accel_total = TimingStats(np.array(fe_ms) + np.array(sm_ms))
    pipelined_interval = TimingStats(np.maximum(np.maximum(fe_ms, sm_ms), tm_ms))
    return {
        "baseline_frontend_ms": float(np.mean(baseline_ms)),
        "eudoxus_frontend_ms": accel_total.mean,
        "feature_extraction_ms": float(np.mean(fe_ms)),
        "stereo_matching_ms": float(np.mean(sm_ms)),
        "temporal_matching_ms": float(np.mean(tm_ms)),
        "frontend_speedup": float(np.mean(baseline_ms)) / max(accel_total.mean, 1e-9),
        "baseline_frontend_fps": 1000.0 / max(float(np.mean(baseline_ms)), 1e-9),
        "eudoxus_frontend_fps_no_pipelining": 1000.0 / max(accel_total.mean, 1e-9),
        "eudoxus_frontend_fps_pipelined": 1000.0 / max(pipelined_interval.mean, 1e-9),
    }


def backend_report(platform_kind: str = "car", duration: float = 20.0,
                   seeds: Sequence[int] = (0,)) -> Dict[str, Dict[str, float]]:
    """Fig. 21 quantities: backend latency and SD per mode, baseline vs Eudoxus.

    Multi-seed sweeps aggregate like :func:`acceleration_report`: metric
    means plus ``<metric>_sd`` error bars over seeds.
    """
    prefetch_mode_runs(platform_kind, duration, seeds)
    per_seed: List[Dict[str, Dict]] = []
    for seed in seeds:
        summaries = _accelerate_all(platform_kind, duration, seed)
        report: Dict[str, Dict] = {}
        for mode in (BackendMode.REGISTRATION.value, BackendMode.VIO.value, BackendMode.SLAM.value):
            summary = summaries[mode]
            baseline_backend = TimingStats(f.baseline_record.backend_total for f in summary.frames)
            accel_backend = TimingStats(f.accelerated_record.backend_total for f in summary.frames)
            kernel = accelerator_for(platform_kind).backend_model.accelerated_kernel_name(mode)
            baseline_kernel = TimingStats(f.baseline_record.backend.get(kernel, 0.0) for f in summary.frames)
            accel_kernel = TimingStats(f.accelerated_record.backend.get(kernel, 0.0) for f in summary.frames)
            report[mode] = {
                "baseline_backend_ms": baseline_backend.mean,
                "eudoxus_backend_ms": accel_backend.mean,
                "backend_latency_reduction_percent": 100.0 * (baseline_backend.mean - accel_backend.mean)
                / max(baseline_backend.mean, 1e-9),
                "baseline_backend_sd_ms": baseline_backend.std,
                "eudoxus_backend_sd_ms": accel_backend.std,
                "sd_reduction_percent": 100.0 * (baseline_backend.std - accel_backend.std)
                / max(baseline_backend.std, 1e-9),
                "accelerated_kernel": kernel,
                "kernel_baseline_ms": baseline_kernel.mean,
                "kernel_eudoxus_ms": accel_kernel.mean,
                "kernel_speedup": baseline_kernel.mean / max(accel_kernel.mean, 1e-9),
            }
        per_seed.append(report)
    return _merge_seed_reports(per_seed)
