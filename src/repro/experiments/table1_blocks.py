"""Table I: decomposition of the backend kernels into matrix building blocks.

The table is validated empirically: each kernel's reference implementation is
executed under an operation trace, and the set of matrix primitives it
invoked is compared against the paper's decomposition.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.backend.marginalization import marginalize_schur
from repro.common.camera import PinholeCamera
from repro.common.geometry import homogeneous
from repro.linalg.ops import matmul, quadratic_form, transpose
from repro.linalg.primitives import (
    BuildingBlock,
    OperationTrace,
    TABLE_I_DECOMPOSITION,
    traced,
)
from repro.linalg.solvers import solve_cholesky


def _run_projection(num_points: int = 256, seed: int = 0) -> OperationTrace:
    rng = np.random.default_rng(seed)
    camera = PinholeCamera.from_fov(640, 480, 90.0)
    points = rng.uniform(-10.0, 10.0, size=(num_points, 3)) + np.array([0.0, 0.0, 15.0])
    trace = OperationTrace()
    with traced(trace):
        matmul(camera.projection_matrix, homogeneous(points).T)
    return trace


def _run_kalman_gain(rows: int = 60, state_dim: int = 90, seed: int = 0) -> OperationTrace:
    rng = np.random.default_rng(seed)
    h = rng.normal(size=(rows, state_dim))
    p = rng.normal(size=(state_dim, state_dim))
    p = p @ p.T + np.eye(state_dim)
    trace = OperationTrace()
    with traced(trace):
        s = quadratic_form(h, p) + np.eye(rows)
        ph_t = matmul(p, transpose(h))
        solve_cholesky(s, transpose(ph_t))
    return trace


def _run_marginalization(state_dim: int = 60, marginalized: int = 24, seed: int = 0) -> OperationTrace:
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(state_dim, state_dim))
    hessian = a @ a.T + np.eye(state_dim)
    gradient = rng.normal(size=state_dim)
    trace = OperationTrace()
    with traced(trace):
        marginalize_schur(hessian, gradient, list(range(marginalized)))
    return trace


def building_block_matrix() -> Dict[str, Dict[str, bool]]:
    """The reproduced Table I: kernel -> building block -> used?"""
    traces = {
        "projection": _run_projection(),
        "kalman_gain": _run_kalman_gain(),
        "marginalization": _run_marginalization(),
    }
    matrix: Dict[str, Dict[str, bool]] = {}
    for kernel, trace in traces.items():
        used = trace.blocks_used()
        matrix[kernel] = {block.value: block in used for block in BuildingBlock}
    return matrix


def expected_matrix() -> Dict[str, Dict[str, bool]]:
    """The paper's Table I as a boolean matrix."""
    out: Dict[str, Dict[str, bool]] = {}
    for kernel, blocks in TABLE_I_DECOMPOSITION.items():
        out[kernel] = {block.value: block in blocks for block in BuildingBlock}
    return out


def matches_paper() -> Dict[str, bool]:
    """Whether each kernel's measured decomposition covers the paper's."""
    measured = building_block_matrix()
    expected = expected_matrix()
    result: Dict[str, bool] = {}
    for kernel, blocks in expected.items():
        result[kernel] = all(
            measured[kernel][block] for block, required in blocks.items() if required
        )
    return result
