"""Fig. 3: localization error vs frame rate across the four scenarios.

For each operating environment the three primitive algorithms (registration,
VIO, SLAM) are run at several camera frame rates, and the RMSE against
ground truth is reported.  The reproduction target is the *ordering*: SLAM
wins in unknown indoor environments, registration wins in known indoor
environments, VIO (+GPS) wins outdoors, and registration does not apply
without a map.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.framework import EudoxusLocalizer
from repro.core.modes import BackendMode
from repro.experiments.common import build_sequence, localizer_config_for
from repro.sensors.scenarios import ScenarioKind


def _applicable_modes(scenario: ScenarioKind) -> List[BackendMode]:
    modes = [BackendMode.VIO, BackendMode.SLAM]
    if scenario.has_map:
        modes.insert(0, BackendMode.REGISTRATION)
    return modes


def accuracy_vs_framerate(frame_rates: Sequence[float] = (5.0, 10.0),
                          duration: float = 15.0,
                          platform_kind: str = "drone",
                          scenarios: Optional[Sequence[ScenarioKind]] = None,
                          landmark_count: int = 250) -> Dict[str, List[Dict]]:
    """Return, per scenario, rows of (algorithm, fps, rmse_m).

    Registration is skipped for scenarios without a map, matching the paper's
    note that it does not apply there.
    """
    scenarios = list(scenarios) if scenarios is not None else list(ScenarioKind)
    report: Dict[str, List[Dict]] = {}
    for scenario in scenarios:
        rows: List[Dict] = []
        for rate in frame_rates:
            sequence = build_sequence(
                scenario, platform_kind=platform_kind, duration=duration,
                camera_rate_hz=rate, landmark_count=landmark_count,
            )
            for mode in _applicable_modes(scenario):
                localizer = EudoxusLocalizer(localizer_config_for(platform_kind), mode_override=mode)
                result = localizer.process_sequence(sequence)
                rows.append(
                    {
                        "algorithm": mode.value,
                        "frame_rate_fps": rate,
                        "rmse_m": result.rmse_error(),
                        "relative_error_percent": result.relative_error_percent(),
                    }
                )
        report[scenario.value] = rows
    return report


def best_algorithm_per_scenario(report: Dict[str, List[Dict]]) -> Dict[str, str]:
    """The algorithm with the lowest mean error in each scenario."""
    best: Dict[str, str] = {}
    for scenario, rows in report.items():
        means: Dict[str, List[float]] = {}
        for row in rows:
            means.setdefault(row["algorithm"], []).append(row["rmse_m"])
        best[scenario] = min(means, key=lambda algorithm: sum(means[algorithm]) / len(means[algorithm]))
    return best
