"""Fig. 3: localization error vs frame rate across the four scenarios.

For each operating environment the three primitive algorithms (registration,
VIO, SLAM) are run at several camera frame rates, and the RMSE against
ground truth is reported.  The reproduction target is the *ordering*: SLAM
wins in unknown indoor environments (the indoor IMU degradation makes
unaided VIO drift), registration wins in known indoor environments, VIO
(+GPS) wins outdoors, and registration does not apply without a map.

The full (scenario x mode x frame rate x seed) grid is expanded into
experiment cells and resolved through the shared :class:`ExperimentRunner`,
so cold cells fan out across worker processes and repeated sessions reuse
the persistent run store.  With several seeds each row reports the mean
error together with its sample standard deviation (the Fig. 3 error bars).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.modes import BackendMode
from repro.experiments.common import default_runner
from repro.experiments.runner import ExperimentGrid
from repro.sensors.scenarios import ScenarioKind


def accuracy_grid(frame_rates: Sequence[float] = (5.0, 10.0),
                  duration: float = 15.0,
                  platform_kind: str = "drone",
                  scenarios: Optional[Sequence[ScenarioKind]] = None,
                  landmark_count: int = 250,
                  seeds: Sequence[int] = (0,)) -> ExperimentGrid:
    """The Fig. 3 experiment grid (registration dropped where no map exists)."""
    return ExperimentGrid(
        scenarios=tuple(scenarios) if scenarios is not None else tuple(ScenarioKind),
        modes=(BackendMode.REGISTRATION, BackendMode.VIO, BackendMode.SLAM),
        platform_kinds=(platform_kind,),
        frame_rates=tuple(frame_rates),
        duration=duration,
        landmark_count=landmark_count,
        seeds=tuple(seeds),
        skip_inapplicable=True,
    )


def _sample_sd(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    return float(np.std(values, ddof=1))


def accuracy_vs_framerate(frame_rates: Sequence[float] = (5.0, 10.0),
                          duration: float = 15.0,
                          platform_kind: str = "drone",
                          scenarios: Optional[Sequence[ScenarioKind]] = None,
                          landmark_count: int = 250,
                          seeds: Sequence[int] = (0,)) -> Dict[str, List[Dict]]:
    """Return, per scenario, rows of (algorithm, fps, rmse mean +- SD).

    Registration is skipped for scenarios without a map, matching the paper's
    note that it does not apply there.  Each row aggregates the ``seeds``
    axis: ``rmse_m`` / ``relative_error_percent`` are means over seeds,
    ``rmse_sd_m`` / ``relative_error_sd_percent`` the sample standard
    deviations (zero with a single seed).
    """
    grid = accuracy_grid(frame_rates, duration, platform_kind, scenarios,
                         landmark_count, seeds)
    cells = grid.expand()
    results = default_runner().run_cells(cells)

    report: Dict[str, List[Dict]] = {scenario.value: [] for scenario in grid.scenarios}
    # Preserve the historical row order: per scenario, frame rates ascending,
    # and modes in (registration, vio, slam) order within each rate.
    for scenario in grid.scenarios:
        for rate in grid.frame_rates:
            for mode in grid.modes:
                group = [results[cell] for cell in cells
                         if cell.scenario is scenario and cell.camera_rate_hz == rate
                         and cell.mode is mode]
                if not group:
                    continue
                rmses = [result.rmse_error() for result in group]
                relatives = [result.relative_error_percent() for result in group]
                report[scenario.value].append(
                    {
                        "algorithm": mode.value,
                        "frame_rate_fps": rate,
                        "rmse_m": float(np.mean(rmses)),
                        "rmse_sd_m": _sample_sd(rmses),
                        "relative_error_percent": float(np.mean(relatives)),
                        "relative_error_sd_percent": _sample_sd(relatives),
                        "seed_count": len(group),
                    }
                )
    return report


def best_algorithm_per_scenario(report: Dict[str, List[Dict]]) -> Dict[str, str]:
    """The algorithm with the lowest mean error in each scenario."""
    best: Dict[str, str] = {}
    for scenario, rows in report.items():
        means: Dict[str, List[float]] = {}
        for row in rows:
            means.setdefault(row["algorithm"], []).append(row["rmse_m"])
        best[scenario] = min(means, key=lambda algorithm: sum(means[algorithm]) / len(means[algorithm]))
    return best
