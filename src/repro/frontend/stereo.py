"""Stereo matching: descriptor matching plus disparity refinement.

The stereo-matching block establishes spatial correspondences between the
left and right images (Sec. IV-A).  It runs in two stages, matching the
accelerator's task split (Sec. V-B):

* **Matching optimization (MO)** — initial correspondences by comparing
  Hamming distances between ORB descriptors along the epipolar line.
* **Disparity refinement (DR)** — block matching (sum of absolute
  differences) around the initial match, with sub-pixel parabola fitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.frontend.fast import Keypoint
from repro.frontend.orb import hamming_distance_matrix


@dataclass
class StereoMatch:
    """A spatial correspondence between the left and right image."""

    left_index: int
    right_index: int
    disparity: float
    hamming: int

    def __post_init__(self) -> None:
        self.disparity = float(self.disparity)


class StereoMatcher:
    """Matches keypoints between a rectified stereo pair."""

    def __init__(self, max_hamming: int = 80, max_disparity: float = 64.0,
                 max_vertical_offset: float = 2.0, block_size: int = 7,
                 refine_range: int = 3) -> None:
        self.max_hamming = int(max_hamming)
        self.max_disparity = float(max_disparity)
        self.max_vertical_offset = float(max_vertical_offset)
        self.block_size = int(block_size)
        self.refine_range = int(refine_range)

    def match(self, left_keypoints: List[Keypoint], left_descriptors: np.ndarray,
              right_keypoints: List[Keypoint], right_descriptors: np.ndarray,
              left_image: Optional[np.ndarray] = None,
              right_image: Optional[np.ndarray] = None) -> List[StereoMatch]:
        """Return spatial correspondences.

        When images are provided the initial descriptor matches are refined by
        SAD block matching; otherwise the descriptor disparity is used as-is.
        """
        if not left_keypoints or not right_keypoints:
            return []
        distances = hamming_distance_matrix(left_descriptors, right_descriptors)

        left_xy = np.array([[kp.x, kp.y] for kp in left_keypoints])
        right_xy = np.array([[kp.x, kp.y] for kp in right_keypoints])

        # Epipolar gating: rows must agree, disparity must be positive and bounded.
        row_diff = np.abs(left_xy[:, 1:2] - right_xy[None, :, 1].reshape(1, -1))
        disparity = left_xy[:, 0:1] - right_xy[None, :, 0].reshape(1, -1)
        feasible = (
            (row_diff <= self.max_vertical_offset)
            & (disparity > 0.0)
            & (disparity <= self.max_disparity)
        )
        gated = np.where(feasible, distances, np.iinfo(np.int32).max)

        matches: List[StereoMatch] = []
        used_right: set = set()
        order = np.argsort(gated.min(axis=1))
        for left_index in order:
            right_index = int(np.argmin(gated[left_index]))
            best = gated[left_index, right_index]
            if best > self.max_hamming:
                continue
            if right_index in used_right:
                continue
            used_right.add(right_index)
            match_disparity = float(left_xy[left_index, 0] - right_xy[right_index, 0])
            if left_image is not None and right_image is not None:
                match_disparity = self._refine(
                    left_image, right_image,
                    left_xy[left_index], match_disparity,
                )
            matches.append(
                StereoMatch(
                    left_index=int(left_index),
                    right_index=right_index,
                    disparity=match_disparity,
                    hamming=int(distances[left_index, right_index]),
                )
            )
        return matches

    def _refine(self, left_image: np.ndarray, right_image: np.ndarray,
                left_point: np.ndarray, initial_disparity: float) -> float:
        """SAD block matching around the initial disparity with sub-pixel fit."""
        half = self.block_size // 2
        x, y = int(round(left_point[0])), int(round(left_point[1]))
        height, width = left_image.shape
        if not (half <= y < height - half and half <= x < width - half):
            return initial_disparity
        template = left_image[y - half : y + half + 1, x - half : x + half + 1]

        costs = []
        offsets = range(-self.refine_range, self.refine_range + 1)
        for offset in offsets:
            rx = int(round(x - initial_disparity)) + offset
            if not (half <= rx < width - half):
                costs.append(np.inf)
                continue
            candidate = right_image[y - half : y + half + 1, rx - half : rx + half + 1]
            costs.append(float(np.abs(template - candidate).sum()))
        costs = np.asarray(costs)
        if not np.isfinite(costs).any():
            return initial_disparity
        best = int(np.argmin(costs))
        refined = initial_disparity - list(offsets)[best]

        # Sub-pixel parabola fit over the three samples around the minimum.
        if 0 < best < len(costs) - 1 and np.isfinite(costs[best - 1]) and np.isfinite(costs[best + 1]):
            denom = costs[best - 1] - 2.0 * costs[best] + costs[best + 1]
            if abs(denom) > 1e-9:
                refined -= 0.5 * (costs[best + 1] - costs[best - 1]) / denom
        return max(refined, 1e-3)
