"""ORB/BRIEF binary descriptors (feature descriptor calculation, "FC" task).

Each detected feature point is described by a 256-bit binary string built
from intensity comparisons of point pairs inside a smoothed patch (BRIEF),
with the ORB intensity-centroid orientation available for steering the
pattern.  Descriptors are packed into ``uint8`` arrays of 32 bytes, and
matching uses the Hamming distance — the same operation the accelerator's
matching-optimization task compares in hardware.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.frontend.fast import Keypoint
from repro.frontend.filtering import bilinear_sample, gaussian_blur

_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Hamming distance between two packed binary descriptors."""
    a = np.asarray(a, dtype=np.uint8).reshape(-1)
    b = np.asarray(b, dtype=np.uint8).reshape(-1)
    if a.shape != b.shape:
        raise ValueError("descriptors must have the same length")
    return int(_POPCOUNT_TABLE[np.bitwise_xor(a, b)].sum())


def hamming_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distances between two descriptor sets.

    ``a`` is ``(N, B)`` and ``b`` is ``(M, B)``; the result is ``(N, M)``.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.size == 0 or b.size == 0:
        return np.zeros((a.shape[0], b.shape[0]), dtype=int)
    xor = np.bitwise_xor(a[:, None, :], b[None, :, :])
    return _POPCOUNT_TABLE[xor].sum(axis=2).astype(int)


class OrbDescriptor:
    """Computes BRIEF-style binary descriptors with optional ORB steering."""

    def __init__(self, patch_size: int = 15, bits: int = 256, use_orientation: bool = True,
                 seed: int = 7, blur_sigma: float = 1.2) -> None:
        if bits % 8 != 0:
            raise ValueError("bits must be a multiple of 8")
        self.patch_size = int(patch_size)
        self.bits = int(bits)
        self.use_orientation = bool(use_orientation)
        self.blur_sigma = float(blur_sigma)
        rng = np.random.default_rng(seed)
        half = self.patch_size / 2.0 - 1.0
        # Gaussian-distributed sampling pairs as in the original BRIEF paper.
        self._pairs = np.clip(
            rng.normal(0.0, half / 2.0, size=(self.bits, 4)), -half, half
        )

    @property
    def bytes_per_descriptor(self) -> int:
        return self.bits // 8

    def _orientation(self, image: np.ndarray, x: float, y: float) -> float:
        """Intensity-centroid orientation of the patch around (x, y)."""
        half = self.patch_size // 2
        xs, ys = np.meshgrid(np.arange(-half, half + 1), np.arange(-half, half + 1))
        patch = bilinear_sample(image, x + xs.ravel(), y + ys.ravel())
        m01 = float(np.sum(ys.ravel() * patch))
        m10 = float(np.sum(xs.ravel() * patch))
        return float(np.arctan2(m01, m10))

    def compute(self, image: np.ndarray, keypoints: List[Keypoint]) -> np.ndarray:
        """Compute descriptors for all keypoints; returns ``(N, bits/8)`` uint8."""
        image = np.asarray(image, dtype=float)
        if image.ndim != 2:
            raise ValueError("OrbDescriptor expects a grayscale image")
        if not keypoints:
            return np.zeros((0, self.bytes_per_descriptor), dtype=np.uint8)
        smoothed = gaussian_blur(image, sigma=self.blur_sigma)

        descriptors = np.zeros((len(keypoints), self.bits), dtype=np.uint8)
        for i, kp in enumerate(keypoints):
            pairs = self._pairs
            if self.use_orientation:
                angle = self._orientation(smoothed, kp.x, kp.y)
                cos_a, sin_a = np.cos(angle), np.sin(angle)
                rot = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
                first = pairs[:, :2] @ rot.T
                second = pairs[:, 2:] @ rot.T
            else:
                first = pairs[:, :2]
                second = pairs[:, 2:]
            val_a = bilinear_sample(smoothed, kp.x + first[:, 0], kp.y + first[:, 1])
            val_b = bilinear_sample(smoothed, kp.x + second[:, 0], kp.y + second[:, 1])
            descriptors[i] = (val_a < val_b).astype(np.uint8)
        return np.packbits(descriptors, axis=1)


def descriptor_from_seed(appearance_seed: int, bits: int = 256, noise_bits: int = 0,
                         rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Deterministic descriptor for a simulated landmark appearance.

    The sparse frontend path uses this to give every landmark a stable,
    discriminative binary signature.  ``noise_bits`` random bit flips model
    viewpoint/illumination change between observations.
    """
    seed_rng = np.random.default_rng(appearance_seed)
    descriptor_bits = seed_rng.integers(0, 2, size=bits).astype(np.uint8)
    if noise_bits > 0:
        flip_rng = rng if rng is not None else np.random.default_rng()
        flip_positions = flip_rng.choice(bits, size=min(noise_bits, bits), replace=False)
        descriptor_bits[flip_positions] ^= 1
    return np.packbits(descriptor_bits)
