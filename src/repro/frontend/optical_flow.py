"""Lucas-Kanade optical flow (temporal matching, "TM" block).

Temporal correspondences between consecutive frames are established by
tracking the previous frame's key points with the classic iterative
Lucas-Kanade method (Sec. IV-A).  The accelerator splits this block into a
derivatives-calculation task (DC) and a linear least-squares solver (LSS);
the software mirrors that structure so the cycle model can reason about both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.frontend.filtering import bilinear_sample, sobel_gradients


@dataclass
class FlowResult:
    """Outcome of tracking one point from the previous to the current frame."""

    index: int
    previous: np.ndarray
    current: np.ndarray
    converged: bool
    residual: float

    def __post_init__(self) -> None:
        self.previous = np.asarray(self.previous, dtype=float).reshape(2)
        self.current = np.asarray(self.current, dtype=float).reshape(2)


class LucasKanadeTracker:
    """Single-level iterative Lucas-Kanade tracker."""

    def __init__(self, window: int = 9, iterations: int = 10, max_error: float = 2.0,
                 min_eigen: float = 1e-3) -> None:
        if window % 2 == 0:
            raise ValueError("window must be odd")
        self.window = int(window)
        self.iterations = int(iterations)
        self.max_error = float(max_error)
        self.min_eigen = float(min_eigen)

    def track(self, previous_image: np.ndarray, current_image: np.ndarray,
              points: np.ndarray, initial_guess: Optional[np.ndarray] = None) -> List[FlowResult]:
        """Track ``points`` (``(N, 2)`` x/y) from the previous to the current image."""
        previous_image = np.asarray(previous_image, dtype=float)
        current_image = np.asarray(current_image, dtype=float)
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        if points.size == 0:
            return []
        guesses = (
            np.asarray(initial_guess, dtype=float).reshape(-1, 2)
            if initial_guess is not None
            else points.copy()
        )

        gx, gy = sobel_gradients(previous_image)
        half = self.window // 2
        offsets_x, offsets_y = np.meshgrid(np.arange(-half, half + 1), np.arange(-half, half + 1))
        offsets_x = offsets_x.ravel()
        offsets_y = offsets_y.ravel()

        results: List[FlowResult] = []
        height, width = previous_image.shape
        for index, point in enumerate(points):
            px, py = point
            # Derivatives-calculation task (DC): structure tensor of the patch.
            patch_gx = bilinear_sample(gx, px + offsets_x, py + offsets_y)
            patch_gy = bilinear_sample(gy, px + offsets_x, py + offsets_y)
            template = bilinear_sample(previous_image, px + offsets_x, py + offsets_y)
            g = np.array(
                [
                    [np.sum(patch_gx * patch_gx), np.sum(patch_gx * patch_gy)],
                    [np.sum(patch_gx * patch_gy), np.sum(patch_gy * patch_gy)],
                ]
            )
            eigenvalues = np.linalg.eigvalsh(g)
            if eigenvalues.min() < self.min_eigen:
                results.append(FlowResult(index, point, guesses[index], False, float("inf")))
                continue

            # Least-squares solver task (LSS): iterate the 2x2 normal equations.
            current = guesses[index].copy()
            converged = False
            residual = float("inf")
            for _ in range(self.iterations):
                warped = bilinear_sample(current_image, current[0] + offsets_x, current[1] + offsets_y)
                error = template - warped
                b = np.array([np.sum(error * patch_gx), np.sum(error * patch_gy)])
                try:
                    delta = np.linalg.solve(g, b)
                except np.linalg.LinAlgError:
                    break
                current = current + delta
                residual = float(np.abs(error).mean())
                if np.linalg.norm(delta) < 0.01:
                    converged = True
                    break
            inside = 0 <= current[0] < width and 0 <= current[1] < height
            ok = converged and inside and residual <= self.max_error * 8.0
            results.append(FlowResult(index, point, current, bool(ok), residual))
        return results

    def good_tracks(self, results: List[FlowResult]) -> List[FlowResult]:
        """Filter to the successfully tracked points."""
        return [r for r in results if r.converged]
