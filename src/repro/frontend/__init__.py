"""Vision frontend: feature extraction, stereo matching, temporal matching.

The frontend is shared by every backend mode and always activated
(Sec. IV-A).  It consists of three blocks:

* **Feature extraction** — FAST corner detection, image filtering and ORB
  descriptor calculation.
* **Stereo matching** — descriptor (hamming) matching followed by
  block-matching disparity refinement.
* **Temporal matching** — Lucas-Kanade optical flow tracking of the previous
  frame's key points.

Two execution paths are offered.  The *dense* path runs the real image
algorithms on rendered frames; it is the workload the frontend accelerator
model characterizes.  The *sparse* path consumes the simulator's landmark
observations directly, which keeps long end-to-end localization runs fast
while producing the same correspondence structure.
"""

from repro.frontend.fast import FastDetector, Keypoint
from repro.frontend.orb import OrbDescriptor, hamming_distance, hamming_distance_matrix
from repro.frontend.filtering import gaussian_blur, sobel_gradients, image_pyramid
from repro.frontend.stereo import StereoMatcher, StereoMatch
from repro.frontend.optical_flow import LucasKanadeTracker, FlowResult
from repro.frontend.frontend import (
    FrontendResult,
    TrackObservation,
    VisualFrontend,
)

__all__ = [
    "FastDetector",
    "Keypoint",
    "OrbDescriptor",
    "hamming_distance",
    "hamming_distance_matrix",
    "gaussian_blur",
    "sobel_gradients",
    "image_pyramid",
    "StereoMatcher",
    "StereoMatch",
    "LucasKanadeTracker",
    "FlowResult",
    "FrontendResult",
    "TrackObservation",
    "VisualFrontend",
]
