"""FAST corner detection (feature point detection, "FD" task).

Key points are detected with the FAST segment test (Rosten & Drummond): a
pixel is a corner if a contiguous arc of at least ``arc_length`` pixels on the
16-pixel Bresenham circle of radius 3 is uniformly brighter or darker than
the centre by more than a threshold.  Detection is fully vectorised over the
image; a grid-based non-maximum suppression keeps the strongest corners
spread across the frame (standard practice in VIO frontends).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

# Offsets (dy, dx) of the 16 pixels on the Bresenham circle of radius 3.
CIRCLE_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (-3, 0), (-3, 1), (-2, 2), (-1, 3),
    (0, 3), (1, 3), (2, 2), (3, 1),
    (3, 0), (3, -1), (2, -2), (1, -3),
    (0, -3), (-1, -3), (-2, -2), (-3, -1),
)


@dataclass
class Keypoint:
    """A detected feature point with its corner response score."""

    x: float
    y: float
    score: float
    octave: int = 0

    @property
    def pt(self) -> Tuple[float, float]:
        return (self.x, self.y)


class FastDetector:
    """Vectorised FAST detector with grid-based non-maximum suppression."""

    def __init__(self, threshold: float = 12.0, arc_length: int = 9,
                 max_features: int = 300, grid_cells: int = 8, border: int = 4) -> None:
        if not 1 <= arc_length <= 16:
            raise ValueError("arc_length must be between 1 and 16")
        self.threshold = float(threshold)
        self.arc_length = int(arc_length)
        self.max_features = int(max_features)
        self.grid_cells = max(1, int(grid_cells))
        self.border = max(3, int(border))

    def _circle_stack(self, image: np.ndarray) -> np.ndarray:
        """Stack the 16 circle-neighbour images for the interior region."""
        b = self.border
        height, width = image.shape
        interior = image[b : height - b, b : width - b]
        stack = np.empty((16,) + interior.shape, dtype=float)
        for i, (dy, dx) in enumerate(CIRCLE_OFFSETS):
            stack[i] = image[b + dy : height - b + dy, b + dx : width - b + dx]
        return stack

    def detect(self, image: np.ndarray) -> List[Keypoint]:
        """Detect corners in a grayscale image."""
        image = np.asarray(image, dtype=float)
        if image.ndim != 2:
            raise ValueError("FAST expects a 2-D grayscale image")
        height, width = image.shape
        b = self.border
        if height <= 2 * b or width <= 2 * b:
            return []

        centre = image[b : height - b, b : width - b]
        circle = self._circle_stack(image)
        brighter = circle > centre[None, :, :] + self.threshold
        darker = circle < centre[None, :, :] - self.threshold

        corner_mask = self._contiguous_arc(brighter) | self._contiguous_arc(darker)
        if not corner_mask.any():
            return []

        # Corner score: sum of absolute differences over the circle.
        score = np.sum(np.abs(circle - centre[None, :, :]), axis=0)
        score = np.where(corner_mask, score, 0.0)

        ys, xs = np.nonzero(corner_mask)
        keypoints = [
            Keypoint(x=float(x + b), y=float(y + b), score=float(score[y, x]))
            for y, x in zip(ys, xs)
        ]
        return self._grid_suppress(keypoints, width, height)

    def _contiguous_arc(self, mask: np.ndarray) -> np.ndarray:
        """True where a contiguous run of ``arc_length`` circle pixels is set."""
        # Wrap the circle so runs crossing index 0 are found.
        doubled = np.concatenate([mask, mask[: self.arc_length - 1]], axis=0)
        run = np.ones(doubled.shape[1:], dtype=bool)
        result = np.zeros(mask.shape[1:], dtype=bool)
        # Sliding window of logical ANDs over arc_length consecutive entries.
        window = np.ones((self.arc_length,) + mask.shape[1:], dtype=bool)
        for start in range(16):
            window_slice = doubled[start : start + self.arc_length]
            result |= window_slice.all(axis=0)
        del run, window
        return result

    def _grid_suppress(self, keypoints: List[Keypoint], width: int, height: int) -> List[Keypoint]:
        """Keep the strongest corners per grid cell, up to ``max_features``."""
        if not keypoints:
            return []
        cells: dict = {}
        cell_w = max(1.0, width / self.grid_cells)
        cell_h = max(1.0, height / self.grid_cells)
        for kp in keypoints:
            key = (int(kp.x // cell_w), int(kp.y // cell_h))
            cells.setdefault(key, []).append(kp)
        per_cell = max(1, self.max_features // max(1, len(cells)))
        selected: List[Keypoint] = []
        for cell_keypoints in cells.values():
            cell_keypoints.sort(key=lambda k: k.score, reverse=True)
            selected.extend(cell_keypoints[:per_cell])
        selected.sort(key=lambda k: k.score, reverse=True)
        return selected[: self.max_features]


def keypoints_to_array(keypoints: List[Keypoint]) -> np.ndarray:
    """Convert a keypoint list to an ``(N, 2)`` array of (x, y) pixels."""
    if not keypoints:
        return np.zeros((0, 2))
    return np.array([[kp.x, kp.y] for kp in keypoints])
