"""Image filtering: Gaussian smoothing, gradients and pyramids.

Image filtering (IF) is one of the three tasks inside the feature-extraction
block of the frontend accelerator (Sec. V-B).  The separable convolutions here
are also the canonical stencil operations that the stencil-buffer memory
structure captures (Sec. V-C).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def gaussian_kernel_1d(sigma: float, radius: int = 0) -> np.ndarray:
    """A normalized 1-D Gaussian kernel."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if radius <= 0:
        radius = max(1, int(round(3.0 * sigma)))
    xs = np.arange(-radius, radius + 1, dtype=float)
    kernel = np.exp(-(xs**2) / (2.0 * sigma**2))
    return kernel / kernel.sum()


def _convolve_1d(image: np.ndarray, kernel: np.ndarray, axis: int) -> np.ndarray:
    """Convolve along one axis with edge replication."""
    radius = len(kernel) // 2
    padded = np.pad(
        image,
        [(radius, radius) if ax == axis else (0, 0) for ax in range(image.ndim)],
        mode="edge",
    )
    out = np.zeros_like(image, dtype=float)
    for offset, weight in enumerate(kernel):
        if axis == 0:
            out += weight * padded[offset : offset + image.shape[0], :]
        else:
            out += weight * padded[:, offset : offset + image.shape[1]]
    return out


def gaussian_blur(image: np.ndarray, sigma: float = 1.0) -> np.ndarray:
    """Separable Gaussian blur with edge replication."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError("gaussian_blur expects a 2-D grayscale image")
    kernel = gaussian_kernel_1d(sigma)
    return _convolve_1d(_convolve_1d(image, kernel, axis=0), kernel, axis=1)


def sobel_gradients(image: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return (gx, gy) Sobel gradients of a grayscale image."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError("sobel_gradients expects a 2-D grayscale image")
    smooth = np.array([1.0, 2.0, 1.0]) / 4.0
    diff = np.array([-1.0, 0.0, 1.0]) / 2.0
    gx = _convolve_1d(_convolve_1d(image, smooth, axis=0), diff, axis=1)
    gy = _convolve_1d(_convolve_1d(image, diff, axis=0), smooth, axis=1)
    return gx, gy


def downsample(image: np.ndarray) -> np.ndarray:
    """Halve the image size after a light blur (for pyramids)."""
    blurred = gaussian_blur(image, sigma=1.0)
    return blurred[::2, ::2]


def image_pyramid(image: np.ndarray, levels: int = 3) -> List[np.ndarray]:
    """Gaussian pyramid with ``levels`` levels, finest first."""
    if levels < 1:
        raise ValueError("levels must be >= 1")
    pyramid = [np.asarray(image, dtype=float)]
    for _ in range(levels - 1):
        if min(pyramid[-1].shape) < 8:
            break
        pyramid.append(downsample(pyramid[-1]))
    return pyramid


def bilinear_sample(image: np.ndarray, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Sample an image at fractional coordinates with bilinear interpolation.

    Coordinates outside the image are clamped to the border.
    """
    image = np.asarray(image, dtype=float)
    height, width = image.shape
    xs = np.clip(np.asarray(xs, dtype=float), 0.0, width - 1.001)
    ys = np.clip(np.asarray(ys, dtype=float), 0.0, height - 1.001)
    x0 = np.floor(xs).astype(int)
    y0 = np.floor(ys).astype(int)
    x1 = np.minimum(x0 + 1, width - 1)
    y1 = np.minimum(y0 + 1, height - 1)
    fx = xs - x0
    fy = ys - y0
    return (
        image[y0, x0] * (1 - fx) * (1 - fy)
        + image[y0, x1] * fx * (1 - fy)
        + image[y1, x0] * (1 - fx) * fy
        + image[y1, x1] * fx * fy
    )
