"""The visual frontend block: feature matching shared by all backend modes.

``VisualFrontend`` produces, for every camera frame, a set of
:class:`TrackObservation` records: stereo-matched feature points with
persistent track identities across time.  The backend consumes only these
correspondences (2-3 KB per frame in the paper) plus the IMU/GPS samples.

Two execution paths are supported:

* ``sparse`` — consumes the simulator's landmark observations directly.
  Track identity equals the landmark identity (modelling a well-tuned data
  association), with configurable feature budget and dropout.  This path is
  fast enough for long end-to-end runs.
* ``dense`` — runs the full FAST + ORB + stereo matching + Lucas-Kanade
  pipeline on rendered images.  This is the workload characterized by the
  frontend accelerator model.

Both paths report a :class:`FrontendWorkload` describing the work done
(pixels filtered, keypoints detected, stereo pairs compared, points tracked)
which the CPU baseline model and the accelerator model translate into
latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.common.camera import StereoRig
from repro.common.config import FrontendConfig
from repro.common.timing import StopwatchCollector
from repro.frontend.fast import FastDetector, Keypoint, keypoints_to_array
from repro.frontend.optical_flow import LucasKanadeTracker
from repro.frontend.orb import OrbDescriptor, descriptor_from_seed
from repro.frontend.stereo import StereoMatcher
from repro.obs.profile import profile_kernel
from repro.sensors.dataset import Frame
from repro.sensors.world import body_frame_from_camera


@dataclass
class TrackObservation:
    """One stereo feature observation attached to a persistent track."""

    track_id: int
    left_pixel: np.ndarray
    right_pixel: np.ndarray
    point_camera: np.ndarray
    point_body: np.ndarray
    descriptor: Optional[np.ndarray] = None
    age: int = 1
    noise_std: np.ndarray = None

    def __post_init__(self) -> None:
        self.left_pixel = np.asarray(self.left_pixel, dtype=float).reshape(2)
        self.right_pixel = np.asarray(self.right_pixel, dtype=float).reshape(2)
        self.point_camera = np.asarray(self.point_camera, dtype=float).reshape(3)
        self.point_body = np.asarray(self.point_body, dtype=float).reshape(3)
        if self.noise_std is None:
            self.noise_std = np.full(3, 0.05)
        else:
            self.noise_std = np.asarray(self.noise_std, dtype=float).reshape(3)

    @property
    def disparity(self) -> float:
        return float(self.left_pixel[0] - self.right_pixel[0])

    @property
    def depth(self) -> float:
        return float(self.point_camera[2])

    @property
    def depth_std(self) -> float:
        """Standard deviation of the triangulated depth (body x axis)."""
        return float(self.noise_std[0])


def stereo_point_noise(depth, fx: float, baseline: float,
                       pixel_noise: float, floor: float = 0.02) -> np.ndarray:
    """First-order noise model of a stereo-triangulated 3-D point.

    The depth uncertainty grows quadratically with depth
    (``sigma_z = z^2 * sigma_d / (fx * b)``) while the lateral uncertainty
    grows linearly (``sigma_xy = z * sigma_px / fx``).  Returned in the body
    frame order (x forward/depth, y lateral, z vertical).  A small ``floor``
    keeps the estimators from becoming over-confident about very close
    features (unmodelled calibration and timing errors dominate there).

    ``depth`` may be a scalar (returns shape ``(3,)``) or an array of depths
    (returns shape ``(n, 3)``); batched callers use the latter.
    """
    depth = np.maximum(np.asarray(depth, dtype=float), 1e-3)
    sigma_disparity = pixel_noise * np.sqrt(2.0)
    sigma_depth = depth * depth * sigma_disparity / max(fx * baseline, 1e-9)
    sigma_lateral = depth * pixel_noise / max(fx, 1e-9)
    return np.maximum(np.stack([sigma_depth, sigma_lateral, sigma_lateral], axis=-1), floor)


@dataclass
class FrontendWorkload:
    """Counters describing the work the frontend performed for one frame."""

    image_width: int = 0
    image_height: int = 0
    keypoints_left: int = 0
    keypoints_right: int = 0
    descriptors_computed: int = 0
    stereo_candidates: int = 0
    stereo_matches: int = 0
    tracked_points: int = 0
    temporal_matches: int = 0

    @property
    def image_pixels(self) -> int:
        return self.image_width * self.image_height

    @property
    def correspondence_bytes(self) -> int:
        """Approximate payload shipped to the backend (paper: 2-3 KB)."""
        # Each correspondence: track id (4 B) + 2x2 pixel coords (16 B) + depth (4 B).
        return 24 * self.stereo_matches + 8 * self.temporal_matches


@dataclass
class FrontendResult:
    """Per-frame output of the visual frontend."""

    frame_index: int
    timestamp: float
    observations: List[TrackObservation] = field(default_factory=list)
    new_track_ids: List[int] = field(default_factory=list)
    lost_track_ids: List[int] = field(default_factory=list)
    workload: FrontendWorkload = field(default_factory=FrontendWorkload)
    measured_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def track_ids(self) -> List[int]:
        return [obs.track_id for obs in self.observations]

    @property
    def feature_count(self) -> int:
        return len(self.observations)

    def observation_for(self, track_id: int) -> Optional[TrackObservation]:
        for obs in self.observations:
            if obs.track_id == track_id:
                return obs
        return None


class VisualFrontend:
    """Shared vision frontend; see module docstring for the two paths."""

    def __init__(self, config: Optional[FrontendConfig] = None, rig: Optional[StereoRig] = None,
                 sparse: bool = True, dropout_probability: float = 0.02, seed: int = 0) -> None:
        self.config = config or FrontendConfig()
        self.rig = rig
        self.sparse = bool(sparse)
        self.dropout_probability = float(dropout_probability)
        self._rng = np.random.default_rng(seed)

        self._detector = FastDetector(
            threshold=self.config.fast_threshold,
            max_features=self.config.max_features,
            grid_cells=self.config.grid_cells,
        )
        self._descriptor = OrbDescriptor(
            patch_size=self.config.orb_patch_size, bits=self.config.orb_bits
        )
        self._stereo = StereoMatcher(
            max_hamming=self.config.stereo_max_hamming,
            max_disparity=self.config.stereo_max_disparity,
            block_size=self.config.stereo_block_size,
        )
        self._tracker = LucasKanadeTracker(
            window=self.config.lk_window,
            iterations=self.config.lk_iterations,
            max_error=self.config.lk_max_error,
        )

        self._next_track_id = 0
        self._active_tracks: Dict[int, TrackObservation] = {}
        self._previous_left_image: Optional[np.ndarray] = None
        self._previous_keypoints: List[Keypoint] = []
        self._previous_track_ids: List[int] = []

    # ------------------------------------------------------------------ API

    def reset(self) -> None:
        """Forget all active tracks (e.g. when a new sequence segment starts)."""
        self._next_track_id = 0
        self._active_tracks = {}
        self._previous_left_image = None
        self._previous_keypoints = []
        self._previous_track_ids = []

    @property
    def active_track_count(self) -> int:
        return len(self._active_tracks)

    def process(self, frame: Frame, rig: Optional[StereoRig] = None) -> FrontendResult:
        """Process one frame and return its correspondences."""
        rig = rig or self.rig
        if rig is None:
            raise ValueError("a StereoRig must be supplied either at construction or per call")
        if self.sparse or not frame.has_images:
            return self._process_sparse(frame, rig)
        return self._process_dense(frame, rig)

    # --------------------------------------------------------- sparse path

    def _process_sparse(self, frame: Frame, rig: StereoRig) -> FrontendResult:
        stopwatch = StopwatchCollector()
        previous_ids = set(self._active_tracks.keys())
        observations: List[TrackObservation] = []
        new_ids: List[int] = []

        with stopwatch.measure("feature_extraction"):
            items = [
                (landmark_id, stereo_obs)
                for landmark_id, stereo_obs in frame.observations.items()
                if stereo_obs.left_pixel[0] - stereo_obs.right_pixel[0] >= self.config.min_disparity
            ]
            if len(items) > self.config.max_features:
                # Prefer close landmarks (larger disparity) as real detectors do.
                items.sort(key=lambda kv: kv[1].left_pixel[0] - kv[1].right_pixel[0], reverse=True)
                items = items[: self.config.max_features]

        with stopwatch.measure("stereo_matching"):
            if items:
                keep = self._rng.random(len(items)) >= self.dropout_probability
                kept = [item for item, keep_it in zip(items, keep) if keep_it]
            else:
                kept = []
            if kept:
                left_pixels = np.stack([stereo_obs.left_pixel for _, stereo_obs in kept])
                right_pixels = np.stack([stereo_obs.right_pixel for _, stereo_obs in kept])
                with profile_kernel("frontend.triangulation",
                                    features=len(kept)):
                    points_camera = rig.triangulate(left_pixels, right_pixels)
                points_body = body_frame_from_camera(points_camera)
                noise_stds = stereo_point_noise(
                    points_camera[:, 2], rig.camera.fx, rig.baseline, self.config.assumed_pixel_noise
                )
                for i, (landmark_id, stereo_obs) in enumerate(kept):
                    previous = self._active_tracks.get(landmark_id)
                    observations.append(
                        TrackObservation(
                            track_id=landmark_id,
                            left_pixel=left_pixels[i],
                            right_pixel=right_pixels[i],
                            point_camera=points_camera[i],
                            point_body=points_body[i],
                            descriptor=None,
                            age=previous.age + 1 if previous is not None else 1,
                            noise_std=noise_stds[i],
                        )
                    )
                    if previous is None:
                        new_ids.append(landmark_id)

        with stopwatch.measure("temporal_matching"):
            current_ids = {obs.track_id for obs in observations}
            lost_ids = sorted(previous_ids - current_ids)
            temporal_matches = len(previous_ids & current_ids)
            self._active_tracks = {obs.track_id: obs for obs in observations}

        workload = FrontendWorkload(
            image_width=rig.camera.width,
            image_height=rig.camera.height,
            keypoints_left=len(items),
            keypoints_right=len(items),
            descriptors_computed=2 * len(items),
            stereo_candidates=len(items),
            stereo_matches=len(observations),
            tracked_points=len(previous_ids),
            temporal_matches=temporal_matches,
        )
        return FrontendResult(
            frame_index=frame.index,
            timestamp=frame.timestamp,
            observations=observations,
            new_track_ids=new_ids,
            lost_track_ids=lost_ids,
            workload=workload,
            measured_ms=stopwatch.as_dict(),
        )

    # ---------------------------------------------------------- dense path

    def _process_dense(self, frame: Frame, rig: StereoRig) -> FrontendResult:
        stopwatch = StopwatchCollector()
        left_image = np.asarray(frame.left_image, dtype=float)
        right_image = np.asarray(frame.right_image, dtype=float)

        with stopwatch.measure("feature_extraction"):
            left_keypoints = self._detector.detect(left_image)
            right_keypoints = self._detector.detect(right_image)
            left_descriptors = self._descriptor.compute(left_image, left_keypoints)
            right_descriptors = self._descriptor.compute(right_image, right_keypoints)

        with stopwatch.measure("stereo_matching"):
            matches = self._stereo.match(
                left_keypoints, left_descriptors, right_keypoints, right_descriptors,
                left_image=left_image, right_image=right_image,
            )

        with stopwatch.measure("temporal_matching"):
            association = self._temporal_association(left_image, left_keypoints)

        observations: List[TrackObservation] = []
        new_ids: List[int] = []
        used_track_ids: set = set()
        for match in matches:
            if match.disparity < self.config.min_disparity:
                continue
            keypoint = left_keypoints[match.left_index]
            right_keypoint = right_keypoints[match.right_index]
            track_id = association.get(match.left_index)
            if track_id is None or track_id in used_track_ids:
                track_id = self._next_track_id
                self._next_track_id += 1
                new_ids.append(track_id)
            used_track_ids.add(track_id)
            left_pixel = np.array([keypoint.x, keypoint.y])
            right_pixel = np.array([keypoint.x - match.disparity, right_keypoint.y])
            point_camera = rig.triangulate(left_pixel.reshape(1, 2), right_pixel.reshape(1, 2))[0]
            point_body = body_frame_from_camera(point_camera.reshape(1, 3))[0]
            previous = self._active_tracks.get(track_id)
            observations.append(
                TrackObservation(
                    track_id=track_id,
                    left_pixel=left_pixel,
                    right_pixel=right_pixel,
                    point_camera=point_camera,
                    point_body=point_body,
                    descriptor=left_descriptors[match.left_index],
                    age=previous.age + 1 if previous is not None else 1,
                    noise_std=stereo_point_noise(
                        point_camera[2], rig.camera.fx, rig.baseline, self.config.assumed_pixel_noise
                    ),
                )
            )

        previous_ids = set(self._active_tracks.keys())
        current_ids = {obs.track_id for obs in observations}
        lost_ids = sorted(previous_ids - current_ids)
        self._active_tracks = {obs.track_id: obs for obs in observations}
        self._previous_left_image = left_image
        self._previous_keypoints = left_keypoints
        self._previous_track_ids = [obs.track_id for obs in observations]
        self._previous_keypoint_index = {obs.track_id: obs.left_pixel for obs in observations}

        workload = FrontendWorkload(
            image_width=left_image.shape[1],
            image_height=left_image.shape[0],
            keypoints_left=len(left_keypoints),
            keypoints_right=len(right_keypoints),
            descriptors_computed=len(left_keypoints) + len(right_keypoints),
            stereo_candidates=len(left_keypoints) * max(1, len(right_keypoints)),
            stereo_matches=len(matches),
            tracked_points=len(previous_ids),
            temporal_matches=len(previous_ids & current_ids),
        )
        return FrontendResult(
            frame_index=frame.index,
            timestamp=frame.timestamp,
            observations=observations,
            new_track_ids=new_ids,
            lost_track_ids=lost_ids,
            workload=workload,
            measured_ms=stopwatch.as_dict(),
        )

    def _temporal_association(self, left_image: np.ndarray,
                              current_keypoints: List[Keypoint]) -> Dict[int, int]:
        """Map current left-keypoint index -> persistent track id via LK tracking."""
        if self._previous_left_image is None or not self._active_tracks:
            return {}
        previous_points = np.array([obs.left_pixel for obs in self._active_tracks.values()])
        previous_ids = list(self._active_tracks.keys())
        flow = self._tracker.track(self._previous_left_image, left_image, previous_points)
        if not current_keypoints:
            return {}
        current_xy = keypoints_to_array(current_keypoints)

        association: Dict[int, int] = {}
        for result in flow:
            if not result.converged:
                continue
            distances = np.linalg.norm(current_xy - result.current, axis=1)
            nearest = int(np.argmin(distances))
            if distances[nearest] <= 3.0 and nearest not in association:
                association[nearest] = previous_ids[result.index]
        return association


def synthetic_descriptors_for_tracks(observations: List[TrackObservation],
                                     noise_bits: int = 4,
                                     rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Generate stable binary descriptors for sparse-path observations.

    Used by the bag-of-words registration backend, which needs descriptors
    even when the frontend ran in sparse mode.  The descriptor is derived from
    the track identity so repeated visits to the same landmark produce nearly
    identical signatures.
    """
    if not observations:
        return np.zeros((0, 32), dtype=np.uint8)
    return np.stack(
        [descriptor_from_seed(obs.track_id * 2654435761 % (2**31), noise_bits=noise_bits, rng=rng)
         for obs in observations]
    )
