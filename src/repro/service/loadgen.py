"""Open-loop load generation against the service front door.

Closed-loop clients (issue, wait, repeat) self-throttle under overload and
therefore can't exhibit it — the arrival rate collapses to the service
rate and every latency looks fine.  This generator is **open-loop**: every
arrival is scheduled from the profile alone, up front, and fires on time
whether or not earlier requests have finished.  Overload then shows up
where it belongs — in the shed rate and the admitted sessions' turnaround
tail — instead of being absorbed by the client.

Arrival processes (:class:`ArrivalProfile`):

* ``poisson`` — homogeneous Poisson via exponential inter-arrival gaps.
* ``diurnal`` — inhomogeneous Poisson, rate swept by a raised cosine
  between ``rate`` and ``peak_rate`` over the run (one "day").
* ``flash`` — baseline ``rate`` with a ``peak_rate`` crowd burst in the
  middle ``flash_fraction`` of the run — the overload-shedding stressor.

Time-varying profiles are sampled by Lewis–Shedler thinning: draw
candidates from a homogeneous process at the peak rate, keep each with
probability ``rate(t) / peak``.  All draws come from one seeded
``numpy`` generator, so a load schedule is reproducible end to end.

The client speaks the service's wire format over a raw asyncio TCP
connection (stdlib-only, same constraint as the server).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ArrivalProfile", "LoadGenerator", "LoadReport", "request"]

PROFILE_KINDS = ("poisson", "diurnal", "flash")


@dataclass(frozen=True)
class ArrivalProfile:
    """A deterministic arrival schedule over ``[0, duration_s)`` seconds."""

    kind: str = "poisson"
    rate: float = 2.0          # sessions/s (baseline)
    peak_rate: float = 8.0     # sessions/s (diurnal peak / flash crowd)
    duration_s: float = 10.0
    flash_fraction: float = 0.3  # central fraction of the run that's crowded
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in PROFILE_KINDS:
            raise ValueError(f"unknown profile kind {self.kind!r}; "
                             f"expected one of {PROFILE_KINDS}")
        if self.rate <= 0.0 or self.duration_s <= 0.0:
            raise ValueError("rate and duration_s must be positive")
        if self.kind != "poisson" and self.peak_rate < self.rate:
            raise ValueError("peak_rate must be >= rate")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at ``t`` seconds into the run."""
        if self.kind == "poisson":
            return self.rate
        if self.kind == "diurnal":
            # One raised-cosine "day": trough at the endpoints, peak mid-run.
            phase = 2.0 * np.pi * t / self.duration_s
            blend = 0.5 * (1.0 - np.cos(phase))
            return self.rate + (self.peak_rate - self.rate) * float(blend)
        # flash: a rectangular crowd in the middle of the run.
        start = 0.5 * self.duration_s * (1.0 - self.flash_fraction)
        end = 0.5 * self.duration_s * (1.0 + self.flash_fraction)
        return self.peak_rate if start <= t < end else self.rate

    def arrivals(self) -> List[float]:
        """Arrival times in seconds, seeded — same profile, same schedule."""
        rng = np.random.default_rng(self.seed)
        peak = max(self.rate, self.peak_rate) if self.kind != "poisson" else self.rate
        times: List[float] = []
        t = 0.0
        while True:
            # Homogeneous candidates at the peak rate...
            t += float(rng.exponential(1.0 / peak))
            if t >= self.duration_s:
                return times
            # ...thinned down to the instantaneous rate (Lewis–Shedler).
            if rng.random() <= self.rate_at(t) / peak:
                times.append(t)


async def request(host: str, port: int, method: str, path: str,
                  body: Optional[Dict[str, object]] = None,
                  ) -> Tuple[int, Dict[str, object]]:
    """One HTTP exchange with the service, stdlib-only."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body or {}).encode()
        writer.write(
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload)
        await writer.drain()
        status_line = (await reader.readline()).decode("latin-1")
        status = int(status_line.split(" ", 2)[1])
        content_length = 0
        while True:
            header = (await reader.readline()).decode("latin-1").strip()
            if not header:
                break
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        raw = await reader.readexactly(content_length) if content_length else b"{}"
        return status, json.loads(raw)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass


@dataclass
class LoadReport:
    """What the run did to the service, from the client's vantage point."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    errors: int = 0
    wall_s: float = 0.0
    turnaround_ms: List[float] = field(default_factory=list)
    shed_reasons: Dict[str, int] = field(default_factory=dict)
    signatures: Dict[str, str] = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        return self.shed / max(self.offered, 1)

    @property
    def goodput(self) -> float:
        """Completed sessions per offered-load second."""
        return self.completed / max(self.wall_s, 1e-9)

    def turnaround_percentile(self, percent: float) -> float:
        if not self.turnaround_ms:
            return 0.0
        return float(np.percentile(self.turnaround_ms, percent))

    def summary(self) -> Dict[str, float]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "errors": self.errors,
            "shed_rate": self.shed_rate,
            "goodput_per_s": self.goodput,
            "wall_s": self.wall_s,
            "p50_turnaround_ms": self.turnaround_percentile(50.0),
            "p95_turnaround_ms": self.turnaround_percentile(95.0),
        }


class LoadGenerator:
    """Fires an :class:`ArrivalProfile` at a running service.

    Each arrival creates a session (inline segments, so it seals and
    queues immediately) and then long-polls its result.  ``session_body``
    is the create payload template; per-arrival ``stream_id`` and ``seed``
    are stamped from the arrival index so the fleet is deterministic.
    """

    def __init__(self, host: str, port: int,
                 session_body: Dict[str, object],
                 qos_cycle: Sequence[str] = ("silver",)) -> None:
        self.host = host
        self.port = port
        self.session_body = session_body
        self.qos_cycle = tuple(qos_cycle)

    async def _one_session(self, index: int, delay_s: float,
                           report: LoadReport,
                           loop: asyncio.AbstractEventLoop) -> None:
        await asyncio.sleep(delay_s)
        body = dict(self.session_body)
        body.setdefault("segments", [])
        body["stream_id"] = f"load-{index:05d}"
        body["seed"] = index
        body["qos"] = self.qos_cycle[index % len(self.qos_cycle)]
        started = loop.time()
        status, payload = await request(
            self.host, self.port, "POST", "/v1/sessions", body)
        if status == 503:
            report.shed += 1
            reason = str(payload.get("error", "shed"))
            key = "saturated" if "saturated" in reason else (
                "max_inflight" if "max_inflight" in reason else reason)
            report.shed_reasons[key] = report.shed_reasons.get(key, 0) + 1
            return
        if status != 201:
            report.errors += 1
            return
        report.admitted += 1
        session_id = str(payload["session_id"])
        status, payload = await request(
            self.host, self.port, "GET", f"/v1/sessions/{session_id}/result")
        if status != 200:
            report.errors += 1
            return
        report.completed += 1
        report.turnaround_ms.append(1000.0 * (loop.time() - started))
        report.signatures[session_id] = str(payload.get("signature", ""))

    async def run(self, profile: ArrivalProfile) -> LoadReport:
        """Replay the profile open-loop and wait for every session's fate."""
        report = LoadReport()
        loop = asyncio.get_running_loop()
        arrivals = profile.arrivals()
        report.offered = len(arrivals)
        started = loop.time()
        # Pre-scheduled, not sequential: arrival N fires at its own time
        # regardless of how arrival N-1 is faring.  That is what open-loop
        # means, and it is why overload is visible at all.
        tasks = [asyncio.create_task(self._one_session(i, t, report, loop))
                 for i, t in enumerate(arrivals)]
        if tasks:
            await asyncio.gather(*tasks)
        report.wall_s = loop.time() - started
        return report
