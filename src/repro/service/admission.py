"""Admission control: decide at the door, before any work is done.

The controller sits between the HTTP layer and the session registry.  Every
session-create request passes through :meth:`AdmissionController.admit`
*before* a session object, a run-store entry, or a map resolution exists —
a shed session leaves no trace anywhere in the serving stack (pinned by
tests/test_service.py).

Two pressure signals, two policies beyond ``none``:

* ``inflight`` — a hard cap on concurrently admitted sessions
  (``max_inflight``).  This is the memory/socket bound; it applies to every
  class, protected or not, because an unbounded registry is an outage no
  QoS contract survives.
* ``saturation`` — everything ``inflight`` does, plus overload shedding
  keyed on :attr:`repro.scheduler.LatencyAutoscaler.saturated`: the
  autoscaler reporting sustained over-pressure with the pool pinned at
  ``max_workers``.  While saturated, sheddable classes are refused and the
  inflight bound tightens to the pool's pinned per-tick capacity
  (``max_workers * frames_per_worker_tick``) so the backlog drains instead
  of compounding.  Protected (``sheddable=False``) classes keep being
  admitted up to the hard cap.

With a sharded engine behind the door there are N autoscalers, not one, so
"saturated" needs an aggregate definition.  The pinned semantics
(:meth:`AdmissionController._saturation_signal`): a request sheds on the
saturation of the shard it would actually land on — the per-stream
``shard_saturated_fn`` probe — never on "any shard saturated", which would
let one hot shard refuse traffic bound for idle siblings.  The zero-arg
``saturated_fn`` remains the fallback for requests with no stream identity
yet, and a sharded engine binds it to *all*-shards saturation (the
cluster genuinely out of capacity), keeping the conservative direction.

Decisions are recorded in a bounded log for the metrics endpoint — same
discipline as the autoscaler's decision log.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.service.qos import QoSClass

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionController",
    "AdmissionDecision",
    "DECISION_LOG_LIMIT",
]

ADMISSION_POLICIES = ("none", "inflight", "saturation")

#: Bounded like the autoscaler's decision log, and for the same reason: the
#: service runs indefinitely, the metrics endpoint reads the tail.
DECISION_LOG_LIMIT = 4096


@dataclass(frozen=True)
class AdmissionDecision:
    """One admit-or-shed verdict, with the evidence behind it."""

    admitted: bool
    reason: str
    qos: str
    inflight: int
    limit: Optional[int]
    saturated: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "admitted": self.admitted,
            "reason": self.reason,
            "qos": self.qos,
            "inflight": self.inflight,
            "limit": self.limit,
            "saturated": self.saturated,
        }


@dataclass
class AdmissionController:
    """Stateless verdicts over two live signals: inflight count + saturation.

    ``saturated_fn`` is a zero-argument probe, typically bound to the
    engine's shared autoscaler (``lambda: autoscaler.saturated``); the
    controller never imports the engine, so it is testable with a plain
    closure over a bool.  ``shard_saturated_fn``, when set, is the
    per-stream refinement a sharded engine provides
    (``engine.saturated_for``): given the stream id a create request would
    serve under, it reports the saturation of the one shard that would do
    the work.
    """

    policy: str = "saturation"
    max_inflight: int = 64
    # The tightened bound while saturated: the pool's pinned per-tick
    # service capacity.  None disables tightening (pure shed-by-class).
    saturated_inflight: Optional[int] = None
    saturated_fn: Callable[[], bool] = lambda: False
    # Per-stream saturation probe for sharded engines; None falls back to
    # the zero-arg signal for every request.
    shard_saturated_fn: Optional[Callable[[str], bool]] = None
    decisions: Deque[AdmissionDecision] = field(
        default_factory=lambda: deque(maxlen=DECISION_LOG_LIMIT))
    shed_counts: Dict[str, int] = field(default_factory=dict)
    admitted_count: int = 0

    def __post_init__(self) -> None:
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; "
                f"expected one of {ADMISSION_POLICIES}")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        # Observability (repro.obs): unbound until bind_metrics; the admit
        # path is guarded by a None check.
        self.metrics = None
        self._m_verdicts = None
        self._m_shed = None

    def bind_metrics(self, registry) -> None:
        """Register the door's verdict/shed counters with a
        :class:`repro.obs.MetricsRegistry` (idempotent)."""
        self.metrics = registry
        self._m_verdicts = registry.counter(
            "eudoxus_service_admission_total",
            "Admission verdicts by outcome and QoS class.",
            ("verdict", "qos"))
        self._m_shed = registry.counter(
            "eudoxus_service_shed_total",
            "Sessions refused at the door, by shed reason.", ("reason",))

    def admit(self, qos: QoSClass, inflight: int,
              stream_id: Optional[str] = None) -> AdmissionDecision:
        """Verdict for one session-create under the current load signals.

        ``stream_id`` is the identity the session would serve under (the
        service computes it before admitting, so the verdict can consult
        the shard the stream would actually land on).
        """
        decision = self._decide(qos, inflight, stream_id)
        self.decisions.append(decision)
        if decision.admitted:
            self.admitted_count += 1
        else:
            key = decision.reason
            self.shed_counts[key] = self.shed_counts.get(key, 0) + 1
        if self._m_verdicts is not None:
            self._m_verdicts.inc(
                verdict="admitted" if decision.admitted else "shed",
                qos=qos.name)
            if not decision.admitted:
                self._m_shed.inc(reason=decision.reason)
        return decision

    def _saturation_signal(self, stream_id: Optional[str]) -> bool:
        """The saturation signal for one request — pinned semantics.

        With a per-stream probe available and a stream identity on the
        request, the verdict is the TARGET shard's saturation: shedding on
        "any shard saturated" would refuse traffic bound for idle shards,
        and "all shards saturated" would keep stuffing a hot shard as long
        as a sibling idles.  After a rebalance the probe follows the live
        ring, so a relocated stream is immediately judged by its new
        shard.  Requests without a stream identity (or controllers without
        the probe) fall back to the zero-arg aggregate signal.
        """
        if self.shard_saturated_fn is not None and stream_id is not None:
            return bool(self.shard_saturated_fn(stream_id))
        return bool(self.saturated_fn())

    def _decide(self, qos: QoSClass, inflight: int,
                stream_id: Optional[str] = None) -> AdmissionDecision:
        saturated = (self.policy == "saturation") and self._saturation_signal(stream_id)
        if self.policy == "none":
            return AdmissionDecision(True, "policy none", qos.name,
                                     inflight, None, saturated)
        if inflight >= self.max_inflight:
            # The hard cap outranks every QoS promise — protected classes
            # included.  Refusing at the door beats collapsing under load.
            return AdmissionDecision(False, "max_inflight", qos.name,
                                     inflight, self.max_inflight, saturated)
        if saturated:
            if qos.sheddable:
                return AdmissionDecision(False, "saturated", qos.name,
                                         inflight, self.max_inflight, True)
            bound = self.saturated_inflight
            if bound is not None and inflight >= bound:
                return AdmissionDecision(False, "saturated", qos.name,
                                         inflight, bound, True)
            return AdmissionDecision(True, "protected under saturation",
                                     qos.name, inflight, self.max_inflight,
                                     True)
        return AdmissionDecision(True, "admitted", qos.name, inflight,
                                 self.max_inflight, saturated)

    @property
    def shed_count(self) -> int:
        return sum(self.shed_counts.values())

    def snapshot(self) -> Dict[str, object]:
        """Metrics-endpoint view: counters plus the decision-log tail."""
        return {
            "policy": self.policy,
            "max_inflight": self.max_inflight,
            "saturated_inflight": self.saturated_inflight,
            "admitted": self.admitted_count,
            "shed": self.shed_count,
            "shed_reasons": dict(self.shed_counts),
        }
