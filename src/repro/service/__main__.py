"""``python -m repro.service`` — run the front door on a local engine.

A convenience entry point for manual poking: an in-process
:class:`~repro.serving.ServingEngine` with a small autoscaler, no
persistent stores, listening on ``EUDOXUS_SERVICE_PORT`` (default 8351).
Production-shaped deployments should construct
:class:`~repro.service.LocalizationService` around their own engine.
"""

from __future__ import annotations

from repro.scheduler.autoscaler import LatencyAutoscaler
from repro.serving.engine import ServingEngine
from repro.service.server import LocalizationService


def main() -> None:
    engine = ServingEngine(
        store=None,
        autoscaler=LatencyAutoscaler(min_workers=1, max_workers=4),
    )
    service = LocalizationService(engine)
    print(f"localization service on {service.host}:{service.port} "
          f"(policy={service.admission.policy}, "
          f"max_inflight={service.admission.max_inflight})")
    service.run()


if __name__ == "__main__":
    main()
