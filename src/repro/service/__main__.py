"""``python -m repro.service`` — run the front door on a local engine.

A convenience entry point for manual poking: an in-process
:class:`~repro.serving.ServingEngine` with a small autoscaler, no
persistent stores, listening on ``EUDOXUS_SERVICE_PORT`` (default 8351).
``EUDOXUS_SHARDS=N`` (N > 1) swaps in a
:class:`~repro.cluster.ShardedServingEngine` — N engines behind the same
door, shard-aware admission included.  Production-shaped deployments
should construct :class:`~repro.service.LocalizationService` around their
own engine.
"""

from __future__ import annotations

from repro.cluster import ShardedServingEngine, resolve_shard_count
from repro.scheduler.autoscaler import LatencyAutoscaler
from repro.serving.engine import ServingEngine
from repro.service.server import LocalizationService


def main() -> None:
    shards = resolve_shard_count()
    if shards > 1:
        engine = ShardedServingEngine(
            shards,
            autoscaler_factory=lambda shard: LatencyAutoscaler(
                min_workers=1, max_workers=4),
        )
        shape = f"{shards} shards"
    else:
        engine = ServingEngine(
            store=None,
            autoscaler=LatencyAutoscaler(min_workers=1, max_workers=4),
        )
        shape = "1 engine"
    service = LocalizationService(engine)
    print(f"localization service on {service.host}:{service.port} "
          f"({shape}, policy={service.admission.policy}, "
          f"max_inflight={service.admission.max_inflight})")
    service.run()


if __name__ == "__main__":
    main()
