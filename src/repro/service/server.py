"""Asyncio service front door over :class:`~repro.serving.ServingEngine`.

The engine stays an importable library; this module is the network-shaped
boundary in front of it.  :class:`LocalizationService` runs a stdlib-only
asyncio HTTP server (no third-party web framework — the container bakes in
only the scientific toolchain) exposing the session lifecycle:

* ``POST /v1/sessions`` — create a session under a QoS class.  Admission
  control runs **here**, before any session object or store entry exists;
  a shed request gets ``503`` and leaves no trace in the serving stack.
  Inline ``segments`` seal the session immediately.
* ``POST /v1/sessions/{id}/segments`` — feed more segments to an open
  session; ``{"seal": true}`` closes it for serving.
* ``GET /v1/sessions/{id}`` — lifecycle state
  (``open → queued → serving → done | failed``).
* ``GET /v1/sessions/{id}/result`` — long-poll for the session's result
  (seals an open session that already has segments; ``409`` if empty).
* ``GET /healthz`` — liveness, the current saturation signal, tenants in
  SLO fast-burn, and (sharded) per-shard rows with their burn state.
* ``GET /v1/slo`` — the SLO plane: the front door's wall-clock burn-rate
  snapshot and the engine's virtual-clock one (when an engine-side
  tracker is attached).
* ``GET /v1/metrics`` — counters, shed reasons, map-service telemetry,
  per-wave serving summaries, turnaround percentiles, and the engine's
  clock-ordered autoscaler decision log.  ``?format=prometheus`` renders
  the shared :class:`repro.obs.MetricsRegistry` as text exposition 0.0.4
  instead of JSON.

Serving runs in **waves**: a background dispatcher collects every sealed
session, hands the batch to ``engine.serve(..., parallel=False,
ingestion="streaming")`` on a worker thread (the engine is synchronous and
CPU-bound; ``asyncio.to_thread`` keeps the event loop responsive), and
fans results back out.  The virtual-clock loop stays the deterministic
oracle — a session served through the front door yields the byte-identical
:meth:`~repro.serving.session.SessionResult.signature` the library call
yields — while admission, queueing, and turnaround run on real time.

Environment knobs (all ``EUDOXUS_SERVICE_*``):

* ``EUDOXUS_SERVICE_PORT`` — listen port (default 8351; 0 = ephemeral).
* ``EUDOXUS_SERVICE_MAX_INFLIGHT`` — hard cap on admitted, unfinished
  sessions (default 64).
* ``EUDOXUS_SERVICE_SHED_POLICY`` — ``none`` / ``inflight`` /
  ``saturation`` (default ``saturation``).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLOTracker
from repro.obs.trace import Tracer
from repro.obs.triage import SIG_SHED
from repro.serving.engine import ServingEngine, ServingReport
from repro.serving.session import SessionResult
from repro.serving.streams import ScenarioKind, StreamSegment, StreamSpec
from repro.service.admission import AdmissionController
from repro.service.qos import DEFAULT_QOS_CLASSES, QoSClass, apply_qos

__all__ = [
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_PORT",
    "LocalizationService",
    "MAX_INFLIGHT_ENV",
    "PORT_ENV",
    "ServiceError",
    "SHED_POLICY_ENV",
]

PORT_ENV = "EUDOXUS_SERVICE_PORT"
MAX_INFLIGHT_ENV = "EUDOXUS_SERVICE_MAX_INFLIGHT"
SHED_POLICY_ENV = "EUDOXUS_SERVICE_SHED_POLICY"
DEFAULT_PORT = 8351
DEFAULT_MAX_INFLIGHT = 64

#: Bounded telemetry: the metrics endpoint reports tails, never unbounded
#: histories (same discipline as the autoscaler's decision log).
WAVE_LOG_LIMIT = 512
TURNAROUND_RESERVOIR = 4096


class ServiceError(Exception):
    """A client-visible failure with an HTTP status.

    Everything the request handlers raise deliberately is one of these;
    anything else maps to 500 so internal bugs can't masquerade as client
    errors.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_STATES = ("open", "queued", "serving", "done", "failed")


@dataclass
class _ServiceSession:
    """Registry entry: the lifecycle wrapper around one client stream."""

    session_id: str
    qos: QoSClass
    platform_kind: str
    camera_rate_hz: float
    landmark_count: int
    seed: int
    segments: List[StreamSegment] = field(default_factory=list)
    state: str = "open"
    created_at: float = 0.0
    sealed_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result: Optional[SessionResult] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def spec(self) -> StreamSpec:
        """The immutable engine-facing view, deadline stamped by QoS."""
        spec = StreamSpec(
            stream_id=self.session_id,
            segments=tuple(self.segments),
            platform_kind=self.platform_kind,
            camera_rate_hz=self.camera_rate_hz,
            landmark_count=self.landmark_count,
            seed=self.seed,
        )
        return apply_qos(spec, self.qos)

    @property
    def inflight(self) -> bool:
        return self.state in ("open", "queued", "serving")

    def status(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "session_id": self.session_id,
            "state": self.state,
            "qos": self.qos.name,
            "deadline_ms": self.qos.deadline_ms,
            "segments": len(self.segments),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


def _parse_segment(raw: Dict[str, object]) -> StreamSegment:
    """One wire-format segment -> :class:`StreamSegment`.

    The wire format mirrors the dataclass; ``kind`` is the scenario slug
    (``outdoor_unknown`` …).  Unknown keys are rejected rather than
    ignored so client typos surface as 400s, not silently-default runs.
    """
    if not isinstance(raw, dict):
        raise ServiceError(400, "each segment must be an object")
    allowed = {"kind", "duration", "gps_outage_probability",
               "imu_noise_scale", "imu_bias_scale", "label", "environment"}
    unknown = set(raw) - allowed
    if unknown:
        raise ServiceError(400, f"unknown segment fields: {sorted(unknown)}")
    try:
        kind = ScenarioKind(str(raw["kind"]))
    except (KeyError, ValueError) as exc:
        raise ServiceError(
            400, f"segment kind must be one of "
                 f"{[k.value for k in ScenarioKind]}") from exc
    try:
        return StreamSegment(
            kind=kind,
            duration=float(raw.get("duration", 2.0)),
            gps_outage_probability=float(raw.get("gps_outage_probability", 0.0)),
            imu_noise_scale=(None if raw.get("imu_noise_scale") is None
                             else float(raw["imu_noise_scale"])),
            imu_bias_scale=(None if raw.get("imu_bias_scale") is None
                            else float(raw["imu_bias_scale"])),
            label=str(raw.get("label", "")),
            environment=(None if raw.get("environment") is None
                         else str(raw["environment"])),
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(400, f"bad segment: {exc}") from exc


class LocalizationService:
    """The async front door: admission, session registry, wave dispatch.

    Construct around an existing engine (library-first: the service owns
    no serving logic), then either ``await start()`` / ``await stop()``
    from an async context or use :meth:`run` for a blocking entry point.
    """

    def __init__(self, engine: ServingEngine,
                 qos_classes: Optional[Dict[str, QoSClass]] = None,
                 admission: Optional[AdmissionController] = None,
                 host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 slo: Optional[SLOTracker] = None,
                 recorder: Optional[FlightRecorder] = None) -> None:
        self.engine = engine
        # Duck-typed shard awareness: a sharded engine
        # (repro.cluster.ShardedServingEngine) exposes the per-stream
        # saturation probe; the service never imports the cluster layer.
        self._sharded = hasattr(engine, "saturated_for")
        self.qos_classes = dict(qos_classes or DEFAULT_QOS_CLASSES)
        self.host = host
        self.port = int(os.environ.get(PORT_ENV, DEFAULT_PORT)) if port is None else port
        if admission is None:
            policy = os.environ.get(SHED_POLICY_ENV, "saturation")
            max_inflight = int(os.environ.get(MAX_INFLIGHT_ENV,
                                              DEFAULT_MAX_INFLIGHT))
            if self._sharded:
                # Sharded engine: the per-stream probe judges the TARGET
                # shard (see AdmissionController._saturation_signal for the
                # pinned aggregate semantics); the zero-arg fallback is
                # cluster-wide exhaustion; the tightened bound is the
                # cluster's summed pinned capacity.
                admission = AdmissionController(
                    policy=policy,
                    max_inflight=max_inflight,
                    saturated_inflight=engine.pinned_capacity,
                    saturated_fn=lambda: engine.saturated,
                    shard_saturated_fn=engine.saturated_for,
                )
            else:
                scaler = engine.autoscaler
                admission = AdmissionController(
                    policy=policy,
                    max_inflight=max_inflight,
                    # While saturated, tighten admissions to the pool's
                    # pinned per-tick service capacity so the backlog drains.
                    saturated_inflight=(
                        scaler.max_workers * engine.frames_per_worker_tick
                        if scaler is not None else None),
                    saturated_fn=(lambda: scaler.saturated)
                    if scaler is not None else (lambda: False),
                )
        self.admission = admission
        # Observability: the service owns one registry for the whole stack
        # (``/v1/metrics?format=prometheus`` renders it) and shares the
        # engine's tracer so front-door spans land in the same buffer as
        # engine/map/scheduler spans.  Binding is idempotent and inert —
        # golden signatures are pinned unchanged with it active.
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else engine.tracer
        if tracer is not None:
            engine.tracer = tracer
        # Front-door SLO plane: per-session deadline outcomes on the wall
        # clock (the operator-facing domain), one event per finished or
        # shed deadlined session, rolled up per tenant and — behind a
        # sharded engine — per shard.  The engine's own tracker (if any)
        # stays the virtual-clock view; GET /v1/slo reports both.
        self.slo = slo if slo is not None else SLOTracker(domain="wall")
        self._slo_epoch = time.perf_counter()
        # The flight recorder is shared with the engine by default so the
        # front door's shed-spike bundles land next to the engine's
        # trigger bundles.
        self.recorder = (recorder if recorder is not None
                         else getattr(engine, "recorder", None))
        engine.bind_metrics(self.registry)
        self.admission.bind_metrics(self.registry)
        self.slo.bind_metrics(self.registry)
        if self.tracer is not None:
            self.tracer.bind_metrics(self.registry)
        self._m_wave_wall = self.registry.histogram(
            "eudoxus_service_wave_wall_ms",
            "Wall-clock milliseconds per dispatch wave.")
        self._m_turnaround = self.registry.histogram(
            "eudoxus_service_turnaround_ms",
            "Seal-to-finish turnaround per session, milliseconds.")
        self._m_inflight = self.registry.gauge(
            "eudoxus_service_inflight",
            "Admitted, unfinished sessions right now.")
        self._m_session_states = self.registry.gauge(
            "eudoxus_service_sessions",
            "Session lifecycle totals by terminal outcome.", ("outcome",))
        self.registry.register_collector(self._collect_metrics)
        self.sessions: Dict[str, _ServiceSession] = {}
        self.created = 0
        self.completed = 0
        self.failed = 0
        # Running triage census across waves (plus front-door "shed"
        # stamps, which the engine never sees) — the service-lifetime
        # aggregate of ServingReport.failure_census.
        self.failure_census: Dict[str, int] = {}
        self.waves: List[Dict[str, float]] = []
        self.turnaround_ms: List[float] = []
        self._next_id = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._work_ready: Optional[asyncio.Event] = None

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind the listener (resolving port 0 to the real one) and start
        the wave dispatcher."""
        self._work_ready = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def run(self) -> None:
        """Blocking entry point (``python -m repro.service``)."""
        async def _main() -> None:
            await self.start()
            assert self._server is not None
            async with self._server:
                await self._server.serve_forever()
        asyncio.run(_main())

    # ------------------------------------------------------- wave dispatch

    @property
    def inflight(self) -> int:
        return sum(1 for session in self.sessions.values() if session.inflight)

    def _saturated(self) -> bool:
        if self._sharded:
            # Cluster-wide exhaustion (every shard saturated) — the health
            # endpoint's headline; per-shard detail rides in "shards".
            return bool(self.engine.saturated)
        scaler = getattr(self.engine, "autoscaler", None)
        return bool(scaler.saturated) if scaler is not None else False

    async def _dispatch_loop(self) -> None:
        assert self._work_ready is not None
        while True:
            await self._work_ready.wait()
            self._work_ready.clear()
            wave = [session for session in self.sessions.values()
                    if session.state == "queued"]
            if not wave:
                continue
            for session in wave:
                session.state = "serving"
            specs = [session.spec() for session in wave]
            started = time.perf_counter()
            wave_span = (self.tracer.wall_span(
                "service.wave", "service", track="service",
                sessions=len(wave))
                if self.tracer is not None else contextlib.nullcontext())
            try:
                # The engine is synchronous and CPU-bound; a worker thread
                # keeps admission and health endpoints live mid-wave.
                # parallel=False pins the plain engine to the deterministic
                # serial loop; a sharded engine gets parallel=None instead —
                # its shard fan-out is across processes (each shard still
                # runs the serial loop internally), so letting it spread
                # over the host's cores is the whole point of sharding and
                # cannot perturb results.
                with wave_span:
                    report: ServingReport = await asyncio.to_thread(
                        self.engine.serve, specs,
                        parallel=None if self._sharded else False,
                        ingestion="streaming")
            except Exception as exc:  # engine bug or bad fleet: fail the wave
                for session in wave:
                    session.state = "failed"
                    session.error = f"{type(exc).__name__}: {exc}"
                    session.finished_at = time.perf_counter()
                    session.done.set()
                self.failed += len(wave)
                continue
            finished = time.perf_counter()
            slo_now = finished - self._slo_epoch
            shard_of = getattr(report, "shard_of", {})
            for session in wave:
                result = report.results.get(session.session_id)
                if result is None:
                    session.state = "failed"
                    session.error = "engine returned no result"
                    self.failed += 1
                else:
                    session.result = result
                    session.state = "done"
                    self.completed += 1
                if session.qos.deadline_ms is not None:
                    # One wall-clock SLO event per deadlined session: ok
                    # means it finished with a clean virtual schedule.
                    misses = report.deadline_misses_by_stream.get(
                        session.session_id, 0)
                    self.slo.record(
                        session.qos.name, slo_now,
                        result is not None and misses == 0,
                        shard=shard_of.get(session.session_id))
                session.finished_at = finished
                if session.sealed_at is not None:
                    turnaround = 1000.0 * (finished - session.sealed_at)
                    self.turnaround_ms.append(turnaround)
                    self._m_turnaround.observe(turnaround)
                session.done.set()
            del self.turnaround_ms[:-TURNAROUND_RESERVOIR]
            for signature, count in report.failure_census().items():
                self.failure_census[signature] = (
                    self.failure_census.get(signature, 0) + count)
            self._m_wave_wall.observe(1000.0 * (finished - started))
            self.waves.append({
                "sessions": float(len(wave)),
                "wall_s": finished - started,
                "p95_serving_ms": report.virtual_latency_percentile(95.0),
                "deadline_misses": float(report.deadline_misses),
                "final_workers": float(report.final_workers),
                "saturated": float(self._saturated()),
            })
            del self.waves[:-WAVE_LOG_LIMIT]

    # --------------------------------------------------------- HTTP plumbing

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        content_type = "application/json"
        try:
            response = await self._handle_request(reader)
        except ServiceError as exc:
            response = exc.status, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — last-resort 500 mapping
            response = 500, {"error": f"{type(exc).__name__}: {exc}"}
        if len(response) == 3:
            # Non-JSON route (Prometheus exposition): pre-rendered text.
            status, text, content_type = response
            body = str(text).encode()
        else:
            status, payload = response
            body = json.dumps(payload).encode()
        reason = {200: "OK", 201: "Created", 400: "Bad Request",
                  404: "Not Found", 409: "Conflict",
                  503: "Service Unavailable"}.get(status, "Error")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode() + body)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass

    async def _handle_request(self, reader: asyncio.StreamReader
                              ) -> Union[Tuple[int, Dict[str, object]],
                                         Tuple[int, str, str]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ServiceError(400, "empty request")
        try:
            method, path, _ = request_line.split(" ", 2)
        except ValueError as exc:
            raise ServiceError(400, f"malformed request line: {request_line!r}") from exc
        content_length = 0
        while True:
            header = (await reader.readline()).decode("latin-1").strip()
            if not header:
                break
            name, _, value = header.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        body: Dict[str, object] = {}
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ServiceError(400, f"body is not valid JSON: {exc}") from exc
            if not isinstance(body, dict):
                raise ServiceError(400, "body must be a JSON object")
        return await self._route(method, path, body)

    async def _route(self, method: str, path: str,
                     body: Dict[str, object]
                     ) -> Union[Tuple[int, Dict[str, object]],
                                Tuple[int, str, str]]:
        path, _, query = path.partition("?")
        params: Dict[str, str] = {}
        for pair in query.split("&"):
            if pair:
                name, _, value = pair.partition("=")
                params[name] = value
        if method == "GET" and path == "/healthz":
            payload: Dict[str, object] = {"status": "ok",
                                          "inflight": self.inflight,
                                          "saturated": self._saturated(),
                                          "slo_fast_burn": self.slo.fast_burns()}
            cache = getattr(self.engine, "map_cache", None)
            if cache is not None:
                # A degraded map tier is a liveness concern: a collapsing
                # hit rate under a nonzero staleness bound means the fleet
                # is re-merging (or stale-serving) its way through churn.
                payload["map_tier"] = {
                    "hit_rate": round(cache.hit_rate, 4),
                    "entries": cache.entry_count,
                    "stale_serves": cache.stale_serves,
                    "staleness_bound": int(
                        getattr(self.engine, "map_staleness_bound", 0)),
                }
            if self._sharded:
                rows = self.engine.shard_health()
                for row in rows:
                    row["slo_fast_burn"] = bool(
                        self.slo.fast_burns(shard=row["shard"]))
                payload["shards"] = rows
            return 200, payload
        if method == "GET" and path == "/v1/slo":
            engine_slo = getattr(self.engine, "slo", None)
            return 200, {
                "service": self.slo.snapshot(),
                "engine": (engine_slo.snapshot()
                           if engine_slo is not None else None),
            }
        if method == "GET" and path == "/v1/metrics":
            fmt = params.get("format", "json")
            if fmt == "prometheus":
                return (200, self.registry.render_prometheus(),
                        "text/plain; version=0.0.4; charset=utf-8")
            if fmt != "json":
                raise ServiceError(
                    400, f"unknown metrics format {fmt!r}; "
                         f"expected 'json' or 'prometheus'")
            return 200, self.metrics()
        if method == "POST" and path == "/v1/sessions":
            return await self._create_session(body)
        parts = path.strip("/").split("/")
        if len(parts) >= 3 and parts[0] == "v1" and parts[1] == "sessions":
            session = self.sessions.get(parts[2])
            if session is None:
                raise ServiceError(404, f"no such session: {parts[2]}")
            if method == "POST" and len(parts) == 4 and parts[3] == "segments":
                return self._feed_segments(session, body)
            if method == "GET" and len(parts) == 3:
                return 200, session.status()
            if method == "GET" and len(parts) == 4 and parts[3] == "result":
                return await self._await_result(session)
        raise ServiceError(404, f"no route for {method} {path}")

    # ------------------------------------------------------------ handlers

    async def _create_session(self, body: Dict[str, object]
                              ) -> Tuple[int, Dict[str, object]]:
        if "deadline_ms" in body:
            # Deadlines are the service's promise, not the client's claim —
            # accepting one would let clients bypass the QoS catalog.
            raise ServiceError(
                400, "deadline_ms is assigned by the QoS class; pass 'qos'")
        qos_name = str(body.get("qos", "best_effort"))
        qos = self.qos_classes.get(qos_name)
        if qos is None:
            raise ServiceError(
                400, f"unknown QoS class {qos_name!r}; expected one of "
                     f"{sorted(self.qos_classes)}")
        # The prospective identity is computed BEFORE the verdict so a
        # shard-aware controller can judge the shard this stream would
        # actually land on; the id counter only advances on admission, so a
        # shed request still leaves no trace (not even a consumed id).
        session_id = str(body.get("stream_id", "")) or f"s-{self._next_id:06d}"
        decision = self.admission.admit(qos, self.inflight,
                                        stream_id=session_id)
        if self.tracer is not None:
            self.tracer.instant(
                "admission.admit" if decision.admitted else "admission.shed",
                "service", self.tracer.wall_now(), clock="wall",
                track="service", qos=qos.name, reason=decision.reason,
                inflight=decision.inflight)
        if not decision.admitted:
            # The front door is the only layer that can stamp `shed` — a
            # refused session never produces a SessionResult to triage.
            self.failure_census[SIG_SHED] = (
                self.failure_census.get(SIG_SHED, 0) + 1)
            if qos.deadline_ms is not None:
                # A refused deadlined request burns its tenant's budget:
                # the client asked for a contract and got nothing.
                self.slo.record(qos.name,
                                time.perf_counter() - self._slo_epoch,
                                ok=False)
            if self.recorder is not None:
                self.recorder.note_shed(
                    decision.reason, time.perf_counter() - self._slo_epoch,
                    context={"admission_tail": [
                        d.to_dict()
                        for d in list(self.admission.decisions)[-16:]]})
            raise ServiceError(
                503, f"shed ({decision.reason}): inflight {decision.inflight}"
                     f", limit {decision.limit}")
        self._next_id += 1
        if session_id in self.sessions:
            raise ServiceError(409, f"session {session_id!r} already exists")
        try:
            session = _ServiceSession(
                session_id=session_id,
                qos=qos,
                platform_kind=str(body.get("platform_kind", "drone")),
                camera_rate_hz=float(body.get("camera_rate_hz", 5.0)),
                landmark_count=int(body.get("landmark_count", 150)),
                seed=int(body.get("seed", 0)),
                created_at=time.perf_counter(),
            )
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, f"bad session parameters: {exc}") from exc
        segments = body.get("segments")
        if segments is not None:
            if not isinstance(segments, list):
                raise ServiceError(400, "segments must be a list")
            session.segments.extend(_parse_segment(raw) for raw in segments)
            self._seal(session)
        self.sessions[session_id] = session
        self.created += 1
        return 201, session.status()

    def _feed_segments(self, session: _ServiceSession,
                       body: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        if session.state != "open":
            raise ServiceError(
                409, f"session {session.session_id} is {session.state}, "
                     f"not open for segments")
        segments = body.get("segments", [])
        if not isinstance(segments, list):
            raise ServiceError(400, "segments must be a list")
        session.segments.extend(_parse_segment(raw) for raw in segments)
        if body.get("seal"):
            self._seal(session)
        return 200, session.status()

    def _seal(self, session: _ServiceSession) -> None:
        if not session.segments:
            raise ServiceError(
                409, f"session {session.session_id} has no segments to serve")
        session.state = "queued"
        session.sealed_at = time.perf_counter()
        if self._work_ready is not None:
            self._work_ready.set()

    async def _await_result(self, session: _ServiceSession
                            ) -> Tuple[int, Dict[str, object]]:
        if session.state == "open":
            # Long-poll doubles as the seal for clients that streamed their
            # segments and just want the answer.
            self._seal(session)
        await session.done.wait()
        if session.state == "failed":
            raise ServiceError(500, session.error or "session failed")
        result = session.result
        assert result is not None
        census: Dict[str, int] = {}
        for estimate in result.trajectory.estimates:
            census[estimate.mode] = census.get(estimate.mode, 0) + 1
        return 200, {
            "session_id": session.session_id,
            "state": session.state,
            "qos": session.qos.name,
            "deadline_ms": session.qos.deadline_ms,
            "frames": result.frame_count,
            "mode_census": census,
            "mode_switches": len(result.mode_switches),
            "map_acquisitions": len(result.map_acquisitions),
            # The determinism contract, over the wire: byte-identical to
            # the library-call signature for the same spec.
            "signature": result.signature(),
        }

    # ------------------------------------------------------------- metrics

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Live gauges, refreshed at exposition time (not on the hot path)."""
        self._m_inflight.set(float(self.inflight))
        self._m_session_states.set(float(self.created), outcome="created")
        self._m_session_states.set(float(self.completed), outcome="completed")
        self._m_session_states.set(float(self.failed), outcome="failed")
        self._m_session_states.set(
            float(self.admission.shed_count), outcome="shed")

    def _map_service_metrics(self) -> Optional[Dict[str, object]]:
        """ROADMAP item 5 telemetry: the map service's live counters, or
        ``None`` when the engine serves without a fleet-map plane."""
        store = getattr(self.engine, "map_store", None)
        if store is None:
            return None
        total = store.resolve_hits + store.resolve_misses
        merge_ms = list(store.merge_ms)
        payload: Dict[str, object] = {
            "resolve_hits": store.resolve_hits,
            "resolve_misses": store.resolve_misses,
            "resolve_hit_rate": (store.resolve_hits / total) if total else 0.0,
            "merge_count": len(merge_ms),
            "merge_p50_ms": (float(np.percentile(merge_ms, 50.0))
                             if merge_ms else 0.0),
            "published": store.published,
            "updated": store.updated,
            "version_churn": dict(sorted(store.version_churn.items())),
        }
        # Tiered distribution (ROADMAP item 5, tier plane): the engine's
        # Tier-1 cache posture, its staleness bound, and — on a cluster —
        # the Tier-2 sync byte accounting.
        cache = getattr(self.engine, "map_cache", None)
        if cache is not None:
            payload["tier_cache"] = cache.as_dict()
        payload["staleness_bound"] = int(
            getattr(self.engine, "map_staleness_bound", 0))
        sync = getattr(self.engine, "sync_accounting", None)
        if sync is not None:
            payload["tier_sync"] = sync.as_dict()
        return payload

    def metrics(self) -> Dict[str, object]:
        scaler = getattr(self.engine, "autoscaler", None)
        decisions: List[Dict[str, object]] = []
        if scaler is not None:
            decisions = [
                {"tick": d.tick, "clock": d.clock, "action": d.action,
                 "workers": d.workers_after, "saturated": d.saturated,
                 "reason": d.reason}
                for d in list(scaler.decisions)[-64:]
            ]
        elif self._sharded:
            # One autoscaler per shard: report each shard's recent tail,
            # tagged with its shard index.
            per_shard = max(1, 64 // max(1, self.engine.shard_count))
            for shard, shard_scaler in enumerate(self.engine.autoscalers):
                if shard_scaler is None:
                    continue
                decisions.extend(
                    {"shard": shard, "tick": d.tick, "clock": d.clock,
                     "action": d.action, "workers": d.workers_after,
                     "saturated": d.saturated, "reason": d.reason}
                    for d in list(shard_scaler.decisions)[-per_shard:]
                )
        turnaround = self.turnaround_ms
        percentiles = {
            "p50": float(np.percentile(turnaround, 50.0)) if turnaround else 0.0,
            "p95": float(np.percentile(turnaround, 95.0)) if turnaround else 0.0,
        }
        return {
            "sessions": {
                "created": self.created,
                "completed": self.completed,
                "failed": self.failed,
                "shed": self.admission.shed_count,
                "inflight": self.inflight,
            },
            "admission": self.admission.snapshot(),
            "qos_classes": {
                name: {"deadline_ms": qos.deadline_ms,
                       "sheddable": qos.sheddable}
                for name, qos in self.qos_classes.items()
            },
            "saturated": self._saturated(),
            "slo": self.slo.snapshot(),
            "failure_census": dict(sorted(self.failure_census.items())),
            "cluster": (self.engine.describe() if self._sharded else None),
            "map_service": self._map_service_metrics(),
            "turnaround_ms": percentiles,
            "waves": self.waves[-32:],
            # Monotone across waves thanks to the engine's decision-clock
            # continuity offset — the ordering contract this endpoint needs.
            "scale_decisions": decisions,
        }
