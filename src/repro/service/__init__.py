"""Service front door: the network-shaped boundary over the serving library.

``repro.service`` wraps :class:`~repro.serving.ServingEngine` in an asyncio
HTTP server without moving any serving logic out of the library:

* :mod:`repro.service.qos` — per-tenant QoS classes (``gold`` …
  ``best_effort``) mapped onto :attr:`StreamSpec.deadline_ms` by the
  server; deadlines are service-assigned, never client-quoted.
* :mod:`repro.service.admission` — admit-or-shed verdicts at the door,
  keyed on inflight count and the autoscaler's ``saturated`` signal
  (sustained over-pressure with the pool pinned at ``max_workers``).  A
  shed session never touches the run store or map store.
* :mod:`repro.service.server` — :class:`LocalizationService`: session
  create/feed/result endpoints, health, metrics, and a wave dispatcher
  that serves sealed sessions through the deterministic virtual-clock
  engine on a worker thread.
* :mod:`repro.service.loadgen` — open-loop load generation (Poisson,
  diurnal ramp, flash crowd) measuring shed rate, goodput, and turnaround
  tails under overload.
"""

from repro.service.admission import (
    ADMISSION_POLICIES,
    AdmissionController,
    AdmissionDecision,
)
from repro.service.loadgen import ArrivalProfile, LoadGenerator, LoadReport
from repro.service.qos import DEFAULT_QOS_CLASSES, QoSClass, apply_qos
from repro.service.server import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_PORT,
    LocalizationService,
    MAX_INFLIGHT_ENV,
    PORT_ENV,
    ServiceError,
    SHED_POLICY_ENV,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionController",
    "AdmissionDecision",
    "ArrivalProfile",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_PORT",
    "DEFAULT_QOS_CLASSES",
    "LoadGenerator",
    "LoadReport",
    "LocalizationService",
    "MAX_INFLIGHT_ENV",
    "PORT_ENV",
    "QoSClass",
    "ServiceError",
    "SHED_POLICY_ENV",
    "apply_qos",
]
