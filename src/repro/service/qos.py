"""Per-tenant QoS classes for the service front door.

A QoS class is the service's contract vocabulary: clients name a class
(``gold`` / ``silver`` / ``bronze`` / ``best_effort``) instead of quoting a
raw ``deadline_ms``, and the front door maps the class onto
:attr:`repro.serving.StreamSpec.deadline_ms` before handing the spec to the
engine.  Keeping the deadline server-assigned has two payoffs:

* **Admission control stays honest.**  Shedding decisions are made per
  class (``sheddable``), so a client cannot dodge the shedder by quoting a
  tight deadline on a best-effort stream.
* **The serving cache stays warm across QoS changes.**
  :func:`repro.serving.serving_key` deliberately excludes ``deadline_ms``,
  so re-admitting a stream under a different class re-uses its cached
  result — the class only shapes scheduling, never the trajectory.

The catalog is intentionally small and fixed; services that need custom
tiers construct a :class:`QoSClass` and pass their own catalog to
:class:`~repro.service.server.LocalizationService`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.serving.streams import StreamSpec

__all__ = ["QoSClass", "DEFAULT_QOS_CLASSES", "apply_qos"]


@dataclass(frozen=True)
class QoSClass:
    """One service tier: a name, a serving deadline, and shed eligibility.

    ``deadline_ms=None`` marks best-effort traffic — the autoscaler ignores
    it when computing deadline pressure and it can never count as a miss.
    ``sheddable=False`` marks protected traffic the admission controller
    keeps admitting even while the pool is saturated (it sheds sheddable
    classes first and only refuses protected sessions at the hard inflight
    cap).
    """

    name: str
    deadline_ms: Optional[float]
    sheddable: bool = True


#: The default tier catalog.  Gold is the protected tier: tight deadline,
#: never shed on saturation.  Bronze and best-effort absorb overload first.
DEFAULT_QOS_CLASSES: Dict[str, QoSClass] = {
    qos.name: qos
    for qos in (
        QoSClass("gold", deadline_ms=200.0, sheddable=False),
        QoSClass("silver", deadline_ms=400.0),
        QoSClass("bronze", deadline_ms=800.0),
        QoSClass("best_effort", deadline_ms=None),
    )
}


def apply_qos(spec: StreamSpec, qos: QoSClass) -> StreamSpec:
    """Stamp a class's deadline onto a spec.

    The spec is the client's stream description; the deadline is the
    service's scheduling promise — the two meet here and nowhere else.
    """
    return replace(spec, deadline_ms=qos.deadline_ms)
