"""Baseline platform specifications.

Each platform is described by a speed factor relative to the paper's primary
baseline (four-core Intel Kaby Lake, multi-core + SIMD, without ROS) and by
fixed per-frame overheads.  The factors are calibrated so the Table III
speedups of EDX-CAR over each platform are reproduced:

==============================  =================
Baseline                        EDX-CAR speedup
==============================  =================
Single-core w/ ROS              3.5x
Single-core w/o ROS             3.3x
Multi-core w/ ROS               2.2x
Multi-core w/o ROS (baseline)   2.1x
Adreno 530 GPU + CPU            4.4x
Hexagon 680 DSP + CPU           2.5x
Maxwell mobile GPU + CPU        2.5x
==============================  =================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PlatformSpec:
    """A general-purpose compute platform running the localization software."""

    name: str
    # Multiplier on every compute kernel relative to the Kaby Lake multi-core
    # baseline (larger = slower platform).
    speed_factor: float
    # Fixed per-frame overhead in milliseconds (e.g. ROS message passing,
    # GPU kernel launch and setup).
    fixed_overhead_ms: float = 0.0
    # Average power draw in watts while running localization (used by the
    # energy model, Fig. 19).
    power_watts: float = 16.0
    description: str = ""


# The paper's primary baseline: localization on a four-core Kaby Lake with
# multi-threading and SIMD, without ROS (Sec. VII-A / Table III).
KABY_LAKE_MULTI = PlatformSpec(
    name="multi-core w/o ROS",
    speed_factor=1.0,
    fixed_overhead_ms=0.0,
    power_watts=16.3,
    description="Four-core Intel Kaby Lake, multi-threaded + SIMD (paper baseline)",
)

# ROS adds messaging/serialization overhead of a few percent (Sec. IV-A says
# removing ROS made the framework ~4% faster) plus scheduling jitter.
KABY_LAKE_MULTI_ROS = PlatformSpec(
    name="multi-core w/ ROS",
    speed_factor=1.04,
    fixed_overhead_ms=1.0,
    power_watts=16.8,
    description="Paper baseline plus ROS runtime overheads",
)

KABY_LAKE_SINGLE = PlatformSpec(
    name="single-core w/o ROS",
    speed_factor=1.57,
    fixed_overhead_ms=0.0,
    power_watts=12.0,
    description="Single Kaby Lake core, SIMD only",
)

KABY_LAKE_SINGLE_ROS = PlatformSpec(
    name="single-core w/ ROS",
    speed_factor=1.63,
    fixed_overhead_ms=1.5,
    power_watts=12.5,
    description="Single core plus ROS runtime overheads",
)

# The drone baseline: quad-core ARM Cortex-A57 on the NVIDIA TX1 module.
ARM_A57_MULTI = PlatformSpec(
    name="arm-a57 multi-core",
    speed_factor=2.3,
    fixed_overhead_ms=0.0,
    power_watts=7.5,
    description="Quad-core ARM Cortex-A57 (TX1), multi-threaded + NEON",
)

# GPU/DSP offload baselines of Table III.  GPUs lose on kernel launch/setup
# time (about 40 ms per frame on Adreno, no batching) and on sparse matrices.
ADRENO_GPU = PlatformSpec(
    name="adreno-530 gpu + cpu",
    speed_factor=1.55,
    fixed_overhead_ms=40.0,
    power_watts=11.0,
    description="Adreno 530 mobile GPU offload with CPU fallback",
)

HEXAGON_DSP = PlatformSpec(
    name="hexagon-680 dsp + cpu",
    speed_factor=1.15,
    fixed_overhead_ms=8.0,
    power_watts=9.0,
    description="Hexagon 680 DSP offload with CPU fallback",
)

MAXWELL_GPU = PlatformSpec(
    name="maxwell gpu + cpu",
    speed_factor=1.12,
    fixed_overhead_ms=10.0,
    power_watts=14.0,
    description="Maxwell mobile GPU offload with CPU fallback",
)

TABLE_III_PLATFORMS: Dict[str, PlatformSpec] = {
    "single_core_ros": KABY_LAKE_SINGLE_ROS,
    "single_core": KABY_LAKE_SINGLE,
    "multi_core_ros": KABY_LAKE_MULTI_ROS,
    "multi_core": KABY_LAKE_MULTI,
    "adreno_gpu": ADRENO_GPU,
    "hexagon_dsp": HEXAGON_DSP,
    "maxwell_gpu": MAXWELL_GPU,
}
