"""Workload-driven CPU latency model.

Our algorithms run as Python reference implementations, so their wall-clock
times are not representative of the optimized C++ stacks the paper measures.
Instead, the characterization pipeline records *workloads* — image sizes,
keypoint counts, matrix dimensions — for every frame, and this model converts
them to milliseconds on a given :class:`PlatformSpec` using per-operation
costs calibrated so that the paper's typical magnitudes are reproduced
(frontend around 90 ms at 1280x720 on the Kaby Lake baseline, VIO backend
around 20 ms, SLAM backend the heaviest and most variable).

Because the costs are driven by the per-frame workload, the latency
*variation* of Figs. 9-11 emerges from the same source it does in the real
system: frames with more features, larger Jacobians or bigger marginalization
problems take proportionally longer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.backend.mapping import SlamWorkload
from repro.backend.msckf import VioWorkload
from repro.backend.tracking import RegistrationWorkload
from repro.baselines.platforms import KABY_LAKE_MULTI, PlatformSpec
from repro.common.timing import LatencyRecord
from repro.frontend.frontend import FrontendWorkload


@dataclass
class FrontendCostModel:
    """Per-operation costs (milliseconds) of the vision frontend on the baseline CPU."""

    # Feature extraction: per-pixel filtering/detection cost and per-keypoint
    # descriptor cost, applied to both images of the stereo pair.
    ms_per_pixel: float = 3.6e-5
    ms_per_descriptor: float = 0.02
    # Stereo matching: descriptor comparison cost per candidate pair and
    # block-matching refinement cost per accepted match.
    ms_per_stereo_candidate: float = 1.0e-4
    ms_per_stereo_match: float = 0.05
    # Temporal matching: per tracked point (derivatives + iterative solve).
    ms_per_tracked_point: float = 0.045

    def kernel_ms(self, workload: FrontendWorkload) -> Dict[str, float]:
        feature_extraction = (
            2.0 * workload.image_pixels * self.ms_per_pixel
            + workload.descriptors_computed * self.ms_per_descriptor
        )
        stereo = (
            workload.keypoints_left * max(workload.keypoints_right, 1) * self.ms_per_stereo_candidate
            + workload.stereo_matches * self.ms_per_stereo_match
        )
        temporal = workload.tracked_points * self.ms_per_tracked_point
        return {
            "feature_extraction": feature_extraction,
            "stereo_matching": stereo,
            "temporal_matching": temporal,
        }

    def total_ms(self, workload: FrontendWorkload) -> float:
        return float(sum(self.kernel_ms(workload).values()))


@dataclass
class BackendCostModel:
    """Per-operation costs (milliseconds) of the three backend modes."""

    # Registration mode (Fig. 6): projection scales linearly with map points
    # (Fig. 16a); matching and pose optimization scale with correspondences.
    registration_ms_per_map_point: float = 0.055
    registration_ms_per_match: float = 0.03
    registration_ms_per_pose_iteration: float = 0.9
    registration_update_ms_per_match: float = 0.045

    # VIO mode (Fig. 7): the Kalman gain scales quadratically with the size of
    # the innovation system (which grows with the feature points used in the
    # update, Fig. 16b); the Jacobian, covariance and QR costs scale with the
    # stacked rows and the state size.
    vio_ms_per_imu_sample: float = 0.12
    vio_ms_per_jacobian_row: float = 0.02
    vio_kalman_quadratic: float = 3.2e-4
    vio_kalman_linear: float = 0.012
    vio_ms_per_qr_row: float = 0.012
    vio_covariance_ms_per_dim: float = 0.012
    vio_fusion_ms: float = 0.6

    # SLAM mode (Fig. 8): the solver scales with LM iterations times the
    # reduced Hessian dimension; marginalization scales quadratically with the
    # feature points of the departing keyframe (Fig. 16c).
    slam_solver_ms_per_iteration_dim: float = 0.045
    slam_solver_ms_per_observation: float = 0.035
    slam_marginalization_quadratic: float = 2.4e-3
    slam_marginalization_linear: float = 0.06
    slam_others_ms_per_observation: float = 0.03
    slam_init_ms: float = 1.5

    # ------------------------------------------------------------- per mode

    def registration_ms(self, workload: RegistrationWorkload) -> Dict[str, float]:
        return {
            "projection": workload.projection_points * self.registration_ms_per_map_point,
            "match": workload.matches * self.registration_ms_per_match,
            "pose_optimization": workload.pose_iterations * self.registration_ms_per_pose_iteration,
            "update": workload.matches * self.registration_update_ms_per_match,
        }

    def vio_ms(self, workload: VioWorkload) -> Dict[str, float]:
        innovation_dim = max(workload.kalman_gain_dim, 3 * workload.features_used)
        return {
            "imu_processing": workload.imu_samples * self.vio_ms_per_imu_sample,
            "jacobian": workload.jacobian_rows * self.vio_ms_per_jacobian_row,
            "covariance": workload.state_dim * self.vio_covariance_ms_per_dim,
            "kalman_gain": self.vio_kalman_quadratic * innovation_dim**2
            + self.vio_kalman_linear * workload.state_dim,
            "qr": workload.qr_rows * self.vio_ms_per_qr_row,
            "fusion": self.vio_fusion_ms,
        }

    def slam_ms(self, workload: SlamWorkload) -> Dict[str, float]:
        solver = (
            workload.solver_iterations * workload.keyframes * 6 * self.slam_solver_ms_per_iteration_dim
            + workload.observations * self.slam_solver_ms_per_observation
        )
        marginalization = 0.0
        if workload.marginalized_dim > 0:
            marginalization = (
                self.slam_marginalization_quadratic * workload.feature_points**2
                + self.slam_marginalization_linear * workload.marginalized_dim
            )
        others = self.slam_init_ms + workload.observations * self.slam_others_ms_per_observation
        return {
            "solver": solver,
            "marginalization": marginalization,
            "others": others,
        }

    def kernel_ms(self, mode: str, workload) -> Dict[str, float]:
        if mode == "registration":
            return self.registration_ms(workload)
        if mode == "vio":
            return self.vio_ms(workload)
        if mode == "slam":
            return self.slam_ms(workload)
        raise ValueError(f"unknown backend mode: {mode}")


@dataclass
class CpuLatencyModel:
    """Combines the frontend and backend cost models for one platform."""

    platform: PlatformSpec = field(default_factory=lambda: KABY_LAKE_MULTI)
    frontend: FrontendCostModel = field(default_factory=FrontendCostModel)
    backend: BackendCostModel = field(default_factory=BackendCostModel)

    def frame_record(self, frame_index: int, mode: str,
                     frontend_workload: FrontendWorkload, backend_workload) -> LatencyRecord:
        """Build a platform-latency record for one frame."""
        record = LatencyRecord(frame_index=frame_index, mode=mode)
        factor = self.platform.speed_factor
        for name, value in self.frontend.kernel_ms(frontend_workload).items():
            record.add_frontend(name, value * factor)
        for name, value in self.backend.kernel_ms(mode, backend_workload).items():
            record.add_backend(name, value * factor)
        if self.platform.fixed_overhead_ms > 0:
            record.add_backend("platform_overhead", self.platform.fixed_overhead_ms)
        return record

    def records_from_results(self, trajectory_result) -> list:
        """Latency records for every frame of a :class:`TrajectoryResult`."""
        records = []
        for frontend_result, backend_result in zip(
            trajectory_result.frontend_results, trajectory_result.backend_results
        ):
            records.append(
                self.frame_record(
                    frontend_result.frame_index,
                    backend_result.mode,
                    frontend_result.workload,
                    backend_result.workload,
                )
            )
        return records

    def energy_per_frame_joules(self, record: LatencyRecord) -> float:
        """Energy spent on this frame: average power times frame latency."""
        return self.platform.power_watts * record.total / 1000.0
