"""CPU/GPU/DSP baseline platform cost models.

The paper's baselines are optimized multi-core CPU implementations (Intel
Kaby Lake for the car, ARM Cortex-A57 for the drone), plus single-core,
ROS-overhead, GPU and DSP variants in Table III.  Since we cannot run those
platforms, the models here translate per-frame frontend/backend workloads
into milliseconds using calibrated per-operation costs, preserving the
paper's latency distribution (Fig. 5-11) and relative platform ordering
(Table III).
"""

from repro.baselines.platforms import (
    PlatformSpec,
    KABY_LAKE_MULTI,
    KABY_LAKE_MULTI_ROS,
    KABY_LAKE_SINGLE,
    KABY_LAKE_SINGLE_ROS,
    ARM_A57_MULTI,
    ADRENO_GPU,
    HEXAGON_DSP,
    MAXWELL_GPU,
    TABLE_III_PLATFORMS,
)
from repro.baselines.cpu import BackendCostModel, CpuLatencyModel, FrontendCostModel

__all__ = [
    "PlatformSpec",
    "KABY_LAKE_MULTI",
    "KABY_LAKE_MULTI_ROS",
    "KABY_LAKE_SINGLE",
    "KABY_LAKE_SINGLE_ROS",
    "ARM_A57_MULTI",
    "ADRENO_GPU",
    "HEXAGON_DSP",
    "MAXWELL_GPU",
    "TABLE_III_PLATFORMS",
    "FrontendCostModel",
    "BackendCostModel",
    "CpuLatencyModel",
]
