"""Eudoxus reproduction: unified localization framework and accelerator model.

The package reproduces the system described in "Eudoxus: Characterizing and
Accelerating Localization in Autonomous Machines" (HPCA 2021):

* ``repro.common``, ``repro.sensors`` — geometry, camera and sensor-simulation
  substrates replacing the paper's proprietary datasets.
* ``repro.frontend`` — the shared vision frontend (FAST, ORB, stereo matching,
  Lucas-Kanade tracking).
* ``repro.backend`` — the three backend modes (registration, MSCKF VIO with
  GPS fusion, bundle-adjustment SLAM) and their matrix kernels.
* ``repro.core`` — the unified localization framework that fuses the three.
* ``repro.linalg`` — the five matrix building blocks of Table I.
* ``repro.hardware`` — the FPGA accelerator model (EDX-CAR / EDX-DRONE).
* ``repro.scheduler`` — the runtime offload scheduler.
* ``repro.baselines``, ``repro.characterization``, ``repro.metrics``,
  ``repro.experiments`` — CPU/GPU cost models, latency characterization and
  the per-figure experiment drivers.
* ``repro.serving`` — the streaming multi-session serving layer: scenario
  streams, per-client sessions with online mode switching, and the fleet
  engine that shards sessions over the shared worker pool.
"""

__version__ = "1.0.0"

from repro.common.config import LocalizerConfig
from repro.core.framework import EudoxusLocalizer
from repro.core.modes import BackendMode

__all__ = ["LocalizerConfig", "EudoxusLocalizer", "BackendMode", "__version__"]
