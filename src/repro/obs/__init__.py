"""Observability plane: tracing, metrics, SLOs, triage, forensics.

Cooperating pieces, all inert until opted into:

* :mod:`repro.obs.trace` — bounded-ring span tracing on the engine's
  virtual clock (deterministic, pinned by tests) and wall clock (front
  door, map service), exportable as Chrome/Perfetto trace JSON.
* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms with
  Prometheus text exposition, bound into the engine, autoscaler, stores,
  admission controller and service front door.
* :mod:`repro.obs.profile` — env-gated hot-kernel profiling hooks.
* :mod:`repro.obs.slo` — per-QoS deadline objectives and multi-window
  burn rates, on the virtual clock in the engine and the wall clock at
  the front door.
* :mod:`repro.obs.triage` — failure-signature classification of every
  finished session (``ok``/``divergence``/``deadline_miss``/...).
* :mod:`repro.obs.recorder` — content-addressed forensic bundles
  captured on deterministic failure triggers.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.profile import (
    disable_kernel_tracing,
    enable_kernel_tracing,
    kernel_tracer,
    kernel_tracing_enabled,
    profile_kernel,
)
from repro.obs.recorder import (
    FlightRecorder,
    MAX_BUNDLES_ENV,
    RECORDER_ENV,
    bundle_digest,
    load_bundle,
    recorder_enabled,
    recorder_from_env,
)
from repro.obs.slo import (
    DEFAULT_SLO_TARGETS,
    SLOTarget,
    SLOTracker,
)
from repro.obs.trace import (
    CLOCK_DOMAINS,
    DEFAULT_TRACE_CAPACITY,
    SpanEvent,
    TRACE_CAPACITY_ENV,
    TRACE_ENV,
    TRACE_KERNELS_ENV,
    Tracer,
    quantize_us,
    trace_capacity,
    tracer_from_env,
    tracing_enabled,
)
from repro.obs.triage import (
    SIGNATURES,
    SIG_DEADLINE_MISS,
    SIG_DIVERGENCE,
    SIG_MAP_STALE_THRASH,
    SIG_OK,
    SIG_SHED,
    SIG_WRONG_WINNER,
    classify_session,
    signature_census,
)

__all__ = [
    "CLOCK_DOMAINS",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_SLO_TARGETS",
    "DEFAULT_TRACE_CAPACITY",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MAX_BUNDLES_ENV",
    "MetricsRegistry",
    "RECORDER_ENV",
    "SIGNATURES",
    "SIG_DEADLINE_MISS",
    "SIG_DIVERGENCE",
    "SIG_MAP_STALE_THRASH",
    "SIG_OK",
    "SIG_SHED",
    "SIG_WRONG_WINNER",
    "SLOTarget",
    "SLOTracker",
    "SpanEvent",
    "TRACE_CAPACITY_ENV",
    "TRACE_ENV",
    "TRACE_KERNELS_ENV",
    "Tracer",
    "bundle_digest",
    "classify_session",
    "disable_kernel_tracing",
    "enable_kernel_tracing",
    "kernel_tracer",
    "kernel_tracing_enabled",
    "load_bundle",
    "parse_prometheus",
    "profile_kernel",
    "quantize_us",
    "recorder_enabled",
    "recorder_from_env",
    "signature_census",
    "trace_capacity",
    "tracer_from_env",
    "tracing_enabled",
]
