"""Observability plane: deterministic tracing + unified metrics.

Three cooperating pieces, all inert until opted into:

* :mod:`repro.obs.trace` — bounded-ring span tracing on the engine's
  virtual clock (deterministic, pinned by tests) and wall clock (front
  door, map service), exportable as Chrome/Perfetto trace JSON.
* :mod:`repro.obs.metrics` — labeled counters/gauges/histograms with
  Prometheus text exposition, bound into the engine, autoscaler, stores,
  admission controller and service front door.
* :mod:`repro.obs.profile` — env-gated hot-kernel profiling hooks.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.profile import (
    disable_kernel_tracing,
    enable_kernel_tracing,
    kernel_tracer,
    kernel_tracing_enabled,
    profile_kernel,
)
from repro.obs.trace import (
    CLOCK_DOMAINS,
    DEFAULT_TRACE_CAPACITY,
    SpanEvent,
    TRACE_CAPACITY_ENV,
    TRACE_ENV,
    TRACE_KERNELS_ENV,
    Tracer,
    quantize_us,
    trace_capacity,
    tracer_from_env,
    tracing_enabled,
)

__all__ = [
    "CLOCK_DOMAINS",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_TRACE_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanEvent",
    "TRACE_CAPACITY_ENV",
    "TRACE_ENV",
    "TRACE_KERNELS_ENV",
    "Tracer",
    "disable_kernel_tracing",
    "enable_kernel_tracing",
    "kernel_tracer",
    "kernel_tracing_enabled",
    "parse_prometheus",
    "profile_kernel",
    "quantize_us",
    "trace_capacity",
    "tracer_from_env",
    "tracing_enabled",
]
