"""SLO plane: per-QoS deadline objectives and multi-window burn rates.

An :class:`SLOTarget` states, per QoS class, what fraction of deadlined
requests must meet their deadline (the *objective*); the complement is the
error budget.  An :class:`SLOTracker` consumes hit/miss events stamped on
an explicit clock and reports Google-SRE-style **multi-window burn rates**:
the observed miss rate divided by the error budget, evaluated over a fast
and a slow window ending at the latest recorded clock.  A *fast burn* —
both windows burning above the threshold at once — is the page-worthy
signal (and one of the flight recorder's capture triggers).

The tracker is clock-agnostic on purpose, because the stack runs two clock
domains (see :mod:`repro.obs.trace`):

* the serving engine records **per-frame** outcomes on its deterministic
  virtual clock inside the streaming loop, so burn rates within a serve
  call are a pure function of the fleet;
* the service front door records **per-session** outcomes on the wall
  clock as waves finish, which is the operator-facing view.

Both roll up per tenant (QoS class) and — when the caller stamps events
with a shard id — per shard.  Like every obs component the tracker only
ever collects: nothing in the serving stack reads it mid-flight, so the
enabled path cannot perturb poses, signatures or cache keys, and the
disabled path is a ``slo is None`` check.

Env knobs (defaults in parentheses):

* ``EUDOXUS_SLO_FAST_WINDOW_S`` — fast burn window, seconds (60).
* ``EUDOXUS_SLO_SLOW_WINDOW_S`` — slow burn window, seconds (600).
* ``EUDOXUS_SLO_FAST_BURN`` — burn-rate threshold both windows must
  exceed for a fast burn (8.0).
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_FAST_BURN_THRESHOLD",
    "DEFAULT_FAST_WINDOW_S",
    "DEFAULT_SLOW_WINDOW_S",
    "DEFAULT_SLO_TARGETS",
    "FAST_BURN_ENV",
    "FAST_WINDOW_ENV",
    "SLOTarget",
    "SLOTracker",
    "SLOW_WINDOW_ENV",
]

FAST_WINDOW_ENV = "EUDOXUS_SLO_FAST_WINDOW_S"
SLOW_WINDOW_ENV = "EUDOXUS_SLO_SLOW_WINDOW_S"
FAST_BURN_ENV = "EUDOXUS_SLO_FAST_BURN"

DEFAULT_FAST_WINDOW_S = 60.0
DEFAULT_SLOW_WINDOW_S = 600.0
DEFAULT_FAST_BURN_THRESHOLD = 8.0

#: Events retained per (shard, tenant) rollup — enough to cover both
#: windows at serving rates, bounded so a long-lived tracker cannot grow.
EVENT_CAPACITY = 4096


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    try:
        return float(raw) if raw else default
    except ValueError:
        return default


@dataclass(frozen=True)
class SLOTarget:
    """One QoS class's deadline-hit-rate objective.

    ``objective`` is the required hit fraction (0.995 = "99.5 % of
    deadlined requests meet their deadline"); ``deadline_ms`` mirrors the
    class's deadline from the service QoS catalog so the engine — which
    only sees ``StreamSpec.deadline_ms``, never a class name — can map a
    deadline back to its tenant.  Classes without a deadline (best-effort)
    simply have no target: they are exempt, not failing.
    """

    name: str
    objective: float
    deadline_ms: float

    @property
    def error_budget(self) -> float:
        """The tolerated miss fraction (floored so burn math never divides
        by zero on a 100 % objective)."""
        return max(1e-9, 1.0 - self.objective)


#: Default objectives for the service QoS catalog's deadlined tiers
#: (``repro.service.qos.DEFAULT_QOS_CLASSES``): gold 99.5, silver 99,
#: bronze 95.  ``best_effort`` carries no deadline and therefore no target.
DEFAULT_SLO_TARGETS: Dict[str, SLOTarget] = {
    "gold": SLOTarget("gold", objective=0.995, deadline_ms=200.0),
    "silver": SLOTarget("silver", objective=0.99, deadline_ms=400.0),
    "bronze": SLOTarget("bronze", objective=0.95, deadline_ms=800.0),
}

_RollupKey = Tuple[Optional[int], str]  # (shard or None, tenant)


class SLOTracker:
    """Burn-rate accounting over explicit-clock hit/miss events.

    ``domain`` is a label only ("virtual" for the engine, "wall" for the
    front door): it keeps the two trackers' metric children distinct when
    both bind into one registry, and documents which clock the caller
    stamps events with.  The tracker itself never reads a clock — *now* is
    always the latest clock it has been handed, so burn rates inside a
    serve call are deterministic.
    """

    def __init__(self, targets: Optional[Dict[str, SLOTarget]] = None,
                 domain: str = "virtual",
                 fast_window_s: Optional[float] = None,
                 slow_window_s: Optional[float] = None,
                 fast_burn_threshold: Optional[float] = None,
                 capacity: int = EVENT_CAPACITY) -> None:
        self.targets = dict(DEFAULT_SLO_TARGETS if targets is None else targets)
        self.domain = domain
        self.fast_window_s = (fast_window_s if fast_window_s is not None
                              else _env_float(FAST_WINDOW_ENV,
                                              DEFAULT_FAST_WINDOW_S))
        self.slow_window_s = (slow_window_s if slow_window_s is not None
                              else _env_float(SLOW_WINDOW_ENV,
                                              DEFAULT_SLOW_WINDOW_S))
        self.fast_burn_threshold = (
            fast_burn_threshold if fast_burn_threshold is not None
            else _env_float(FAST_BURN_ENV, DEFAULT_FAST_BURN_THRESHOLD))
        self.capacity = max(1, int(capacity))
        self._events: Dict[_RollupKey, Deque[Tuple[float, bool]]] = {}
        self._totals: Dict[_RollupKey, List[int]] = {}  # [hits, misses]
        self.latest_clock = 0.0
        self._bound_registries: List[int] = []

    # ------------------------------------------------------------- recording

    def tenant_for_deadline(self, deadline_ms: Optional[float]) -> Optional[str]:
        """Map a per-stream deadline back to its QoS tenant (None = exempt)."""
        if deadline_ms is None:
            return None
        for target in self.targets.values():
            if target.deadline_ms == float(deadline_ms):
                return target.name
        return None

    def record(self, tenant: str, clock: float, ok: bool,
               shard: Optional[int] = None) -> None:
        """Record one deadlined request outcome at ``clock``.

        Unknown tenants are dropped (no target, no budget to burn); a
        ``shard`` stamps the event into that shard's rollup as well as the
        overall per-tenant view.
        """
        if tenant not in self.targets:
            return
        clock = float(clock)
        keys: Tuple[_RollupKey, ...] = ((None, tenant),)
        if shard is not None:
            keys += ((int(shard), tenant),)
        for key in keys:
            events = self._events.get(key)
            if events is None:
                events = deque(maxlen=self.capacity)
                self._events[key] = events
                self._totals[key] = [0, 0]
            events.append((clock, bool(ok)))
            self._totals[key][0 if ok else 1] += 1
        if clock > self.latest_clock:
            self.latest_clock = clock

    # -------------------------------------------------------------- querying

    def shards(self) -> List[int]:
        """Shard ids any event was stamped with, sorted."""
        return sorted({shard for shard, _ in self._events if shard is not None})

    def totals(self, tenant: str, shard: Optional[int] = None) -> Tuple[int, int]:
        """Cumulative (hits, misses) for one tenant rollup."""
        hits, misses = self._totals.get((shard, tenant), (0, 0))
        return hits, misses

    def burn_rate(self, tenant: str, window_s: float,
                  now: Optional[float] = None,
                  shard: Optional[int] = None) -> float:
        """Miss rate over the window ending at ``now``, over the budget.

        1.0 means the tenant is consuming budget exactly at the sustainable
        rate; an idle window burns nothing.
        """
        target = self.targets.get(tenant)
        if target is None:
            return 0.0
        now = self.latest_clock if now is None else float(now)
        horizon = now - float(window_s)
        total = misses = 0
        for clock, ok in self._events.get((shard, tenant), ()):
            if horizon < clock <= now:
                total += 1
                if not ok:
                    misses += 1
        if total == 0:
            return 0.0
        return (misses / total) / target.error_budget

    def burn_rates(self, now: Optional[float] = None,
                   shard: Optional[int] = None) -> Dict[str, Dict[str, float]]:
        """Fast/slow burn rates for every tenant with recorded traffic."""
        tenants = sorted({tenant for key_shard, tenant in self._events
                          if key_shard == shard})
        return {
            tenant: {
                "fast": self.burn_rate(tenant, self.fast_window_s, now, shard),
                "slow": self.burn_rate(tenant, self.slow_window_s, now, shard),
            }
            for tenant in tenants
        }

    def fast_burns(self, now: Optional[float] = None,
                   shard: Optional[int] = None) -> List[str]:
        """Tenants burning above threshold in *both* windows (page signal).

        The multi-window AND is the SRE guard against paging on a blip:
        the fast window proves the problem is current, the slow window
        proves it is material to the budget.
        """
        burning = []
        for tenant, rates in self.burn_rates(now, shard).items():
            if (rates["fast"] >= self.fast_burn_threshold
                    and rates["slow"] >= self.fast_burn_threshold):
                burning.append(tenant)
        return burning

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        """A JSON-ready rollup (the ``/v1/slo`` endpoint's building block)."""
        tenants: Dict[str, object] = {}
        for name in sorted(self.targets):
            target = self.targets[name]
            hits, misses = self.totals(name)
            rates = {
                "fast": self.burn_rate(name, self.fast_window_s, now),
                "slow": self.burn_rate(name, self.slow_window_s, now),
            }
            tenants[name] = {
                "objective": target.objective,
                "deadline_ms": target.deadline_ms,
                "hits": hits,
                "misses": misses,
                "burn": rates,
                "fast_burn": (rates["fast"] >= self.fast_burn_threshold
                              and rates["slow"] >= self.fast_burn_threshold),
            }
        shards = {
            str(shard): {
                "burn": self.burn_rates(now, shard),
                "fast_burn": self.fast_burns(now, shard),
            }
            for shard in self.shards()
        }
        return {
            "domain": self.domain,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "fast_burn_threshold": self.fast_burn_threshold,
            "tenants": tenants,
            "fast_burn": self.fast_burns(now),
            "shards": shards,
        }

    # --------------------------------------------------------------- metrics

    def bind_metrics(self, registry) -> None:
        """Register ``eudoxus_slo_*`` families, refreshed at render time.

        Everything is collector-driven (set from live tracker state before
        each render) rather than incremented inline, so binding changes
        nothing about how events are recorded.  The ``domain`` label keeps
        the engine's virtual-clock tracker and the front door's wall-clock
        tracker from colliding in a shared registry.
        """
        if any(bound is id(registry) or bound == id(registry)
               for bound in self._bound_registries):
            return
        self._bound_registries.append(id(registry))
        requests = registry.counter(
            "eudoxus_slo_requests_total",
            "Deadlined requests by SLO tenant and outcome.",
            ["domain", "tenant", "outcome"])
        objective = registry.gauge(
            "eudoxus_slo_objective",
            "Deadline-hit-rate objective per SLO tenant.",
            ["domain", "tenant"])
        burn = registry.gauge(
            "eudoxus_slo_burn_rate",
            "Error-budget burn rate per SLO tenant and window.",
            ["domain", "tenant", "window"])
        fast_burn = registry.gauge(
            "eudoxus_slo_fast_burn",
            "1 when a tenant burns above threshold in both windows.",
            ["domain", "tenant"])
        shard_burn = registry.gauge(
            "eudoxus_slo_shard_burn_rate",
            "Error-budget burn rate per shard, tenant and window.",
            ["domain", "shard", "tenant", "window"])

        def collect(_registry, tracker=self) -> None:
            burning = set(tracker.fast_burns())
            for name in sorted(tracker.targets):
                target = tracker.targets[name]
                hits, misses = tracker.totals(name)
                labels = {"domain": tracker.domain, "tenant": name}
                requests.labels(outcome="hit", **labels).value = float(hits)
                requests.labels(outcome="miss", **labels).value = float(misses)
                objective.set(target.objective, **labels)
                burn.set(tracker.burn_rate(name, tracker.fast_window_s),
                         window="fast", **labels)
                burn.set(tracker.burn_rate(name, tracker.slow_window_s),
                         window="slow", **labels)
                fast_burn.set(1.0 if name in burning else 0.0, **labels)
            for shard in tracker.shards():
                for tenant, rates in tracker.burn_rates(shard=shard).items():
                    for window, rate in sorted(rates.items()):
                        shard_burn.set(rate, domain=tracker.domain,
                                       shard=str(shard), tenant=tenant,
                                       window=window)

        registry.register_collector(collect)
