"""Unified metrics plane: labeled counters/gauges/histograms.

One process-local :class:`MetricsRegistry` is shared by every subsystem
that opts in (`ServingEngine`, `LatencyAutoscaler`, `MapStore`, `RunStore`,
`AdmissionController`, the service front door) via their ``bind_metrics``
methods.  The registry renders two ways:

* :meth:`MetricsRegistry.as_dict` — nested JSON for the existing
  ``/v1/metrics`` endpoint;
* :meth:`MetricsRegistry.render_prometheus` — Prometheus text exposition
  format 0.0.4 for ``/v1/metrics?format=prometheus``.

Design constraints, in order:

1. **Inert when absent.**  Components hold ``self.metrics = None`` until
   bound; every instrumentation site is guarded by that None check, so the
   unbound path costs one attribute load + branch.
2. **Idempotent family creation.**  ``counter()/gauge()/histogram()``
   return the existing family when the name is already registered (and
   raise only on a *conflicting* re-registration), so rebinding a
   component — or binding two components that share a family — is safe.
3. **Deterministic rendering.**  Families and children render in sorted
   order, so two registries fed the same events produce byte-identical
   exposition text.

Collectors (:meth:`MetricsRegistry.register_collector`) let components
export point-in-time state (queue depths, hit rates, worker counts)
without keeping a gauge in sync on every mutation: the callback runs once
per render and sets gauges from live state.

:func:`parse_prometheus` is the matching parser — enough of the text
format to round-trip what this module emits; the exposition tests and the
CI obs-smoke step use it instead of eyeballing substrings.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus",
]

#: Default histogram buckets (milliseconds-flavoured: serving latencies and
#: merge times both land comfortably inside this range).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
    2500.0, 5000.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _label_suffix(labels: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"'
                    for name, value in pairs)
    return "{" + body + "}"


class _Family:
    """Base: one metric name + help text, fanned out over label values."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str]) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._children: Dict[_LabelKey, object] = {}
        self._lock = threading.Lock()

    def _child_key(self, labels: Dict[str, str]) -> _LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple((name, str(labels[name])) for name in self.labelnames)

    def labels(self, **labels: str):
        key = self._child_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def signature(self) -> Tuple[str, str, Tuple[str, ...]]:
        return (self.kind, self.help_text, self.labelnames)

    def _sorted_children(self) -> List[Tuple[_LabelKey, object]]:
        return sorted(self._children.items())


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Counter(_Family):
    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: str) -> float:
        return self.labels(**labels).value

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {_escape_help(self.help_text)}",
                 f"# TYPE {self.name} {self.kind}"]
        for key, child in self._sorted_children():
            lines.append(f"{self.name}{_label_suffix(key)} "
                         f"{_format_value(child.value)}")
        return lines

    def as_dict(self) -> Dict[str, float]:
        return {_label_suffix(key) or "": child.value
                for key, child in self._sorted_children()}


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Gauge(_Family):
    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels: str) -> None:
        self.labels(**labels).set(value)

    def value(self, **labels: str) -> float:
        return self.labels(**labels).value

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {_escape_help(self.help_text)}",
                 f"# TYPE {self.name} {self.kind}"]
        for key, child in self._sorted_children():
            lines.append(f"{self.name}{_label_suffix(key)} "
                         f"{_format_value(child.value)}")
        return lines

    def as_dict(self) -> Dict[str, float]:
        return {_label_suffix(key) or "": child.value
                for key, child in self._sorted_children()}


class _HistogramChild:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.bucket_counts = [0] * (len(buckets) + 1)  # last = +Inf
        self.total = 0.0
        self.count = 0


class Histogram(_Family):
    kind = "histogram"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str],
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, labelnames)
        cleaned = tuple(sorted(float(b) for b in buckets))
        if not cleaned:
            raise ValueError("histogram needs at least one bucket")
        if any(b <= a for a, b in zip(cleaned, cleaned[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = cleaned

    def signature(self) -> Tuple[str, str, Tuple[str, ...], Tuple[float, ...]]:
        return (self.kind, self.help_text, self.labelnames, self.buckets)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels: str) -> None:
        child = self.labels(**labels)
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        child.bucket_counts[index] += 1
        child.total += value
        child.count += 1

    def child_snapshot(self, **labels: str) -> Dict[str, object]:
        child = self.labels(**labels)
        cumulative, out = 0, {}
        for bound, bucket in zip(self.buckets, child.bucket_counts):
            cumulative += bucket
            out[_format_value(bound)] = cumulative
        out["+Inf"] = cumulative + child.bucket_counts[-1]
        return {"buckets": out, "sum": child.total, "count": child.count}

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {_escape_help(self.help_text)}",
                 f"# TYPE {self.name} {self.kind}"]
        for key, child in self._sorted_children():
            cumulative = 0
            for bound, bucket in zip(self.buckets, child.bucket_counts):
                cumulative += bucket
                suffix = _label_suffix(key, [("le", _format_value(bound))])
                lines.append(f"{self.name}_bucket{suffix} {cumulative}")
            cumulative += child.bucket_counts[-1]
            suffix = _label_suffix(key, [("le", "+Inf")])
            lines.append(f"{self.name}_bucket{suffix} {cumulative}")
            lines.append(f"{self.name}_sum{_label_suffix(key)} "
                         f"{_format_value(child.total)}")
            lines.append(f"{self.name}_count{_label_suffix(key)} "
                         f"{child.count}")
        return lines

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        out: Dict[str, Dict[str, object]] = {}
        for key, _ in self._sorted_children():
            out[_label_suffix(key) or ""] = self.child_snapshot(**dict(key))
        return out


class MetricsRegistry:
    """A process-local family registry with two render targets."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._lock = threading.Lock()

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def names(self) -> List[str]:
        return sorted(self._families)

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if existing.signature() != family.signature():
                    raise ValueError(
                        f"metric {family.name!r} re-registered with a "
                        f"different signature")
                return existing
            self._families[family.name] = family
            return family

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> Counter:
        family = self._register(Counter(name, help_text, labelnames))
        assert isinstance(family, Counter)
        return family

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        family = self._register(Gauge(name, help_text, labelnames))
        assert isinstance(family, Gauge)
        return family

    def histogram(self, name: str, help_text: str,
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        family = self._register(Histogram(name, help_text, labelnames, buckets))
        assert isinstance(family, Histogram)
        return family

    def register_collector(
            self, collect: Callable[["MetricsRegistry"], None]) -> None:
        """Run ``collect(registry)`` before every render (live gauges)."""
        self._collectors.append(collect)

    def _collect(self) -> None:
        for collect in list(self._collectors):
            collect(self)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4 (trailing newline)."""
        self._collect()
        lines: List[str] = []
        for name in sorted(self._families):
            lines.extend(self._families[name].render())
        return "\n".join(lines) + "\n"

    def as_dict(self) -> Dict[str, object]:
        """Nested JSON-friendly snapshot for the legacy metrics endpoint."""
        self._collect()
        return {name: family.as_dict()
                for name, family in sorted(self._families.items())}


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text back into ``{name: {type, help, samples}}``.

    ``samples`` maps the full sample line key (sample name + label suffix)
    to the float value.  Covers what :meth:`MetricsRegistry.render_prometheus`
    emits; raises ``ValueError`` on lines it cannot interpret, which is the
    point — the round-trip test fails loudly on malformed output.
    """
    families: Dict[str, Dict[str, object]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"samples": {}})["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {"samples": {}})["type"] = kind
            continue
        if line.startswith("#"):
            continue
        # Sample line: name{labels} value  |  name value
        if "{" in line:
            brace = line.index("{")
            close = line.rindex("}")
            if close < brace:
                raise ValueError(f"malformed sample line: {raw!r}")
            sample_name = line[:brace]
            key = line[:close + 1]
            value_text = line[close + 1:].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            key = sample_name
            value_text = value_text.strip()
        if not value_text:
            raise ValueError(f"malformed sample line: {raw!r}")
        value = float(value_text.replace("+Inf", "inf"))
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[:-len(suffix)] in families:
                base = base[:-len(suffix)]
                break
        family = families.setdefault(base, {"samples": {}})
        family["samples"][key] = value  # type: ignore[index]
    return families
