"""Deterministic span tracing for the serving stack.

A :class:`Tracer` is a bounded ring buffer of :class:`SpanEvent` records —
frame ingest→serve, backend solve per mode, map resolve/merge/apply, run
store hit/miss, autoscaler decisions, admission verdicts, wave dispatch —
exportable as Chrome/Perfetto trace-event JSON (:meth:`Tracer.export_chrome`)
so a serve call can be opened in a trace viewer.

Two clock domains coexist in one trace:

* ``"virtual"`` — timestamps on the serving engine's deterministic virtual
  clock (seconds since the fleet's first arrival, plus the engine's
  cross-call continuity offset).  Events in this domain are a pure function
  of the fleet: the same specs produce the identical event sequence on
  every run and — for the session-scoped categories — across the
  materialized, streaming and pool ingestion paths.  This is the domain the
  determinism suite pins.
* ``"wall"`` — real elapsed seconds since the tracer was created (map
  resolution, wave dispatch, the service front door, kernel profiling).
  Telemetry only; never compared across runs.

The export maps the domains to separate trace processes (pids), so a
viewer shows the deterministic schedule and the real-time costs side by
side without conflating their timelines.

Observability must be provably inert: a tracer only ever *appends to its
own buffer* — nothing in the serving stack reads one mid-flight, so spans
cannot perturb poses, mode switches or cache keys (the golden-signature
suite serves with ``EUDOXUS_TRACE=1`` to pin exactly this).  The disabled
path is a ``tracer is None`` check at every instrumentation point.

Env knobs (all off by default):

* ``EUDOXUS_TRACE=1`` — engines and the service front door construct a
  tracer automatically when none is passed.
* ``EUDOXUS_TRACE_KERNELS=1`` — hot-kernel profiling spans (see
  :mod:`repro.obs.profile`).
* ``EUDOXUS_TRACE_CAPACITY`` — ring-buffer capacity (default 65536);
  overflow drops the *oldest* events and counts them in
  :attr:`Tracer.dropped`.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CLOCK_DOMAINS",
    "DEFAULT_TRACE_CAPACITY",
    "SpanEvent",
    "TRACE_CAPACITY_ENV",
    "TRACE_ENV",
    "TRACE_KERNELS_ENV",
    "Tracer",
    "quantize_us",
    "trace_capacity",
    "tracer_from_env",
    "tracing_enabled",
]

TRACE_ENV = "EUDOXUS_TRACE"
TRACE_KERNELS_ENV = "EUDOXUS_TRACE_KERNELS"
TRACE_CAPACITY_ENV = "EUDOXUS_TRACE_CAPACITY"
DEFAULT_TRACE_CAPACITY = 65536

CLOCK_DOMAINS = ("virtual", "wall")

# Fixed trace-process ids per clock domain (Chrome traces group by pid).
_DOMAIN_PID = {"virtual": 1, "wall": 2}
_DOMAIN_PROCESS_NAME = {"virtual": "virtual clock", "wall": "wall clock"}


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no")


def tracing_enabled() -> bool:
    """Whether ``EUDOXUS_TRACE`` asks for automatic tracer construction."""
    return _env_truthy(TRACE_ENV)


def trace_capacity() -> int:
    """Ring capacity from ``EUDOXUS_TRACE_CAPACITY`` (malformed -> default)."""
    raw = os.environ.get(TRACE_CAPACITY_ENV, "").strip()
    try:
        capacity = int(raw) if raw else DEFAULT_TRACE_CAPACITY
    except ValueError:
        capacity = DEFAULT_TRACE_CAPACITY
    return max(1, capacity)


def tracer_from_env() -> Optional["Tracer"]:
    """A fresh tracer when ``EUDOXUS_TRACE`` is set, else None (off)."""
    return Tracer(capacity=trace_capacity()) if tracing_enabled() else None


@dataclass(frozen=True)
class SpanEvent:
    """One trace event: a complete span (``phase="X"``) or instant (``"i"``).

    Timestamps are integer microseconds — quantized once, at record time,
    so float formatting can never make two identical schedules compare
    unequal.  ``args`` is a sorted tuple of pairs (not a dict) to keep the
    event hashable and its equality order-insensitive by construction.
    """

    name: str
    category: str
    phase: str  # "X" complete | "i" instant
    clock: str  # "virtual" | "wall"
    timestamp_us: int
    duration_us: int
    track: str
    args: Tuple[Tuple[str, object], ...] = ()

    def args_dict(self) -> Dict[str, object]:
        return dict(self.args)


def quantize_us(seconds: float) -> int:
    """Seconds -> integer microseconds, quantized once at record time."""
    return int(round(float(seconds) * 1e6))


def _freeze_args(args: Dict[str, object]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(args.items()))


class Tracer:
    """A bounded, append-only span buffer with a Chrome-trace exporter."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = max(1, int(capacity if capacity is not None
                                   else trace_capacity()))
        self.events: Deque[SpanEvent] = deque(maxlen=self.capacity)
        self.dropped = 0
        # Wall-domain epoch: wall timestamps are elapsed seconds since the
        # tracer existed, so one serve call's trace starts near zero instead
        # of at an opaque host uptime.
        self._wall_epoch = time.perf_counter()
        self._bound_registries: List[int] = []

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------ recording

    def _record(self, event: SpanEvent) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    def span(self, name: str, category: str, start_s: float,
             duration_s: float = 0.0, *, clock: str = "virtual",
             track: str = "engine", **args: object) -> None:
        """Record a complete span (explicit timestamps, any clock domain)."""
        if clock not in _DOMAIN_PID:
            raise ValueError(f"unknown clock domain: {clock!r}")
        self._record(SpanEvent(
            name=name, category=category, phase="X", clock=clock,
            timestamp_us=quantize_us(start_s),
            duration_us=max(0, quantize_us(duration_s)),
            track=track, args=_freeze_args(args)))

    def instant(self, name: str, category: str, timestamp_s: float, *,
                clock: str = "virtual", track: str = "engine",
                **args: object) -> None:
        """Record a zero-duration instant event."""
        if clock not in _DOMAIN_PID:
            raise ValueError(f"unknown clock domain: {clock!r}")
        self._record(SpanEvent(
            name=name, category=category, phase="i", clock=clock,
            timestamp_us=quantize_us(timestamp_s), duration_us=0,
            track=track, args=_freeze_args(args)))

    def extend(self, events: Iterable[SpanEvent]) -> None:
        """Append pre-built events (the engine folds session-derived spans in)."""
        for event in events:
            self._record(event)

    @contextmanager
    def wall_span(self, name: str, category: str, *, track: str = "engine",
                  **args: object):
        """Measure a wall-clock span around a ``with`` block (telemetry only)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            ended = time.perf_counter()
            self.span(name, category, started - self._wall_epoch,
                      ended - started, clock="wall", track=track, **args)

    def wall_now(self) -> float:
        """The current wall-domain timestamp (seconds since the epoch above)."""
        return time.perf_counter() - self._wall_epoch

    # -------------------------------------------------------------- querying

    def by_category(self, category: str) -> List[SpanEvent]:
        return [event for event in self.events if event.category == category]

    def by_clock(self, clock: str) -> List[SpanEvent]:
        return [event for event in self.events if event.clock == clock]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    # --------------------------------------------------------------- metrics

    def bind_metrics(self, registry) -> None:
        """Expose ring overflow as ``eudoxus_tracer_dropped_total``.

        Collector-driven from :attr:`dropped` at render time, so a full
        ring is visible at ``/v1/metrics`` instead of only on the tracer
        object.  Idempotent per registry — the engine and the front door
        both bind the tracer they share.
        """
        if id(registry) in self._bound_registries:
            return
        self._bound_registries.append(id(registry))
        family = registry.counter(
            "eudoxus_tracer_dropped_total",
            "Events dropped by the bounded tracer ring (overflow).")

        def collect(_registry, tracer=self) -> None:
            family.labels().value = float(tracer.dropped)

        registry.register_collector(collect)

    # ------------------------------------------------------------- exporting

    def to_chrome(self) -> Dict[str, object]:
        """The trace as a Chrome/Perfetto trace-event JSON object.

        Each clock domain becomes one trace process; each track one thread,
        with tids assigned in sorted track order so the export is stable for
        a given event set.
        """
        tids: Dict[Tuple[str, str], int] = {}
        for clock in sorted({event.clock for event in self.events}):
            tracks = sorted({event.track for event in self.events
                             if event.clock == clock})
            for index, track in enumerate(tracks, start=1):
                tids[(clock, track)] = index

        trace_events: List[Dict[str, object]] = []
        for clock, pid in sorted(_DOMAIN_PID.items()):
            if not any(key[0] == clock for key in tids):
                continue
            trace_events.append({"name": "process_name", "ph": "M", "pid": pid,
                                 "tid": 0,
                                 "args": {"name": _DOMAIN_PROCESS_NAME[clock]}})
            for (domain, track), tid in sorted(tids.items()):
                if domain != clock:
                    continue
                trace_events.append({"name": "thread_name", "ph": "M",
                                     "pid": pid, "tid": tid,
                                     "args": {"name": track}})
        for event in self.events:
            entry: Dict[str, object] = {
                "name": event.name,
                "cat": event.category,
                "ph": event.phase,
                "pid": _DOMAIN_PID[event.clock],
                "tid": tids[(event.clock, event.track)],
                "ts": event.timestamp_us,
            }
            if event.phase == "X":
                entry["dur"] = event.duration_us
            if event.phase == "i":
                entry["s"] = "t"  # instant scope: thread
            if event.args:
                entry["args"] = event.args_dict()
            trace_events.append(entry)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms",
                "otherData": {"dropped_events": self.dropped}}

    def export_chrome(self, path: os.PathLike) -> Path:
        """Write the Chrome-trace JSON to ``path``; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_chrome()))
        return target
